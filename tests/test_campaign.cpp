#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>

#include "waldo/campaign/dataset_io.hpp"
#include "waldo/campaign/labeling.hpp"
#include "waldo/campaign/measurement.hpp"
#include "waldo/campaign/truth.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/sensors/sensor.hpp"

namespace waldo::campaign {
namespace {

TEST(Labeling, StrongReadingPoisonsItsNeighbourhood) {
  // Four readings on a line, 4 km apart; the first is hot.
  const std::vector<geo::EnuPoint> pos{
      {0.0, 0.0}, {4000.0, 0.0}, {8000.0, 0.0}, {12'000.0, 0.0}};
  const std::vector<double> rss{-70.0, -100.0, -100.0, -100.0};
  const auto labels = label_readings(pos, rss);
  EXPECT_EQ(labels[0], ml::kNotSafe);  // hot itself
  EXPECT_EQ(labels[1], ml::kNotSafe);  // within 6 km of the hot reading
  EXPECT_EQ(labels[2], ml::kSafe);     // 8 km away
  EXPECT_EQ(labels[3], ml::kSafe);
}

TEST(Labeling, ThresholdIsExclusive) {
  const std::vector<geo::EnuPoint> pos{{0.0, 0.0}};
  EXPECT_EQ(label_readings(pos, std::vector<double>{-84.0})[0], ml::kSafe);
  EXPECT_EQ(label_readings(pos, std::vector<double>{-83.9})[0],
            ml::kNotSafe);
}

TEST(Labeling, CorrectionFactorShiftsDecisions) {
  const std::vector<geo::EnuPoint> pos{{0.0, 0.0}};
  const std::vector<double> rss{-90.0};
  LabelingConfig cfg;
  EXPECT_EQ(label_readings(pos, rss, cfg)[0], ml::kSafe);
  cfg.correction_db = 7.5;
  EXPECT_EQ(label_readings(pos, rss, cfg)[0], ml::kNotSafe);
}

TEST(Labeling, MoreConservativeThresholdNeverAddsSafeLabels) {
  // Property: lowering the threshold can only convert safe -> not safe.
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> coord(0.0, 20'000.0);
  std::uniform_real_distribution<double> power(-110.0, -70.0);
  std::vector<geo::EnuPoint> pos(300);
  std::vector<double> rss(300);
  for (std::size_t i = 0; i < 300; ++i) {
    pos[i] = geo::EnuPoint{coord(rng), coord(rng)};
    rss[i] = power(rng);
  }
  LabelingConfig strict;
  strict.threshold_dbm = -95.0;
  const auto lax_labels = label_readings(pos, rss);
  const auto strict_labels = label_readings(pos, rss, strict);
  for (std::size_t i = 0; i < 300; ++i) {
    if (lax_labels[i] == ml::kNotSafe) {
      EXPECT_EQ(strict_labels[i], ml::kNotSafe);
    }
  }
}

TEST(Labeling, LargerSeparationNeverAddsSafeLabels) {
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> coord(0.0, 20'000.0);
  std::uniform_real_distribution<double> power(-100.0, -75.0);
  std::vector<geo::EnuPoint> pos(200);
  std::vector<double> rss(200);
  for (std::size_t i = 0; i < 200; ++i) {
    pos[i] = geo::EnuPoint{coord(rng), coord(rng)};
    rss[i] = power(rng);
  }
  LabelingConfig wide;
  wide.separation_m = 10'000.0;
  const auto base = label_readings(pos, rss);
  const auto wider = label_readings(pos, rss, wide);
  for (std::size_t i = 0; i < 200; ++i) {
    if (base[i] == ml::kNotSafe) {
      EXPECT_EQ(wider[i], ml::kNotSafe);
    }
  }
}

TEST(Labeling, SizeMismatchThrows) {
  EXPECT_THROW(label_readings(std::vector<geo::EnuPoint>{{0, 0}},
                              std::vector<double>{}),
               std::invalid_argument);
}

TEST(Labeling, SafeFraction) {
  EXPECT_DOUBLE_EQ(safe_fraction(std::vector<int>{}), 0.0);
  const std::vector<int> labels{ml::kSafe, ml::kSafe, ml::kNotSafe,
                                ml::kSafe};
  EXPECT_DOUBLE_EQ(safe_fraction(labels), 0.75);
}

class CampaignFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new rf::Environment(rf::make_metro_environment());
    route_ = new geo::DrivePath(standard_route(*env_, 800, 5));
  }
  static void TearDownTestSuite() {
    delete env_;
    delete route_;
    env_ = nullptr;
    route_ = nullptr;
  }
  static rf::Environment* env_;
  static geo::DrivePath* route_;
};

rf::Environment* CampaignFixture::env_ = nullptr;
geo::DrivePath* CampaignFixture::route_ = nullptr;

TEST_F(CampaignFixture, CollectChannelProducesOneReadingPerRoutePoint) {
  sensors::Sensor rtl(sensors::rtl_sdr_spec(), 3);
  rtl.calibrate();
  const ChannelDataset ds = collect_channel(*env_, rtl, 30, route_->readings);
  EXPECT_EQ(ds.size(), route_->readings.size());
  EXPECT_EQ(ds.channel, 30);
  EXPECT_EQ(ds.sensor_name, "RTL-SDR");
  for (const Measurement& m : ds.readings) {
    EXPECT_TRUE(std::isfinite(m.rss_dbm));
    EXPECT_TRUE(std::isfinite(m.cft_db));
    EXPECT_TRUE(std::isfinite(m.aft_db));
    EXPECT_TRUE(m.iq.empty());  // keep_iq defaults to false
  }
}

TEST_F(CampaignFixture, KeepIqRetainsCaptures) {
  sensors::Sensor rtl(sensors::rtl_sdr_spec(), 4);
  rtl.calibrate();
  const std::vector<geo::EnuPoint> few(route_->readings.begin(),
                                       route_->readings.begin() + 5);
  const ChannelDataset ds =
      collect_channel(*env_, rtl, 30, few, CollectOptions{.keep_iq = true});
  for (const Measurement& m : ds.readings) EXPECT_EQ(m.iq.size(), 256u);
}

TEST_F(CampaignFixture, CalibratedRssTracksTruthForStrongChannel) {
  sensors::Sensor usrp(sensors::usrp_b200_spec(), 5);
  usrp.calibrate();
  const ChannelDataset ds = collect_channel(*env_, usrp, 27, route_->readings);
  double err = 0.0;
  for (const Measurement& m : ds.readings) {
    err += std::abs(m.rss_dbm - m.true_rss_dbm);
  }
  // Fully-occupied channel is far above the floor: calibrated readings
  // track ground truth within the +0.7 dB design margin plus jitter.
  EXPECT_LT(err / static_cast<double>(ds.size()), 2.0);
}

TEST_F(CampaignFixture, OccupiedChannelFullyNotSafe) {
  sensors::Sensor sa(sensors::spectrum_analyzer_spec(), 6);
  const ChannelDataset ds = collect_channel(*env_, sa, 39, route_->readings);
  const auto labels = label_readings(ds.positions(), ds.rss_values());
  EXPECT_DOUBLE_EQ(safe_fraction(labels), 0.0);
}

TEST_F(CampaignFixture, CsvRoundTripPreservesData) {
  sensors::Sensor rtl(sensors::rtl_sdr_spec(), 7);
  rtl.calibrate();
  const std::vector<geo::EnuPoint> few(route_->readings.begin(),
                                       route_->readings.begin() + 20);
  const ChannelDataset ds = collect_channel(*env_, rtl, 46, few);
  std::stringstream ss;
  write_csv(ss, ds);
  const ChannelDataset back = read_csv(ss);
  EXPECT_EQ(back.channel, 46);
  EXPECT_EQ(back.sensor_name, "RTL-SDR");
  ASSERT_EQ(back.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_NEAR(back.readings[i].position.east_m,
                ds.readings[i].position.east_m, 1e-6);
    EXPECT_NEAR(back.readings[i].rss_dbm, ds.readings[i].rss_dbm, 1e-6);
    EXPECT_NEAR(back.readings[i].cft_db, ds.readings[i].cft_db, 1e-6);
  }
}

// Regression: write_csv used setprecision(12), which silently perturbed
// doubles on a write→read round trip (12 significant digits cannot
// reconstruct a binary64). Round-tripping must be bit-exact, including
// for extreme magnitudes, negative zero and denormals.
TEST(DatasetIo, CsvRoundTripIsBitExact) {
  const double awkward[] = {
      -84.0000000001,          // differs from -84.0 only past digit 12
      1e300,                   // huge magnitude
      -0.0,                    // sign must survive
      5e-324,                  // smallest denormal
      0.1,                     // classic non-representable decimal
      -107.38283136917901,     // a real AFT-style value
  };
  ChannelDataset ds;
  ds.channel = 21;
  ds.sensor_name = "bitexact";
  for (const double v : awkward) {
    Measurement m;
    m.position = geo::EnuPoint{v, -v};
    m.raw = v;
    m.rss_dbm = v;
    m.cft_db = v;
    m.aft_db = v;
    m.true_rss_dbm = v;
    ds.readings.push_back(m);
  }
  std::stringstream ss;
  write_csv(ss, ds);
  const ChannelDataset back = read_csv(ss);
  ASSERT_EQ(back.size(), ds.size());
  const auto bits = [](double d) { return std::bit_cast<std::uint64_t>(d); };
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Measurement& a = ds.readings[i];
    const Measurement& b = back.readings[i];
    EXPECT_EQ(bits(a.position.east_m), bits(b.position.east_m)) << i;
    EXPECT_EQ(bits(a.position.north_m), bits(b.position.north_m)) << i;
    EXPECT_EQ(bits(a.raw), bits(b.raw)) << i;
    EXPECT_EQ(bits(a.rss_dbm), bits(b.rss_dbm)) << i;
    EXPECT_EQ(bits(a.cft_db), bits(b.cft_db)) << i;
    EXPECT_EQ(bits(a.aft_db), bits(b.aft_db)) << i;
    EXPECT_EQ(bits(a.true_rss_dbm), bits(b.true_rss_dbm)) << i;
  }
  // A second trip through text must be byte-identical: the canonical form
  // is a fixed point.
  std::stringstream again;
  write_csv(again, back);
  EXPECT_EQ(ss.str(), again.str());
}

TEST(DatasetIo, RejectsMalformedRows) {
  const std::string header =
      "# waldo-dataset v1 channel=30 sensor=X\n"
      "east_m,north_m,raw,rss_dbm,cft_db,aft_db,true_rss_dbm\n";
  // Space-separated values: the separators must actually be commas.
  std::stringstream spaces(header + "1 2 3 4 5 6 7\n");
  EXPECT_THROW((void)read_csv(spaces), std::runtime_error);
  // Too few fields.
  std::stringstream missing(header + "1,2,3,4\n");
  EXPECT_THROW((void)read_csv(missing), std::runtime_error);
  // Trailing garbage after a complete row.
  std::stringstream trailing(header + "1,2,3,4,5,6,7,extra\n");
  EXPECT_THROW((void)read_csv(trailing), std::runtime_error);
  // A well-formed row still parses.
  std::stringstream good(header + "1,2,3,4,5,6,7\n");
  const ChannelDataset ok = read_csv(good);
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_DOUBLE_EQ(ok.readings[0].aft_db, 6.0);
}

TEST(DatasetIo, RejectsGarbage) {
  std::stringstream ss("not a dataset\n");
  EXPECT_THROW(read_csv(ss), std::runtime_error);
  std::stringstream truncated("# waldo-dataset v1 channel=30 sensor=X\n");
  EXPECT_THROW(read_csv(truncated), std::runtime_error);
}

TEST_F(CampaignFixture, TruthLabelerMatchesOccupancy) {
  const GroundTruthLabeler truth27(*env_, 27);
  EXPECT_NEAR(truth27.safe_area_fraction(), 0.0, 1e-9);
  const GroundTruthLabeler truth17(*env_, 17);
  EXPECT_GT(truth17.safe_area_fraction(), 0.5);
}

TEST_F(CampaignFixture, TruthAgreesWithMeasuredLabels) {
  sensors::Sensor sa(sensors::spectrum_analyzer_spec(), 8);
  const ChannelDataset ds = collect_channel(*env_, sa, 46, route_->readings);
  const auto measured = label_readings(ds.positions(), ds.rss_values());
  const GroundTruthLabeler truth(*env_, 46);
  const auto expected = truth.label_all(ds.positions());
  const auto cm = ml::compare_labels(measured, expected);
  // Measured Algorithm 1 labels approximate the analytic truth; deviations
  // concentrate at the contour (sampling + sensor noise).
  EXPECT_LT(cm.error_rate(), 0.15);
}

TEST(Truth, RejectsCoarseGrid) {
  const rf::Environment env = rf::make_metro_environment();
  LabelingConfig cfg;
  EXPECT_THROW(GroundTruthLabeler(env, 30, cfg, 5000.0),
               std::invalid_argument);
  EXPECT_THROW(GroundTruthLabeler(env, 30, cfg, 0.0), std::invalid_argument);
}

TEST(Truth, CorrectionShrinksSafeArea) {
  const rf::Environment env = rf::make_metro_environment();
  LabelingConfig plain;
  LabelingConfig corrected;
  corrected.correction_db = 7.5;
  const GroundTruthLabeler a(env, 46, plain, 500.0);
  const GroundTruthLabeler b(env, 46, corrected, 500.0);
  EXPECT_GT(a.safe_area_fraction(), b.safe_area_fraction());
}

TEST(StandardRoute, CoversTheRegion) {
  const rf::Environment env = rf::make_metro_environment();
  const geo::DrivePath route = standard_route(env, 2000, 11);
  EXPECT_EQ(route.readings.size(), 2000u);
  const geo::BoundingBox box = geo::BoundingBox::of(route.readings);
  EXPECT_GT(box.area_km2(), 100.0);
  for (const geo::EnuPoint& p : route.readings) {
    EXPECT_TRUE(env.config().region.contains(p));
  }
}

}  // namespace
}  // namespace waldo::campaign
