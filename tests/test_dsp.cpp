#include <gtest/gtest.h>

#include <numbers>
#include <random>

#include "waldo/dsp/detectors.hpp"
#include "waldo/dsp/fft.hpp"
#include "waldo/dsp/iq.hpp"
#include "waldo/rf/units.hpp"

namespace waldo::dsp {
namespace {

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<cplx> x(16, cplx{0.0, 0.0});
  x[0] = cplx{1.0, 0.0};
  const auto spec = fft(x);
  for (const cplx& v : spec) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, PureToneLandsInSingleBin) {
  constexpr std::size_t kN = 256;
  constexpr std::size_t kBin = 37;
  std::vector<cplx> x(kN);
  for (std::size_t n = 0; n < kN; ++n) {
    const double ph = 2.0 * std::numbers::pi * static_cast<double>(kBin) *
                      static_cast<double>(n) / static_cast<double>(kN);
    x[n] = cplx{std::cos(ph), std::sin(ph)};
  }
  const auto spec = fft(x);
  for (std::size_t k = 0; k < kN; ++k) {
    if (k == kBin) {
      EXPECT_NEAR(std::abs(spec[k]), static_cast<double>(kN), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-8);
    }
  }
}

TEST(Fft, InverseRoundTrip) {
  std::mt19937_64 rng(4);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<cplx> x(128);
  for (auto& v : x) v = cplx{g(rng), g(rng)};
  std::vector<cplx> y = x;
  fft_inplace(y);
  ifft_inplace(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-10);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  std::mt19937_64 rng(5);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<cplx> x(64);
  for (auto& v : x) v = cplx{g(rng), g(rng)};
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  const auto spec = fft(x);
  double freq_energy = 0.0;
  for (const auto& v : spec) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * 64.0, 1e-6);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cplx> x(100);
  EXPECT_THROW(fft_inplace(x), std::invalid_argument);
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(100));
  EXPECT_TRUE(is_pow2(256));
}

TEST(Fft, PowerSpectrumShiftedPutsDcInCenter) {
  std::vector<cplx> x(32, cplx{1.0, 0.0});  // pure DC
  const auto ps = power_spectrum_shifted(x);
  for (std::size_t k = 0; k < ps.size(); ++k) {
    if (k == 16) {
      EXPECT_NEAR(ps[k], 1.0, 1e-12);  // |N|^2 / N^2
    } else {
      EXPECT_NEAR(ps[k], 0.0, 1e-12);
    }
  }
}

TEST(Fft, HannWindowShape) {
  const auto w = hann_window(64);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[31], 1.0, 0.01);
  EXPECT_EQ(hann_window(1).at(0), 1.0);
}

TEST(Fft, MeanPowerOfUnitTone) {
  std::vector<cplx> x(64, cplx{1.0, 0.0});
  EXPECT_DOUBLE_EQ(mean_power(x), 1.0);
  EXPECT_DOUBLE_EQ(mean_power(std::vector<cplx>{}), 0.0);
}

class CaptureProperty : public ::testing::TestWithParam<double> {};

TEST_P(CaptureProperty, TotalPowerTracksSignalPlusNoise) {
  const double channel_dbm = GetParam();
  const CaptureConfig cfg;
  std::mt19937_64 rng(11);
  // Average energy-detector output over captures; expect in-capture share
  // of the channel power plus noise.
  constexpr double kNoise = -90.0;
  double mw = 0.0;
  constexpr int kReps = 200;
  for (int i = 0; i < kReps; ++i) {
    const auto capture = synthesize_capture(cfg, channel_dbm, kNoise, rng);
    mw += rf::dbm_to_mw(energy_detector_dbm(capture));
  }
  const double measured_dbm = rf::mw_to_dbm(mw / kReps);

  const double pilot_share = std::pow(10.0, -1.13);
  const double expected_mw =
      rf::dbm_to_mw(channel_dbm) *
          (pilot_share +
           (1.0 - pilot_share) * in_capture_data_fraction(cfg)) +
      rf::dbm_to_mw(kNoise);
  EXPECT_NEAR(measured_dbm, rf::mw_to_dbm(expected_mw), 0.35);
}

INSTANTIATE_TEST_SUITE_P(Levels, CaptureProperty,
                         ::testing::Values(-50.0, -60.0, -70.0, -80.0));

TEST(Capture, VacantChannelIsPureNoise) {
  const CaptureConfig cfg;
  std::mt19937_64 rng(12);
  double mw = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto capture = synthesize_capture(cfg, -200.0, -95.0, rng);
    mw += rf::dbm_to_mw(energy_detector_dbm(capture));
  }
  EXPECT_NEAR(rf::mw_to_dbm(mw / 200), -95.0, 0.3);
}

TEST(Capture, PilotDominatesCentralBin) {
  const CaptureConfig cfg;
  std::mt19937_64 rng(13);
  const auto capture = synthesize_capture(cfg, -60.0, -100.0, rng);
  const auto ps = power_spectrum_shifted(capture);
  const std::size_t center = ps.size() / 2;
  double max_other = 0.0;
  for (std::size_t k = 0; k < ps.size(); ++k) {
    if (k != center) max_other = std::max(max_other, ps[k]);
  }
  EXPECT_GT(ps[center], 5.0 * max_other);
}

TEST(Capture, InCaptureDataFraction) {
  CaptureConfig cfg;  // 2.4 MHz around the pilot
  // Window [-1.2, 1.2] MHz; channel occupies [-0.309, +5.69] -> 1.509 MHz.
  EXPECT_NEAR(in_capture_data_fraction(cfg), 1.509 / 6.0, 0.01);
  cfg.sample_rate_hz = 16e6;  // window swallows the whole channel
  EXPECT_NEAR(in_capture_data_fraction(cfg), 1.0, 1e-9);
}

TEST(Capture, RejectsNonPowerOfTwo) {
  CaptureConfig cfg;
  cfg.num_samples = 200;
  std::mt19937_64 rng(1);
  EXPECT_THROW(synthesize_capture(cfg, -60.0, -90.0, rng),
               std::invalid_argument);
}

TEST(Detectors, PilotDetectorEstimatesChannelPower) {
  const CaptureConfig cfg;
  std::mt19937_64 rng(14);
  // Strong signal, low noise: pilot band holds the pilot (channel - 11.3);
  // +12 dB correction returns roughly channel power (+0.7 dB by design).
  double sum = 0.0;
  constexpr int kReps = 100;
  for (int i = 0; i < kReps; ++i) {
    const auto capture = synthesize_capture(cfg, -60.0, -110.0, rng);
    sum += pilot_detector_dbm(capture);
  }
  EXPECT_NEAR(sum / kReps, -60.0 + 0.7, 0.5);
}

TEST(Detectors, PilotBeatsEnergyDetectionNearTheFloor) {
  // The narrowband pilot measurement rejects most of the wideband noise:
  // for a weak signal the pilot statistic is farther above its vacant
  // baseline than the full-band energy statistic — the reason the paper
  // adopts it (Section 2.1).
  const CaptureConfig cfg;
  std::mt19937_64 rng(15);
  constexpr double kNoise = -85.0;
  constexpr int kReps = 400;
  double pilot_sig = 0.0, pilot_ref = 0.0, energy_sig = 0.0,
         energy_ref = 0.0;
  for (int i = 0; i < kReps; ++i) {
    const auto weak = synthesize_capture(cfg, -80.0, kNoise, rng);
    const auto vacant = synthesize_capture(cfg, -200.0, kNoise, rng);
    pilot_sig += pilot_band_power_dbm(weak);
    pilot_ref += pilot_band_power_dbm(vacant);
    energy_sig += energy_detector_dbm(weak);
    energy_ref += energy_detector_dbm(vacant);
  }
  const double pilot_gap = (pilot_sig - pilot_ref) / kReps;
  const double energy_gap = (energy_sig - energy_ref) / kReps;
  EXPECT_GT(pilot_gap, energy_gap + 3.0);
}

TEST(Detectors, CftAftRespondToSignalPresence) {
  const CaptureConfig cfg;
  std::mt19937_64 rng(16);
  double cft_on = 0.0, cft_off = 0.0, aft_on = 0.0, aft_off = 0.0;
  constexpr int kReps = 200;
  for (int i = 0; i < kReps; ++i) {
    const auto occupied = synthesize_capture(cfg, -75.0, -95.0, rng);
    const auto vacant = synthesize_capture(cfg, -200.0, -95.0, rng);
    cft_on += central_bin_db(occupied);
    cft_off += central_bin_db(vacant);
    aft_on += central_band_mean_db(occupied);
    aft_off += central_band_mean_db(vacant);
  }
  EXPECT_GT(cft_on / kReps, cft_off / kReps + 6.0);
  EXPECT_GT(aft_on / kReps, aft_off / kReps + 1.0);
}

TEST(Detectors, MatchedPilotSearchToleratesTunerOffset) {
  // With the tuner 4 bins off the pilot, the fixed pilot-band statistic
  // collapses to the noise floor while the matched search recovers it.
  CaptureConfig cfg;
  cfg.pilot_offset_hz = 4.0 * cfg.sample_rate_hz /
                        static_cast<double>(cfg.num_samples);
  std::mt19937_64 rng(17);
  double fixed = 0.0, matched = 0.0;
  constexpr int kReps = 100;
  for (int i = 0; i < kReps; ++i) {
    const auto capture = synthesize_capture(cfg, -65.0, -100.0, rng);
    fixed += pilot_band_power_dbm(capture);
    matched += matched_pilot_power_dbm(capture, 11);
  }
  EXPECT_GT(matched / kReps, fixed / kReps + 10.0);
  // On-frequency, both statistics agree.
  CaptureConfig centred;
  double fixed_c = 0.0, matched_c = 0.0;
  for (int i = 0; i < kReps; ++i) {
    const auto capture = synthesize_capture(centred, -65.0, -100.0, rng);
    fixed_c += pilot_band_power_dbm(capture);
    matched_c += matched_pilot_power_dbm(capture, 11);
  }
  EXPECT_NEAR(matched_c / kReps, fixed_c / kReps, 1.0);
}

TEST(Detectors, MatchedPilotValidation) {
  std::vector<cplx> capture(256, cplx{0.01, 0.0});
  EXPECT_THROW((void)matched_pilot_power_dbm(capture, 0),
               std::invalid_argument);
  EXPECT_THROW((void)matched_pilot_power_dbm(capture, 4),
               std::invalid_argument);
  EXPECT_THROW((void)matched_pilot_power_dbm(capture, 9, 2),
               std::invalid_argument);
}

TEST(Detectors, PilotBinsValidation) {
  std::vector<cplx> capture(256, cplx{0.01, 0.0});
  EXPECT_THROW((void)pilot_band_power_dbm(capture, 0), std::invalid_argument);
  EXPECT_THROW((void)pilot_band_power_dbm(capture, 4), std::invalid_argument);
  EXPECT_NO_THROW((void)pilot_band_power_dbm(capture, 5));
}

// The memoized plan must reproduce the direct transform bit for bit — the
// whole determinism contract of the spectral hot path hangs on it.
TEST(FftPlan, BitIdenticalToReferenceAcrossSizes) {
  std::mt19937_64 rng(11);
  std::normal_distribution<double> g(0.0, 1.0);
  for (std::size_t n = 2; n <= (1u << 14); n <<= 1) {
    std::vector<cplx> x(n);
    for (auto& v : x) v = cplx{g(rng), g(rng)};
    for (const bool inverse : {false, true}) {
      std::vector<cplx> planned = x;
      std::vector<cplx> direct = x;
      if (inverse) {
        ifft_inplace(planned);
      } else {
        fft_inplace(planned);
      }
      reference_transform(direct, inverse);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(planned[i].real(), direct[i].real())
            << "n=" << n << " inverse=" << inverse << " i=" << i;
        ASSERT_EQ(planned[i].imag(), direct[i].imag())
            << "n=" << n << " inverse=" << inverse << " i=" << i;
      }
    }
  }
}

TEST(FftPlan, RejectsNonPowerOfTwoAndSizeMismatch) {
  EXPECT_THROW((void)fft_plan(0), std::invalid_argument);
  EXPECT_THROW((void)fft_plan(24), std::invalid_argument);
  std::vector<cplx> x(8);
  EXPECT_THROW(fft_plan(16).forward(x), std::invalid_argument);
}

// Reusing one workspace across many syntheses must leave every capture
// byte-identical to the allocating form: same RNG draws, same arithmetic.
TEST(CaptureWorkspace, SynthesizeIntoMatchesAllocatingForm) {
  const CaptureConfig cfg;
  CaptureWorkspace ws;
  for (int rep = 0; rep < 5; ++rep) {
    std::mt19937_64 rng_a(100 + rep);
    std::mt19937_64 rng_b(100 + rep);
    const std::vector<cplx> fresh =
        synthesize_capture(cfg, -70.0, -95.0, rng_a);
    synthesize_capture_into(cfg, -70.0, -95.0, rng_b, ws);
    ASSERT_EQ(ws.time.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      ASSERT_EQ(ws.time[i].real(), fresh[i].real()) << "rep=" << rep;
      ASSERT_EQ(ws.time[i].imag(), fresh[i].imag()) << "rep=" << rep;
    }
    // RNG consumption is identical, so the engines stay in lockstep.
    ASSERT_EQ(rng_a(), rng_b()) << "rep=" << rep;
  }
}

// spectrum_only must consume the RNG exactly like the full synthesis (the
// raw reading drawn after it depends on engine position).
TEST(CaptureWorkspace, SpectrumOnlyConsumesRngIdentically) {
  const CaptureConfig cfg;
  std::mt19937_64 rng_full(7);
  std::mt19937_64 rng_spec(7);
  CaptureWorkspace ws_full, ws_spec;
  synthesize_capture_into(cfg, -70.0, -95.0, rng_full, ws_full);
  synthesize_capture_into(cfg, -70.0, -95.0, rng_spec, ws_spec,
                          /*spectrum_only=*/true);
  EXPECT_EQ(rng_full(), rng_spec());
  ASSERT_EQ(ws_full.shifted.size(), ws_spec.shifted.size());
  for (std::size_t k = 0; k < ws_full.shifted.size(); ++k) {
    ASSERT_EQ(ws_full.shifted[k], ws_spec.shifted[k]);
  }
}

TEST(CaptureWorkspace, DetectorOverloadsMatchAllocatingForms) {
  std::mt19937_64 rng(13);
  const CaptureConfig cfg;
  CaptureWorkspace ws;
  for (int rep = 0; rep < 3; ++rep) {
    const auto capture = synthesize_capture(cfg, -72.0, -96.0, rng);
    EXPECT_EQ(pilot_band_power_dbm(capture), pilot_band_power_dbm(capture, ws));
    EXPECT_EQ(pilot_detector_dbm(capture), pilot_detector_dbm(capture, ws));
    EXPECT_EQ(central_bin_db(capture), central_bin_db(capture, ws));
    EXPECT_EQ(central_band_mean_db(capture),
              central_band_mean_db(capture, ws));
    const auto ps = power_spectrum_shifted_into(capture, ws);
    EXPECT_EQ(central_bin_db(capture), central_bin_db_from_power(ps));
    EXPECT_EQ(central_band_mean_db(capture),
              central_band_mean_db_from_power(ps));
  }
}

// The fast-spectral path computes CFT/AFT straight from the synthesized
// spectrum; the exact path takes that spectrum through ifft then fft. The
// two differ only by FFT round-trip rounding — empirically ~1e-12 dB for
// 256-point captures; 1e-6 dB is the enforced (generous) bound documented
// in DESIGN.md.
TEST(FastSpectral, MatchesExactPathWithinTolerance) {
  constexpr double kToleranceDb = 1e-6;
  const CaptureConfig cfg;
  CaptureWorkspace ws;
  for (int rep = 0; rep < 20; ++rep) {
    std::mt19937_64 rng_a(500 + rep);
    std::mt19937_64 rng_b(500 + rep);
    synthesize_capture_into(cfg, -70.0 - rep, -95.0, rng_a, ws);
    const double cft_exact = central_bin_db(ws.time);
    const double aft_exact = central_band_mean_db(ws.time);
    CaptureWorkspace ws_spec;
    synthesize_capture_into(cfg, -70.0 - rep, -95.0, rng_b, ws_spec,
                            /*spectrum_only=*/true);
    EXPECT_NEAR(central_bin_db_from_spectrum(ws_spec.shifted), cft_exact,
                kToleranceDb);
    EXPECT_NEAR(central_band_mean_db_from_spectrum(ws_spec.shifted), aft_exact,
                kToleranceDb);
  }
}

}  // namespace
}  // namespace waldo::dsp
