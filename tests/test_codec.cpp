// waldo::codec unit tests: primitive round trips (including the IEEE-754
// bit patterns decimal text formatting would lose), varint edge values,
// and the hardening contract — truncated, bit-flipped, version-skewed, or
// adversarially length-prefixed descriptors throw codec::Error instead of
// over-reading or allocating unboundedly.
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "waldo/codec/codec.hpp"

namespace {

using waldo::codec::Error;
using waldo::codec::Reader;
using waldo::codec::Writer;

// ---------------------------------------------------------------------------
// Container basics

TEST(Codec, EmptyPayloadRoundTrips) {
  Writer w;
  const std::string bytes = std::move(w).finish();
  // Magic (4) + version varint (1) + CRC (4).
  EXPECT_EQ(bytes.size(), 9u);
  EXPECT_TRUE(waldo::codec::is_binary(bytes));
  Reader r(bytes);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Codec, IsBinarySniffsMagic) {
  EXPECT_FALSE(waldo::codec::is_binary(""));
  EXPECT_FALSE(waldo::codec::is_binary("WS"));
  EXPECT_FALSE(waldo::codec::is_binary("waldo_model v1\n"));
  EXPECT_TRUE(waldo::codec::is_binary("WSDB"));  // sniff only looks at magic
}

TEST(Codec, RejectsBadMagicAndShortInput) {
  EXPECT_THROW(Reader r(""), Error);
  EXPECT_THROW(Reader r("WSD"), Error);
  EXPECT_THROW(Reader r("XXXX\x01\x00\x00\x00\x00"), Error);
  // Magic alone, no version or trailer.
  EXPECT_THROW(Reader r("WSDB"), Error);
}

TEST(Codec, RejectsNewerFormatVersion) {
  // Hand-build a well-formed container claiming format version 2: the CRC
  // is valid, so the failure is attributable to the version check alone.
  std::string body = "WSDB";
  body += '\x02';
  const std::uint32_t crc = waldo::codec::crc32(body);
  std::string bytes = body;
  for (int i = 0; i < 4; ++i) {
    bytes += static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  try {
    Reader r(bytes);
    FAIL() << "version 2 container was accepted";
  } catch (const Error& e) {
    // The message should name both versions so operators can tell a format
    // skew from corruption.
    EXPECT_NE(std::string(e.what()).find('2'), std::string::npos);
    EXPECT_NE(std::string(e.what()).find('1'), std::string::npos);
  }
}

TEST(Codec, DetectsEveryPossibleSingleBitFlip) {
  Writer w;
  w.u64(12345);
  w.str("white space");
  w.f64(-101.25);
  const std::string good = std::move(w).finish();
  ASSERT_NO_THROW(Reader r(good));
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      EXPECT_THROW(Reader r(bad), Error)
          << "flip of bit " << bit << " in byte " << byte << " not detected";
    }
  }
}

TEST(Codec, DetectsTruncationAtEveryLength) {
  Writer w;
  w.i64(-42);
  w.f64_array({1.0, 2.0, 3.0});
  const std::string good = std::move(w).finish();
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW(Reader r(good.substr(0, len)), Error)
        << "truncation to " << len << " bytes not detected";
  }
}

// ---------------------------------------------------------------------------
// Primitive round trips

TEST(Codec, VarintEdgeValuesRoundTrip) {
  const std::uint64_t values[] = {
      0,      1,
      127,    128,  // 1-byte/2-byte varint boundary
      16383,  16384,
      0x7fffffffull,
      0xffffffffull,
      std::numeric_limits<std::uint64_t>::max() - 1,
      std::numeric_limits<std::uint64_t>::max(),
  };
  Writer w;
  for (std::uint64_t v : values) w.u64(v);
  const std::string bytes = std::move(w).finish();
  Reader r(bytes);
  for (std::uint64_t v : values) EXPECT_EQ(r.u64(), v);
  r.expect_done();
}

TEST(Codec, ZigzagEdgeValuesRoundTrip) {
  const std::int64_t values[] = {
      0,  -1, 1,  -2, 2,
      63, 64, -64, -65,  // zigzag 1-byte/2-byte boundary
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max(),
  };
  Writer w;
  for (std::int64_t v : values) w.i64(v);
  const std::string bytes = std::move(w).finish();
  Reader r(bytes);
  for (std::int64_t v : values) EXPECT_EQ(r.i64(), v);
  r.expect_done();
}

TEST(Codec, SmallValuesEncodeInOneByte) {
  // The varint is why binary descriptors beat text: small ints are 1 byte.
  Writer w;
  const std::size_t before = w.size_bytes();
  w.u64(127);
  EXPECT_EQ(w.size_bytes() - before, 1u);
  w.i64(-64);
  EXPECT_EQ(w.size_bytes() - before, 2u);
  (void)std::move(w).finish();
}

TEST(Codec, DoublesRoundTripBitExactly) {
  // Values decimal text formatting distorts or cannot express: signed
  // zeros, infinities, NaN payloads, subnormals, and max-precision values.
  const double values[] = {
      0.0,
      -0.0,
      1.0 / 3.0,
      -101.3000000000000007,  // typical dBm with a sticky last ulp
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::min(),
  };
  Writer w;
  for (double v : values) w.f64(v);
  const std::string bytes = std::move(w).finish();
  Reader r(bytes);
  for (double v : values) {
    const double got = r.f64();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
              std::bit_cast<std::uint64_t>(v));
  }
  r.expect_done();
}

TEST(Codec, StringsRoundTripIncludingEmbeddedNulAndNewline) {
  const std::string values[] = {
      "", "svm", std::string("nul\0byte", 8), "line\nbreak",
      std::string(1000, 'x')};
  Writer w;
  for (const std::string& v : values) w.str(v);
  const std::string bytes = std::move(w).finish();
  Reader r(bytes);
  for (const std::string& v : values) EXPECT_EQ(r.str(), v);
  r.expect_done();
}

TEST(Codec, F64ArrayRoundTrips) {
  Writer w;
  w.f64_array({});
  w.f64_array({-75.5, -95.25, 0.0});
  const std::string bytes = std::move(w).finish();
  Reader r(bytes);
  EXPECT_TRUE(r.f64_array().empty());
  EXPECT_EQ(r.f64_array(), (std::vector<double>{-75.5, -95.25, 0.0}));
  r.expect_done();
}

TEST(Codec, MixedSequenceIsDeterministic) {
  auto build = [] {
    Writer w;
    w.u8(3);
    w.i64(-46);
    w.f64(-114.0);
    w.str("locality");
    w.f64_array({1.5, 2.5});
    return std::move(w).finish();
  };
  EXPECT_EQ(build(), build());  // byte-identical across runs
}

// ---------------------------------------------------------------------------
// Adversarial input (valid CRC, hostile payload)

// Re-wraps `payload` in a container with a *correct* CRC, so the reader's
// per-read bounds checks — not the checksum — must catch the problem.
std::string wrap_valid(const std::string& payload) {
  std::string body = "WSDB";
  body += '\x01';
  body += payload;
  const std::uint32_t crc = waldo::codec::crc32(body);
  std::string bytes = body;
  for (int i = 0; i < 4; ++i) {
    bytes += static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  return bytes;
}

TEST(Codec, RejectsStringLengthBeyondPayload) {
  // str claiming 1 GiB of content with 0 bytes behind it: must throw, not
  // allocate or over-read. 0x80 0x80 0x80 0x80 0x04 = varint 2^30.
  const std::string bytes =
      wrap_valid(std::string("\x80\x80\x80\x80\x04", 5));
  Reader r(bytes);
  EXPECT_THROW((void)r.str(), Error);
}

TEST(Codec, RejectsArrayCountBeyondPayload) {
  const std::string bytes =
      wrap_valid(std::string("\x80\x80\x80\x80\x04", 5));
  Reader r(bytes);
  EXPECT_THROW((void)r.f64_array(), Error);
}

TEST(Codec, CountRejectsOverlongClaims) {
  // count(8) with 3 elements actually present but a claim of 100.
  Writer w;
  w.u64(100);
  w.f64(1.0);
  w.f64(2.0);
  w.f64(3.0);
  const std::string bytes = std::move(w).finish();
  Reader r(bytes);
  EXPECT_THROW((void)r.count(8), Error);
}

TEST(Codec, RejectsOverlongVarint) {
  // Eleven continuation bytes: more than any u64 varint can span.
  const std::string bytes = wrap_valid(std::string(11, '\x80'));
  Reader r(bytes);
  EXPECT_THROW((void)r.u64(), Error);
}

TEST(Codec, RejectsVarintOverflow) {
  // Ten bytes whose tenth carries more than the single remaining bit.
  std::string payload(9, '\x80');
  payload += '\x7f';
  const std::string bytes = wrap_valid(payload);
  Reader r(bytes);
  EXPECT_THROW((void)r.u64(), Error);
}

TEST(Codec, ExpectDoneRejectsTrailingBytes) {
  Writer w;
  w.u8(1);
  w.u8(2);
  const std::string bytes = std::move(w).finish();
  Reader r(bytes);
  (void)r.u8();
  EXPECT_THROW(r.expect_done(), Error);
  (void)r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Codec, ReadPastEndThrows) {
  Writer w;
  w.u8(7);
  const std::string bytes = std::move(w).finish();
  Reader r(bytes);
  (void)r.u8();
  EXPECT_THROW((void)r.u8(), Error);
  EXPECT_THROW((void)r.f64(), Error);
  EXPECT_THROW((void)r.u64(), Error);
}

TEST(Codec, Crc32MatchesKnownVector) {
  // The standard zlib/PNG check value for "123456789".
  EXPECT_EQ(waldo::codec::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(waldo::codec::crc32(""), 0x00000000u);
}

}  // namespace
