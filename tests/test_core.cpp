#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "waldo/campaign/truth.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/database.hpp"
#include "waldo/core/detector.hpp"
#include "waldo/core/features.hpp"
#include "waldo/core/model.hpp"
#include "waldo/core/model_constructor.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/rf/environment.hpp"

namespace waldo::core {
namespace {

TEST(Features, RowLayoutFollowsPaperOrder) {
  const geo::EnuPoint p{100.0, 200.0};
  const auto loc = feature_row(p, -80.0, -95.0, -97.0, 1);
  ASSERT_EQ(loc.size(), 2u);
  EXPECT_DOUBLE_EQ(loc[0], 100.0);
  EXPECT_DOUBLE_EQ(loc[1], 200.0);
  const auto full = feature_row(p, -80.0, -95.0, -97.0, 4);
  ASSERT_EQ(full.size(), 5u);
  EXPECT_DOUBLE_EQ(full[2], -80.0);
  EXPECT_DOUBLE_EQ(full[3], -95.0);
  EXPECT_DOUBLE_EQ(full[4], -97.0);
  EXPECT_THROW(feature_row(p, 0, 0, 0, 0), std::invalid_argument);
  EXPECT_THROW(feature_row(p, 0, 0, 0, 5), std::invalid_argument);
}

TEST(Features, FeatureNames) {
  EXPECT_STREQ(feature_name(1), "location");
  EXPECT_STREQ(feature_name(2), "RSS");
  EXPECT_STREQ(feature_name(3), "CFT");
  EXPECT_STREQ(feature_name(4), "AFT");
  EXPECT_THROW((void)feature_name(0), std::invalid_argument);
}

TEST(Features, BuildMatrixFromDataset) {
  campaign::ChannelDataset ds;
  ds.channel = 30;
  for (int i = 0; i < 5; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{static_cast<double>(i), 0.0};
    m.rss_dbm = -80.0 - i;
    m.cft_db = -90.0 - i;
    m.aft_db = -95.0 - i;
    ds.readings.push_back(m);
  }
  const ml::Matrix x = build_features(ds, 3);
  EXPECT_EQ(x.rows(), 5u);
  EXPECT_EQ(x.cols(), 4u);
  EXPECT_DOUBLE_EQ(x(2, 2), -82.0);
  EXPECT_DOUBLE_EQ(x(2, 3), -92.0);
}

TEST(MakeClassifier, KnownKindsAndErrors) {
  EXPECT_EQ(make_classifier("svm")->kind(), "svm");
  EXPECT_EQ(make_classifier("naive_bayes")->kind(), "naive_bayes");
  EXPECT_EQ(make_classifier("decision_tree")->kind(), "decision_tree");
  EXPECT_EQ(make_classifier("knn")->kind(), "knn");
  EXPECT_THROW(make_classifier("perceptron"), std::invalid_argument);
}

/// Synthetic dataset: west half not safe (strong signal), east half safe.
campaign::ChannelDataset make_split_dataset(std::size_t n,
                                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 10'000.0);
  std::normal_distribution<double> jitter(0.0, 1.0);
  campaign::ChannelDataset ds;
  ds.channel = 30;
  ds.sensor_name = "synthetic";
  for (std::size_t i = 0; i < n; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{coord(rng), coord(rng)};
    const bool west = m.position.east_m < 5000.0;
    m.rss_dbm = (west ? -75.0 : -95.0) + jitter(rng);
    m.cft_db = (west ? -85.0 : -105.0) + jitter(rng);
    m.aft_db = (west ? -95.0 : -108.0) + jitter(rng);
    ds.readings.push_back(m);
  }
  return ds;
}

std::vector<int> split_labels(const campaign::ChannelDataset& ds) {
  std::vector<int> labels;
  labels.reserve(ds.size());
  for (const auto& m : ds.readings) {
    labels.push_back(m.position.east_m < 5000.0 ? ml::kNotSafe : ml::kSafe);
  }
  return labels;
}

TEST(ModelConstructor, LearnsTheSplit) {
  const auto ds = make_split_dataset(600, 1);
  const auto labels = split_labels(ds);
  ModelConstructorConfig cfg;
  cfg.num_localities = 3;
  cfg.num_features = 3;
  const ModelConstructor constructor(cfg);
  const WhiteSpaceModel model = constructor.build(ds, labels);
  EXPECT_EQ(model.channel(), 30);
  EXPECT_EQ(model.num_localities(), 3u);

  ml::ConfusionMatrix cm;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto row = feature_row(ds.readings[i].position,
                                 ds.readings[i].rss_dbm,
                                 ds.readings[i].cft_db,
                                 ds.readings[i].aft_db, 3);
    cm.add(model.predict(row), labels[i]);
  }
  EXPECT_LT(cm.error_rate(), 0.05);
}

TEST(ModelConstructor, SingleClassClusterBecomesConstant) {
  auto ds = make_split_dataset(200, 2);
  const std::vector<int> labels(ds.size(), ml::kNotSafe);
  ModelConstructorConfig cfg;
  cfg.num_localities = 2;
  const WhiteSpaceModel model = ModelConstructor(cfg).build(ds, labels);
  EXPECT_EQ(model.num_constant_localities(), model.num_localities());
  const auto row = feature_row(geo::EnuPoint{1.0, 1.0}, -80, -90, -95,
                               cfg.num_features);
  EXPECT_EQ(model.predict(row), ml::kNotSafe);
}

TEST(ModelConstructor, ValidatesInputs) {
  const ModelConstructor constructor;
  campaign::ChannelDataset empty;
  EXPECT_THROW(constructor.build(empty, std::vector<int>{}),
               std::invalid_argument);
  const auto ds = make_split_dataset(10, 3);
  EXPECT_THROW(constructor.build(ds, std::vector<int>(5, ml::kSafe)),
               std::invalid_argument);
}

TEST(WhiteSpaceModel, SerializationRoundTripPreservesPredictions) {
  const auto ds = make_split_dataset(400, 4);
  const auto labels = split_labels(ds);
  for (const char* kind : {"svm", "naive_bayes", "decision_tree"}) {
    ModelConstructorConfig cfg;
    cfg.classifier = kind;
    cfg.num_localities = 3;
    cfg.num_features = 2;
    const WhiteSpaceModel model = ModelConstructor(cfg).build(ds, labels);
    const WhiteSpaceModel back =
        WhiteSpaceModel::deserialize(model.serialize());
    EXPECT_EQ(back.channel(), model.channel());
    EXPECT_EQ(back.num_features(), model.num_features());
    for (std::size_t i = 0; i < ds.size(); i += 7) {
      const auto row = feature_row(ds.readings[i].position,
                                   ds.readings[i].rss_dbm,
                                   ds.readings[i].cft_db,
                                   ds.readings[i].aft_db, 2);
      EXPECT_EQ(back.predict(row), model.predict(row)) << kind;
    }
  }
}

TEST(WhiteSpaceModel, NaiveBayesDescriptorMuchSmallerThanSvm) {
  const auto ds = make_split_dataset(800, 5);
  const auto labels = split_labels(ds);
  ModelConstructorConfig nb_cfg;
  nb_cfg.classifier = "naive_bayes";
  ModelConstructorConfig svm_cfg;
  svm_cfg.classifier = "svm";
  const auto nb = ModelConstructor(nb_cfg).build(ds, labels);
  const auto svm = ModelConstructor(svm_cfg).build(ds, labels);
  EXPECT_LT(nb.descriptor_size_bytes() * 3, svm.descriptor_size_bytes());
}

TEST(WhiteSpaceModel, PredictValidatesRowWidth) {
  const auto ds = make_split_dataset(100, 6);
  const auto labels = split_labels(ds);
  ModelConstructorConfig cfg;
  cfg.num_features = 2;
  const WhiteSpaceModel model = ModelConstructor(cfg).build(ds, labels);
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(WhiteSpaceModel, LogisticRegressionLocalityRoundTrip) {
  const auto ds = make_split_dataset(400, 7);
  const auto labels = split_labels(ds);
  ModelConstructorConfig cfg;
  cfg.classifier = "logistic_regression";
  cfg.num_localities = 3;
  cfg.num_features = 3;
  const WhiteSpaceModel model = ModelConstructor(cfg).build(ds, labels);
  const WhiteSpaceModel back =
      WhiteSpaceModel::deserialize(model.serialize());
  ml::ConfusionMatrix cm;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto row = feature_row(ds.readings[i].position,
                                 ds.readings[i].rss_dbm,
                                 ds.readings[i].cft_db,
                                 ds.readings[i].aft_db, 3);
    EXPECT_EQ(back.predict(row), model.predict(row));
    cm.add(model.predict(row), labels[i]);
  }
  EXPECT_LT(cm.error_rate(), 0.05);
  // The logistic descriptor is the smallest family: per-locality weights.
  EXPECT_LT(model.descriptor_size_bytes(), 2048u);
}

TEST(WhiteSpaceModel, ConstantLabelDetection) {
  const auto ds = make_split_dataset(150, 8);
  ModelConstructorConfig cfg;
  cfg.num_localities = 3;
  // All not-safe: the model collapses to an area-wide constant.
  const WhiteSpaceModel all_not =
      ModelConstructor(cfg).build(ds, std::vector<int>(ds.size(),
                                                       ml::kNotSafe));
  ASSERT_TRUE(all_not.constant_label().has_value());
  EXPECT_EQ(*all_not.constant_label(), ml::kNotSafe);
  // Mixed labels: no constant shortcut.
  const WhiteSpaceModel mixed =
      ModelConstructor(cfg).build(ds, split_labels(ds));
  EXPECT_FALSE(mixed.constant_label().has_value());
}

TEST(ConvergenceFilter, ConvergesOnStableSignal) {
  ConvergenceFilter filter;
  std::mt19937_64 rng(7);
  std::normal_distribution<double> noise(-85.0, 0.1);
  std::size_t count = 0;
  while (!filter.ingest(noise(rng))) ++count;
  EXPECT_TRUE(filter.converged());
  EXPECT_GE(filter.samples_seen(), filter.config().min_samples);
  EXPECT_NEAR(filter.estimate_dbm(), -85.0, 0.2);
  EXPECT_LT(filter.ci_span_db(), filter.config().alpha_db);
}

TEST(ConvergenceFilter, NoisierSignalNeedsMoreSamples) {
  const auto samples_to_converge = [](double sigma, std::uint64_t seed) {
    DetectorConfig cfg;
    cfg.max_samples = 10'000;
    ConvergenceFilter filter(cfg);
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> noise(-85.0, sigma);
    while (!filter.ingest(noise(rng)) && !filter.exhausted()) {
    }
    return filter.samples_seen();
  };
  double quiet = 0.0, noisy = 0.0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    quiet += static_cast<double>(samples_to_converge(0.2, s));
    noisy += static_cast<double>(samples_to_converge(1.5, 100 + s));
  }
  EXPECT_LT(quiet, noisy);
}

TEST(ConvergenceFilter, LargerAlphaConvergesFaster) {
  const auto samples_needed = [](double alpha) {
    DetectorConfig cfg;
    cfg.alpha_db = alpha;
    cfg.max_samples = 10'000;
    ConvergenceFilter filter(cfg);
    std::mt19937_64 rng(9);
    std::normal_distribution<double> noise(-85.0, 1.0);
    while (!filter.ingest(noise(rng))) {
    }
    return filter.samples_seen();
  };
  EXPECT_LE(samples_needed(5.0), samples_needed(0.5));
}

TEST(ConvergenceFilter, OutlierTrimRejectsSpikes) {
  DetectorConfig cfg;
  cfg.max_samples = 1000;
  ConvergenceFilter filter(cfg);
  std::mt19937_64 rng(10);
  std::normal_distribution<double> noise(-90.0, 0.2);
  for (int i = 0; i < 50; ++i) {
    // Every 10th reading is an interference spike.
    filter.ingest(i % 10 == 9 ? -40.0 : noise(rng));
  }
  EXPECT_NEAR(filter.estimate_dbm(), -90.0, 1.5);
}

TEST(ConvergenceFilter, ExhaustionOnDriftingSignal) {
  DetectorConfig cfg;
  cfg.alpha_db = 0.1;
  cfg.max_samples = 60;
  ConvergenceFilter filter(cfg);
  // Mobile device: RSS ramps, CI never settles under the tight alpha.
  for (int i = 0; i < 100 && !filter.converged(); ++i) {
    filter.ingest(-95.0 + 0.4 * i);
    if (filter.exhausted()) break;
  }
  EXPECT_TRUE(filter.exhausted());
  EXPECT_FALSE(filter.converged());
}

TEST(ConvergenceFilter, ResetClearsState) {
  ConvergenceFilter filter;
  for (int i = 0; i < 30; ++i) filter.ingest(-85.0);
  EXPECT_TRUE(filter.converged());
  filter.reset();
  EXPECT_FALSE(filter.converged());
  EXPECT_EQ(filter.samples_seen(), 0u);
  EXPECT_THROW((void)filter.estimate_dbm(), std::logic_error);
}

TEST(ConvergenceFilter, Validation) {
  DetectorConfig bad;
  bad.alpha_db = 0.0;
  EXPECT_THROW(ConvergenceFilter{bad}, std::invalid_argument);
  EXPECT_THROW((void)normal_critical_value(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_critical_value(1.0), std::invalid_argument);
}

TEST(NormalCriticalValue, KnownQuantiles) {
  EXPECT_NEAR(normal_critical_value(0.90), 1.6449, 1e-3);
  EXPECT_NEAR(normal_critical_value(0.95), 1.9600, 1e-3);
  EXPECT_NEAR(normal_critical_value(0.99), 2.5758, 1e-3);
}

class DatabaseFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new rf::Environment(rf::make_metro_environment());
    route_ = new geo::DrivePath(campaign::standard_route(*env_, 700, 13));
    sensors::Sensor usrp(sensors::usrp_b200_spec(), 14);
    usrp.calibrate();
    data_ = new campaign::ChannelDataset(
        campaign::collect_channel(*env_, usrp, 46, route_->readings));
  }
  static void TearDownTestSuite() {
    delete env_;
    delete route_;
    delete data_;
    env_ = nullptr;
    route_ = nullptr;
    data_ = nullptr;
  }

  static ModelConstructorConfig fast_config() {
    ModelConstructorConfig cfg;
    cfg.classifier = "naive_bayes";
    cfg.num_localities = 3;
    cfg.num_features = 2;
    return cfg;
  }

  static rf::Environment* env_;
  static geo::DrivePath* route_;
  static campaign::ChannelDataset* data_;
};

rf::Environment* DatabaseFixture::env_ = nullptr;
geo::DrivePath* DatabaseFixture::route_ = nullptr;
campaign::ChannelDataset* DatabaseFixture::data_ = nullptr;

TEST_F(DatabaseFixture, IngestBuildServeFlow) {
  SpectrumDatabase db(fast_config());
  EXPECT_FALSE(db.has_channel(46));
  db.ingest_campaign(*data_);
  EXPECT_TRUE(db.has_channel(46));
  EXPECT_EQ(db.channels(), std::vector<int>{46});

  const WhiteSpaceModel& model = db.model(46);
  EXPECT_EQ(model.channel(), 46);
  EXPECT_EQ(db.stats().models_built, 1u);
  // Cached: a second request doesn't rebuild.
  (void)db.model(46);
  EXPECT_EQ(db.stats().models_built, 1u);

  const std::string descriptor = db.download_model(46);
  EXPECT_FALSE(descriptor.empty());
  EXPECT_EQ(db.stats().model_downloads, 1u);
  EXPECT_EQ(db.stats().bytes_served, descriptor.size());
  const WhiteSpaceModel client = WhiteSpaceModel::deserialize(descriptor);
  EXPECT_EQ(client.channel(), 46);
}

TEST_F(DatabaseFixture, LabelsMatchStandaloneLabeling) {
  SpectrumDatabase db(fast_config());
  db.ingest_campaign(*data_);
  const auto from_db = db.labels(46);
  const auto direct = campaign::label_readings(data_->positions(),
                                               data_->rss_values());
  EXPECT_EQ(from_db, direct);
}

TEST_F(DatabaseFixture, UnknownChannelThrows) {
  SpectrumDatabase db(fast_config());
  EXPECT_THROW((void)db.dataset(30), std::out_of_range);
  EXPECT_THROW((void)db.model(30), std::out_of_range);
  EXPECT_THROW(db.upload_measurements(30, {}), std::out_of_range);
  EXPECT_THROW(db.ingest_campaign(campaign::ChannelDataset{}),
               std::invalid_argument);
}

TEST_F(DatabaseFixture, UploadsAcceptConsistentRejectImplausible) {
  SpectrumDatabase db(fast_config());
  db.ingest_campaign(*data_);
  const std::size_t before = db.dataset(46).size();

  // Consistent upload: near an existing reading with a similar value.
  campaign::Measurement good;
  good.position = data_->readings[10].position;
  good.position.east_m += 30.0;
  good.rss_dbm = data_->readings[10].rss_dbm + 2.0;

  // Malicious upload: claims a hot incumbent where the neighbourhood reads
  // near the floor.
  campaign::Measurement bad = good;
  bad.rss_dbm = data_->readings[10].rss_dbm + 60.0;

  const std::vector<campaign::Measurement> uploads{good, bad};
  const auto result = db.upload_measurements(46, uploads);
  EXPECT_EQ(result.accepted, 1u);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(db.dataset(46).size(), before + 1);
  EXPECT_EQ(db.stats().uploads_accepted, 1u);
  EXPECT_EQ(db.stats().uploads_rejected, 1u);
}

TEST_F(DatabaseFixture, UnexploredUploadsHeldUntilCorroborated) {
  SpectrumDatabase db(fast_config());
  db.ingest_campaign(*data_);
  campaign::Measurement frontier;
  frontier.position = geo::EnuPoint{-500'000.0, -500'000.0};
  frontier.rss_dbm = -95.0;  // nobody nearby can vouch for this
  // First report: held pending, invisible to models.
  const auto first = db.upload_measurements(
      46, std::vector<campaign::Measurement>{frontier}, "alice");
  EXPECT_EQ(first.accepted, 0u);
  EXPECT_EQ(first.pending, 1u);
  EXPECT_EQ(db.pending_count(46), 1u);
  const std::size_t before = db.dataset(46).size();
  // Same contributor repeating herself does not corroborate.
  const auto again = db.upload_measurements(
      46, std::vector<campaign::Measurement>{frontier}, "alice");
  EXPECT_EQ(again.accepted, 0u);
  EXPECT_EQ(db.dataset(46).size(), before);
  // An agreeing report from a different contributor promotes the cluster.
  campaign::Measurement corroboration = frontier;
  corroboration.position.east_m += 100.0;
  corroboration.rss_dbm = -94.0;
  const auto second = db.upload_measurements(
      46, std::vector<campaign::Measurement>{corroboration}, "bob");
  EXPECT_GE(second.accepted, 2u);  // bob's reading + promoted pendings
  EXPECT_GT(db.dataset(46).size(), before);
}

TEST_F(DatabaseFixture, DisagreeingFrontierReportsStayPending) {
  SpectrumDatabase db(fast_config());
  db.ingest_campaign(*data_);
  campaign::Measurement claim;
  claim.position = geo::EnuPoint{-500'000.0, -500'000.0};
  claim.rss_dbm = -60.0;  // forged occupancy
  (void)db.upload_measurements(
      46, std::vector<campaign::Measurement>{claim}, "mallory");
  campaign::Measurement counter = claim;
  counter.position.east_m += 50.0;
  counter.rss_dbm = -100.0;  // honest: it is silent here
  const auto result = db.upload_measurements(
      46, std::vector<campaign::Measurement>{counter}, "bob");
  // The honest report does not corroborate the forgery (deviation too
  // large), so both remain pending and neither reaches the model.
  EXPECT_EQ(result.accepted, 0u);
  EXPECT_EQ(db.pending_count(46), 2u);
}

TEST_F(DatabaseFixture, RebuildThresholdBatchesRetraining) {
  ModelConstructorConfig mc = fast_config();
  UploadPolicy policy;
  policy.rebuild_threshold = 5;
  SpectrumDatabase db(mc, campaign::LabelingConfig{}, policy);
  db.ingest_campaign(*data_);
  (void)db.model(46);
  EXPECT_EQ(db.stats().models_built, 1u);

  // Three accepted readings: under the threshold, the model stays cached.
  for (int i = 0; i < 3; ++i) {
    campaign::Measurement m = data_->readings[static_cast<std::size_t>(i)];
    m.position.east_m += 20.0 + i;
    (void)db.upload_measurements(46, std::vector<campaign::Measurement>{m});
  }
  EXPECT_EQ(db.staleness(46), 3u);
  (void)db.model(46);
  EXPECT_EQ(db.stats().models_built, 1u);

  // Two more cross the threshold: next model request retrains.
  for (int i = 3; i < 5; ++i) {
    campaign::Measurement m = data_->readings[static_cast<std::size_t>(i)];
    m.position.east_m += 20.0 + i;
    (void)db.upload_measurements(46, std::vector<campaign::Measurement>{m});
  }
  EXPECT_EQ(db.staleness(46), 0u);
  (void)db.model(46);
  EXPECT_EQ(db.stats().models_built, 2u);
}

// Regression: the staleness counter was never reset when a build or a
// campaign ingest folded the accepted readings in, so it over-reported
// forever and every later upload crossed the threshold immediately —
// silently degrading rebuild batching to rebuild-per-upload.
TEST_F(DatabaseFixture, StalenessResetsOnceReadingsAreFoldedIn) {
  ModelConstructorConfig mc = fast_config();
  UploadPolicy policy;
  policy.rebuild_threshold = 5;
  SpectrumDatabase db(mc, campaign::LabelingConfig{}, policy);
  db.ingest_campaign(*data_);

  const auto upload_one = [&](int i) {
    campaign::Measurement m = data_->readings[static_cast<std::size_t>(i)];
    m.position.east_m += 20.0 + i;
    (void)db.upload_measurements(46, std::vector<campaign::Measurement>{m});
  };

  for (int i = 0; i < 3; ++i) upload_one(i);
  EXPECT_EQ(db.staleness(46), 3u);

  // A fresh build folds those three in: nothing is stale any more.
  (void)db.model(46);
  EXPECT_EQ(db.staleness(46), 0u);
  EXPECT_EQ(db.stats().models_built, 1u);

  // Two more accepted readings start the count from zero, not from three —
  // the cached model survives (with the old accounting this would read 5
  // and spuriously invalidate).
  for (int i = 3; i < 5; ++i) upload_one(i);
  EXPECT_EQ(db.staleness(46), 2u);
  (void)db.model(46);
  EXPECT_EQ(db.stats().models_built, 1u);

  // A campaign ingest also folds everything into the next build.
  db.ingest_campaign(*data_);
  EXPECT_EQ(db.staleness(46), 0u);
}

TEST_F(DatabaseFixture, UploadInvalidatesModelCache) {
  SpectrumDatabase db(fast_config());
  db.ingest_campaign(*data_);
  (void)db.model(46);
  EXPECT_EQ(db.stats().models_built, 1u);
  campaign::Measurement m = data_->readings[0];
  m.position.east_m += 25.0;
  (void)db.upload_measurements(46, std::vector<campaign::Measurement>{m});
  (void)db.model(46);
  EXPECT_EQ(db.stats().models_built, 2u);
}

}  // namespace
}  // namespace waldo::core
