// End-to-end bit-identity of the allocation-free spectral hot path: the
// workspace/plan-cache machinery must leave raw readings, features, and
// serialized models byte-for-byte unchanged — at any thread count — and the
// opt-in fast-spectral path must stay within its documented tolerance.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <vector>

#include "waldo/campaign/labeling.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/model.hpp"
#include "waldo/core/model_constructor.hpp"
#include "waldo/dsp/detectors.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/runtime/seed.hpp"
#include "waldo/sensors/sensor.hpp"

namespace waldo {
namespace {

/// FNV-1a over raw bytes — the fingerprint used to compare artifacts that
/// must be byte-identical.
class Fnv1a {
 public:
  void add_bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  void add(double v) { add_bytes(&v, sizeof(v)); }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::uint64_t dataset_fingerprint(const campaign::ChannelDataset& ds) {
  Fnv1a h;
  for (const campaign::Measurement& m : ds.readings) {
    h.add(m.position.east_m);
    h.add(m.position.north_m);
    h.add(m.raw);
    h.add(m.rss_dbm);
    h.add(m.cft_db);
    h.add(m.aft_db);
    h.add(m.true_rss_dbm);
    for (const dsp::cplx& s : m.iq) {
      h.add(s.real());
      h.add(s.imag());
    }
  }
  return h.value();
}

std::uint64_t model_fingerprint(const core::WhiteSpaceModel& model) {
  std::ostringstream out;
  model.save(out);
  const std::string bytes = out.str();
  Fnv1a h;
  h.add_bytes(bytes.data(), bytes.size());
  return h.value();
}

class SpectralPathTest : public ::testing::Test {
 protected:
  static constexpr int kChannel = 30;

  SpectralPathTest() : env_(rf::make_metro_environment()) {
    route_ = campaign::standard_route(env_, 160, 99).readings;
    sensor_ = std::make_unique<sensors::Sensor>(sensors::rtl_sdr_spec(), 42);
    sensor_->calibrate();
  }

  rf::Environment env_;
  std::vector<geo::EnuPoint> route_;
  std::unique_ptr<sensors::Sensor> sensor_;
};

// sense_channel_into with a reused workspace must reproduce the exact bytes
// of the allocating sense_channel across many consecutive readings.
TEST_F(SpectralPathTest, SenseChannelIntoMatchesAllocatingBytes) {
  dsp::CaptureWorkspace ws;
  for (std::uint64_t stream = 0; stream < 32; ++stream) {
    const double power = -70.0 - static_cast<double>(stream % 11);
    const sensors::SensorReading ref = sensor_->sense_channel(power, stream);
    const double raw = sensor_->sense_channel_into(power, stream, ws);
    ASSERT_EQ(raw, ref.raw) << "stream=" << stream;
    ASSERT_EQ(ws.time.size(), ref.iq.size());
    ASSERT_EQ(std::memcmp(ws.time.data(), ref.iq.data(),
                          ref.iq.size() * sizeof(dsp::cplx)),
              0)
        << "stream=" << stream;
  }
}

// The collected dataset — and the model built from it — must fingerprint
// identically at threads=1 and threads=4, with and without keep_iq.
TEST_F(SpectralPathTest, CollectChannelByteIdenticalAcrossThreadCounts) {
  for (const bool keep_iq : {false, true}) {
    campaign::CollectOptions serial{.keep_iq = keep_iq, .threads = 1};
    campaign::CollectOptions fanout{.keep_iq = keep_iq, .threads = 4};
    const auto ds1 =
        campaign::collect_channel(env_, *sensor_, kChannel, route_, serial);
    const auto ds4 =
        campaign::collect_channel(env_, *sensor_, kChannel, route_, fanout);
    EXPECT_EQ(dataset_fingerprint(ds1), dataset_fingerprint(ds4))
        << "keep_iq=" << keep_iq;
  }
}

// Per-reading cross-check against the raw building blocks: the workspace
// pipeline in collect_channel computes exactly central_bin_db /
// central_band_mean_db of exactly sense_channel's capture.
TEST_F(SpectralPathTest, CollectChannelMatchesPerReadingComposition) {
  campaign::CollectOptions opts{.threads = 1};
  const auto ds =
      campaign::collect_channel(env_, *sensor_, kChannel, route_, opts);
  const auto channel_stream = static_cast<std::uint64_t>(kChannel);
  for (std::size_t i = 0; i < route_.size(); i += 7) {
    const double truth = env_.true_rss_dbm(kChannel, route_[i]);
    const sensors::SensorReading ref = sensor_->sense_channel(
        truth, runtime::split_seed(channel_stream, i));
    EXPECT_EQ(ds.readings[i].raw, ref.raw) << "i=" << i;
    EXPECT_EQ(ds.readings[i].cft_db, dsp::central_bin_db(ref.iq)) << "i=" << i;
    EXPECT_EQ(ds.readings[i].aft_db, dsp::central_band_mean_db(ref.iq))
        << "i=" << i;
  }
}

TEST_F(SpectralPathTest, ModelBytesUnchangedByThreadCount) {
  core::ModelConstructorConfig cfg;
  cfg.classifier = "svm";
  cfg.num_features = 4;
  cfg.num_localities = 3;
  cfg.max_train_samples = 120;

  std::uint64_t fingerprints[2] = {};
  unsigned idx = 0;
  for (const unsigned threads : {1u, 4u}) {
    campaign::CollectOptions opts{.threads = threads};
    const auto ds =
        campaign::collect_channel(env_, *sensor_, kChannel, route_, opts);
    core::ModelConstructorConfig threaded = cfg;
    threaded.threads = threads;
    const core::WhiteSpaceModel model =
        core::ModelConstructor(threaded).build_with_labeling(
            ds, campaign::LabelingConfig{});
    fingerprints[idx++] = model_fingerprint(model);
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

// fast_spectral changes no raw reading and moves CFT/AFT by at most the
// documented tolerance.
TEST_F(SpectralPathTest, FastSpectralWithinTolerance) {
  constexpr double kToleranceDb = 1e-6;
  campaign::CollectOptions exact{.threads = 1};
  campaign::CollectOptions fast{.threads = 1, .fast_spectral = true};
  const auto ds_exact =
      campaign::collect_channel(env_, *sensor_, kChannel, route_, exact);
  const auto ds_fast =
      campaign::collect_channel(env_, *sensor_, kChannel, route_, fast);
  ASSERT_EQ(ds_exact.size(), ds_fast.size());
  for (std::size_t i = 0; i < ds_exact.size(); ++i) {
    EXPECT_EQ(ds_fast.readings[i].raw, ds_exact.readings[i].raw) << i;
    EXPECT_EQ(ds_fast.readings[i].rss_dbm, ds_exact.readings[i].rss_dbm) << i;
    EXPECT_NEAR(ds_fast.readings[i].cft_db, ds_exact.readings[i].cft_db,
                kToleranceDb)
        << i;
    EXPECT_NEAR(ds_fast.readings[i].aft_db, ds_exact.readings[i].aft_db,
                kToleranceDb)
        << i;
  }
}

// keep_iq forces the exact path: the capture must be present and the
// features must equal the exact-path features bit for bit.
TEST_F(SpectralPathTest, FastSpectralIgnoredWhenKeepingIq) {
  campaign::CollectOptions opts{
      .keep_iq = true, .threads = 1, .fast_spectral = true};
  campaign::CollectOptions exact{.keep_iq = true, .threads = 1};
  const auto ds =
      campaign::collect_channel(env_, *sensor_, kChannel, route_, opts);
  const auto ref =
      campaign::collect_channel(env_, *sensor_, kChannel, route_, exact);
  EXPECT_EQ(dataset_fingerprint(ds), dataset_fingerprint(ref));
  EXPECT_FALSE(ds.readings.front().iq.empty());
}

}  // namespace
}  // namespace waldo
