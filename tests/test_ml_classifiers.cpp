#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "waldo/ml/decision_tree.hpp"
#include "waldo/ml/kmeans.hpp"
#include "waldo/ml/knn.hpp"
#include "waldo/ml/logistic_regression.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/ml/naive_bayes.hpp"
#include "waldo/ml/standardizer.hpp"
#include "waldo/ml/svm.hpp"

namespace waldo::ml {
namespace {

/// Two Gaussian blobs, linearly separable when `gap` is large.
void make_blobs(std::size_t n, double gap, std::uint64_t seed, Matrix& x,
                std::vector<int>& y) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  x = Matrix(n, 2);
  y.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const bool safe = i % 2 == 0;
    x(i, 0) = g(rng) + (safe ? gap : -gap);
    x(i, 1) = g(rng);
    y[i] = safe ? kSafe : kNotSafe;
  }
}

/// Annulus-vs-core data: not linearly separable, easy for RBF.
void make_disk(std::size_t n, std::uint64_t seed, Matrix& x,
               std::vector<int>& y) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-3.0, 3.0);
  x = Matrix(n, 2);
  y.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    double a = u(rng), b = u(rng);
    // Keep a margin around the circle so the task is clean.
    while (std::abs(a * a + b * b - 2.25) < 0.4) {
      a = u(rng);
      b = u(rng);
    }
    x(i, 0) = a;
    x(i, 1) = b;
    y[i] = (a * a + b * b < 2.25) ? kNotSafe : kSafe;
  }
}

[[nodiscard]] double training_error(const Classifier& clf, const Matrix& x,
                                    std::span<const int> y) {
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < x.rows(); ++i) cm.add(clf.predict(x.row(i)), y[i]);
  return cm.error_rate();
}

TEST(Standardizer, TransformsToZeroMeanUnitVariance) {
  std::mt19937_64 rng(1);
  std::normal_distribution<double> g(50.0, 10.0);
  Matrix x(500, 2);
  for (std::size_t i = 0; i < 500; ++i) {
    x(i, 0) = g(rng);
    x(i, 1) = 1000.0 + 0.1 * g(rng);
  }
  Standardizer s;
  s.fit(x);
  const Matrix t = s.transform(x);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < t.rows(); ++i) mean += t(i, c);
    mean /= 500.0;
    for (std::size_t i = 0; i < t.rows(); ++i) {
      var += (t(i, c) - mean) * (t(i, c) - mean);
    }
    var /= 500.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(Standardizer, ConstantColumnPassesThrough) {
  Matrix x = Matrix::from_rows({{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}});
  Standardizer s;
  s.fit(x);
  const auto row = s.transform(std::vector<double>{2.0, 5.0});
  EXPECT_NEAR(row[1], 0.0, 1e-12);  // centred, unit scale
}

TEST(Standardizer, SaveLoadRoundTrip) {
  Matrix x = Matrix::from_rows({{1.0, 10.0}, {3.0, 30.0}, {5.0, 20.0}});
  Standardizer s;
  s.fit(x);
  std::stringstream ss;
  s.save(ss);
  Standardizer t;
  t.load(ss);
  const std::vector<double> probe{2.0, 25.0};
  EXPECT_EQ(s.transform(probe), t.transform(probe));
}

TEST(Standardizer, ErrorsOnMisuse) {
  Standardizer s;
  EXPECT_THROW(s.transform(std::vector<double>{1.0}), std::logic_error);
  EXPECT_THROW(s.fit(Matrix()), std::invalid_argument);
  Matrix x = Matrix::from_rows({{1.0, 2.0}});
  s.fit(x);
  EXPECT_THROW(s.transform(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(NaiveBayes, SeparatesBlobs) {
  Matrix x;
  std::vector<int> y;
  make_blobs(400, 3.0, 2, x, y);
  GaussianNaiveBayes nb;
  nb.fit(x, y);
  EXPECT_LT(training_error(nb, x, y), 0.02);
}

TEST(NaiveBayes, SingleClassDegeneratesToConstant) {
  Matrix x = Matrix::from_rows({{1.0}, {2.0}, {3.0}});
  const std::vector<int> y(3, kSafe);
  GaussianNaiveBayes nb;
  nb.fit(x, y);
  EXPECT_EQ(nb.predict(std::vector<double>{-100.0}), kSafe);
}

TEST(NaiveBayes, SaveLoadPreservesPredictions) {
  Matrix x;
  std::vector<int> y;
  make_blobs(200, 2.0, 3, x, y);
  GaussianNaiveBayes nb;
  nb.fit(x, y);
  std::stringstream ss;
  nb.save(ss);
  GaussianNaiveBayes nb2;
  nb2.load(ss);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(nb.predict(x.row(i)), nb2.predict(x.row(i)));
  }
  EXPECT_GT(nb.descriptor_size_bytes(), 0u);
}

TEST(NaiveBayes, PriorsShiftDecisions) {
  // 90% not-safe training data: ambiguous points lean not-safe.
  std::mt19937_64 rng(4);
  std::normal_distribution<double> g(0.0, 1.0);
  Matrix x(1000, 1);
  std::vector<int> y(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    const bool safe = i % 10 == 0;
    x(i, 0) = g(rng) + (safe ? 0.5 : -0.5);
    y[i] = safe ? kSafe : kNotSafe;
  }
  GaussianNaiveBayes nb;
  nb.fit(x, y);
  EXPECT_EQ(nb.predict(std::vector<double>{0.0}), kNotSafe);
}

TEST(NaiveBayes, ErrorsOnMisuse) {
  GaussianNaiveBayes nb;
  EXPECT_THROW((void)nb.predict(std::vector<double>{1.0}), std::logic_error);
  Matrix x = Matrix::from_rows({{1.0}});
  EXPECT_THROW(nb.fit(x, std::vector<int>{}), std::invalid_argument);
}

TEST(Svm, RbfSolvesDiskProblem) {
  Matrix x;
  std::vector<int> y;
  make_disk(400, 5, x, y);
  Svm svm;
  svm.fit(x, y);
  EXPECT_LT(training_error(svm, x, y), 0.03);
  EXPECT_GT(svm.num_support_vectors(), 0u);
  EXPECT_LT(svm.num_support_vectors(), x.rows());
}

TEST(Svm, LinearKernelOnBlobs) {
  Matrix x;
  std::vector<int> y;
  make_blobs(300, 2.5, 6, x, y);
  SvmConfig cfg;
  cfg.kernel = SvmKernel::kLinear;
  Svm svm(cfg);
  svm.fit(x, y);
  EXPECT_LT(training_error(svm, x, y), 0.03);
}

TEST(Svm, DecisionValueSignMatchesPrediction) {
  Matrix x;
  std::vector<int> y;
  make_blobs(200, 2.0, 7, x, y);
  Svm svm;
  svm.fit(x, y);
  for (std::size_t i = 0; i < x.rows(); i += 10) {
    const double f = svm.decision_value(x.row(i));
    EXPECT_EQ(svm.predict(x.row(i)), f >= 0.0 ? kSafe : kNotSafe);
  }
}

TEST(Svm, SaveLoadPreservesPredictions) {
  Matrix x;
  std::vector<int> y;
  make_disk(300, 8, x, y);
  Svm svm;
  svm.fit(x, y);
  std::stringstream ss;
  svm.save(ss);
  Svm svm2;
  svm2.load(ss);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(svm.predict(x.row(i)), svm2.predict(x.row(i)));
  }
}

TEST(Svm, SingleClassDegeneratesToConstant) {
  Matrix x = Matrix::from_rows({{0.0, 0.0}, {1.0, 1.0}});
  Svm svm;
  svm.fit(x, std::vector<int>{kNotSafe, kNotSafe});
  EXPECT_EQ(svm.predict(std::vector<double>{5.0, 5.0}), kNotSafe);
  std::stringstream ss;
  svm.save(ss);
  Svm svm2;
  svm2.load(ss);
  EXPECT_EQ(svm2.predict(std::vector<double>{5.0, 5.0}), kNotSafe);
}

TEST(Svm, DescriptorLargerThanNaiveBayes) {
  // The Section 5 model-size tradeoff: SVM descriptors carry support
  // vectors; NB carries only moments.
  Matrix x;
  std::vector<int> y;
  make_disk(600, 9, x, y);
  Svm svm;
  svm.fit(x, y);
  GaussianNaiveBayes nb;
  nb.fit(x, y);
  EXPECT_GT(svm.descriptor_size_bytes(), 4 * nb.descriptor_size_bytes());
}

class SvmSeparationSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvmSeparationSweep, AccuracyImprovesWithSeparation) {
  Matrix x;
  std::vector<int> y;
  make_blobs(400, GetParam(), 11, x, y);
  Svm svm;
  svm.fit(x, y);
  const double err = training_error(svm, x, y);
  // Bayes error of two unit gaussians at distance 2*gap: Q(gap).
  const double bayes = 0.5 * std::erfc(GetParam() / std::sqrt(2.0));
  EXPECT_LT(err, bayes + 0.08);
}

INSTANTIATE_TEST_SUITE_P(Gaps, SvmSeparationSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0));

TEST(DecisionTree, FitsTrainingDataNearPerfectly) {
  // The paper's overfitting observation: trees reach ~zero training error
  // on this kind of data.
  Matrix x;
  std::vector<int> y;
  make_disk(400, 12, x, y);
  DecisionTree tree;
  tree.fit(x, y);
  EXPECT_LT(training_error(tree, x, y), 0.01);
  EXPECT_GT(tree.node_count(), 3u);
}

TEST(DecisionTree, DepthLimitControlsComplexity) {
  Matrix x;
  std::vector<int> y;
  make_disk(400, 13, x, y);
  DecisionTreeConfig shallow;
  shallow.max_depth = 2;
  DecisionTree small(shallow);
  small.fit(x, y);
  DecisionTree big;
  big.fit(x, y);
  EXPECT_LE(small.depth(), 2u);
  EXPECT_LT(small.node_count(), big.node_count());
}

TEST(DecisionTree, SaveLoadPreservesPredictions) {
  Matrix x;
  std::vector<int> y;
  make_blobs(200, 1.0, 14, x, y);
  DecisionTree tree;
  tree.fit(x, y);
  std::stringstream ss;
  tree.save(ss);
  DecisionTree tree2;
  tree2.load(ss);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(tree.predict(x.row(i)), tree2.predict(x.row(i)));
  }
}

TEST(DecisionTree, ErrorsOnMisuse) {
  DecisionTree tree;
  EXPECT_THROW((void)tree.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(Knn, MajorityVoteOnBlobs) {
  Matrix x;
  std::vector<int> y;
  make_blobs(300, 2.0, 15, x, y);
  KnnClassifier knn;
  knn.fit(x, y);
  EXPECT_LT(training_error(knn, x, y), 0.05);
}

TEST(Knn, SaveLoadPreservesPredictions) {
  Matrix x;
  std::vector<int> y;
  make_blobs(100, 1.5, 16, x, y);
  KnnClassifier knn(KnnConfig{.k = 3});
  knn.fit(x, y);
  std::stringstream ss;
  knn.save(ss);
  KnnClassifier knn2;
  knn2.load(ss);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(knn.predict(x.row(i)), knn2.predict(x.row(i)));
  }
}

TEST(Knn, DescriptorScalesWithTrainingSet) {
  Matrix x;
  std::vector<int> y;
  make_blobs(400, 1.5, 17, x, y);
  KnnClassifier knn;
  knn.fit(x, y);
  Matrix x2;
  std::vector<int> y2;
  make_blobs(100, 1.5, 17, x2, y2);
  KnnClassifier knn2;
  knn2.fit(x2, y2);
  EXPECT_GT(knn.descriptor_size_bytes(), 3 * knn2.descriptor_size_bytes());
}

TEST(LogisticRegression, SeparatesBlobs) {
  Matrix x;
  std::vector<int> y;
  make_blobs(400, 2.5, 21, x, y);
  LogisticRegression lr;
  lr.fit(x, y);
  EXPECT_LT(training_error(lr, x, y), 0.02);
}

TEST(LogisticRegression, ProbabilitiesAreCalibratedAndMonotone) {
  // 1-D problem: P(safe | x) must increase with x and straddle 0.5 at the
  // midpoint.
  std::mt19937_64 rng(22);
  std::normal_distribution<double> g(0.0, 1.0);
  Matrix x(2000, 1);
  std::vector<int> y(2000);
  for (std::size_t i = 0; i < 2000; ++i) {
    const bool safe = i % 2 == 0;
    x(i, 0) = g(rng) + (safe ? 1.0 : -1.0);
    y[i] = safe ? kSafe : kNotSafe;
  }
  LogisticRegression lr;
  lr.fit(x, y);
  double prev = 0.0;
  for (double v = -3.0; v <= 3.0; v += 0.5) {
    const double p = lr.probability(std::vector<double>{v});
    EXPECT_GE(p, prev - 1e-9);
    prev = p;
  }
  EXPECT_NEAR(lr.probability(std::vector<double>{0.0}), 0.5, 0.05);
  EXPECT_GT(lr.probability(std::vector<double>{3.0}), 0.9);
  EXPECT_LT(lr.probability(std::vector<double>{-3.0}), 0.1);
}

TEST(LogisticRegression, SaveLoadPreservesPredictions) {
  Matrix x;
  std::vector<int> y;
  make_blobs(300, 1.2, 23, x, y);
  LogisticRegression lr;
  lr.fit(x, y);
  std::stringstream ss;
  lr.save(ss);
  LogisticRegression lr2;
  lr2.load(ss);
  for (std::size_t i = 0; i < x.rows(); i += 5) {
    EXPECT_EQ(lr.predict(x.row(i)), lr2.predict(x.row(i)));
  }
}

TEST(LogisticRegression, SingleClassAndMisuse) {
  Matrix x = Matrix::from_rows({{1.0}, {2.0}});
  LogisticRegression lr;
  lr.fit(x, std::vector<int>{kSafe, kSafe});
  EXPECT_EQ(lr.predict(std::vector<double>{-99.0}), kSafe);
  LogisticRegression untrained;
  EXPECT_THROW((void)untrained.probability(std::vector<double>{1.0}),
               std::logic_error);
  EXPECT_THROW(untrained.fit(Matrix(), std::vector<int>{}),
               std::invalid_argument);
}

TEST(LogisticRegression, SmallestDescriptorOfAllFamilies) {
  Matrix x;
  std::vector<int> y;
  make_disk(500, 24, x, y);
  LogisticRegression lr;
  lr.fit(x, y);
  GaussianNaiveBayes nb;
  nb.fit(x, y);
  EXPECT_LT(lr.descriptor_size_bytes(), nb.descriptor_size_bytes());
}

TEST(KMeans, RecoversWellSeparatedClusters) {
  std::mt19937_64 rng(18);
  std::normal_distribution<double> g(0.0, 0.5);
  const std::vector<std::pair<double, double>> centers{
      {0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  Matrix x(300, 2);
  for (std::size_t i = 0; i < 300; ++i) {
    const auto& c = centers[i % 3];
    x(i, 0) = c.first + g(rng);
    x(i, 1) = c.second + g(rng);
  }
  KMeansConfig cfg;
  cfg.k = 3;
  const KMeansResult result = kmeans(x, cfg);
  ASSERT_EQ(result.centroids.rows(), 3u);
  // Every true center has a centroid within 0.5.
  for (const auto& c : centers) {
    double best = 1e18;
    for (std::size_t j = 0; j < 3; ++j) {
      const double d = std::hypot(result.centroids(j, 0) - c.first,
                                  result.centroids(j, 1) - c.second);
      best = std::min(best, d);
    }
    EXPECT_LT(best, 0.5);
  }
  // Same-cluster points agree with nearest_centroid.
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(result.assignment[i],
              nearest_centroid(result.centroids, x.row(i)));
  }
}

TEST(KMeans, KClampedToSampleCount) {
  Matrix x = Matrix::from_rows({{0.0}, {10.0}});
  KMeansConfig cfg;
  cfg.k = 5;
  const KMeansResult result = kmeans(x, cfg);
  EXPECT_EQ(result.centroids.rows(), 2u);
}

TEST(KMeans, DeterministicPerSeed) {
  std::mt19937_64 rng(19);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  Matrix x(100, 2);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = u(rng);
    x(i, 1) = u(rng);
  }
  KMeansConfig cfg;
  cfg.k = 4;
  const KMeansResult a = kmeans(x, cfg);
  const KMeansResult b = kmeans(x, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  std::mt19937_64 rng(20);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  Matrix x(200, 2);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = u(rng);
    x(i, 1) = u(rng);
  }
  double prev = 1e18;
  for (const std::size_t k : {1u, 3u, 6u}) {
    KMeansConfig cfg;
    cfg.k = k;
    const double inertia = kmeans(x, cfg).inertia;
    EXPECT_LT(inertia, prev);
    prev = inertia;
  }
}

TEST(KMeans, EmptyInputThrows) {
  EXPECT_THROW(kmeans(Matrix(), KMeansConfig{}), std::invalid_argument);
}

}  // namespace
}  // namespace waldo::ml
