#include <gtest/gtest.h>

#include "waldo/device/energy.hpp"

namespace waldo::device {
namespace {

ScanReport make_report(double acquisition_s, double processing_s) {
  ScanReport report;
  ChannelScan scan;
  scan.acquisition_time_s = acquisition_s;
  scan.processing_time_s = processing_s;
  report.channels.push_back(scan);
  report.busy_time_s = acquisition_s + processing_s;
  report.processing_time_s = processing_s;
  return report;
}

TEST(Energy, ScanEnergyIsPowerTimesTime) {
  EnergyModel model;
  model.sdr_active_w = 2.0;
  model.cpu_active_w = 3.0;
  const ScanReport report = make_report(1.5, 0.5);
  EXPECT_DOUBLE_EQ(scan_energy_j(report, model), 1.5 * 2.0 + 0.5 * 3.0);
}

TEST(Energy, EmptyScanCostsNothing) {
  EXPECT_DOUBLE_EQ(scan_energy_j(ScanReport{}, EnergyModel{}), 0.0);
}

TEST(Energy, TransferDominatedByRadioWakeup) {
  EnergyModel model;
  model.radio_wakeup_j = 6.0;
  model.radio_j_per_kb = 0.1;
  // A small query: the wakeup dwarfs the payload.
  const double small = transfer_energy_j(1024, model);
  EXPECT_NEAR(small, 6.1, 1e-9);
  // Payload scales linearly.
  EXPECT_NEAR(transfer_energy_j(10 * 1024, model) - small, 0.9, 1e-9);
}

TEST(Energy, WaldoAmortisesTheDownload) {
  EnergyModel model;
  const ScanReport cycle = make_report(0.3, 0.05);
  const double one = waldo_daily_energy_j(40'000, cycle, 1, model);
  const double many = waldo_daily_energy_j(40'000, cycle, 1000, model);
  // Scans scale linearly; the download is a one-off.
  EXPECT_NEAR(many - one, 999.0 * scan_energy_j(cycle, model), 1e-6);
}

TEST(Energy, PerMinuteQueriesCostMoreThanLocalScans) {
  // The ablation's headline, pinned as an invariant of the default model:
  // an LTE round trip per minute costs more than a short local scan.
  EnergyModel model;
  const ScanReport cycle = make_report(0.4, 0.06);
  const double waldo =
      waldo_daily_energy_j(40'000, cycle, 24 * 60, model);
  const double database = database_daily_energy_j(2048, 24 * 60, model);
  EXPECT_LT(waldo, database);
}

TEST(Energy, DatabaseCostLinearInQueries) {
  EnergyModel model;
  EXPECT_DOUBLE_EQ(database_daily_energy_j(2048, 0, model), 0.0);
  EXPECT_DOUBLE_EQ(database_daily_energy_j(2048, 10, model),
                   10.0 * transfer_energy_j(2048, model));
}

}  // namespace
}  // namespace waldo::device
