#include <gtest/gtest.h>

#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/protocol.hpp"
#include "waldo/core/security.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/rf/environment.hpp"

namespace waldo::core {
namespace {

class SecurityFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new rf::Environment(rf::make_metro_environment());
    route_ = new geo::DrivePath(campaign::standard_route(*env_, 2500, 61));
    sensors::Sensor usrp(sensors::usrp_b200_spec(), 62);
    usrp.calibrate();
    data_ = new campaign::ChannelDataset(
        campaign::collect_channel(*env_, usrp, 46, route_->readings));
  }
  static void TearDownTestSuite() {
    delete env_;
    delete route_;
    delete data_;
    env_ = nullptr;
    route_ = nullptr;
    data_ = nullptr;
  }

  static SpectrumDatabase make_db() {
    ModelConstructorConfig mc;
    mc.classifier = "naive_bayes";
    mc.num_features = 2;
    SpectrumDatabase db(mc);
    db.ingest_campaign(*data_);
    return db;
  }

  /// A forged-occupancy batch inside the campaign's covered area.
  static std::vector<campaign::Measurement> covered_area_forgery(
      std::uint64_t seed) {
    AttackConfig attack;
    attack.type = AttackType::kFalseOccupancy;
    // Centre of the drive area: densely covered by trusted readings.
    attack.target_area = geo::BoundingBox{12'000.0, 12'000.0, 15'000.0,
                                          15'000.0};
    attack.forged_rss_dbm = -60.0;
    attack.num_reports = 40;
    attack.seed = seed;
    return forge_uploads(attack);
  }

  static rf::Environment* env_;
  static geo::DrivePath* route_;
  static campaign::ChannelDataset* data_;
};

rf::Environment* SecurityFixture::env_ = nullptr;
geo::DrivePath* SecurityFixture::route_ = nullptr;
campaign::ChannelDataset* SecurityFixture::data_ = nullptr;

TEST(ForgeUploads, GeneratesPlausibleBatchInTargetArea) {
  AttackConfig cfg;
  cfg.target_area = geo::BoundingBox{0.0, 0.0, 1000.0, 1000.0};
  cfg.forged_rss_dbm = -75.0;
  cfg.num_reports = 30;
  const auto batch = forge_uploads(cfg);
  ASSERT_EQ(batch.size(), 30u);
  for (const campaign::Measurement& m : batch) {
    EXPECT_TRUE(cfg.target_area.contains(m.position));
    EXPECT_NEAR(m.rss_dbm, -75.0, 3.0);
    // Forged spectral features are internally consistent with the claim.
    EXPECT_LT(m.cft_db, m.rss_dbm);
  }
  cfg.target_area = geo::BoundingBox{0.0, 0.0, 0.0, 1000.0};
  EXPECT_THROW(forge_uploads(cfg), std::invalid_argument);
}

TEST_F(SecurityFixture, CorrelationCheckRejectsCoveredAreaForgery) {
  SpectrumDatabase db = make_db();
  const auto result =
      db.upload_measurements(46, covered_area_forgery(1), "mallory");
  // The campaign saw near-floor power there; a -60 dBm claim is implausible
  // wherever trusted readings can vouch, and unvouched spots are only held
  // pending — nothing reaches the model either way.
  EXPECT_EQ(result.accepted, 0u);
  EXPECT_GT(result.rejected, 10u);
  EXPECT_EQ(result.rejected + result.pending, 40u);
}

TEST_F(SecurityFixture, ReputationQuarantinesRepeatOffender) {
  SpectrumDatabase db = make_db();
  SecureUpdater updater;
  bool quarantined = false;
  for (std::uint64_t wave = 0; wave < 5 && !quarantined; ++wave) {
    (void)updater.submit(db, 46, "mallory", covered_area_forgery(wave));
    quarantined = updater.is_quarantined("mallory");
  }
  EXPECT_TRUE(quarantined);
  // Once quarantined, batches are dropped without touching the database.
  const std::size_t before = db.stats().uploads_rejected;
  const auto result =
      updater.submit(db, 46, "mallory", covered_area_forgery(99));
  EXPECT_TRUE(result.quarantined);
  EXPECT_EQ(db.stats().uploads_rejected, before);
}

// Regression: quarantine used to drop only *future* batches. Readings the
// attacker had already parked in the pending pool survived, so an
// accomplice identity could corroborate them post-quarantine and promote
// the stash into the trusted dataset. Quarantine must purge the pool.
TEST_F(SecurityFixture, QuarantinePurgesPendingStash) {
  SpectrumDatabase db = make_db();
  SecureUpdater updater;

  // Mallory parks a stash far outside campaign coverage: nothing can vouch
  // there, so every reading is held pending. The area is small enough
  // (300 m square) that any later report inside it corroborates.
  AttackConfig stash;
  stash.type = AttackType::kFalseOccupancy;
  stash.target_area =
      geo::BoundingBox{100'000.0, 100'000.0, 100'300.0, 100'300.0};
  stash.forged_rss_dbm = -60.0;
  stash.num_reports = 20;
  stash.seed = 7;
  const auto park = updater.submit(db, 46, "mallory", forge_uploads(stash));
  EXPECT_EQ(park.accepted, 0u);
  EXPECT_EQ(park.pending, 20u);
  EXPECT_EQ(db.pending_count(46), 20u);
  const std::size_t trusted_before = db.dataset(46).size();

  // Covered-area forgeries trip the quarantine; the tripping batch must
  // also purge everything mallory left pending.
  std::size_t purged = 0;
  for (std::uint64_t wave = 0; wave < 5 && purged == 0; ++wave) {
    purged = updater.submit(db, 46, "mallory", covered_area_forgery(wave))
                 .purged_pending;
  }
  EXPECT_TRUE(updater.is_quarantined("mallory"));
  EXPECT_GE(purged, 20u);
  EXPECT_EQ(db.pending_count(46), 0u);

  // The accomplice arrives after the quarantine: with mallory's stash gone
  // there is nothing to corroborate, so the sybil's echo of the same area
  // is merely parked — the trusted dataset is untouched.
  stash.seed = 8;
  const auto echo = updater.submit(db, 46, "sybil2", forge_uploads(stash));
  EXPECT_EQ(echo.accepted, 0u);
  EXPECT_EQ(echo.pending, 20u);
  EXPECT_EQ(db.dataset(46).size(), trusted_before);
}

TEST_F(SecurityFixture, HonestContributorGainsReputation) {
  SpectrumDatabase db = make_db();
  SecureUpdater updater;
  // Honest uploads: real readings displaced slightly off the drive path.
  std::vector<campaign::Measurement> honest(data_->readings.begin(),
                                            data_->readings.begin() + 80);
  for (auto& m : honest) m.position.north_m += 40.0;
  const auto result = updater.submit(db, 46, "alice", honest);
  EXPECT_GT(result.accepted, 70u);
  EXPECT_FALSE(updater.is_quarantined("alice"));
  EXPECT_GT(updater.record("alice").reputation,
            updater.policy().initial_reputation);
}

TEST_F(SecurityFixture, FalseVacancyCannotOpenPoisonedArea) {
  // Structural property: Algorithm 1 labels a location not-safe if ANY
  // nearby reading is hot; adding forged low readings can never flip a
  // not-safe label back to safe.
  SpectrumDatabase db = make_db();
  const std::vector<int> before = db.labels(46);

  AttackConfig attack;
  attack.type = AttackType::kFalseVacancy;
  attack.target_area = geo::BoundingBox{12'000.0, 20'000.0, 16'000.0,
                                        24'000.0};  // occupied north
  attack.forged_rss_dbm = -86.5;  // matches the RTL floor: passes checks
  attack.num_reports = 60;
  (void)db.upload_measurements(46, forge_uploads(attack), "mallory");

  const std::vector<int> after = db.labels(46);
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] == ml::kNotSafe) EXPECT_EQ(after[i], ml::kNotSafe);
  }
}

TEST_F(SecurityFixture, ReputationComposesWithTheWireProtocol) {
  // Full online-phase stack: forged uploads arrive over WSNP, the
  // database's checks reject them, and the SecureUpdater can meanwhile
  // quarantine the identity for direct submissions.
  SpectrumDatabase db = make_db();
  ProtocolServer server(db);
  ProtocolClient client(
      [&server](const std::string& wire) { return server.handle(wire); });
  const auto wire_result =
      client.upload(46, "mallory", covered_area_forgery(3));
  EXPECT_EQ(wire_result.accepted, 0u);
  EXPECT_GT(wire_result.rejected, 0u);
  // Nothing forged reached the model path.
  EXPECT_EQ(db.stats().uploads_accepted, 0u);
}

TEST_F(SecurityFixture, RecordLookupValidates) {
  SecureUpdater updater;
  EXPECT_THROW((void)updater.record("nobody"), std::out_of_range);
  EXPECT_FALSE(updater.is_quarantined("nobody"));
  EXPECT_EQ(updater.num_contributors(), 0u);
}

}  // namespace
}  // namespace waldo::core
