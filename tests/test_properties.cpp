// Cross-module property tests: invariants that must hold for ANY input in
// a family, swept with parameterized gtest. Where unit suites pin specific
// behaviours, these pin the algebra the system's safety argument rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "waldo/campaign/labeling.hpp"
#include "waldo/campaign/truth.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/database.hpp"
#include "waldo/core/detector.hpp"
#include "waldo/core/protocol.hpp"
#include "waldo/device/energy.hpp"
#include "waldo/dsp/detectors.hpp"
#include "waldo/ml/cross_validation.hpp"
#include "waldo/ml/naive_bayes.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/rf/units.hpp"
#include "waldo/sensors/sensor.hpp"

namespace waldo {
namespace {

// ------------------------------------------------------------- labeling

class LabelingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LabelingProperty, PermutationInvariant) {
  // Algorithm 1 is a property of the reading SET: reordering readings must
  // not change any position's label.
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> coord(0.0, 20'000.0);
  std::uniform_real_distribution<double> power(-100.0, -75.0);
  const std::size_t n = 250;
  std::vector<geo::EnuPoint> pos(n);
  std::vector<double> rss(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = geo::EnuPoint{coord(rng), coord(rng)};
    rss[i] = power(rng);
  }
  const auto base = campaign::label_readings(pos, rss);

  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<geo::EnuPoint> pos2(n);
  std::vector<double> rss2(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos2[i] = pos[perm[i]];
    rss2[i] = rss[perm[i]];
  }
  const auto shuffled = campaign::label_readings(pos2, rss2);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(shuffled[i], base[perm[i]]);
  }
}

TEST_P(LabelingProperty, AddingWeakReadingsNeverFlipsExistingLabels) {
  // Safety monotonicity: extra readings below the threshold cannot convert
  // any existing not-safe label to safe, nor any safe label to not-safe.
  std::mt19937_64 rng(GetParam() + 100);
  std::uniform_real_distribution<double> coord(0.0, 15'000.0);
  std::uniform_real_distribution<double> power(-100.0, -80.0);
  std::vector<geo::EnuPoint> pos(150);
  std::vector<double> rss(150);
  for (std::size_t i = 0; i < 150; ++i) {
    pos[i] = geo::EnuPoint{coord(rng), coord(rng)};
    rss[i] = power(rng);
  }
  const auto base = campaign::label_readings(pos, rss);

  auto pos_ext = pos;
  auto rss_ext = rss;
  for (int i = 0; i < 50; ++i) {
    pos_ext.push_back(geo::EnuPoint{coord(rng), coord(rng)});
    rss_ext.push_back(-120.0);  // far below any threshold
  }
  const auto extended = campaign::label_readings(pos_ext, rss_ext);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(extended[i], base[i]);
  }
}

TEST_P(LabelingProperty, HotReadingPoisonsExactlyItsDisk) {
  // One hot reading among silence: everything within the separation radius
  // is not-safe, everything beyond is safe.
  std::mt19937_64 rng(GetParam() + 200);
  std::uniform_real_distribution<double> coord(-15'000.0, 15'000.0);
  std::vector<geo::EnuPoint> pos{geo::EnuPoint{0.0, 0.0}};
  std::vector<double> rss{-60.0};
  for (int i = 0; i < 200; ++i) {
    pos.push_back(geo::EnuPoint{coord(rng), coord(rng)});
    rss.push_back(-110.0);
  }
  const auto labels = campaign::label_readings(pos, rss);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const double d = geo::distance_m(pos[i], pos[0]);
    if (d <= rf::kSeparationDistanceM) {
      EXPECT_EQ(labels[i], ml::kNotSafe) << "at distance " << d;
    } else {
      EXPECT_EQ(labels[i], ml::kSafe) << "at distance " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelingProperty,
                         ::testing::Values(1, 7, 42, 1001));

// ----------------------------------------------------------------- truth

class TruthSeparationSweep : public ::testing::TestWithParam<double> {};

TEST_P(TruthSeparationSweep, SafeAreaShrinksWithSeparation) {
  static const rf::Environment env = rf::make_metro_environment();
  campaign::LabelingConfig narrow;
  narrow.separation_m = GetParam();
  campaign::LabelingConfig wide;
  wide.separation_m = GetParam() + 2000.0;
  const campaign::GroundTruthLabeler a(env, 46, narrow, 500.0);
  const campaign::GroundTruthLabeler b(env, 46, wide, 500.0);
  EXPECT_GE(a.safe_area_fraction(), b.safe_area_fraction());
}

INSTANTIATE_TEST_SUITE_P(Radii, TruthSeparationSweep,
                         ::testing::Values(1700.0, 4000.0, 6000.0));

// --------------------------------------------------------------- sensors

class SensorSpecSweep
    : public ::testing::TestWithParam<sensors::SensorSpec> {};

TEST_P(SensorSpecSweep, CalibratedReadbackLinearAboveFloor) {
  sensors::Sensor sensor(GetParam(), 9);
  if (!sensor.calibration().has_value()) sensor.calibrate();
  // Well above the device floor (pilot 20+ dB clear of it), the calibrated
  // channel estimate tracks truth within the +0.7 dB design margin and
  // jitter; closer to the floor, compounding biases readings high by
  // design (tested in test_sensors).
  for (double level = GetParam().pilot_floor_dbm + 32.0; level <= -40.0;
       level += 10.0) {
    double acc = 0.0;
    constexpr int kReps = 120;
    for (int i = 0; i < kReps; ++i) {
      acc += sensor.calibrated_rss_dbm(sensor.sense_channel(level).raw);
    }
    EXPECT_NEAR(acc / kReps, level + 0.7, 0.8)
        << GetParam().name << " at " << level;
  }
}

TEST_P(SensorSpecSweep, ReadingsMonotoneInTruePower) {
  sensors::Sensor sensor(GetParam(), 10);
  const auto mean_raw = [&](double level) {
    double acc = 0.0;
    for (int i = 0; i < 150; ++i) acc += sensor.measure_wired_raw(level);
    return acc / 150.0;
  };
  double prev = mean_raw(GetParam().pilot_floor_dbm + 5.0);
  for (double level = GetParam().pilot_floor_dbm + 12.0; level <= -40.0;
       level += 8.0) {
    const double cur = mean_raw(level);
    EXPECT_GT(cur, prev) << GetParam().name << " at " << level;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, SensorSpecSweep,
    ::testing::Values(sensors::rtl_sdr_spec(), sensors::usrp_b200_spec(),
                      sensors::spectrum_analyzer_spec()),
    [](const ::testing::TestParamInfo<sensors::SensorSpec>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ------------------------------------------------------------------- dsp

TEST(DspProperty, PowerSpectrumInvariantToTimeShift) {
  // Circular time shift changes only phases; per-bin power is preserved.
  std::mt19937_64 rng(11);
  const auto capture =
      dsp::synthesize_capture(dsp::CaptureConfig{}, -70.0, -95.0, rng);
  std::vector<dsp::cplx> shifted(capture.size());
  constexpr std::size_t kShift = 37;
  for (std::size_t i = 0; i < capture.size(); ++i) {
    shifted[i] = capture[(i + kShift) % capture.size()];
  }
  const auto ps_a = dsp::power_spectrum_shifted(capture);
  const auto ps_b = dsp::power_spectrum_shifted(shifted);
  for (std::size_t k = 0; k < ps_a.size(); ++k) {
    EXPECT_NEAR(ps_a[k], ps_b[k], 1e-12 + 1e-9 * ps_a[k]);
  }
}

TEST(DspProperty, StrongerChannelRaisesEveryDetector) {
  std::mt19937_64 rng(12);
  const dsp::CaptureConfig cfg;
  double e_lo = 0.0, e_hi = 0.0, p_lo = 0.0, p_hi = 0.0;
  constexpr int kReps = 150;
  for (int i = 0; i < kReps; ++i) {
    const auto weak = dsp::synthesize_capture(cfg, -75.0, -100.0, rng);
    const auto strong = dsp::synthesize_capture(cfg, -65.0, -100.0, rng);
    e_lo += dsp::energy_detector_dbm(weak);
    e_hi += dsp::energy_detector_dbm(strong);
    p_lo += dsp::pilot_detector_dbm(weak);
    p_hi += dsp::pilot_detector_dbm(strong);
  }
  // +10 dB of channel power: the pilot statistic follows nearly 1:1, the
  // full-band statistic follows with the out-of-band dilution.
  EXPECT_NEAR((p_hi - p_lo) / kReps, 10.0, 1.0);
  EXPECT_GT((e_hi - e_lo) / kReps, 6.0);
}

// ----------------------------------------------------------- environment

TEST(EnvironmentProperty, CoChannelPowersSuperpose) {
  rf::EnvironmentConfig cfg;
  cfg.obstacle_count = 0;
  cfg.shadowing_sigma_db = 0.01;
  const rf::Transmitter tx_a{.location = geo::EnuPoint{5000.0, 13'000.0},
                             .channel = 30,
                             .erp_dbm = 60.0,
                             .height_m = 60.0};
  rf::Transmitter tx_b = tx_a;
  tx_b.location = geo::EnuPoint{21'000.0, 13'000.0};

  const rf::Environment only_a(cfg, {tx_a});
  const rf::Environment only_b(cfg, {tx_b});
  const rf::Environment both(cfg, {tx_a, tx_b});
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> coord(0.0, 26'500.0);
  for (int i = 0; i < 40; ++i) {
    const geo::EnuPoint p{coord(rng), coord(rng)};
    const double a = only_a.true_rss_dbm(30, p);
    const double b = only_b.true_rss_dbm(30, p);
    const double sum = both.true_rss_dbm(30, p);
    EXPECT_GE(sum + 1e-6, std::max(a, b));
    EXPECT_NEAR(sum, rf::add_dbm(a, b), 0.2);
  }
}

TEST(EnvironmentProperty, ObstaclesOnlyEverAttenuate) {
  const rf::Environment with = rf::make_metro_environment();
  rf::EnvironmentConfig cfg;
  cfg.obstacle_count = 0;
  const rf::Environment without(cfg, with.transmitters());
  std::mt19937_64 rng(14);
  std::uniform_real_distribution<double> coord(0.0, 26'500.0);
  for (int i = 0; i < 60; ++i) {
    const geo::EnuPoint p{coord(rng), coord(rng)};
    // Same seeds -> same shadowing; obstacles can only subtract.
    EXPECT_LE(with.true_rss_dbm(46, p), without.true_rss_dbm(46, p) + 1e-9);
  }
}

// -------------------------------------------------------------- detector

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, ConvergedEstimateIsUnbiased) {
  core::DetectorConfig cfg;
  cfg.alpha_db = GetParam();
  cfg.max_samples = 100'000;
  core::ConvergenceFilter filter(cfg);
  std::mt19937_64 rng(15);
  std::normal_distribution<double> noise(-88.0, 1.0);
  while (!filter.ingest(noise(rng))) {
  }
  // Whatever alpha demanded, the trimmed-mean estimate lands near truth.
  EXPECT_NEAR(filter.estimate_dbm(), -88.0, std::max(1.0, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 5.0));

// -------------------------------------------------------------- protocol

TEST(ProtocolProperty, DecodeNeverCrashesOnMutations) {
  // Fuzz-lite: random mutations of a valid wire string either parse or
  // throw — never crash, never loop.
  const std::string valid = core::encode(core::ModelRequest{
      .channel = 46, .location = geo::EnuPoint{1.0, 2.0}});
  std::mt19937_64 rng(16);
  std::uniform_int_distribution<std::size_t> pick_pos(0, valid.size() - 1);
  std::uniform_int_distribution<int> pick_char(0, 255);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = valid;
    const int edits = 1 + trial % 5;
    for (int e = 0; e < edits; ++e) {
      mutated[pick_pos(rng)] = static_cast<char>(pick_char(rng));
    }
    try {
      (void)core::decode(mutated);
    } catch (const std::exception&) {
      // expected for most mutations
    }
  }
  SUCCEED();
}

TEST(ProtocolProperty, EncodeDecodeIsIdentityOnRandomUploads) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> coord(-1e5, 1e5);
  std::uniform_real_distribution<double> level(-120.0, -40.0);
  for (int trial = 0; trial < 20; ++trial) {
    core::UploadRequest request;
    request.channel = 14 + trial;
    request.contributor = "device-" + std::to_string(trial);
    const std::size_t count = 1 + static_cast<std::size_t>(trial) * 3;
    for (std::size_t i = 0; i < count; ++i) {
      campaign::Measurement m;
      m.position = geo::EnuPoint{coord(rng), coord(rng)};
      m.rss_dbm = level(rng);
      m.cft_db = level(rng);
      m.aft_db = level(rng);
      m.raw = level(rng);
      request.readings.push_back(m);
    }
    const core::Message decoded = core::decode(core::encode(request));
    const auto* r = std::get_if<core::UploadRequest>(&decoded);
    ASSERT_NE(r, nullptr);
    ASSERT_EQ(r->readings.size(), request.readings.size());
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_DOUBLE_EQ(r->readings[i].rss_dbm, request.readings[i].rss_dbm);
      EXPECT_DOUBLE_EQ(r->readings[i].position.east_m,
                       request.readings[i].position.east_m);
    }
  }
}

// ------------------------------------------------------------------ misc

class TrainingCapSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TrainingCapSweep, CapNeverChangesTestCoverage) {
  std::mt19937_64 rng(18);
  std::normal_distribution<double> g(0.0, 1.0);
  ml::Matrix x(240, 2);
  std::vector<int> y(240);
  for (std::size_t i = 0; i < 240; ++i) {
    const bool safe = i % 2 == 0;
    x(i, 0) = g(rng) + (safe ? 1.5 : -1.5);
    x(i, 1) = g(rng);
    y[i] = safe ? ml::kSafe : ml::kNotSafe;
  }
  ml::CrossValidationConfig cfg;
  cfg.max_train_samples = GetParam();
  const auto result = ml::cross_validate(
      x, y, [] { return std::make_unique<ml::GaussianNaiveBayes>(); }, cfg);
  EXPECT_EQ(result.overall.total(), 240u);
}

INSTANTIATE_TEST_SUITE_P(Caps, TrainingCapSweep,
                         ::testing::Values(10, 50, 200, 0));

TEST(EnergyProperty, CostsScaleLinearly) {
  const device::EnergyModel model;
  device::ScanReport unit;
  device::ChannelScan scan;
  scan.acquisition_time_s = 0.2;
  scan.processing_time_s = 0.05;
  unit.channels.push_back(scan);
  unit.processing_time_s = 0.05;

  device::ScanReport triple;
  for (int i = 0; i < 3; ++i) triple.channels.push_back(scan);
  triple.processing_time_s = 0.15;
  EXPECT_NEAR(device::scan_energy_j(triple, model),
              3.0 * device::scan_energy_j(unit, model), 1e-9);
  EXPECT_NEAR(device::transfer_energy_j(4096, model) -
                  device::transfer_energy_j(2048, model),
              2.0 * model.radio_j_per_kb, 1e-9);
}

}  // namespace
}  // namespace waldo
