// The cluster-tier contract (docs/CLUSTER.md): an N-node, R-replica
// cluster built from tile-scoped SpectrumServices converges — under
// concurrent client traffic, message drops/duplicates/delays, and
// node kill/recovery — to the exact bytes a single-threaded serial
// replay of the same upload stream produces. These tests (the fault and
// determinism suites run under TSan in CI) enforce that, plus the
// placement, wire-codec and router retry/failover behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "waldo/campaign/dataset_io.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/cluster/cluster.hpp"
#include "waldo/cluster/router.hpp"
#include "waldo/cluster/wire.hpp"
#include "waldo/core/protocol.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/runtime/seed.hpp"
#include "waldo/sensors/sensor.hpp"
#include "waldo/service/service.hpp"

namespace waldo::cluster {
namespace {

constexpr int kChannelA = 15;
constexpr int kChannelB = 46;

// ---------------------------------------------------------------- tiling

TEST(Tiling, FloorDivisionPlacesPointsAndCentersRoundTrip) {
  const Tiling tiling(1000.0);
  EXPECT_EQ(tiling.tile_of({0.0, 0.0}), (TileKey{0, 0}));
  EXPECT_EQ(tiling.tile_of({999.9, 1.0}), (TileKey{0, 0}));
  EXPECT_EQ(tiling.tile_of({1000.0, 0.0}), (TileKey{1, 0}));
  EXPECT_EQ(tiling.tile_of({-0.5, -1500.0}), (TileKey{-1, -2}));
  const TileKey t{3, -7};
  EXPECT_EQ(tiling.tile_of(tiling.center(t)), t);
}

TEST(Tiling, RejectsNonPositiveTileSize) {
  EXPECT_THROW(Tiling(0.0), std::invalid_argument);
  EXPECT_THROW(Tiling(-5.0), std::invalid_argument);
}

TEST(Rendezvous, OrderIsADeterministicPermutation) {
  const TileKey tile{12, -34};
  const std::vector<NodeId> order = rendezvous_order(tile, 7);
  ASSERT_EQ(order.size(), 7u);
  std::set<NodeId> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 7u);  // a permutation of 0..6
  EXPECT_EQ(rendezvous_order(tile, 7), order);  // pure function
  // The replica set is the order's prefix, truncated to the node count.
  EXPECT_EQ(replica_set(tile, 7, 3),
            std::vector<NodeId>(order.begin(), order.begin() + 3));
  EXPECT_EQ(replica_set(tile, 7, 99).size(), 7u);
}

TEST(Rendezvous, GrowingTheClusterMovesOnlyAMinorityOfTiles) {
  int moved = 0;
  const int kTiles = 400;
  for (int i = 0; i < kTiles; ++i) {
    const TileKey tile{i % 20, i / 20};
    if (replica_set(tile, 4, 1) != replica_set(tile, 5, 1)) ++moved;
  }
  // HRW moves ~1/5 of singleton placements when a fifth node joins; a
  // ring-less modulo scheme would move ~4/5. Allow generous slack.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kTiles / 2);
}

TEST(Rendezvous, EveryNodeOwnsSomeTiles) {
  std::map<NodeId, int> owned;
  for (int i = 0; i < 64; ++i) {
    owned[replica_set(TileKey{i % 8, i / 8}, 4, 1)[0]]++;
  }
  ASSERT_EQ(owned.size(), 4u);
  for (const auto& [node, count] : owned) EXPECT_GT(count, 0);
}

// ------------------------------------------------------------ wire codec

TEST(ClusterWire, EnvelopeRoundTripsArbitraryBytes) {
  const Envelope e{.verb = "repl",
                   .from = 3,
                   .tile = TileKey{-5, 17},
                   .body = std::string("bin\0\n\xff data", 11)};
  const Envelope d = decode_envelope(encode_envelope(e));
  EXPECT_EQ(d.verb, "repl");
  EXPECT_EQ(d.from, 3u);
  EXPECT_EQ(d.tile, e.tile);
  EXPECT_EQ(d.body, e.body);
}

TEST(ClusterWire, RejectsMalformedEnvelopes) {
  EXPECT_THROW((void)decode_envelope("not clstr"), std::runtime_error);
  EXPECT_THROW((void)decode_envelope("CLSTR/1 wsnp 0 0 0"),
               std::runtime_error);  // no body newline
  // Declared length larger than the actual body.
  EXPECT_THROW((void)decode_envelope("CLSTR/1 wsnp 0 0 0 99\nshort"),
               std::runtime_error);
  // Trailing bytes beyond the declared length.
  const std::string valid = encode_envelope(
      {.verb = "ok", .from = 1, .tile = {}, .body = "abc"});
  EXPECT_THROW((void)decode_envelope(valid + "x"), std::runtime_error);
  // Non-numeric node id.
  EXPECT_THROW((void)decode_envelope("CLSTR/1 ok zz 0 0 0\n"),
               std::runtime_error);
}

TEST(ClusterWire, ReplEntryAndSnapshotRoundTrip) {
  ReplEntry entry{.channel = 46,
                  .ticket = 12,
                  .request_id = 0xDEADBEEFu,
                  .upload_wire = "WSNP/1 upload_request 0\n"};
  const ReplEntry decoded = decode_repl_entry(encode_repl_entry(entry));
  EXPECT_EQ(decoded.channel, 46);
  EXPECT_EQ(decoded.ticket, 12u);
  EXPECT_EQ(decoded.request_id, 0xDEADBEEFu);
  EXPECT_EQ(decoded.upload_wire, entry.upload_wire);

  TileSnapshot snapshot;
  snapshot.campaign_csvs = {"csv,one\n", "csv,two\n"};
  snapshot.log = {entry, entry};
  const TileSnapshot back =
      decode_tile_snapshot(encode_tile_snapshot(snapshot));
  EXPECT_EQ(back.campaign_csvs, snapshot.campaign_csvs);
  ASSERT_EQ(back.log.size(), 2u);
  EXPECT_EQ(back.log[1].upload_wire, entry.upload_wire);
  EXPECT_THROW(
      (void)decode_tile_snapshot(encode_tile_snapshot(snapshot) + "junk"),
      std::runtime_error);
}

TEST(FaultInjector, ScheduleIsAPureFunctionOfSeed) {
  const FaultPlan plan{.drop_request = 0.3,
                       .drop_response = 0.2,
                       .duplicate_request = 0.2,
                       .delay = 0.5,
                       .max_delay_us = 50,
                       .seed = 99};
  FaultInjector a(plan);
  FaultInjector b(plan);
  int faults = 0;
  for (int i = 0; i < 200; ++i) {
    const auto da = a.next();
    const auto db = b.next();
    EXPECT_EQ(da.drop_request, db.drop_request);
    EXPECT_EQ(da.drop_response, db.drop_response);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.delay_us, db.delay_us);
    faults += da.drop_request + da.drop_response + da.duplicate;
  }
  EXPECT_GT(faults, 0);

  FaultInjector quiet;  // all-zero plan: never interferes
  for (int i = 0; i < 50; ++i) {
    const auto d = quiet.next();
    EXPECT_FALSE(d.drop_request || d.drop_response || d.duplicate);
    EXPECT_EQ(d.delay_us, 0u);
  }
}

// ------------------------------------------------------------- harness

class ClusterFixture : public ::testing::Test {
 protected:
  static constexpr double kTileSize = 200'000.0;
  /// Offset that puts the second campaign area in a different tile.
  static constexpr double kAreaOffset = 400'000.0;

  static void SetUpTestSuite() {
    env_ = new rf::Environment(rf::make_metro_environment());
    const geo::DrivePath route = campaign::standard_route(*env_, 500, 29);
    sensors::Sensor usrp(sensors::usrp_b200_spec(), 30);
    usrp.calibrate();
    data_a_ = new campaign::ChannelDataset(
        campaign::collect_channel(*env_, usrp, kChannelA, route.readings));
    data_b_ = new campaign::ChannelDataset(
        campaign::collect_channel(*env_, usrp, kChannelB, route.readings));
    data_a_far_ = new campaign::ChannelDataset(translate(*data_a_));
    data_b_far_ = new campaign::ChannelDataset(translate(*data_b_));
  }
  static void TearDownTestSuite() {
    delete env_;
    delete data_a_;
    delete data_b_;
    delete data_a_far_;
    delete data_b_far_;
    env_ = nullptr;
    data_a_ = nullptr;
    data_b_ = nullptr;
    data_a_far_ = nullptr;
    data_b_far_ = nullptr;
  }

  static core::ModelConstructorConfig fast_config() {
    core::ModelConstructorConfig cfg;
    cfg.classifier = "naive_bayes";
    cfg.num_localities = 3;
    cfg.num_features = 2;
    return cfg;
  }

  /// The same sweep conducted in a distant metro area (another tile).
  static campaign::ChannelDataset translate(
      const campaign::ChannelDataset& ds) {
    campaign::ChannelDataset out = ds;
    for (campaign::Measurement& m : out.readings) {
      m.position.east_m += kAreaOffset;
    }
    return out;
  }

  static ClusterConfig base_config(NodeId nodes, std::size_t replication) {
    ClusterConfig cfg;
    cfg.num_nodes = nodes;
    cfg.replication = replication;
    cfg.tile_size_m = kTileSize;
    cfg.constructor_config = fast_config();
    return cfg;
  }

  /// A small honest-looking upload batch derived from stored readings.
  static std::vector<campaign::Measurement> make_batch(
      const campaign::ChannelDataset& data, std::mt19937_64& rng) {
    std::uniform_int_distribution<std::size_t> pick(0, data.size() - 1);
    std::uniform_real_distribution<double> jitter(-40.0, 40.0);
    std::uniform_real_distribution<double> noise(-2.0, 2.0);
    std::vector<campaign::Measurement> batch;
    for (int i = 0; i < 3; ++i) {
      campaign::Measurement m = data.readings[pick(rng)];
      m.position.east_m += jitter(rng);
      m.position.north_m += jitter(rng);
      m.rss_dbm += noise(rng);
      m.iq.clear();
      batch.push_back(m);
    }
    return batch;
  }

  /// The batch as the server will see it: round-tripped through the WSNP
  /// wire (which drops server-only fields and normalises the doubles).
  static std::vector<campaign::Measurement> wire_roundtrip(
      int channel, std::vector<campaign::Measurement> batch) {
    core::UploadRequest request;
    request.channel = channel;
    request.contributor = "rt";
    request.readings = std::move(batch);
    return std::get<core::UploadRequest>(core::decode(core::encode(request)))
        .readings;
  }

  static std::string csv_bytes(const campaign::ChannelDataset& ds) {
    std::ostringstream os;
    campaign::write_csv(os, ds);
    return os.str();
  }

  struct RecordedUpload {
    TileKey tile;
    int channel = 0;
    std::string contributor;
    std::vector<campaign::Measurement> readings;
    core::UploadResponse response;
  };

  /// The central theorem: replaying each (tile, channel)'s acknowledged
  /// uploads in ticket order through a fresh single-threaded service
  /// reproduces every replica byte-for-byte — datasets, cached model
  /// descriptors, ledgers and log sizes.
  static void expect_matches_serial_replay(
      Cluster& cluster, const std::vector<RecordedUpload>& uploads) {
    for (const TileKey tile : cluster.tiles()) {
      service::SpectrumService serial(cluster.config().constructor_config,
                                      cluster.config().labeling,
                                      cluster.config().upload_policy);
      serial.ingest_campaign(cluster.normalized_campaign(tile, 0));
      serial.ingest_campaign(cluster.normalized_campaign(tile, 1));

      std::map<int, std::vector<const RecordedUpload*>> by_channel;
      for (const RecordedUpload& rec : uploads) {
        if (rec.tile == tile) by_channel[rec.channel].push_back(&rec);
      }
      for (auto& [channel, records] : by_channel) {
        std::sort(records.begin(), records.end(),
                  [](const RecordedUpload* a, const RecordedUpload* b) {
                    return a->response.ticket < b->response.ticket;
                  });
        // Tickets are a dense sequence: nothing lost, nothing applied
        // twice — even when retries and duplicated frames were in play.
        for (std::size_t i = 0; i < records.size(); ++i) {
          ASSERT_EQ(records[i]->response.ticket, i) << "channel " << channel;
        }
        for (const RecordedUpload* rec : records) {
          const core::UploadResult serial_result = serial.upload_measurements(
              rec->channel, rec->readings, rec->contributor);
          EXPECT_EQ(serial_result.accepted, rec->response.accepted);
          EXPECT_EQ(serial_result.rejected, rec->response.rejected);
          EXPECT_EQ(serial_result.pending, rec->response.pending);
          EXPECT_EQ(serial_result.ticket, rec->response.ticket);
        }
      }

      for (const int channel : {kChannelA, kChannelB}) {
        const std::string want_csv = csv_bytes(serial.dataset_snapshot(channel));
        const std::string want_descriptor =
            *serial.download_descriptor(channel);
        for (const NodeId n : cluster.replicas_of(tile)) {
          EXPECT_EQ(cluster.node(n).dataset_csv(tile, channel), want_csv)
              << "dataset diverged: node " << n << " channel " << channel;
          EXPECT_EQ(cluster.node(n).descriptor_bytes(tile, channel),
                    want_descriptor)
              << "descriptor diverged: node " << n << " channel " << channel;
          EXPECT_EQ(cluster.node(n).log_size(tile, channel),
                    by_channel[channel].size())
              << "log diverged: node " << n << " channel " << channel;
        }
      }
    }
  }

  static rf::Environment* env_;
  static campaign::ChannelDataset* data_a_;
  static campaign::ChannelDataset* data_b_;
  static campaign::ChannelDataset* data_a_far_;
  static campaign::ChannelDataset* data_b_far_;
};

rf::Environment* ClusterFixture::env_ = nullptr;
campaign::ChannelDataset* ClusterFixture::data_a_ = nullptr;
campaign::ChannelDataset* ClusterFixture::data_b_ = nullptr;
campaign::ChannelDataset* ClusterFixture::data_a_far_ = nullptr;
campaign::ChannelDataset* ClusterFixture::data_b_far_ = nullptr;

// ------------------------------------------------------- basic routing

TEST_F(ClusterFixture, RouterServesCachedDescriptorBytes) {
  Cluster cluster(base_config(1, 1));
  const TileKey tile = cluster.ingest_campaign(*data_a_);
  cluster.ingest_campaign(*data_b_);
  ClusterRouter router(cluster.topology(), cluster.transport(),
                       cluster.membership());
  const geo::EnuPoint where = cluster.topology().tiling.center(tile);

  const std::string descriptor = router.download_descriptor(kChannelA, where);
  EXPECT_FALSE(descriptor.empty());
  // The router ships the node's cached blob verbatim — no reserialization.
  EXPECT_EQ(descriptor, cluster.node(0).descriptor_bytes(tile, kChannelA));

  std::mt19937_64 rng(7);
  const auto batch =
      wire_roundtrip(kChannelA, make_batch(*data_a_, rng));
  const core::UploadResponse response =
      router.upload(kChannelA, where, "alice", batch);
  EXPECT_EQ(response.accepted + response.rejected + response.pending, 3u);
  EXPECT_EQ(router.stats().requests, 2u);
  EXPECT_EQ(router.stats().failures, 0u);
}

TEST_F(ClusterFixture, PermanentErrorsFailFastWithoutRetry) {
  Cluster cluster(base_config(1, 1));
  const TileKey tile = cluster.ingest_campaign(*data_a_);
  ClusterRouter router(cluster.topology(), cluster.transport(),
                       cluster.membership());
  const geo::EnuPoint where = cluster.topology().tiling.center(tile);

  // Channel 33 was never bootstrapped: kUnknownChannel is permanent, so
  // the router must throw immediately instead of burning the deadline.
  EXPECT_THROW((void)router.download_descriptor(33, where),
               std::runtime_error);
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST_F(ClusterFixture, NonReplicaNodeFencesForeignTiles) {
  Cluster cluster(base_config(4, 1));
  const TileKey tile = cluster.ingest_campaign(*data_a_);
  const NodeId owner = cluster.replicas_of(tile)[0];
  NodeId outsider = 0;
  while (outsider == owner) ++outsider;

  const std::string wire = encode_envelope(
      {.verb = "wsnp",
       .from = kClientNode,
       .tile = tile,
       .body = core::encode(core::ModelRequest{.channel = kChannelA})});
  const Envelope reply =
      decode_envelope(cluster.node(outsider).handle(wire));
  const core::Message message = core::decode(reply.body);
  const auto* error = std::get_if<core::ErrorResponse>(&message);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, core::ErrorCode::kNotOwner);
  EXPECT_TRUE(core::is_retryable(error->code));
  EXPECT_EQ(cluster.node(outsider).stats().rejected_not_owner, 1u);
}

TEST_F(ClusterFixture, DuplicateUploadFramesHitTheDedupTable) {
  Cluster cluster(base_config(1, 1));
  const TileKey tile = cluster.ingest_campaign(*data_a_);

  std::mt19937_64 rng(11);
  core::UploadRequest request;
  request.channel = kChannelA;
  request.contributor = "bob";
  request.request_id = 0x5151u;
  request.readings = make_batch(*data_a_, rng);
  const std::string envelope =
      encode_envelope({.verb = "wsnp",
                       .from = kClientNode,
                       .tile = tile,
                       .body = core::encode(request)});

  const std::string first = cluster.transport().send(0, envelope);
  const std::string second = cluster.transport().send(0, envelope);
  // Byte-identical replies: the retransmit returned the original ledger
  // instead of applying twice.
  EXPECT_EQ(first, second);
  EXPECT_EQ(cluster.node(0).stats().dedup_hits, 1u);
  EXPECT_EQ(cluster.node(0).log_size(tile, kChannelA), 1u);
}

// ---------------------------------------------------------- determinism

struct Shape {
  NodeId nodes;
  std::size_t replication;
};

class ClusterDeterminism : public ClusterFixture,
                           public ::testing::WithParamInterface<Shape> {};

// The acceptance bar: for every cluster shape, concurrent routed traffic
// leaves all replicas byte-identical to a single-node serial replay.
TEST_P(ClusterDeterminism, ConcurrentTrafficMatchesSerialReplay) {
  const auto [nodes, replication] = GetParam();
  Cluster cluster(base_config(nodes, replication));
  const TileKey tile_near = cluster.ingest_campaign(*data_a_);
  ASSERT_EQ(cluster.ingest_campaign(*data_b_), tile_near);
  const TileKey tile_far = cluster.ingest_campaign(*data_a_far_);
  ASSERT_EQ(cluster.ingest_campaign(*data_b_far_), tile_far);
  ASSERT_NE(tile_near, tile_far);

  ClusterRouter router(cluster.topology(), cluster.transport(),
                       cluster.membership());
  const Tiling tiling = cluster.topology().tiling;

  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 12;
  std::vector<std::vector<RecordedUpload>> recorded(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937_64 rng(runtime::split_seed(4242, t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const bool far = (rng() % 2) == 1;
        const int channel = (rng() % 2) == 1 ? kChannelB : kChannelA;
        const TileKey tile = far ? tile_far : tile_near;
        const geo::EnuPoint where = tiling.center(tile);
        const campaign::ChannelDataset& source =
            far ? (channel == kChannelA ? *data_a_far_ : *data_b_far_)
                : (channel == kChannelA ? *data_a_ : *data_b_);
        if (i % 3 == 2) {
          EXPECT_FALSE(router.download_descriptor(channel, where).empty());
        } else {
          RecordedUpload rec;
          rec.tile = tile;
          rec.channel = channel;
          rec.contributor = "client" + std::to_string(t);
          rec.readings = wire_roundtrip(channel, make_batch(source, rng));
          rec.response =
              router.upload(channel, where, rec.contributor, rec.readings);
          recorded[t].push_back(std::move(rec));
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  std::vector<RecordedUpload> all;
  for (auto& per_thread : recorded) {
    for (auto& rec : per_thread) all.push_back(std::move(rec));
  }
  expect_matches_serial_replay(cluster, all);

  EXPECT_EQ(router.stats().failures, 0u);
  for (NodeId n = 0; n < nodes; ++n) {
    EXPECT_EQ(cluster.node(n).stats().ticket_mismatches, 0u);
    EXPECT_EQ(cluster.node(n).stats().repl_abandoned, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ClusterDeterminism,
                         ::testing::Values(Shape{1, 1}, Shape{4, 1},
                                           Shape{4, 2}),
                         [](const auto& info) {
                           return "N" + std::to_string(info.param.nodes) +
                                  "R" +
                                  std::to_string(info.param.replication);
                         });

// ------------------------------------------------------ fault tolerance

// Kill the busiest tile's primary mid-traffic on a lossy, reordering
// fabric, recover it while clients keep going, and require: every client
// request eventually succeeded, the revived node resynced byte-identical,
// and the whole cluster still equals the serial replay.
TEST_F(ClusterFixture, SurvivesPrimaryKillAndRecoveryUnderFaults) {
  ClusterConfig cfg = base_config(4, 2);
  cfg.faults = FaultPlan{.drop_request = 0.08,
                         .drop_response = 0.05,
                         .duplicate_request = 0.05,
                         .delay = 0.25,
                         .max_delay_us = 200,
                         .seed = 77};
  Cluster cluster(std::move(cfg));
  const TileKey tile_near = cluster.ingest_campaign(*data_a_);
  cluster.ingest_campaign(*data_b_);
  const TileKey tile_far = cluster.ingest_campaign(*data_a_far_);
  cluster.ingest_campaign(*data_b_far_);

  RouterConfig router_config;
  router_config.deadline = std::chrono::milliseconds(60'000);  // TSan slack
  router_config.backoff.base = std::chrono::nanoseconds{100'000};
  router_config.backoff.cap = std::chrono::nanoseconds{2'000'000};
  ClusterRouter router(cluster.topology(), cluster.transport(),
                       cluster.membership(), router_config);
  const Tiling tiling = cluster.topology().tiling;

  const NodeId victim = cluster.replicas_of(tile_near)[0];

  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 16;
  std::vector<std::vector<RecordedUpload>> recorded(kThreads);
  std::vector<std::string> trouble[kThreads];
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937_64 rng(runtime::split_seed(1717, t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const bool far = (rng() % 4) == 3;  // keep the victim's tile busy
        const int channel = (rng() % 2) == 1 ? kChannelB : kChannelA;
        const TileKey tile = far ? tile_far : tile_near;
        const geo::EnuPoint where = tiling.center(tile);
        const campaign::ChannelDataset& source =
            far ? (channel == kChannelA ? *data_a_far_ : *data_b_far_)
                : (channel == kChannelA ? *data_a_ : *data_b_);
        try {
          if (i % 4 == 3) {
            EXPECT_FALSE(router.download_descriptor(channel, where).empty());
          } else {
            RecordedUpload rec;
            rec.tile = tile;
            rec.channel = channel;
            rec.contributor = "client" + std::to_string(t);
            rec.readings = wire_roundtrip(channel, make_batch(source, rng));
            rec.response =
                router.upload(channel, where, rec.contributor, rec.readings);
            recorded[t].push_back(std::move(rec));
          }
        } catch (const std::exception& e) {
          trouble[t].push_back(e.what());
        }
      }
    });
  }

  // Fail-stop the busy tile's primary mid-stream, then bring it back
  // while traffic is still flowing; recover() returns only once the node
  // has resynced every owned tile and is ready again.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  cluster.kill(victim);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  cluster.recover(victim);

  for (std::thread& c : clients) c.join();

  // No request was lost: every upload and download either succeeded
  // directly or via retry/failover.
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(trouble[t].empty())
        << "thread " << t << " first failure: " << trouble[t].front();
  }
  EXPECT_EQ(router.stats().failures, 0u);
  EXPECT_GE(cluster.node(victim).stats().snapshots_installed, 1u);

  std::vector<RecordedUpload> all;
  for (auto& per_thread : recorded) {
    for (auto& rec : per_thread) all.push_back(std::move(rec));
  }
  // The revived node is one of the replicas this walks: byte-identity
  // includes the recovered state.
  expect_matches_serial_replay(cluster, all);

  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(cluster.node(n).stats().ticket_mismatches, 0u);
    EXPECT_EQ(cluster.node(n).stats().repl_abandoned, 0u);
  }
}

// With replication == 1 a killed node's crowd uploads are gone by
// construction; recovery must still restore the trusted bootstrap
// campaigns and resume service (the documented degraded mode).
TEST_F(ClusterFixture, ReplicationOneRecoveryRestoresBootstrapState) {
  Cluster cluster(base_config(2, 1));
  const TileKey tile = cluster.ingest_campaign(*data_a_);
  cluster.ingest_campaign(*data_b_);
  ClusterRouter router(cluster.topology(), cluster.transport(),
                       cluster.membership());
  const geo::EnuPoint where = cluster.topology().tiling.center(tile);

  std::mt19937_64 rng(3);
  const auto batch = wire_roundtrip(kChannelA, make_batch(*data_a_, rng));
  (void)router.upload(kChannelA, where, "alice", batch);

  const NodeId owner = cluster.replicas_of(tile)[0];
  cluster.kill(owner);
  cluster.recover(owner);

  // The upload died with the single copy; the bootstrap campaigns did not.
  EXPECT_EQ(cluster.node(owner).log_size(tile, kChannelA), 0u);
  service::SpectrumService pristine(fast_config());
  pristine.ingest_campaign(cluster.normalized_campaign(tile, 0));
  pristine.ingest_campaign(cluster.normalized_campaign(tile, 1));
  EXPECT_EQ(cluster.node(owner).dataset_csv(tile, kChannelA),
            csv_bytes(pristine.dataset_snapshot(kChannelA)));
  // And the tile serves again.
  EXPECT_FALSE(router.download_descriptor(kChannelA, where).empty());
}

}  // namespace
}  // namespace waldo::cluster
