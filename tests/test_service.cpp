// The serving-layer contract (docs/CONCURRENCY.md, "The serving layer"):
// any number of concurrent downloads, uploads and malformed frames against
// one SpectrumService leaves exactly the state a single-threaded
// SpectrumDatabase reaches when the same upload batches are replayed in
// the per-channel apply-ticket order — datasets, models and per-batch
// ledgers all byte-identical. This suite (run under TSan in CI) enforces
// that, plus the frontend's error isolation and stats accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "waldo/campaign/dataset_io.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/protocol.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/runtime/seed.hpp"
#include "waldo/sensors/sensor.hpp"
#include "waldo/service/frontend.hpp"
#include "waldo/service/service.hpp"

namespace waldo::service {
namespace {

constexpr int kChannelA = 15;
constexpr int kChannelB = 46;

class ServiceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new rf::Environment(rf::make_metro_environment());
    route_ = new geo::DrivePath(campaign::standard_route(*env_, 700, 29));
    sensors::Sensor usrp(sensors::usrp_b200_spec(), 30);
    usrp.calibrate();
    data_a_ = new campaign::ChannelDataset(
        campaign::collect_channel(*env_, usrp, kChannelA, route_->readings));
    data_b_ = new campaign::ChannelDataset(
        campaign::collect_channel(*env_, usrp, kChannelB, route_->readings));
  }
  static void TearDownTestSuite() {
    delete env_;
    delete route_;
    delete data_a_;
    delete data_b_;
    env_ = nullptr;
    route_ = nullptr;
    data_a_ = nullptr;
    data_b_ = nullptr;
  }

  static core::ModelConstructorConfig fast_config() {
    core::ModelConstructorConfig cfg;
    cfg.classifier = "naive_bayes";
    cfg.num_localities = 3;
    cfg.num_features = 2;
    return cfg;
  }

  static void bootstrap(SpectrumService& service) {
    service.ingest_campaign(*data_a_);
    service.ingest_campaign(*data_b_);
  }

  /// A small honest-looking upload batch derived from stored readings.
  static std::vector<campaign::Measurement> make_batch(
      const campaign::ChannelDataset& data, std::mt19937_64& rng) {
    std::uniform_int_distribution<std::size_t> pick(0, data.size() - 1);
    std::uniform_real_distribution<double> jitter(-40.0, 40.0);
    std::uniform_real_distribution<double> noise(-2.0, 2.0);
    std::vector<campaign::Measurement> batch;
    for (int i = 0; i < 3; ++i) {
      campaign::Measurement m = data.readings[pick(rng)];
      m.position.east_m += jitter(rng);
      m.position.north_m += jitter(rng);
      m.rss_dbm += noise(rng);
      m.iq.clear();
      batch.push_back(m);
    }
    return batch;
  }

  static std::string csv_bytes(const campaign::ChannelDataset& ds) {
    std::ostringstream os;
    campaign::write_csv(os, ds);
    return os.str();
  }

  static rf::Environment* env_;
  static geo::DrivePath* route_;
  static campaign::ChannelDataset* data_a_;
  static campaign::ChannelDataset* data_b_;
};

rf::Environment* ServiceFixture::env_ = nullptr;
geo::DrivePath* ServiceFixture::route_ = nullptr;
campaign::ChannelDataset* ServiceFixture::data_a_ = nullptr;
campaign::ChannelDataset* ServiceFixture::data_b_ = nullptr;

TEST_F(ServiceFixture, MatchesSpectrumDatabaseOnSerialTraffic) {
  SpectrumService service(fast_config());
  bootstrap(service);
  core::SpectrumDatabase db(fast_config());
  db.ingest_campaign(*data_a_);
  db.ingest_campaign(*data_b_);

  std::mt19937_64 rng(41);
  for (int i = 0; i < 10; ++i) {
    std::mt19937_64 branch(runtime::split_seed(41, i));
    const auto batch = make_batch(*data_a_, branch);
    const core::UploadResult from_service =
        service.upload_measurements(kChannelA, batch, "alice");
    const core::UploadResult from_db =
        db.upload_measurements(kChannelA, batch, "alice");
    EXPECT_EQ(from_service.accepted, from_db.accepted);
    EXPECT_EQ(from_service.rejected, from_db.rejected);
    EXPECT_EQ(from_service.pending, from_db.pending);
    EXPECT_EQ(from_service.ticket, from_db.ticket);
  }
  EXPECT_EQ(csv_bytes(service.dataset_snapshot(kChannelA)),
            csv_bytes(db.dataset(kChannelA)));
  EXPECT_EQ(service.model(kChannelA)->serialize(),
            db.model(kChannelA).serialize());
  EXPECT_EQ(service.download_model(kChannelB), db.download_model(kChannelB));
  EXPECT_EQ(service.pending_count(kChannelA), db.pending_count(kChannelA));
  EXPECT_EQ(service.staleness(kChannelA), db.staleness(kChannelA));
}

TEST_F(ServiceFixture, UnknownChannelBehavesLikeDatabase) {
  SpectrumService service(fast_config());
  bootstrap(service);
  EXPECT_FALSE(service.has_channel(33));
  EXPECT_THROW((void)service.model(33), std::out_of_range);
  EXPECT_THROW((void)service.dataset_snapshot(33), std::out_of_range);
  EXPECT_THROW(service.upload_measurements(33, {}, "alice"),
               std::out_of_range);
  EXPECT_THROW(service.ingest_campaign(campaign::ChannelDataset{}),
               std::invalid_argument);
  EXPECT_EQ(service.pending_count(33), 0u);
  EXPECT_EQ(service.staleness(33), 0u);
  const std::vector<int> expected{kChannelA, kChannelB};
  EXPECT_EQ(service.channels(), expected);
}

TEST_F(ServiceFixture, ConcurrentDownloadsShareOneRebuild) {
  SpectrumService service(fast_config());
  bootstrap(service);
  constexpr unsigned kThreads = 8;
  std::vector<std::string> descriptors(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&service, &descriptors, t] {
        descriptors[t] = service.download_model(kChannelA);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  // The thundering herd built the model exactly once and everyone got the
  // same bytes.
  EXPECT_EQ(service.counters().models_built, 1u);
  for (const std::string& d : descriptors) EXPECT_EQ(d, descriptors[0]);
  EXPECT_EQ(service.counters().model_downloads, kThreads);
  EXPECT_EQ(service.counters().bytes_served,
            kThreads * descriptors[0].size());
  // Descriptor-cache accounting: every download is either a hit or a miss.
  // How many threads race the first serialization is timing-dependent, but
  // at least one must miss, and each hit's bytes came from the cache.
  const ServiceCounters after = service.counters();
  EXPECT_EQ(after.descriptor_cache_hits + after.descriptor_cache_misses,
            kThreads);
  EXPECT_GE(after.descriptor_cache_misses, 1u);
  EXPECT_EQ(after.bytes_from_cache,
            after.descriptor_cache_hits * descriptors[0].size());
}

TEST_F(ServiceFixture, DescriptorCacheHitsUntilModelChanges) {
  SpectrumService service(fast_config());
  bootstrap(service);

  // First download serializes (miss); repeats are served from the cached
  // bytes without re-serializing, and are byte-identical.
  const std::string first = service.download_model(kChannelA);
  const std::string second = service.download_model(kChannelA);
  const std::string third = service.download_model(kChannelA);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, third);
  ServiceCounters c = service.counters();
  EXPECT_EQ(c.descriptor_cache_misses, 1u);
  EXPECT_EQ(c.descriptor_cache_hits, 2u);
  EXPECT_EQ(c.bytes_from_cache, 2u * first.size());

  // New data invalidates the snapshot: the next download must re-serialize
  // the rebuilt model, never serve the stale cached bytes.
  service.ingest_campaign(*data_a_);
  (void)service.download_model(kChannelA);
  c = service.counters();
  EXPECT_EQ(c.descriptor_cache_misses, 2u);
  EXPECT_EQ(c.descriptor_cache_hits, 2u);

  // The other channel's cache is untouched by channel A's traffic.
  (void)service.download_model(kChannelB);
  (void)service.download_model(kChannelB);
  c = service.counters();
  EXPECT_EQ(c.descriptor_cache_misses, 3u);
  EXPECT_EQ(c.descriptor_cache_hits, 3u);
  EXPECT_EQ(c.descriptor_cache_hits + c.descriptor_cache_misses,
            c.model_downloads);
}

TEST_F(ServiceFixture, PurgePendingDropsOnlyThatContributor) {
  SpectrumService service(fast_config());
  bootstrap(service);
  campaign::Measurement frontier;
  frontier.position = geo::EnuPoint{-400'000.0, -400'000.0};
  frontier.rss_dbm = -95.0;
  (void)service.upload_measurements(
      kChannelA, std::vector<campaign::Measurement>{frontier}, "mallory");
  frontier.position.north_m += 2'000.0;  // outside corroboration radius
  (void)service.upload_measurements(
      kChannelA, std::vector<campaign::Measurement>{frontier}, "alice");
  EXPECT_EQ(service.pending_count(kChannelA), 2u);
  EXPECT_EQ(service.purge_pending("mallory"), 1u);
  EXPECT_EQ(service.pending_count(kChannelA), 1u);
}

TEST_F(ServiceFixture, FrontendIsolatesMalformedAndThrowingRequests) {
  SpectrumService service(fast_config());
  bootstrap(service);
  ServiceFrontend frontend(service, 4);

  const std::string valid = core::encode(core::ModelRequest{
      .channel = kChannelA, .location = geo::EnuPoint{0.0, 0.0}});
  const std::string unknown_channel = core::encode(core::ModelRequest{
      .channel = 77, .location = geo::EnuPoint{0.0, 0.0}});
  const std::string not_a_request =
      core::encode(core::UploadResponse{.accepted = 1});

  const std::string garbage = "complete garbage, not WSNP at all";
  std::vector<std::future<std::string>> replies;
  replies.push_back(frontend.submit(valid));
  replies.push_back(frontend.submit(garbage));
  replies.push_back(frontend.submit(unknown_channel));
  replies.push_back(frontend.submit(not_a_request));

  const core::Message ok = core::decode(replies[0].get());
  EXPECT_NE(std::get_if<core::ModelResponse>(&ok), nullptr);
  for (std::size_t i = 1; i < replies.size(); ++i) {
    const core::Message reply = core::decode(replies[i].get());
    EXPECT_NE(std::get_if<core::ErrorResponse>(&reply), nullptr)
        << "request " << i << " should have been answered with an error";
  }

  const ServiceStats stats = frontend.stats();
  EXPECT_EQ(stats.requests_served, 4u);
  EXPECT_EQ(stats.error_responses, 3u);
  EXPECT_EQ(stats.model_downloads, 1u);
  EXPECT_EQ(stats.descriptor_cache_hits + stats.descriptor_cache_misses,
            stats.model_downloads);
  EXPECT_GT(stats.bytes_served, 0u);
  EXPECT_LE(stats.p50_handle_us, stats.p99_handle_us);
}

// The tentpole stress test: 8 worker threads and 8 client threads mix
// model downloads, measurement uploads and malformed frames over the wire
// against one service. Afterwards the recorded upload batches are replayed
// in apply-ticket order against a fresh single-threaded SpectrumDatabase;
// final datasets and models must match byte-for-byte, and every concurrent
// upload ledger must equal its serial-replay counterpart.
TEST_F(ServiceFixture, StressMatchesSerialReplay) {
  constexpr unsigned kThreads = 8;
  constexpr int kRequestsPerThread = 40;
  constexpr int kChannels[] = {kChannelA, kChannelB};

  SpectrumService service(fast_config());
  bootstrap(service);
  ServiceFrontend frontend(service, kThreads);

  struct RecordedUpload {
    int channel = 0;
    std::uint64_t ticket = 0;
    std::string contributor;
    std::vector<campaign::Measurement> readings;
    core::UploadResponse response;
  };
  std::vector<std::vector<RecordedUpload>> recorded(kThreads);
  std::vector<std::vector<std::string>> download_errors(kThreads);

  {
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        std::mt19937_64 rng(runtime::split_seed(7'777, t));
        std::uniform_real_distribution<double> roll(0.0, 1.0);
        const std::string contributor = "device" + std::to_string(t);
        for (int i = 0; i < kRequestsPerThread; ++i) {
          const int channel = kChannels[rng() % 2];
          const double kind = roll(rng);
          if (kind < 0.45) {  // download
            const std::string reply = frontend
                .submit(core::encode(core::ModelRequest{
                    .channel = channel, .location = geo::EnuPoint{}}))
                .get();
            const core::Message decoded = core::decode(reply);
            if (const auto* err =
                    std::get_if<core::ErrorResponse>(&decoded)) {
              download_errors[t].push_back(err->reason);
            } else {
              ASSERT_NE(std::get_if<core::ModelResponse>(&decoded), nullptr);
            }
          } else if (kind < 0.80) {  // upload
            const campaign::ChannelDataset& base =
                channel == kChannelA ? *data_a_ : *data_b_;
            RecordedUpload rec;
            rec.channel = channel;
            rec.contributor = contributor;
            core::UploadRequest request;
            request.channel = channel;
            request.contributor = contributor;
            request.readings = make_batch(base, rng);
            const std::string wire = core::encode(request);
            // Replay must feed the database exactly what the server saw:
            // the wire round-trip drops server-only fields (true_rss_dbm),
            // so record the decoded form, not the in-memory original.
            rec.readings =
                std::get<core::UploadRequest>(core::decode(wire)).readings;
            const core::Message decoded =
                core::decode(frontend.submit(wire).get());
            const auto* response =
                std::get_if<core::UploadResponse>(&decoded);
            ASSERT_NE(response, nullptr);
            rec.response = *response;
            rec.ticket = response->ticket;
            recorded[t].push_back(std::move(rec));
          } else {  // malformed / hostile frames, mixed into live traffic
            static const std::string kMalformed[] = {
                "not wsnp",
                "WSNP/1 model_request 99\nshort",
                "WSNP/1 model_request 12\n15 0 0 junk\n",
                "WSNP/1 upload_request 14\n15 eve 999999\n",
                "WSNP/1 bogus_type 0\n",
            };
            const std::string reply =
                frontend.submit(kMalformed[rng() % 5]).get();
            const core::Message decoded = core::decode(reply);
            ASSERT_NE(std::get_if<core::ErrorResponse>(&decoded), nullptr);
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
  }
  // Every download of a bootstrapped channel must have succeeded.
  for (const auto& errors : download_errors) EXPECT_TRUE(errors.empty());

  // Serial replay: same per-channel batch order, single-threaded store.
  core::SpectrumDatabase db(fast_config());
  db.ingest_campaign(*data_a_);
  db.ingest_campaign(*data_b_);
  std::map<int, std::vector<const RecordedUpload*>> by_channel;
  for (const auto& thread_records : recorded) {
    for (const RecordedUpload& rec : thread_records) {
      by_channel[rec.channel].push_back(&rec);
    }
  }
  for (auto& [channel, uploads] : by_channel) {
    std::sort(uploads.begin(), uploads.end(),
              [](const RecordedUpload* a, const RecordedUpload* b) {
                return a->ticket < b->ticket;
              });
    // Tickets are a dense per-channel sequence: no upload was lost or
    // double-applied.
    for (std::size_t i = 0; i < uploads.size(); ++i) {
      ASSERT_EQ(uploads[i]->ticket, i) << "channel " << channel;
    }
    for (const RecordedUpload* rec : uploads) {
      const core::UploadResult serial =
          db.upload_measurements(channel, rec->readings, rec->contributor);
      EXPECT_EQ(serial.accepted, rec->response.accepted);
      EXPECT_EQ(serial.rejected, rec->response.rejected);
      EXPECT_EQ(serial.pending, rec->response.pending);
      EXPECT_EQ(serial.ticket, rec->response.ticket);
    }
  }

  std::uint64_t total_accepted = 0;
  for (const int channel : kChannels) {
    EXPECT_EQ(csv_bytes(service.dataset_snapshot(channel)),
              csv_bytes(db.dataset(channel)))
        << "dataset diverged on channel " << channel;
    EXPECT_EQ(service.model(channel)->serialize(),
              db.model(channel).serialize())
        << "model diverged on channel " << channel;
    EXPECT_EQ(service.pending_count(channel), db.pending_count(channel));
  }
  total_accepted = db.stats().uploads_accepted;
  EXPECT_EQ(service.counters().uploads_accepted, total_accepted);
  EXPECT_EQ(service.counters().uploads_rejected,
            db.stats().uploads_rejected);

  const ServiceStats stats = frontend.stats();
  EXPECT_EQ(stats.requests_served, kThreads * kRequestsPerThread);
  EXPECT_GT(stats.error_responses, 0u);  // the malformed frames
  EXPECT_LE(stats.p50_handle_us, stats.p99_handle_us);
}

// stats() is documented as callable at any time: hammer it from reader
// threads while request traffic is in flight (TSan guards the memory
// model) and require every counter to be monotone across snapshots, with
// exact totals once the traffic quiesces. Counters update independently,
// so no cross-field invariant is asserted mid-flight — only at the end.
TEST_F(ServiceFixture, StatsSnapshotsAreSafeAndMonotoneUnderLoad) {
  SpectrumService service(fast_config());
  bootstrap(service);
  ServiceFrontend frontend(service, 2);

  constexpr int kRequests = 120;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  std::vector<std::string> violations[2];
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&frontend, &done, &violations, r] {
      ServiceStats last;
      while (!done.load(std::memory_order_acquire)) {
        const ServiceStats now = frontend.stats();
        if (now.requests_served < last.requests_served ||
            now.error_responses < last.error_responses ||
            now.bytes_served < last.bytes_served ||
            now.model_downloads < last.model_downloads ||
            now.uploads_accepted < last.uploads_accepted ||
            now.descriptor_cache_hits < last.descriptor_cache_hits ||
            now.descriptor_cache_misses < last.descriptor_cache_misses) {
          violations[r].push_back("counter went backwards");
        }
        if (now.p50_handle_us > now.p99_handle_us) {
          violations[r].push_back("p50 above p99");
        }
        last = now;
      }
    });
  }

  std::mt19937_64 rng(91);
  std::vector<std::future<std::string>> inflight;
  for (int i = 0; i < kRequests; ++i) {
    if (i % 3 == 0) {
      core::UploadRequest upload;
      upload.channel = kChannelA;
      upload.contributor = "dora";
      upload.readings = make_batch(*data_a_, rng);
      inflight.push_back(frontend.submit(core::encode(upload)));
    } else {
      inflight.push_back(frontend.submit(core::encode(
          core::ModelRequest{.channel = (i % 3 == 1) ? kChannelA
                                                     : kChannelB})));
    }
  }
  for (auto& f : inflight) (void)f.get();
  done.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  for (int r = 0; r < 2; ++r) {
    EXPECT_TRUE(violations[r].empty())
        << "reader " << r << ": " << violations[r].front();
  }
  const ServiceStats final_stats = frontend.stats();
  EXPECT_EQ(final_stats.requests_served, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(final_stats.error_responses, 0u);
  // At quiescence the cache split must reconcile with the download count.
  EXPECT_EQ(final_stats.descriptor_cache_hits +
                final_stats.descriptor_cache_misses,
            final_stats.model_downloads);
  EXPECT_GT(final_stats.bytes_served, 0u);
}

}  // namespace
}  // namespace waldo::service
