// waldo::runtime — thread pool semantics (exception propagation, empty
// ranges, nested submits) and the determinism contract: every parallel
// stage must produce results bit-identical to its serial execution,
// because per-task randomness is split from (root seed, task index)
// instead of drawn from a shared sequential engine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <random>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "waldo/baselines/interpolation.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/model_constructor.hpp"
#include "waldo/ml/cross_validation.hpp"
#include "waldo/ml/kmeans.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/runtime/backoff.hpp"
#include "waldo/runtime/histogram.hpp"
#include "waldo/runtime/parallel.hpp"
#include "waldo/runtime/seed.hpp"
#include "waldo/runtime/stage_timer.hpp"
#include "waldo/runtime/thread_pool.hpp"
#include "waldo/sensors/sensor.hpp"

namespace waldo {
namespace {

// --- thread pool / parallel_for -----------------------------------------

TEST(ParallelFor, EmptyRangeIsANoop) {
  bool touched = false;
  runtime::parallel_for(0, 8, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  runtime::parallel_for(kCount, 8, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, SerialWhenThreadsIsOne) {
  // threads = 1 must run on the calling thread, in index order.
  std::vector<std::size_t> order;
  runtime::parallel_for(64, 1, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  try {
    runtime::parallel_for(1000, 8, [](std::size_t i) {
      if (i == 137) throw std::runtime_error("boom at 137");
    });
    FAIL() << "expected the body's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 137");
  }
}

TEST(ParallelFor, ExceptionAbandonsRemainingIndices) {
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(runtime::parallel_for(100'000, 4,
                                     [&](std::size_t i) {
                                       ++executed;
                                       if (i == 0) {
                                         throw std::runtime_error("stop");
                                       }
                                     }),
               std::runtime_error);
  // The throwing index stops the fetch-add distribution; far fewer than
  // all indices run (each in-flight worker may finish its current one).
  EXPECT_LT(executed.load(), 100'000u);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  std::vector<std::atomic<int>> hits(32 * 32);
  runtime::parallel_for(32, 0, [&](std::size_t outer) {
    runtime::parallel_for(32, 0, [&](std::size_t inner) {
      ++hits[outer * 32 + inner];
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, WorkersAreReusedAcrossCalls) {
  // Submitting through the same global pool repeatedly must not leak or
  // wedge; this is the pattern every bench uses.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    runtime::parallel_for(64, 0, [&](std::size_t i) {
      sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ParallelForLanes, CoversEveryIndexAndBoundsLanes) {
  const std::size_t lanes = runtime::parallel_lane_count(500, 4);
  EXPECT_GE(lanes, 1u);
  EXPECT_LE(lanes, 4u);
  std::vector<std::atomic<int>> seen(500);
  std::atomic<bool> lane_out_of_range{false};
  runtime::parallel_for_lanes(500, 4, [&](std::size_t lane, std::size_t i) {
    if (lane >= lanes) lane_out_of_range = true;
    seen[i]++;
  });
  EXPECT_FALSE(lane_out_of_range.load());
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ParallelForLanes, EachLaneOwnedByOneExecutorAtATime) {
  // The workspace contract: two tasks on the same lane never overlap, so
  // lane-indexed scratch needs no synchronisation. Tripping the in_use
  // flag from two threads at once would mean the contract is broken.
  const std::size_t lanes = runtime::parallel_lane_count(2000, 8);
  std::vector<std::atomic<bool>> in_use(lanes);
  std::atomic<bool> overlap{false};
  runtime::parallel_for_lanes(2000, 8, [&](std::size_t lane, std::size_t) {
    if (in_use[lane].exchange(true)) overlap = true;
    in_use[lane] = false;
  });
  EXPECT_FALSE(overlap.load());
}

TEST(ParallelForLanes, SerialPathUsesLaneZeroInOrder) {
  EXPECT_EQ(runtime::parallel_lane_count(100, 1), 1u);
  EXPECT_EQ(runtime::parallel_lane_count(0, 8), 1u);
  EXPECT_EQ(runtime::parallel_lane_count(1, 8), 1u);
  std::vector<std::size_t> order;
  runtime::parallel_for_lanes(20, 1, [&](std::size_t lane, std::size_t i) {
    EXPECT_EQ(lane, 0u);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelMap, PreservesIndexOrder) {
  const auto out = runtime::parallel_map(
      1000, 8, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ResolveThreadsHonoursExplicitRequests) {
  EXPECT_EQ(runtime::resolve_threads(1), 1u);
  EXPECT_EQ(runtime::resolve_threads(7), 7u);
  EXPECT_GE(runtime::resolve_threads(0), 1u);
  EXPECT_GE(runtime::hardware_threads(), 1u);
}

// --- seed splitting ------------------------------------------------------

TEST(SeedSplit, DeterministicAndDecorrelated) {
  EXPECT_EQ(runtime::split_seed(23, 4), runtime::split_seed(23, 4));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t root : {0ull, 1ull, 23ull, 99ull}) {
    for (std::uint64_t stream = 0; stream < 64; ++stream) {
      seeds.insert(runtime::split_seed(root, stream));
    }
  }
  // 4 roots x 64 streams, all distinct.
  EXPECT_EQ(seeds.size(), 4u * 64u);
}

// --- stage timer ---------------------------------------------------------

TEST(StageTimer, AccumulatesScopesAndRecords) {
  runtime::StageTimer timer;
  timer.record("train", 0.5, 3);
  timer.record("train", 0.25, 2);
  { const auto scope = timer.scope("collect", 10); }
  const auto stages = timer.stages();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_DOUBLE_EQ(stages.at("train").seconds, 0.75);
  EXPECT_EQ(stages.at("train").calls, 2u);
  EXPECT_EQ(stages.at("train").items, 5u);
  EXPECT_EQ(stages.at("collect").calls, 1u);
  EXPECT_NE(timer.report().find("train"), std::string::npos);
  timer.reset();
  EXPECT_TRUE(timer.stages().empty());
  EXPECT_TRUE(timer.report().empty());
}

// --- latency histogram ---------------------------------------------------

TEST(LatencyHistogram, EmptySnapshotIsZero) {
  runtime::LatencyHistogram h;
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.max_ns, 0u);
  EXPECT_DOUBLE_EQ(snap.p50_ns, 0.0);
  EXPECT_DOUBLE_EQ(snap.p99_ns, 0.0);
}

TEST(LatencyHistogram, QuantilesWithinBucketResolution) {
  runtime::LatencyHistogram h;
  // Uniform 1..100000 ns: p50 ~ 50000, p90 ~ 90000, p99 ~ 99000. The
  // log-linear buckets guarantee ~6 % relative resolution.
  for (std::uint64_t v = 1; v <= 100'000; ++v) h.record(v);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 100'000u);
  EXPECT_EQ(snap.max_ns, 100'000u);
  EXPECT_NEAR(snap.p50_ns, 50'000.0, 0.07 * 50'000.0);
  EXPECT_NEAR(snap.p90_ns, 90'000.0, 0.07 * 90'000.0);
  EXPECT_NEAR(snap.p99_ns, 99'000.0, 0.07 * 99'000.0);
}

TEST(LatencyHistogram, TinyAndHugeValuesLandInRange) {
  runtime::LatencyHistogram h;
  h.record(0);
  h.record(3);
  h.record(std::uint64_t{3'600'000'000'000});  // one hour in ns
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.max_ns, std::uint64_t{3'600'000'000'000});
  EXPECT_GE(snap.p99_ns, 1e12);  // the hour dominates the tail
  EXPECT_LE(snap.p50_ns, 4.0);   // the small values hold the median down
}

TEST(LatencyHistogram, ConcurrentRecordsAllCounted) {
  runtime::LatencyHistogram h;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      std::mt19937_64 rng(runtime::split_seed(3, t));
      std::uniform_int_distribution<std::uint64_t> value(1, 1'000'000);
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record(value(rng));
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_LE(snap.p50_ns, snap.p90_ns);
  EXPECT_LE(snap.p90_ns, snap.p99_ns);
  EXPECT_LE(snap.p99_ns, static_cast<double>(snap.max_ns) * 1.07);

  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
}

// Regression: bucket-midpoint interpolation reported quantiles above the
// observed maximum (a single 17 ns sample produced p99 = 17.5 ns), and a
// value past the last octave indexed out of the bucket array. Quantiles
// now clamp to max_ns and the bucket index saturates.
TEST(LatencyHistogram, SingleSampleQuantilesNeverExceedTheSample) {
  runtime::LatencyHistogram h;
  h.record(17);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max_ns, 17u);
  EXPECT_DOUBLE_EQ(snap.p50_ns, 17.0);
  EXPECT_DOUBLE_EQ(snap.p90_ns, 17.0);
  EXPECT_DOUBLE_EQ(snap.p99_ns, 17.0);
}

TEST(LatencyHistogram, ValuesBeyondTheLastBucketSaturate) {
  runtime::LatencyHistogram h;
  h.record(std::numeric_limits<std::uint64_t>::max());
  h.record(1);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.max_ns, std::numeric_limits<std::uint64_t>::max());
  EXPECT_LE(snap.p99_ns, static_cast<double>(snap.max_ns));
  EXPECT_GE(snap.p99_ns, 1e15);  // landed in the top octave, not bucket 0
}

// --- backoff -------------------------------------------------------------

TEST(Backoff, SameStreamReplaysTheSameSchedule) {
  const runtime::BackoffConfig config{.seed = 42};
  runtime::Backoff a(config, 7);
  runtime::Backoff b(config, 7);
  runtime::Backoff other(config, 8);
  bool diverged = false;
  for (int i = 0; i < 8; ++i) {
    const auto da = a.next();
    EXPECT_EQ(da, b.next());
    diverged = diverged || (da != other.next());
  }
  EXPECT_TRUE(diverged);  // distinct streams decorrelate
  EXPECT_EQ(a.attempts(), 8u);
  a.reset(7);
  b.reset(7);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Backoff, DelaysGrowExponentiallyAndSaturateAtTheCap) {
  runtime::BackoffConfig config;
  config.base = std::chrono::nanoseconds{1'000};
  config.cap = std::chrono::nanoseconds{64'000};
  config.multiplier = 2.0;
  config.jitter = 0.0;  // deterministic ladder
  runtime::Backoff backoff(config);
  std::int64_t expected = 1'000;
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(backoff.next().count(), expected);
    expected *= 2;
  }
  // 2^6 * 1000 = 64000 hits the cap; everything after stays there.
  EXPECT_EQ(backoff.next().count(), 64'000);
  EXPECT_EQ(backoff.next().count(), 64'000);
}

TEST(Backoff, JitterStaysInsideTheConfiguredBand) {
  runtime::BackoffConfig config;
  config.base = std::chrono::nanoseconds{10'000};
  config.cap = std::chrono::nanoseconds{10'000};  // freeze raw at 10 us
  config.jitter = 0.5;
  config.seed = 3;
  runtime::Backoff backoff(config, 1);
  for (int i = 0; i < 64; ++i) {
    const std::int64_t d = backoff.next().count();
    EXPECT_GE(d, 5'000);   // raw * (1 - jitter)
    EXPECT_LT(d, 10'000);  // u < 1 keeps it strictly under raw
  }
}

// --- determinism: serial == parallel across the pipeline -----------------

TEST(Determinism, KMeansAssignmentIsThreadInvariant) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> coord(0.0, 1000.0);
  ml::Matrix x(4000, 2);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = coord(rng);
    x(i, 1) = coord(rng);
  }
  ml::KMeansConfig serial;
  serial.k = 7;
  serial.threads = 1;
  ml::KMeansConfig parallel = serial;
  parallel.threads = 8;
  const auto a = ml::kmeans(x, serial);
  const auto b = ml::kmeans(x, parallel);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.inertia, b.inertia);  // exact: reductions stay serial
  ASSERT_EQ(a.centroids.rows(), b.centroids.rows());
  for (std::size_t c = 0; c < a.centroids.rows(); ++c) {
    EXPECT_EQ(a.centroids(c, 0), b.centroids(c, 0));
    EXPECT_EQ(a.centroids(c, 1), b.centroids(c, 1));
  }
}

/// Synthetic two-region dataset (west occupied, east vacant).
campaign::ChannelDataset make_split_dataset(std::size_t n,
                                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 10'000.0);
  std::normal_distribution<double> jitter(0.0, 1.0);
  campaign::ChannelDataset ds;
  ds.channel = 30;
  ds.sensor_name = "synthetic";
  for (std::size_t i = 0; i < n; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{coord(rng), coord(rng)};
    const bool west = m.position.east_m < 5000.0;
    m.rss_dbm = (west ? -75.0 : -95.0) + jitter(rng);
    m.cft_db = (west ? -85.0 : -105.0) + jitter(rng);
    m.aft_db = (west ? -95.0 : -108.0) + jitter(rng);
    ds.readings.push_back(m);
  }
  return ds;
}

std::vector<int> split_labels(const campaign::ChannelDataset& ds) {
  std::vector<int> labels;
  labels.reserve(ds.size());
  for (const auto& m : ds.readings) {
    labels.push_back(m.position.east_m < 5000.0 ? ml::kNotSafe : ml::kSafe);
  }
  return labels;
}

TEST(Determinism, ModelBuildIsByteIdenticalAcrossThreadCounts) {
  const auto ds = make_split_dataset(900, 11);
  const auto labels = split_labels(ds);
  for (const char* kind : {"svm", "naive_bayes"}) {
    core::ModelConstructorConfig cfg;
    cfg.classifier = kind;
    cfg.num_localities = 5;
    cfg.num_features = 3;
    // Exercise the per-locality subsample RNG, the one stage whose
    // randomness the seed-splitting contract has to pin down.
    cfg.max_train_samples = 100;
    cfg.threads = 1;
    const auto serial = core::ModelConstructor(cfg).build(ds, labels);
    cfg.threads = 8;
    const auto parallel = core::ModelConstructor(cfg).build(ds, labels);
    EXPECT_EQ(serial.serialize(), parallel.serialize()) << kind;
  }
}

TEST(Determinism, CrossValidationIsThreadInvariant) {
  const auto ds = make_split_dataset(400, 12);
  const auto labels = split_labels(ds);
  ml::Matrix x(ds.size(), 3);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    x(i, 0) = ds.readings[i].position.east_m;
    x(i, 1) = ds.readings[i].position.north_m;
    x(i, 2) = ds.readings[i].rss_dbm;
  }
  const auto factory = [] { return core::make_classifier("naive_bayes"); };
  ml::CrossValidationConfig serial;
  serial.folds = 5;
  serial.max_train_samples = 150;
  serial.threads = 1;
  ml::CrossValidationConfig parallel = serial;
  parallel.threads = 8;
  const auto a = ml::cross_validate(x, labels, factory, serial);
  const auto b = ml::cross_validate(x, labels, factory, parallel);
  ASSERT_EQ(a.per_fold.size(), b.per_fold.size());
  for (std::size_t f = 0; f < a.per_fold.size(); ++f) {
    EXPECT_EQ(a.per_fold[f].true_safe, b.per_fold[f].true_safe);
    EXPECT_EQ(a.per_fold[f].false_safe, b.per_fold[f].false_safe);
    EXPECT_EQ(a.per_fold[f].true_not_safe, b.per_fold[f].true_not_safe);
    EXPECT_EQ(a.per_fold[f].false_not_safe, b.per_fold[f].false_not_safe);
  }
}

TEST(Determinism, CollectChannelIsThreadInvariantAndReproducible) {
  const rf::Environment env = rf::make_metro_environment();
  const geo::DrivePath route = campaign::standard_route(env, 300, 21);
  sensors::Sensor rtl(sensors::rtl_sdr_spec(), 3);
  rtl.calibrate();

  campaign::CollectOptions serial;
  serial.threads = 1;
  campaign::CollectOptions parallel;
  parallel.threads = 8;
  const auto a = campaign::collect_channel(env, rtl, 30, route.readings,
                                           serial);
  const auto b = campaign::collect_channel(env, rtl, 30, route.readings,
                                           parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.readings[i].raw, b.readings[i].raw) << i;
    EXPECT_EQ(a.readings[i].rss_dbm, b.readings[i].rss_dbm) << i;
    EXPECT_EQ(a.readings[i].cft_db, b.readings[i].cft_db) << i;
    EXPECT_EQ(a.readings[i].aft_db, b.readings[i].aft_db) << i;
  }
  // Different channels must not share noise streams.
  const auto other = campaign::collect_channel(env, rtl, 15, route.readings,
                                               serial);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size() && !any_different; ++i) {
    any_different = a.readings[i].raw != other.readings[i].raw;
  }
  EXPECT_TRUE(any_different);
}

TEST(Determinism, EstimatorBatchMatchesPointQueries) {
  const auto ds = make_split_dataset(300, 31);
  baselines::IdwDatabase idw;
  idw.fit(ds);
  std::vector<geo::EnuPoint> queries;
  for (std::size_t i = 0; i < ds.size(); i += 3) {
    queries.push_back(ds.readings[i].position);
  }
  const auto batch = idw.classify_batch(queries, 8);
  const auto rss = idw.predict_rss_batch(queries, 8);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch[i], idw.classify(queries[i]));
    EXPECT_EQ(rss[i], idw.predict_rss_dbm(queries[i]));
  }
}

}  // namespace
}  // namespace waldo
