#include <gtest/gtest.h>

#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/features.hpp"
#include "waldo/core/protocol.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/rf/environment.hpp"

namespace waldo::core {
namespace {

TEST(ProtocolWire, ModelRequestRoundTrip) {
  const ModelRequest request{.channel = 46,
                             .location = geo::EnuPoint{1234.5, -678.9}};
  const Message decoded = decode(encode(request));
  const auto* r = std::get_if<ModelRequest>(&decoded);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->channel, 46);
  EXPECT_DOUBLE_EQ(r->location.east_m, 1234.5);
  EXPECT_DOUBLE_EQ(r->location.north_m, -678.9);
}

TEST(ProtocolWire, UploadRequestRoundTrip) {
  UploadRequest request;
  request.channel = 30;
  request.contributor = "alice";
  for (int i = 0; i < 3; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{100.0 * i, 200.0 * i};
    m.rss_dbm = -90.0 - i;
    m.cft_db = -100.0 - i;
    m.aft_db = -105.0 - i;
    request.readings.push_back(m);
  }
  const Message decoded = decode(encode(request));
  const auto* r = std::get_if<UploadRequest>(&decoded);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->contributor, "alice");
  ASSERT_EQ(r->readings.size(), 3u);
  EXPECT_DOUBLE_EQ(r->readings[2].rss_dbm, -92.0);
  EXPECT_DOUBLE_EQ(r->readings[1].position.north_m, 200.0);
}

TEST(ProtocolWire, ResponsesRoundTrip) {
  const UploadResponse up{.accepted = 5, .rejected = 2, .pending = 1};
  const Message up_decoded = decode(encode(up));
  const auto* u = std::get_if<UploadResponse>(&up_decoded);
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->accepted, 5u);
  EXPECT_EQ(u->pending, 1u);

  const ErrorResponse err{.reason = "channel unavailable"};
  const Message decoded = decode(encode(err));
  const auto* e = std::get_if<ErrorResponse>(&decoded);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->reason, "channel unavailable");
}

TEST(ProtocolWire, RejectsMalformedInput) {
  EXPECT_THROW((void)decode("no header"), std::runtime_error);
  EXPECT_THROW((void)decode("HTTP/1.1 model_request 4\nabcd"),
               std::runtime_error);
  EXPECT_THROW((void)decode("WSNP/1 model_request 99\nshort"),
               std::runtime_error);
  EXPECT_THROW((void)decode("WSNP/1 bogus_type 0\n"), std::runtime_error);
  UploadRequest spaced;
  spaced.channel = 30;
  spaced.contributor = "two words";
  EXPECT_THROW((void)encode(spaced), std::invalid_argument);
}

// Regression: numeric header/body fields were parsed with std::stoi and
// unchecked stream extraction, so "46abc" decoded as 46, trailing bytes
// after a complete body were silently ignored, and a hostile upload count
// could drive a huge reserve. Every field is now parsed checked, with
// trailing garbage rejected.
TEST(ProtocolWire, RejectsNonNumericAndTrailingFields) {
  // Non-numeric channel in a model_response ("46abc" used to pass stoi).
  EXPECT_THROW((void)decode("WSNP/1 model_response 9\n46abc\nmdl"),
               std::runtime_error);
  // Non-numeric body length in the header.
  EXPECT_THROW((void)decode("WSNP/1 model_request 4x\n15 0 0\n"),
               std::runtime_error);
  // Trailing garbage after complete model_request fields.
  EXPECT_THROW((void)decode("WSNP/1 model_request 12\n15 0 0 junk\n"),
               std::runtime_error);
  // Trailing garbage after a complete upload_response.
  EXPECT_THROW((void)decode("WSNP/1 upload_response 12\n5 2 1 0 bad\n"),
               std::runtime_error);
  // Extra bytes between body and declared length are not ignored either.
  const std::string valid = encode(ModelRequest{.channel = 15});
  EXPECT_THROW((void)decode(valid + "extra"), std::runtime_error);
}

TEST(ProtocolWire, RejectsImplausibleUploadCount) {
  // Claims 999999 readings in a 3-byte body: must be rejected up front
  // (before any allocation), not trusted as a reserve size.
  EXPECT_THROW((void)decode("WSNP/1 upload_request 18\n15 eve 999999\n0 0\n"),
               std::runtime_error);
  // Count larger than the readings actually present.
  EXPECT_THROW(
      (void)decode("WSNP/1 upload_request 21\n15 eve 2\n1 2 3 4 5 6\n"),
      std::runtime_error);
}

// Upload requests carry a dedup identity and the client's location so a
// routing tier can address the right shard and recognise retries.
TEST(ProtocolWire, UploadRequestIdAndLocationRoundTrip) {
  UploadRequest request;
  request.channel = 15;
  request.contributor = "carol";
  request.request_id = 0xFEEDFACE12345678ull;
  request.location = geo::EnuPoint{-1250.25, 9876.5};
  const Message decoded = decode(encode(request));
  const auto* r = std::get_if<UploadRequest>(&decoded);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->request_id, 0xFEEDFACE12345678ull);
  EXPECT_DOUBLE_EQ(r->location.east_m, -1250.25);
  EXPECT_DOUBLE_EQ(r->location.north_m, 9876.5);
}

TEST(ProtocolWire, ErrorCodeAndChannelRoundTrip) {
  const ErrorResponse err{.reason = "channel 33 is not provisioned",
                          .code = ErrorCode::kUnknownChannel,
                          .channel = 33};
  const Message decoded = decode(encode(err));
  const auto* e = std::get_if<ErrorResponse>(&decoded);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->code, ErrorCode::kUnknownChannel);
  EXPECT_EQ(e->channel, 33);
  EXPECT_EQ(e->reason, "channel 33 is not provisioned");
}

TEST(ProtocolWire, LegacyErrorBodiesDecodeAsUnspecified) {
  // Pre-code servers sent the bare reason line. A reason whose first token
  // is not an integer must fall back to the legacy interpretation.
  const Message decoded = decode("WSNP/1 error 20\nchannel unavailable\n");
  const auto* e = std::get_if<ErrorResponse>(&decoded);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->code, ErrorCode::kUnspecified);
  EXPECT_EQ(e->channel, 0);
  EXPECT_EQ(e->reason, "channel unavailable");
}

TEST(ProtocolWire, RetryabilityPartitionsTheErrorCodes) {
  // A retry cannot fix a request the server understood and rejected…
  EXPECT_FALSE(is_retryable(ErrorCode::kUnspecified));
  EXPECT_FALSE(is_retryable(ErrorCode::kMalformed));
  EXPECT_FALSE(is_retryable(ErrorCode::kUnknownChannel));
  EXPECT_FALSE(is_retryable(ErrorCode::kBadRequest));
  EXPECT_FALSE(is_retryable(ErrorCode::kInternal));
  // …but placement and availability change under the client's feet.
  EXPECT_TRUE(is_retryable(ErrorCode::kNotOwner));
  EXPECT_TRUE(is_retryable(ErrorCode::kNotReady));
  EXPECT_TRUE(is_retryable(ErrorCode::kUnavailable));
}

TEST(ProtocolWire, UploadResponseTicketRoundTrips) {
  const UploadResponse up{
      .accepted = 3, .rejected = 1, .pending = 2, .ticket = 41};
  const Message decoded = decode(encode(up));
  const auto* u = std::get_if<UploadResponse>(&decoded);
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->ticket, 41u);
}

class ProtocolFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new rf::Environment(rf::make_metro_environment());
    const geo::DrivePath route = campaign::standard_route(*env_, 1200, 71);
    ModelConstructorConfig mc;
    mc.classifier = "naive_bayes";
    mc.num_features = 2;
    db_ = new SpectrumDatabase(mc);
    sensors::Sensor usrp(sensors::usrp_b200_spec(), 72);
    usrp.calibrate();
    db_->ingest_campaign(
        campaign::collect_channel(*env_, usrp, 46, route.readings));
  }
  static void TearDownTestSuite() {
    delete env_;
    delete db_;
    env_ = nullptr;
    db_ = nullptr;
  }
  static rf::Environment* env_;
  static SpectrumDatabase* db_;
};

rf::Environment* ProtocolFixture::env_ = nullptr;
SpectrumDatabase* ProtocolFixture::db_ = nullptr;

TEST_F(ProtocolFixture, ClientFetchesWorkingModelThroughServer) {
  ProtocolServer server(*db_);
  ProtocolClient client(
      [&server](const std::string& wire) { return server.handle(wire); });

  const WhiteSpaceModel model =
      client.fetch_model(46, geo::EnuPoint{5000.0, 5000.0});
  EXPECT_EQ(model.channel(), 46);
  // The transported model is usable.
  const auto row = feature_row(geo::EnuPoint{5000.0, 5000.0}, -86.0, -97.0,
                               -99.0, model.num_features());
  const int decision = model.predict(row);
  EXPECT_TRUE(decision == ml::kSafe || decision == ml::kNotSafe);
  EXPECT_EQ(db_->stats().model_downloads, 1u);
}

TEST_F(ProtocolFixture, UnknownChannelYieldsProtocolError) {
  ProtocolServer server(*db_);
  ProtocolClient client(
      [&server](const std::string& wire) { return server.handle(wire); });
  EXPECT_THROW((void)client.fetch_model(33, geo::EnuPoint{0.0, 0.0}),
               std::runtime_error);
}

TEST_F(ProtocolFixture, UploadsFlowThroughTheProtocol) {
  ProtocolServer server(*db_);
  ProtocolClient client(
      [&server](const std::string& wire) { return server.handle(wire); });

  std::vector<campaign::Measurement> readings(
      db_->dataset(46).readings.begin(),
      db_->dataset(46).readings.begin() + 10);
  for (auto& m : readings) m.position.east_m += 30.0;
  const UploadResponse response = client.upload(46, "bob", readings);
  EXPECT_EQ(response.accepted + response.rejected + response.pending, 10u);
  EXPECT_GT(response.accepted, 0u);
}

// Regression for the serving path: a failing request must come back with
// the machine-readable code AND the channel it failed on, so routers can
// distinguish "retry elsewhere" from "give up" without parsing prose.
TEST_F(ProtocolFixture, ServerErrorsCarryCodeAndFailingChannel) {
  ProtocolServer server(*db_);

  const Message model_err =
      decode(server.handle(encode(ModelRequest{.channel = 33})));
  const auto* e1 = std::get_if<ErrorResponse>(&model_err);
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(e1->code, ErrorCode::kUnknownChannel);
  EXPECT_EQ(e1->channel, 33);
  EXPECT_FALSE(is_retryable(e1->code));

  UploadRequest upload;
  upload.channel = 34;
  upload.contributor = "mallory";
  const Message upload_err = decode(server.handle(encode(upload)));
  const auto* e2 = std::get_if<ErrorResponse>(&upload_err);
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(e2->code, ErrorCode::kUnknownChannel);
  EXPECT_EQ(e2->channel, 34);

  const Message garbage_err = decode(server.handle("complete garbage"));
  const auto* e3 = std::get_if<ErrorResponse>(&garbage_err);
  ASSERT_NE(e3, nullptr);
  EXPECT_EQ(e3->code, ErrorCode::kMalformed);

  const Message wrong_err =
      decode(server.handle(encode(UploadResponse{.accepted = 1})));
  const auto* e4 = std::get_if<ErrorResponse>(&wrong_err);
  ASSERT_NE(e4, nullptr);
  EXPECT_EQ(e4->code, ErrorCode::kBadRequest);
}

TEST_F(ProtocolFixture, ServerSurvivesGarbageAndWrongMessages) {
  ProtocolServer server(*db_);
  // Garbage in, error message out — never an exception.
  const Message reply = decode(server.handle("complete garbage"));
  EXPECT_NE(std::get_if<ErrorResponse>(&reply), nullptr);
  // A response message sent as a request is answered with an error too.
  const Message reply2 =
      decode(server.handle(encode(UploadResponse{.accepted = 1})));
  EXPECT_NE(std::get_if<ErrorResponse>(&reply2), nullptr);
}

}  // namespace
}  // namespace waldo::core
