#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "waldo/ml/cross_validation.hpp"
#include "waldo/ml/naive_bayes.hpp"
#include "waldo/ml/svm.hpp"

namespace waldo::ml {
namespace {

TEST(KFold, PartitionCoversAllIndicesExactlyOnce) {
  const auto folds = kfold_indices(103, 10, 5);
  ASSERT_EQ(folds.size(), 10u);
  std::vector<std::size_t> all;
  for (const auto& f : folds) {
    EXPECT_GE(f.size(), 10u);
    EXPECT_LE(f.size(), 11u);
    all.insert(all.end(), f.begin(), f.end());
  }
  std::sort(all.begin(), all.end());
  std::vector<std::size_t> want(103);
  std::iota(want.begin(), want.end(), std::size_t{0});
  EXPECT_EQ(all, want);
}

TEST(KFold, DeterministicPerSeed) {
  EXPECT_EQ(kfold_indices(50, 5, 1), kfold_indices(50, 5, 1));
  EXPECT_NE(kfold_indices(50, 5, 1), kfold_indices(50, 5, 2));
}

TEST(KFold, Validation) {
  EXPECT_THROW(kfold_indices(10, 1, 1), std::invalid_argument);
  EXPECT_THROW(kfold_indices(3, 10, 1), std::invalid_argument);
}

void make_blobs(std::size_t n, double gap, std::uint64_t seed, Matrix& x,
                std::vector<int>& y) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  x = Matrix(n, 2);
  y.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const bool safe = i % 2 == 0;
    x(i, 0) = g(rng) + (safe ? gap : -gap);
    x(i, 1) = g(rng);
    y[i] = safe ? kSafe : kNotSafe;
  }
}

TEST(CrossValidate, EvaluatesEveryPointExactlyOnce) {
  Matrix x;
  std::vector<int> y;
  make_blobs(250, 2.5, 3, x, y);
  const auto result = cross_validate(
      x, y, [] { return std::make_unique<GaussianNaiveBayes>(); });
  EXPECT_EQ(result.overall.total(), 250u);
  EXPECT_EQ(result.per_fold.size(), 10u);
  std::size_t sum = 0;
  for (const auto& f : result.per_fold) sum += f.total();
  EXPECT_EQ(sum, 250u);
  EXPECT_LT(result.overall.error_rate(), 0.05);
}

TEST(CrossValidate, TrainingCapStillCoversAllTests) {
  Matrix x;
  std::vector<int> y;
  make_blobs(300, 2.0, 4, x, y);
  CrossValidationConfig cfg;
  cfg.max_train_samples = 50;
  const auto result = cross_validate(
      x, y, [] { return std::make_unique<GaussianNaiveBayes>(); }, cfg);
  EXPECT_EQ(result.overall.total(), 300u);
  EXPECT_LT(result.overall.error_rate(), 0.1);
}

TEST(CrossValidate, SizeMismatchThrows) {
  Matrix x = Matrix::from_rows({{1.0}, {2.0}});
  const std::vector<int> y{kSafe};
  EXPECT_THROW(
      cross_validate(x, y,
                     [] { return std::make_unique<GaussianNaiveBayes>(); }),
      std::invalid_argument);
}

TEST(TrainingFraction, MoreDataHelpsOnHardProblem) {
  Matrix x;
  std::vector<int> y;
  make_blobs(2000, 1.0, 6, x, y);
  const auto factory = [] {
    SvmConfig cfg;
    cfg.c = 1.0;
    return std::make_unique<Svm>(cfg);
  };
  double err_small = 0.0, err_large = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    err_small += evaluate_training_fraction(x, y, factory, 0.02, 0.1, seed)
                     .error_rate();
    err_large += evaluate_training_fraction(x, y, factory, 0.9, 0.1, seed)
                     .error_rate();
  }
  EXPECT_LE(err_large, err_small + 0.02);
}

TEST(TrainingFraction, FractionClampedAndReproducible) {
  Matrix x;
  std::vector<int> y;
  make_blobs(200, 2.0, 7, x, y);
  const auto factory = [] {
    return std::make_unique<GaussianNaiveBayes>();
  };
  const auto a = evaluate_training_fraction(x, y, factory, 2.0, 0.1, 9);
  const auto b = evaluate_training_fraction(x, y, factory, 1.0, 0.1, 9);
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.error_rate(), b.error_rate());
}

class FoldCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FoldCountSweep, AnyFoldCountCoversData) {
  Matrix x;
  std::vector<int> y;
  make_blobs(120, 2.0, 8, x, y);
  CrossValidationConfig cfg;
  cfg.folds = GetParam();
  const auto result = cross_validate(
      x, y, [] { return std::make_unique<GaussianNaiveBayes>(); }, cfg);
  EXPECT_EQ(result.overall.total(), 120u);
  EXPECT_EQ(result.per_fold.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Folds, FoldCountSweep,
                         ::testing::Values(2, 5, 10, 12));

}  // namespace
}  // namespace waldo::ml
