#include <gtest/gtest.h>

#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/database.hpp"
#include "waldo/device/phone.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/rf/environment.hpp"

namespace waldo::device {
namespace {

class PhoneFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new rf::Environment(rf::make_metro_environment());
    const geo::DrivePath route = campaign::standard_route(*env_, 2000, 31);
    core::ModelConstructorConfig cfg;
    cfg.classifier = "naive_bayes";
    cfg.num_localities = 3;
    cfg.num_features = 2;
    db_ = new core::SpectrumDatabase(cfg);
    sensors::Sensor usrp(sensors::usrp_b200_spec(), 32);
    usrp.calibrate();
    for (const int ch : {17, 27, 46}) {
      db_->ingest_campaign(
          campaign::collect_channel(*env_, usrp, ch, route.readings));
    }
  }
  static void TearDownTestSuite() {
    delete env_;
    delete db_;
    env_ = nullptr;
    db_ = nullptr;
  }

  static sensors::Sensor make_phone_sensor(std::uint64_t seed) {
    sensors::Sensor s(phone_rtl_sdr_spec(), seed);
    s.calibrate();
    return s;
  }

  static rf::Environment* env_;
  static core::SpectrumDatabase* db_;
};

rf::Environment* PhoneFixture::env_ = nullptr;
core::SpectrumDatabase* PhoneFixture::db_ = nullptr;

TEST_F(PhoneFixture, RequiresCalibratedSensor) {
  sensors::Sensor raw(phone_rtl_sdr_spec(), 33);
  EXPECT_THROW(PhoneRuntime(PhoneConfig{}, std::move(raw)),
               std::invalid_argument);
}

TEST_F(PhoneFixture, EnsureModelsDownloadsOncePerChannel) {
  PhoneRuntime phone(PhoneConfig{}, make_phone_sensor(34));
  const std::vector<int> channels{17, 46};
  const std::size_t bytes = phone.ensure_models(*db_, channels);
  EXPECT_GT(bytes, 0u);
  EXPECT_TRUE(phone.has_model(17));
  EXPECT_TRUE(phone.has_model(46));
  EXPECT_FALSE(phone.has_model(27));
  // Second call is a no-op.
  EXPECT_EQ(phone.ensure_models(*db_, channels), 0u);
  EXPECT_EQ(phone.bytes_downloaded(), bytes);
}

TEST_F(PhoneFixture, ScanWithoutModelThrows) {
  PhoneRuntime phone(PhoneConfig{}, make_phone_sensor(35));
  EXPECT_THROW(phone.scan_channel(*env_, 17, geo::EnuPoint{100.0, 100.0}),
               std::logic_error);
}

TEST_F(PhoneFixture, StationaryScanConverges) {
  PhoneConfig cfg;
  cfg.cache_constant_channels = false;  // force a real scan of channel 27
  PhoneRuntime phone(cfg, make_phone_sensor(36));
  const std::vector<int> channels{27};
  phone.ensure_models(*db_, channels);
  const ChannelScan scan =
      phone.scan_channel(*env_, 27, geo::EnuPoint{13'000.0, 13'000.0});
  EXPECT_TRUE(scan.converged);
  EXPECT_GE(scan.readings_used, 5u);
  EXPECT_GT(scan.acquisition_time_s, 0.0);
  EXPECT_GT(scan.processing_time_s, 0.0);
  EXPECT_GT(scan.convergence_time_s(), scan.processing_time_s);
  // Downtown on the blanket channel must be not-safe.
  EXPECT_EQ(scan.decision, ml::kNotSafe);
}

TEST_F(PhoneFixture, StationaryConvergenceIsSubSecond) {
  PhoneRuntime phone(PhoneConfig{}, make_phone_sensor(37));
  phone.ensure_models(*db_, std::vector<int>{17});
  double total = 0.0;
  for (int i = 0; i < 10; ++i) {
    const ChannelScan scan =
        phone.scan_channel(*env_, 17, geo::EnuPoint{5000.0, 5000.0});
    EXPECT_TRUE(scan.converged);
    total += scan.convergence_time_s();
  }
  EXPECT_LT(total / 10.0, 1.0);  // paper: ~0.19 s mean
}

TEST_F(PhoneFixture, MobileScanMayFailToConverge) {
  PhoneConfig cfg;
  cfg.cache_constant_channels = false;
  cfg.detector.alpha_db = 0.2;
  cfg.detector.max_samples = 40;
  PhoneRuntime phone(cfg, make_phone_sensor(38));
  phone.ensure_models(*db_, std::vector<int>{46});
  std::size_t failures = 0;
  for (int i = 0; i < 8; ++i) {
    // Driving at 25 m/s across the coverage gradient.
    const ChannelScan scan = phone.scan_channel_mobile(
        *env_, 46, geo::EnuPoint{8000.0 + i * 500.0, 20'000.0}, 25.0, 0.0);
    if (!scan.converged) {
      ++failures;
      // Non-convergence falls back to the conservative decision.
      EXPECT_EQ(scan.decision, ml::kNotSafe);
    }
  }
  EXPECT_GT(failures, 0u);
}

TEST_F(PhoneFixture, ScanCycleAggregatesBusyTime) {
  PhoneRuntime phone(PhoneConfig{}, make_phone_sensor(39));
  const std::vector<int> channels{17, 27, 46};
  phone.ensure_models(*db_, channels);
  const ScanReport report =
      phone.scan_cycle(*env_, channels, geo::EnuPoint{10'000.0, 10'000.0});
  ASSERT_EQ(report.channels.size(), 3u);
  double busy = 0.0;
  for (const ChannelScan& s : report.channels) busy += s.convergence_time_s();
  EXPECT_NEAR(report.busy_time_s, busy, 1e-9);
  EXPECT_GT(report.cpu_active_fraction(), 0.0);
  EXPECT_LT(report.cpu_active_fraction(), 1.0);
  EXPECT_LT(report.cpu_duty_fraction(60.0), report.cpu_active_fraction());
}

TEST_F(PhoneFixture, PhoneSensorSpecIsNoisierRtl) {
  const sensors::SensorSpec phone_spec = phone_rtl_sdr_spec();
  const sensors::SensorSpec bench_spec = sensors::rtl_sdr_spec();
  EXPECT_EQ(phone_spec.pilot_floor_dbm, bench_spec.pilot_floor_dbm);
  EXPECT_GT(phone_spec.gain_jitter_db, bench_spec.gain_jitter_db);
}

TEST_F(PhoneFixture, ConstantChannelDecisionIsCached) {
  PhoneRuntime phone(PhoneConfig{}, make_phone_sensor(41));
  phone.ensure_models(*db_, std::vector<int>{27, 46});
  // Channel 27 blankets the region: its model is an area-wide constant and
  // the decision is served without sensing.
  const ChannelScan cached =
      phone.scan_channel(*env_, 27, geo::EnuPoint{13'000.0, 13'000.0});
  EXPECT_TRUE(cached.cached);
  EXPECT_EQ(cached.readings_used, 0u);
  EXPECT_DOUBLE_EQ(cached.acquisition_time_s, 0.0);
  EXPECT_EQ(cached.decision, ml::kNotSafe);
  // Channel 46 has both classes: it must be sensed.
  const ChannelScan sensed =
      phone.scan_channel(*env_, 46, geo::EnuPoint{13'000.0, 13'000.0});
  EXPECT_FALSE(sensed.cached);
  EXPECT_GT(sensed.readings_used, 0u);
}

TEST_F(PhoneFixture, CachingShortensScanCycles) {
  PhoneConfig cached_cfg;
  PhoneConfig uncached_cfg;
  uncached_cfg.cache_constant_channels = false;
  PhoneRuntime fast(cached_cfg, make_phone_sensor(42));
  PhoneRuntime slow(uncached_cfg, make_phone_sensor(42));
  const std::vector<int> channels{17, 27, 46};
  fast.ensure_models(*db_, channels);
  slow.ensure_models(*db_, channels);
  const geo::EnuPoint p{10'000.0, 10'000.0};
  const ScanReport a = fast.scan_cycle(*env_, channels, p);
  const ScanReport b = slow.scan_cycle(*env_, channels, p);
  EXPECT_LT(a.busy_time_s, b.busy_time_s);
}

TEST_F(PhoneFixture, InstallModelReplacesExisting) {
  PhoneRuntime phone(PhoneConfig{}, make_phone_sensor(40));
  phone.ensure_models(*db_, std::vector<int>{17});
  // Installing a fresh copy for the same channel must not throw and keeps
  // the channel available.
  phone.install_model(
      core::WhiteSpaceModel::deserialize(db_->download_model(17)));
  EXPECT_TRUE(phone.has_model(17));
}

}  // namespace
}  // namespace waldo::device
