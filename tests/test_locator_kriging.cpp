#include <gtest/gtest.h>

#include <random>

#include "waldo/baselines/kriging.hpp"
#include "waldo/campaign/labeling.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/transmitter_locator.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/rf/environment.hpp"

namespace waldo {
namespace {

// ---------------------------------------------------------------- locator

campaign::ChannelDataset synthetic_field(const geo::EnuPoint& tx,
                                         double intercept, double exponent,
                                         double noise_db,
                                         std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 26'500.0);
  std::normal_distribution<double> noise(0.0, noise_db);
  campaign::ChannelDataset ds;
  ds.channel = 30;
  for (int i = 0; i < 1200; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{coord(rng), coord(rng)};
    const double d_km =
        std::max(0.05, geo::distance_m(m.position, tx) / 1000.0);
    m.rss_dbm = intercept - 10.0 * exponent * std::log10(d_km) + noise(rng);
    ds.readings.push_back(m);
  }
  return ds;
}

TEST(TransmitterLocator, RecoversExactSyntheticSource) {
  const geo::EnuPoint tx{-20'000.0, 13'000.0};  // outside the drive box
  const auto ds = synthetic_field(tx, -40.0, 3.3, 0.0, 1);
  const auto estimate = core::locate_transmitter(ds);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_LT(geo::distance_m(estimate->position, tx), 1500.0);
  EXPECT_NEAR(estimate->path_loss_exponent, 3.3, 0.15);
  EXPECT_NEAR(estimate->intercept_dbm, -40.0, 2.0);
  EXPECT_LT(estimate->rmse_db, 0.5);
}

TEST(TransmitterLocator, ToleratesMeasurementNoise) {
  const geo::EnuPoint tx{35'000.0, 5000.0};
  const auto ds = synthetic_field(tx, -42.0, 3.0, 2.0, 2);
  const auto estimate = core::locate_transmitter(ds);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_LT(geo::distance_m(estimate->position, tx), 6000.0);
  // Noise flattens the joint position/slope fit; the exponent estimate is
  // biased low but must stay physically plausible.
  EXPECT_GT(estimate->path_loss_exponent, 1.2);
  EXPECT_LT(estimate->path_loss_exponent, 4.5);
}

TEST(TransmitterLocator, RefusesDarkChannel) {
  campaign::ChannelDataset ds;
  ds.channel = 20;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> coord(0.0, 10'000.0);
  for (int i = 0; i < 500; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{coord(rng), coord(rng)};
    m.rss_dbm = -95.0;  // everything at the floor
    ds.readings.push_back(m);
  }
  EXPECT_FALSE(core::locate_transmitter(ds).has_value());
}

TEST(TransmitterLocator, FindsTheMetroEnvironmentTower) {
  // End-to-end (Section 6 monitoring application): locate channel 46's
  // tower from an analyzer campaign. Deep-dynamic-range readings are the
  // point — the analyzer sees the RSS gradient across the whole region,
  // while a low-cost sensor's floor saturates all but a narrow strip,
  // leaving the range unidentifiable.
  const rf::Environment env = rf::make_metro_environment();
  const geo::DrivePath route = campaign::standard_route(env, 3000, 81);
  sensors::Sensor analyzer(sensors::spectrum_analyzer_spec(), 82);
  const auto ds = campaign::collect_channel(env, analyzer, 46,
                                            route.readings);
  core::LocatorConfig cfg;
  cfg.min_rss_dbm = -105.0;  // analyzer floor is far below this
  const auto estimate = core::locate_transmitter(ds, cfg);
  ASSERT_TRUE(estimate.has_value());
  const geo::EnuPoint truth = env.transmitters_on(46).front()->location;
  // Shadowing, obstruction pockets and the one-sided geometry (all
  // readings south of the tower) bound the achievable precision; the
  // estimate must land in the tower's neighbourhood and clearly beat the
  // naive centroid-of-strong-readings guess.
  const double error_m = geo::distance_m(estimate->position, truth);
  EXPECT_LT(error_m, 12'000.0);
  geo::EnuPoint centroid{0.0, 0.0};
  std::size_t strong = 0;
  for (const campaign::Measurement& m : ds.readings) {
    if (m.rss_dbm < -105.0) continue;
    centroid.east_m += m.position.east_m;
    centroid.north_m += m.position.north_m;
    ++strong;
  }
  centroid.east_m /= static_cast<double>(strong);
  centroid.north_m /= static_cast<double>(strong);
  EXPECT_LT(error_m, geo::distance_m(centroid, truth));
  EXPECT_GT(estimate->path_loss_exponent, 1.5);
  EXPECT_LT(estimate->path_loss_exponent, 6.0);
  EXPECT_GT(estimate->readings_used, 1000u);
}

// ---------------------------------------------------------------- kriging

TEST(LinearSolver, SolvesKnownSystems) {
  // 2x2: x = 2, y = 3.
  std::vector<double> a{1.0, 1.0, 1.0, -1.0};
  std::vector<double> b{5.0, -1.0};
  ASSERT_TRUE(baselines::solve_linear_system(a, b, 2));
  EXPECT_NEAR(b[0], 2.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
  // Singular system is reported, not crashed on.
  std::vector<double> s{1.0, 2.0, 2.0, 4.0};
  std::vector<double> sb{1.0, 2.0};
  EXPECT_FALSE(baselines::solve_linear_system(s, sb, 2));
  std::vector<double> bad(3, 0.0);
  EXPECT_THROW((void)baselines::solve_linear_system(bad, sb, 2),
               std::invalid_argument);
}

TEST(Variogram, ShapeAndFit) {
  const baselines::Variogram v{.nugget = 0.5, .sill = 4.0, .range_m = 800.0};
  EXPECT_DOUBLE_EQ(v(0.0), 0.0);
  EXPECT_GT(v(100.0), 0.5);               // nugget jump
  EXPECT_LT(v(100.0), v(1000.0));         // monotone
  EXPECT_NEAR(v(1e9), 4.5, 1e-6);         // sill + nugget asymptote

  // Fit recovers a synthetic exponential-correlated field's scales.
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> coord(0.0, 8000.0);
  std::vector<geo::EnuPoint> pos(900);
  std::vector<double> val(900);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    pos[i] = geo::EnuPoint{coord(rng), coord(rng)};
    // Smooth deterministic field + small noise: variance grows with lag.
    std::normal_distribution<double> noise(0.0, 0.3);
    val[i] = 5.0 * std::sin(pos[i].east_m / 2000.0) +
             5.0 * std::cos(pos[i].north_m / 2000.0) + noise(rng);
  }
  const baselines::Variogram fitted = baselines::fit_variogram(pos, val);
  EXPECT_GT(fitted.sill, 1.0);  // real spatial structure found
  EXPECT_GT(fitted.range_m, 200.0);
  EXPECT_THROW(
      (void)baselines::fit_variogram(
          std::vector<geo::EnuPoint>(3), std::vector<double>(3)),
      std::invalid_argument);
}

TEST(Kriging, ExactInterpolatorAtSamples) {
  // Kriging honours the data: predicting at a sample returns its value.
  campaign::ChannelDataset ds;
  ds.channel = 30;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> coord(0.0, 5000.0);
  for (int i = 0; i < 200; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{coord(rng), coord(rng)};
    m.rss_dbm = -80.0 - m.position.east_m / 500.0;
    ds.readings.push_back(m);
  }
  baselines::KrigingDatabase kriging;
  kriging.fit(ds);
  for (int i = 0; i < 200; i += 37) {
    EXPECT_NEAR(kriging.predict_rss_dbm(ds.readings[i].position),
                ds.readings[i].rss_dbm, 0.8);
  }
  // Interpolation between samples tracks the linear trend.
  EXPECT_NEAR(kriging.predict_rss_dbm(geo::EnuPoint{2500.0, 2500.0}),
              -85.0, 1.5);
}

TEST(Kriging, VarianceGrowsAwayFromData) {
  campaign::ChannelDataset ds;
  ds.channel = 30;
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<double> coord(0.0, 3000.0);
  std::normal_distribution<double> noise(0.0, 1.0);
  for (int i = 0; i < 150; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{coord(rng), coord(rng)};
    m.rss_dbm = -90.0 + noise(rng);
    ds.readings.push_back(m);
  }
  baselines::KrigingDatabase kriging;
  kriging.fit(ds);
  const auto near = kriging.predict(geo::EnuPoint{1500.0, 1500.0});
  const auto far = kriging.predict(geo::EnuPoint{60'000.0, 60'000.0});
  EXPECT_LT(near.variance, far.variance);
}

TEST(Kriging, ClassifyMatchesLabelsOnCampaignData) {
  const rf::Environment env = rf::make_metro_environment();
  const geo::DrivePath route = campaign::standard_route(env, 1500, 83);
  sensors::Sensor sa(sensors::spectrum_analyzer_spec(), 84);
  const auto ds = campaign::collect_channel(env, sa, 46, route.readings);
  const auto labels =
      campaign::label_readings(ds.positions(), ds.rss_values());
  baselines::KrigingDatabase kriging;
  kriging.fit(ds);
  ml::ConfusionMatrix cm;
  for (std::size_t i = 0; i < ds.size(); i += 3) {
    cm.add(kriging.classify(ds.readings[i].position), labels[i]);
  }
  // In-sample agreement should be strong (kriging interpolates the very
  // field the labels derive from).
  EXPECT_LT(cm.error_rate(), 0.1);
}

TEST(Kriging, ErrorsOnMisuse) {
  baselines::KrigingDatabase kriging;
  EXPECT_THROW((void)kriging.predict(geo::EnuPoint{0.0, 0.0}),
               std::logic_error);
  campaign::ChannelDataset tiny;
  tiny.channel = 30;
  tiny.readings.resize(3);
  EXPECT_THROW(kriging.fit(tiny), std::invalid_argument);
}

}  // namespace
}  // namespace waldo
