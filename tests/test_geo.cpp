#include <gtest/gtest.h>

#include <random>

#include "waldo/geo/drive_path.hpp"
#include "waldo/geo/grid_index.hpp"
#include "waldo/geo/latlon.hpp"

namespace waldo::geo {
namespace {

TEST(LatLon, HaversineKnownDistance) {
  // Atlanta city hall to Georgia Tech: ~3.6 km.
  const LatLon city_hall{33.7490, -84.3880};
  const LatLon gatech{33.7756, -84.3963};
  const double d = haversine_m(city_hall, gatech);
  EXPECT_NEAR(d, 3060.0, 300.0);
}

TEST(LatLon, HaversineZeroAndSymmetry) {
  const LatLon a{33.7, -84.4};
  const LatLon b{33.9, -84.1};
  EXPECT_DOUBLE_EQ(haversine_m(a, a), 0.0);
  EXPECT_DOUBLE_EQ(haversine_m(a, b), haversine_m(b, a));
}

TEST(LocalProjection, RoundTripIsAccurate) {
  const LocalProjection proj(LatLon{33.749, -84.388});
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> dlat(-0.12, 0.12);
  std::uniform_real_distribution<double> dlon(-0.15, 0.15);
  for (int i = 0; i < 200; ++i) {
    const LatLon p{33.749 + dlat(rng), -84.388 + dlon(rng)};
    const LatLon back = proj.to_latlon(proj.to_enu(p));
    EXPECT_NEAR(back.lat_deg, p.lat_deg, 1e-9);
    EXPECT_NEAR(back.lon_deg, p.lon_deg, 1e-9);
  }
}

TEST(LocalProjection, DistancesMatchHaversineAtMetroScale) {
  const LatLon origin{33.749, -84.388};
  const LocalProjection proj(origin);
  const LatLon p{33.85, -84.25};
  const double enu_d = distance_m(proj.to_enu(origin), proj.to_enu(p));
  const double hav_d = haversine_m(origin, p);
  EXPECT_NEAR(enu_d / hav_d, 1.0, 0.005);
}

TEST(BoundingBox, ExpandAndContains) {
  BoundingBox box{1e18, 1e18, -1e18, -1e18};
  box.expand(EnuPoint{0.0, 0.0});
  box.expand(EnuPoint{100.0, 50.0});
  EXPECT_TRUE(box.contains(EnuPoint{50.0, 25.0}));
  EXPECT_FALSE(box.contains(EnuPoint{150.0, 25.0}));
  EXPECT_DOUBLE_EQ(box.width_m(), 100.0);
  EXPECT_DOUBLE_EQ(box.height_m(), 50.0);
  EXPECT_DOUBLE_EQ(box.area_km2(), 100.0 * 50.0 / 1e6);
}

TEST(BoundingBox, OfRange) {
  const std::vector<EnuPoint> pts{{1.0, 2.0}, {-3.0, 5.0}, {4.0, -1.0}};
  const BoundingBox box = BoundingBox::of(pts);
  EXPECT_DOUBLE_EQ(box.min_east_m, -3.0);
  EXPECT_DOUBLE_EQ(box.max_east_m, 4.0);
  EXPECT_DOUBLE_EQ(box.min_north_m, -1.0);
  EXPECT_DOUBLE_EQ(box.max_north_m, 5.0);
}

class GridIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridIndexProperty, RadiusQueryMatchesBruteForce) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> coord(-5000.0, 5000.0);
  std::vector<EnuPoint> pts(400);
  for (auto& p : pts) p = EnuPoint{coord(rng), coord(rng)};
  const GridIndex index(pts, 700.0);

  std::uniform_real_distribution<double> radius(10.0, 4000.0);
  for (int q = 0; q < 20; ++q) {
    const EnuPoint center{coord(rng), coord(rng)};
    const double r = radius(rng);
    auto got = index.query_radius(center, r);
    std::sort(got.begin(), got.end());
    std::vector<std::size_t> want;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (distance_m(pts[i], center) <= r) want.push_back(i);
    }
    EXPECT_EQ(got, want);
  }
}

TEST_P(GridIndexProperty, NearestMatchesBruteForce) {
  std::mt19937_64 rng(GetParam() + 1000);
  std::uniform_real_distribution<double> coord(-3000.0, 3000.0);
  std::vector<EnuPoint> pts(150);
  for (auto& p : pts) p = EnuPoint{coord(rng), coord(rng)};
  const GridIndex index(pts, 400.0);
  for (int q = 0; q < 30; ++q) {
    const EnuPoint center{coord(rng), coord(rng)};
    const std::size_t got = index.nearest(center);
    std::size_t want = 0;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      if (distance_m(pts[i], center) < distance_m(pts[want], center)) {
        want = i;
      }
    }
    EXPECT_DOUBLE_EQ(distance_m(pts[got], center),
                     distance_m(pts[want], center));
  }
}

TEST_P(GridIndexProperty, KNearestSortedAndCorrectCount) {
  std::mt19937_64 rng(GetParam() + 2000);
  std::uniform_real_distribution<double> coord(-2000.0, 2000.0);
  std::vector<EnuPoint> pts(100);
  for (auto& p : pts) p = EnuPoint{coord(rng), coord(rng)};
  const GridIndex index(pts, 500.0);
  const EnuPoint center{coord(rng), coord(rng)};
  const auto got = index.k_nearest(center, 10);
  ASSERT_EQ(got.size(), 10u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(distance_m(pts[got[i - 1]], center),
              distance_m(pts[got[i]], center));
  }
  // The k-th neighbour must not be farther than any excluded point.
  const double kth = distance_m(pts[got.back()], center);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (std::find(got.begin(), got.end(), i) == got.end()) {
      EXPECT_GE(distance_m(pts[i], center) + 1e-9, kth);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexProperty,
                         ::testing::Values(1, 2, 3, 42, 1337));

TEST(GridIndex, EmptyAndEdgeCases) {
  const GridIndex empty({}, 100.0);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.query_radius(EnuPoint{0, 0}, 1000.0).empty());
  EXPECT_TRUE(empty.k_nearest(EnuPoint{0, 0}, 5).empty());
  EXPECT_THROW(GridIndex({}, 0.0), std::invalid_argument);
  EXPECT_THROW(GridIndex({}, -5.0), std::invalid_argument);

  const GridIndex single({EnuPoint{10.0, 20.0}}, 100.0);
  EXPECT_EQ(single.nearest(EnuPoint{1e6, 1e6}), 0u);
  EXPECT_TRUE(single.query_radius(EnuPoint{10.0, 20.0}, 0.0).size() == 1);
  EXPECT_TRUE(single.query_radius(EnuPoint{10.0, 21.0}, -1.0).empty());
}

TEST(DrivePath, ProducesRequestedReadings) {
  DrivePathConfig cfg;
  cfg.num_readings = 500;
  cfg.seed = 7;
  const DrivePath path = generate_drive_path(cfg);
  EXPECT_EQ(path.readings.size(), 500u);
  EXPECT_GT(path.total_length_m, 0.0);
  EXPECT_GT(path.blocks_visited, 10u);
}

TEST(DrivePath, ReadingsStayInRegion) {
  DrivePathConfig cfg;
  cfg.num_readings = 2000;
  cfg.seed = 9;
  const DrivePath path = generate_drive_path(cfg);
  for (const EnuPoint& p : path.readings) {
    EXPECT_GE(p.east_m, -1.0);
    EXPECT_GE(p.north_m, -1.0);
    EXPECT_LE(p.east_m, cfg.region_side_m + 1.0);
    EXPECT_LE(p.north_m, cfg.region_side_m + 1.0);
  }
}

TEST(DrivePath, ConsecutiveSpacingMatchesConfig) {
  DrivePathConfig cfg;
  cfg.num_readings = 300;
  cfg.reading_spacing_m = 120.0;
  const DrivePath path = generate_drive_path(cfg);
  // Consecutive readings are spaced along the path; straight-line distance
  // is at most the spacing (turns shorten it) and positive.
  for (std::size_t i = 1; i < path.readings.size(); ++i) {
    const double d = distance_m(path.readings[i - 1], path.readings[i]);
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, cfg.reading_spacing_m + 1e-6);
  }
}

TEST(DrivePath, DeterministicPerSeed) {
  DrivePathConfig cfg;
  cfg.num_readings = 100;
  cfg.seed = 11;
  const DrivePath a = generate_drive_path(cfg);
  const DrivePath b = generate_drive_path(cfg);
  ASSERT_EQ(a.readings.size(), b.readings.size());
  for (std::size_t i = 0; i < a.readings.size(); ++i) {
    EXPECT_EQ(a.readings[i], b.readings[i]);
  }
  cfg.seed = 12;
  const DrivePath c = generate_drive_path(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.readings.size(); ++i) {
    if (!(a.readings[i] == c.readings[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(DrivePath, RejectsSub20mSpacing) {
  DrivePathConfig cfg;
  cfg.reading_spacing_m = 15.0;  // under the decorrelation distance
  EXPECT_THROW(generate_drive_path(cfg), std::invalid_argument);
  cfg.reading_spacing_m = 150.0;
  cfg.block_m = 0.0;
  EXPECT_THROW(generate_drive_path(cfg), std::invalid_argument);
}

TEST(DrivePath, CoverageSeekingSpreadsOverTheRegion) {
  // The walk must spread instead of looping: with enough readings the
  // visited-blocks count approaches the driven-length upper bound.
  DrivePathConfig cfg;
  cfg.num_readings = 4000;
  cfg.seed = 21;
  const DrivePath path = generate_drive_path(cfg);
  const double blocks_driven = path.total_length_m / cfg.block_m;
  EXPECT_GT(static_cast<double>(path.blocks_visited), 0.5 * blocks_driven);
  // And the readings' bounding box covers a large share of the region.
  const BoundingBox box = BoundingBox::of(path.readings);
  EXPECT_GT(box.area_km2(),
            0.5 * cfg.region_side_m * cfg.region_side_m / 1e6);
}

TEST(DrivePath, LongerCampaignsVisitMoreBlocks) {
  DrivePathConfig small;
  small.num_readings = 500;
  small.seed = 22;
  DrivePathConfig large = small;
  large.num_readings = 4000;
  EXPECT_LT(generate_drive_path(small).blocks_visited,
            generate_drive_path(large).blocks_visited);
}

TEST(ThinByDistance, EnforcesMinimumPairwiseDistance) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> coord(0.0, 1000.0);
  std::vector<EnuPoint> pts(300);
  for (auto& p : pts) p = EnuPoint{coord(rng), coord(rng)};
  const auto kept = thin_by_distance(pts, 80.0);
  EXPECT_LT(kept.size(), pts.size());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    for (std::size_t j = i + 1; j < kept.size(); ++j) {
      EXPECT_GE(distance_m(kept[i], kept[j]), 80.0);
    }
  }
}

TEST(ThinByDistance, KeepsAllWhenAlreadySparse) {
  const std::vector<EnuPoint> pts{{0, 0}, {500, 0}, {0, 500}};
  EXPECT_EQ(thin_by_distance(pts, 100.0).size(), 3u);
}

}  // namespace
}  // namespace waldo::geo
