// End-to-end integration: war-drive -> central database -> model download
// -> on-device detection, validated against the analytic regulatory truth,
// plus the full baseline comparison on one channel.
#include <gtest/gtest.h>

#include "waldo/baselines/geo_database.hpp"
#include "waldo/baselines/vscope.hpp"
#include "waldo/campaign/truth.hpp"
#include "waldo/core/features.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/database.hpp"
#include "waldo/device/phone.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/rf/environment.hpp"

namespace waldo {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new rf::Environment(rf::make_metro_environment());
    route_ = new geo::DrivePath(campaign::standard_route(*env_, 1500, 51));
    sensors::Sensor usrp(sensors::usrp_b200_spec(), 52);
    usrp.calibrate();
    data_ = new campaign::ChannelDataset(
        campaign::collect_channel(*env_, usrp, 46, route_->readings));
  }
  static void TearDownTestSuite() {
    delete env_;
    delete route_;
    delete data_;
    env_ = nullptr;
    route_ = nullptr;
    data_ = nullptr;
  }
  static rf::Environment* env_;
  static geo::DrivePath* route_;
  static campaign::ChannelDataset* data_;
};

rf::Environment* EndToEnd::env_ = nullptr;
geo::DrivePath* EndToEnd::route_ = nullptr;
campaign::ChannelDataset* EndToEnd::data_ = nullptr;

TEST_F(EndToEnd, PhoneDecisionsApproximateRegulatoryTruth) {
  core::ModelConstructorConfig cfg;
  cfg.classifier = "svm";
  cfg.num_localities = 3;
  cfg.num_features = 3;
  cfg.max_train_samples = 800;
  core::SpectrumDatabase db(cfg);
  db.ingest_campaign(*data_);

  device::PhoneConfig phone_cfg;
  sensors::Sensor phone_sensor(device::phone_rtl_sdr_spec(), 53);
  phone_sensor.calibrate();
  device::PhoneRuntime phone(phone_cfg, std::move(phone_sensor));
  phone.ensure_models(db, std::vector<int>{46});

  const campaign::GroundTruthLabeler truth(*env_, 46);
  ml::ConfusionMatrix cm;
  std::mt19937_64 rng(54);
  std::uniform_real_distribution<double> coord(1000.0, 25'000.0);
  for (int i = 0; i < 60; ++i) {
    const geo::EnuPoint p{coord(rng), coord(rng)};
    const device::ChannelScan scan = phone.scan_channel(*env_, 46, p);
    cm.add(scan.decision, truth.label(p));
  }
  // Detection quality end-to-end: mostly correct, biased toward safety.
  EXPECT_LT(cm.error_rate(), 0.25);
  EXPECT_LT(cm.fp_rate(), 0.15);
}

TEST_F(EndToEnd, WaldoBeatsVScopeAndDatabaseOnEfficiency) {
  // The paper's headline comparison, one channel: error rate of Waldo
  // (location + signal features) vs V-Scope vs the conventional database,
  // all scored against Algorithm 1 labels on held-out readings.
  const auto labels =
      campaign::label_readings(data_->positions(), data_->rss_values());

  // Hold out every 5th reading for testing.
  campaign::ChannelDataset train;
  train.channel = data_->channel;
  train.sensor_name = data_->sensor_name;
  std::vector<int> train_labels;
  std::vector<std::size_t> test_idx;
  for (std::size_t i = 0; i < data_->size(); ++i) {
    if (i % 5 == 0) {
      test_idx.push_back(i);
    } else {
      train.readings.push_back(data_->readings[i]);
      train_labels.push_back(labels[i]);
    }
  }

  core::ModelConstructorConfig cfg;
  cfg.classifier = "svm";
  cfg.num_features = 3;
  cfg.num_localities = 1;
  cfg.max_train_samples = 800;
  const core::WhiteSpaceModel waldo =
      core::ModelConstructor(cfg).build(train, train_labels);

  baselines::VScope vscope;
  std::vector<geo::EnuPoint> txs;
  for (const rf::Transmitter* tx : env_->transmitters_on(46)) {
    txs.push_back(tx->location);
  }
  vscope.fit(train, txs);
  const baselines::GeoDatabase geo_db(*env_, 46);

  ml::ConfusionMatrix cm_waldo, cm_vscope, cm_db;
  for (const std::size_t i : test_idx) {
    const campaign::Measurement& m = data_->readings[i];
    const auto row =
        core::feature_row(m.position, m.rss_dbm, m.cft_db, m.aft_db, 3);
    cm_waldo.add(waldo.predict(row), labels[i]);
    cm_vscope.add(vscope.classify(m.position), labels[i]);
    cm_db.add(geo_db.classify(m.position), labels[i]);
  }

  EXPECT_LT(cm_waldo.error_rate(), cm_vscope.error_rate());
  EXPECT_LT(cm_waldo.error_rate(), cm_db.error_rate());
  EXPECT_LT(cm_waldo.fn_rate(), cm_db.fn_rate());
}

TEST_F(EndToEnd, CrowdsourcedUpdatesImproveCoverageStatistics) {
  core::ModelConstructorConfig cfg;
  cfg.classifier = "naive_bayes";
  core::SpectrumDatabase db(cfg);

  // Bootstrap with the first half of the campaign only.
  campaign::ChannelDataset half;
  half.channel = data_->channel;
  half.sensor_name = data_->sensor_name;
  half.readings.assign(data_->readings.begin(),
                       data_->readings.begin() + data_->size() / 2);
  db.ingest_campaign(half);
  const std::size_t before = db.dataset(46).size();

  // Devices upload the second half as they roam.
  const std::span<const campaign::Measurement> second(
      data_->readings.data() + data_->size() / 2,
      data_->size() - data_->size() / 2);
  const auto result = db.upload_measurements(46, second);
  // Uploads near the bootstrapped half are vouched and accepted; roaming
  // readings in unexplored areas wait for corroboration.
  // Promotions can only move readings from pending to accepted, so the
  // ledger still balances against the submitted batch.
  EXPECT_EQ(result.accepted + result.rejected + result.pending,
            second.size());
  // The drive pushes into unexplored blocks, so a large share is held for
  // corroboration; readings near the bootstrapped half are accepted.
  EXPECT_GT(result.accepted, 20u);
  EXPECT_GT(result.pending, 0u);
  EXPECT_EQ(db.dataset(46).size(), before + result.accepted);
  // A model still builds fine after the merge.
  EXPECT_NO_THROW(db.model(46));
}

TEST_F(EndToEnd, ModelDescriptorCoversAreaUnlikePerQueryDatabase) {
  // Section 5's overhead point: one downloaded descriptor answers queries
  // across the whole area; a conventional database needs one round trip
  // per location. Quantified: descriptor bytes vs bytes-per-query * N.
  core::ModelConstructorConfig cfg;
  cfg.classifier = "naive_bayes";
  cfg.num_features = 2;
  core::SpectrumDatabase db(cfg);
  db.ingest_campaign(*data_);
  const std::string descriptor = db.download_model(46);
  constexpr std::size_t kTypicalQueryBytes = 2048;  // "a few kBs" per query
  constexpr std::size_t kQueriesPerDay = 24 * 60;   // one per minute
  EXPECT_LT(descriptor.size(), kTypicalQueryBytes * kQueriesPerDay / 10);
}

}  // namespace
}  // namespace waldo
