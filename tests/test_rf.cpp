#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numbers>
#include <random>
#include <utility>

#include "waldo/rf/channels.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/rf/path_loss.hpp"
#include "waldo/rf/shadowing.hpp"
#include "waldo/rf/units.hpp"

namespace waldo::rf {
namespace {

TEST(Units, DbmMwRoundTrip) {
  for (const double dbm : {-120.0, -84.0, -30.0, 0.0, 20.0}) {
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-9);
  }
  EXPECT_DOUBLE_EQ(dbm_to_mw(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(10.0), 10.0);
}

TEST(Units, CombineDbmIsPowerSum) {
  const std::array<double, 2> equal{-90.0, -90.0};
  EXPECT_NEAR(combine_dbm(equal), -90.0 + 10.0 * std::log10(2.0), 1e-9);
  // A much weaker signal barely contributes.
  EXPECT_NEAR(add_dbm(-60.0, -100.0), -60.0, 0.01);
  EXPECT_NEAR(add_dbm(-100.0, -60.0), -60.0, 0.01);
}

TEST(Units, ThermalNoise) {
  // kTB at 290 K for 6 MHz: about -106.2 dBm.
  EXPECT_NEAR(thermal_noise_dbm(6e6), -106.2, 0.1);
}

TEST(Channels, UsChannelPlanFrequencies) {
  EXPECT_DOUBLE_EQ(channel_lower_edge_hz(2), 54e6);
  EXPECT_DOUBLE_EQ(channel_lower_edge_hz(7), 174e6);
  EXPECT_DOUBLE_EQ(channel_lower_edge_hz(14), 470e6);
  EXPECT_DOUBLE_EQ(channel_lower_edge_hz(51), 692e6);
  EXPECT_DOUBLE_EQ(channel_center_hz(14), 473e6);
  EXPECT_FALSE(is_valid_channel(1));
  EXPECT_FALSE(is_valid_channel(52));
  EXPECT_FALSE(is_valid_channel(0));
  for (const int ch : kPaperChannels) EXPECT_TRUE(is_valid_channel(ch));
}

TEST(Channels, PilotSitsJustAboveLowerEdge) {
  for (const int ch : kPaperChannels) {
    EXPECT_NEAR(channel_pilot_hz(ch) - channel_lower_edge_hz(ch), 309'440.6,
                1.0);
    EXPECT_LT(channel_pilot_hz(ch), channel_center_hz(ch));
  }
}

TEST(Channels, EvaluationSubsets) {
  // Evaluation channels exclude the two fully occupied ones (27, 39).
  for (const int ch : kEvaluationChannels) {
    EXPECT_NE(ch, 27);
    EXPECT_NE(ch, 39);
  }
  EXPECT_EQ(kPaperChannels.size(), 9u);
  EXPECT_EQ(kEvaluationChannels.size(), 7u);
  EXPECT_EQ(kCorrectedEvaluationChannels.size(), 4u);
}

class PathLossMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PathLossMonotone, LossIncreasesWithDistance) {
  const double f = channel_center_hz(GetParam());
  const FreeSpaceModel fs(f);
  const HataUrbanModel hata(f, 100.0, 2.0);
  const EgliModel egli(f, 100.0, 2.0);
  const LogDistanceModel logd(100.0, 1000.0, 3.5);
  const FccCurvesModel fcc(f, 100.0);
  const PathLossModel* models[] = {&fs, &hata, &egli, &logd, &fcc};
  for (const PathLossModel* m : models) {
    double prev = m->path_loss_db(50.0);
    for (double d = 100.0; d < 60'000.0; d *= 1.6) {
      const double cur = m->path_loss_db(d);
      EXPECT_GE(cur, prev - 1e-9);
      prev = cur;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperChannels, PathLossMonotone,
                         ::testing::ValuesIn(kPaperChannels));

TEST(PathLoss, FreeSpaceKnownValue) {
  // FSPL at 1 km, 600 MHz: 32.45 + 0 + 20 log10(600) = 88.01 dB.
  const FreeSpaceModel fs(600e6);
  EXPECT_NEAR(fs.path_loss_db(1000.0), 88.01, 0.05);
  // +20 dB per decade of distance.
  EXPECT_NEAR(fs.path_loss_db(10'000.0) - fs.path_loss_db(1000.0), 20.0,
              1e-6);
}

TEST(PathLoss, HataAntennaCorrectionIsPapersConstant) {
  // a(8 m) = 3.2 (log10(11.5*8))^2 - 4.97 ~ 7.4 dB -> the paper's 7.5 dB.
  EXPECT_NEAR(HataUrbanModel::antenna_correction_db(8.0), 7.4, 0.1);
  // a(h) grows with receiver height.
  EXPECT_LT(HataUrbanModel::antenna_correction_db(2.0),
            HataUrbanModel::antenna_correction_db(10.0));
}

TEST(PathLoss, HataHigherReceiverMeansLessLoss) {
  const double f = channel_center_hz(30);
  const HataUrbanModel low(f, 60.0, 2.0);
  const HataUrbanModel high(f, 60.0, 10.0);
  EXPECT_GT(low.path_loss_db(10'000.0), high.path_loss_db(10'000.0));
  EXPECT_NEAR(low.path_loss_db(10'000.0) - high.path_loss_db(10'000.0),
              HataUrbanModel::antenna_correction_db(10.0) -
                  HataUrbanModel::antenna_correction_db(2.0),
              1e-9);
}

TEST(PathLoss, LogDistanceExactForm) {
  const LogDistanceModel m(120.0, 1000.0, 3.0);
  EXPECT_DOUBLE_EQ(m.path_loss_db(1000.0), 120.0);
  EXPECT_NEAR(m.path_loss_db(10'000.0), 150.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.exponent(), 3.0);
}

TEST(PathLoss, FccCurvesUnderPredictLossVsTruthSetup) {
  const double f = channel_center_hz(30);
  // The database model (10 m receiver + optional clutter term) predicts
  // less loss than the 2 m campaign truth — the overprotection source.
  const HataUrbanModel truth(f, 60.0, 2.0);
  const FccCurvesModel db(f, 60.0, 3.0);
  EXPECT_LT(db.path_loss_db(15'000.0), truth.path_loss_db(15'000.0));
}

TEST(Shadowing, StatisticsMatchConfiguration) {
  const geo::BoundingBox region{0.0, 0.0, 20'000.0, 20'000.0};
  const ShadowingField field(region, 100.0, 5.0, 300.0, 99);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> coord(0.0, 20'000.0);
  double sum = 0.0, ss = 0.0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    const double v = field.sample_db(geo::EnuPoint{coord(rng), coord(rng)});
    sum += v;
    ss += v * v;
  }
  const double mean = sum / kN;
  const double stddev = std::sqrt(ss / kN - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.5);
  EXPECT_NEAR(stddev, 5.0, 0.8);
}

TEST(Shadowing, CorrelationDecaysWithDistance) {
  const geo::BoundingBox region{0.0, 0.0, 30'000.0, 30'000.0};
  const ShadowingField field(region, 100.0, 5.0, 400.0, 7);
  std::mt19937_64 rng(8);
  std::uniform_real_distribution<double> coord(2000.0, 28'000.0);
  const auto corr_at = [&](double lag) {
    double sxy = 0.0, sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0;
    constexpr int kN = 8000;
    for (int i = 0; i < kN; ++i) {
      const geo::EnuPoint a{coord(rng), coord(rng)};
      const geo::EnuPoint b{a.east_m + lag, a.north_m};
      const double x = field.sample_db(a);
      const double y = field.sample_db(b);
      sx += x;
      sy += y;
      sxx += x * x;
      syy += y * y;
      sxy += x * y;
    }
    const double n = kN;
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    return cov / std::sqrt(vx * vy);
  };
  const double c_near = corr_at(100.0);
  const double c_mid = corr_at(400.0);
  const double c_far = corr_at(3000.0);
  EXPECT_GT(c_near, 0.6);
  EXPECT_GT(c_near, c_mid);
  EXPECT_GT(c_mid, c_far);
  EXPECT_LT(std::abs(c_far), 0.2);
}

TEST(Shadowing, DeterministicPerSeedAndClampsOutside) {
  const geo::BoundingBox region{0.0, 0.0, 5000.0, 5000.0};
  const ShadowingField a(region, 100.0, 4.0, 250.0, 3);
  const ShadowingField b(region, 100.0, 4.0, 250.0, 3);
  const ShadowingField c(region, 100.0, 4.0, 250.0, 4);
  const geo::EnuPoint p{1234.0, 4321.0};
  EXPECT_DOUBLE_EQ(a.sample_db(p), b.sample_db(p));
  EXPECT_NE(a.sample_db(p), c.sample_db(p));
  // Outside points clamp to edge values (finite, no crash).
  const double outside = a.sample_db(geo::EnuPoint{-1e6, 1e6});
  EXPECT_TRUE(std::isfinite(outside));
}

TEST(Shadowing, RejectsBadConfiguration) {
  const geo::BoundingBox region{0.0, 0.0, 1000.0, 1000.0};
  EXPECT_THROW(ShadowingField(region, 0.0, 5.0, 250.0, 1),
               std::invalid_argument);
  EXPECT_THROW(ShadowingField(region, 100.0, 5.0, 0.0, 1),
               std::invalid_argument);
  const geo::BoundingBox empty{0.0, 0.0, 0.0, 1000.0};
  EXPECT_THROW(ShadowingField(empty, 100.0, 5.0, 250.0, 1),
               std::invalid_argument);
}

TEST(Obstacles, AttenuationProfile) {
  const ObstacleField field({Obstacle{.center = geo::EnuPoint{0.0, 0.0},
                                      .radius_m = 1000.0,
                                      .attenuation_db = 20.0,
                                      .taper_m = 200.0}});
  EXPECT_DOUBLE_EQ(field.attenuation_db(geo::EnuPoint{0.0, 0.0}), 20.0);
  EXPECT_DOUBLE_EQ(field.attenuation_db(geo::EnuPoint{999.0, 0.0}), 20.0);
  const double mid = field.attenuation_db(geo::EnuPoint{1100.0, 0.0});
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 20.0);
  EXPECT_DOUBLE_EQ(field.attenuation_db(geo::EnuPoint{1300.0, 0.0}), 0.0);
}

TEST(Obstacles, OverlappingObstaclesSum) {
  const Obstacle o{.center = geo::EnuPoint{0.0, 0.0},
                   .radius_m = 500.0,
                   .attenuation_db = 10.0};
  const ObstacleField field({o, o});
  EXPECT_DOUBLE_EQ(field.attenuation_db(geo::EnuPoint{0.0, 0.0}), 20.0);
}

TEST(Obstacles, RandomFieldRespectsBounds) {
  const geo::BoundingBox region{0.0, 0.0, 10'000.0, 10'000.0};
  const ObstacleField field =
      ObstacleField::random(region, 25, 300.0, 900.0, 5.0, 15.0, 77);
  ASSERT_EQ(field.obstacles().size(), 25u);
  for (const Obstacle& o : field.obstacles()) {
    EXPECT_TRUE(region.contains(o.center));
    EXPECT_GE(o.radius_m, 300.0);
    EXPECT_LE(o.radius_m, 900.0);
    EXPECT_GE(o.attenuation_db, 5.0);
    EXPECT_LE(o.attenuation_db, 15.0);
  }
}

TEST(Environment, MetroEnvironmentHasPaperChannels) {
  const Environment env = make_metro_environment();
  for (const int ch : kPaperChannels) {
    EXPECT_FALSE(env.transmitters_on(ch).empty()) << "channel " << ch;
  }
  EXPECT_TRUE(env.transmitters_on(20).empty());
}

TEST(Environment, SignalStrongNearTowerWeakFar) {
  const Environment env = make_metro_environment();
  const Transmitter* tx = env.transmitters_on(27).front();
  const geo::EnuPoint near{tx->location.east_m + 500.0,
                           tx->location.north_m};
  const geo::EnuPoint far{tx->location.east_m + 200'000.0,
                          tx->location.north_m};
  EXPECT_GT(env.true_rss_dbm(27, near), env.true_rss_dbm(27, far));
  EXPECT_GT(env.true_rss_dbm(27, near), kDecodableThresholdDbm);
}

TEST(Environment, SilentChannelReturnsFloor) {
  const Environment env = make_metro_environment();
  EXPECT_LE(env.true_rss_dbm(20, geo::EnuPoint{13'000.0, 13'000.0}), -190.0);
}

TEST(Environment, AntennaCorrectionNearPaperConstant) {
  const Environment env = make_metro_environment();
  EXPECT_NEAR(env.antenna_correction_db(), 7.5, 0.3);
}

TEST(Environment, HigherAntennaSeesMore) {
  const Environment env = make_metro_environment();
  const geo::EnuPoint p{20'000.0, 13'000.0};
  EXPECT_GT(env.true_rss_dbm(15, p, 10.0), env.true_rss_dbm(15, p, 2.0));
}

TEST(Environment, RejectsInvalidChannelTransmitter) {
  EnvironmentConfig cfg;
  EXPECT_THROW(Environment(cfg, {Transmitter{.location = {}, .channel = 99}}),
               std::invalid_argument);
}

TEST(Environment, FullyOccupiedChannelsBlanketTheRegion) {
  // Channels 27/39 are decodable almost everywhere; the rare exceptions
  // are deep obstruction pockets, which Algorithm 1's 6 km dilation labels
  // not-safe anyway (checked in the campaign tests).
  const Environment env = make_metro_environment();
  std::mt19937_64 rng(21);
  std::uniform_real_distribution<double> coord(0.0, 26'500.0);
  for (const int ch : {27, 39}) {
    int decodable = 0;
    constexpr int kProbes = 200;
    for (int i = 0; i < kProbes; ++i) {
      const geo::EnuPoint p{coord(rng), coord(rng)};
      decodable += env.signal_decodable(ch, p) ? 1 : 0;
    }
    EXPECT_GT(decodable, static_cast<int>(0.9 * kProbes)) << "channel " << ch;
  }
}

TEST(Seasonal, VariantKeepsInfrastructureChangesSeason) {
  const Environment base = make_metro_environment();
  const Environment later = seasonal_variant(base);
  // Towers and buildings stay put...
  ASSERT_EQ(later.transmitters().size(), base.transmitters().size());
  for (std::size_t i = 0; i < base.transmitters().size(); ++i) {
    EXPECT_EQ(later.transmitters()[i].location,
              base.transmitters()[i].location);
  }
  ASSERT_EQ(later.obstacles().obstacles().size(),
            base.obstacles().obstacles().size());
  for (std::size_t i = 0; i < base.obstacles().obstacles().size(); ++i) {
    EXPECT_EQ(later.obstacles().obstacles()[i].center,
              base.obstacles().obstacles()[i].center);
    // ...but foliage deepens every obstruction.
    EXPECT_NEAR(later.obstacles().obstacles()[i].attenuation_db,
                base.obstacles().obstacles()[i].attenuation_db + 2.0, 1e-9);
  }
  // Small-scale shadowing re-rolls: point RSS differs...
  const geo::EnuPoint p{9000.0, 9000.0};
  EXPECT_NE(base.true_rss_dbm(46, p), later.true_rss_dbm(46, p));
  // ...but the large-scale field barely moves (same towers, same medians).
  double diff = 0.0;
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<double> coord(0.0, 26'500.0);
  constexpr int kProbes = 200;
  for (int i = 0; i < kProbes; ++i) {
    const geo::EnuPoint q{coord(rng), coord(rng)};
    diff += base.true_rss_dbm(46, q) - later.true_rss_dbm(46, q);
  }
  EXPECT_NEAR(std::abs(diff) / kProbes, 0.0, 1.5);
}

// The grid-bucketed obstacle query must agree bit for bit with a direct
// scan over every obstacle — same terms, same FP sum order.
TEST(ObstacleField, GridMatchesBruteForceBitForBit) {
  const geo::BoundingBox region{0.0, 0.0, 26'500.0, 26'500.0};
  const ObstacleField field =
      ObstacleField::random(region, 40, 600.0, 2'800.0, 12.0, 28.0, 77);

  const auto brute_force = [&field](const geo::EnuPoint& p) {
    double total = 0.0;
    for (const Obstacle& o : field.obstacles()) {
      const double d = geo::distance_m(p, o.center);
      if (d <= o.radius_m) {
        total += o.attenuation_db;
      } else if (d < o.radius_m + o.taper_m) {
        const double t = (d - o.radius_m) / o.taper_m;
        total += o.attenuation_db * 0.5 *
                 (1.0 + std::cos(std::numbers::pi * t));
      }
    }
    return total;
  };

  std::mt19937_64 rng(78);
  // Cover well beyond the region so out-of-grid points are exercised too.
  std::uniform_real_distribution<double> coord(-10'000.0, 36'500.0);
  for (int i = 0; i < 3000; ++i) {
    const geo::EnuPoint p{coord(rng), coord(rng)};
    ASSERT_EQ(field.attenuation_db(p), brute_force(p))
        << "(" << p.east_m << ", " << p.north_m << ")";
  }
  EXPECT_EQ(ObstacleField().attenuation_db({100.0, 100.0}), 0.0);
}

TEST(Environment, TransmittersOnServedFromIndex) {
  const Environment env = make_metro_environment();
  // The index must agree with a direct scan, in transmitter order.
  for (const int ch : kPaperChannels) {
    std::vector<const Transmitter*> expected;
    for (const Transmitter& tx : env.transmitters()) {
      if (tx.channel == ch) expected.push_back(&tx);
    }
    const auto& got = env.transmitters_on(ch);
    ASSERT_EQ(got.size(), expected.size()) << "channel " << ch;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "channel " << ch;
    }
    // Repeated calls serve the same cached vector, not a fresh allocation.
    EXPECT_EQ(&env.transmitters_on(ch), &got);
  }
  EXPECT_TRUE(env.transmitters_on(20).empty());
}

// Copies and moves must rebuild the channel index against their own
// transmitter storage (no dangling pointers into the source).
TEST(Environment, CopyAndMoveRebindTheIndex) {
  const Environment base = make_metro_environment();
  const Environment copy = base;  // NOLINT(performance-unnecessary-copy...)
  for (const Transmitter* tx : copy.transmitters_on(46)) {
    EXPECT_GE(tx, copy.transmitters().data());
    EXPECT_LT(tx, copy.transmitters().data() + copy.transmitters().size());
  }
  const geo::EnuPoint p{8'000.0, 12'000.0};
  EXPECT_EQ(copy.true_rss_dbm(46, p), base.true_rss_dbm(46, p));

  Environment moved = std::move(const_cast<Environment&>(copy));
  for (const Transmitter* tx : moved.transmitters_on(46)) {
    EXPECT_GE(tx, moved.transmitters().data());
    EXPECT_LT(tx, moved.transmitters().data() + moved.transmitters().size());
  }
  EXPECT_EQ(moved.true_rss_dbm(46, p), base.true_rss_dbm(46, p));
}

// An arbitrary receiver height (neither the campaign nor the reference
// height) takes the on-the-fly Hata fallback. It must be deterministic and
// sit between the two hoisted endpoints (Hata RSS grows with antenna
// height), confirming the fallback computes the same physics.
TEST(Environment, ArbitraryHeightFallback) {
  const Environment env = make_metro_environment();
  const geo::EnuPoint p{10'000.0, 6'000.0};
  const double h = 5.5;  // not 2 m, not 10 m
  EXPECT_EQ(env.true_rss_dbm(46, p, h), env.true_rss_dbm(46, p, h));
  EXPECT_GT(env.true_rss_dbm(46, p, 10.0), env.true_rss_dbm(46, p, 2.0));
  const double mid = env.true_rss_dbm(46, p, h);
  EXPECT_GT(mid, env.true_rss_dbm(46, p, 2.0));
  EXPECT_LT(mid, env.true_rss_dbm(46, p, 10.0));
}

// The hoisted Hata constants must not move any value: the model built once
// and queried many times equals per-call reconstruction.
TEST(PathLoss, HataHoistedConstantsBitIdentical) {
  for (const double f_hz : {470e6, 600e6, 700e6}) {
    for (const double hb : {40.0, 60.0, 150.0}) {
      for (const double hm : {1.5, 2.0, 5.5, 10.0}) {
        const HataUrbanModel once(f_hz, hb, hm);
        for (const double d : {50.0, 1'000.0, 12'345.0, 40'000.0}) {
          const HataUrbanModel fresh(f_hz, hb, hm);
          ASSERT_EQ(once.path_loss_db(d), fresh.path_loss_db(d));
        }
      }
    }
  }
}

}  // namespace
}  // namespace waldo::rf
