#include <gtest/gtest.h>

#include <random>

#include "waldo/rf/channels.hpp"
#include "waldo/sensors/calibration.hpp"
#include "waldo/sensors/sensor.hpp"

namespace waldo::sensors {
namespace {

TEST(Calibration, ExactLineIsRecovered) {
  std::vector<CalibrationSample> samples;
  for (double raw = -50.0; raw <= -20.0; raw += 5.0) {
    samples.push_back({.input_dbm = 1.25 * raw - 40.0, .raw_reading = raw});
  }
  const LinearCalibration cal = fit_calibration(samples);
  EXPECT_NEAR(cal.slope, 1.25, 1e-9);
  EXPECT_NEAR(cal.intercept, -40.0, 1e-9);
  EXPECT_NEAR(calibration_rms_error_db(cal, samples), 0.0, 1e-9);
}

TEST(Calibration, NoisyLineFitsWithinTolerance) {
  std::mt19937_64 rng(2);
  std::normal_distribution<double> noise(0.0, 0.3);
  std::vector<CalibrationSample> samples;
  for (double level = -80.0; level <= -30.0; level += 2.0) {
    for (int i = 0; i < 20; ++i) {
      samples.push_back(
          {.input_dbm = level, .raw_reading = 0.8 * level + 25.0 + noise(rng)});
    }
  }
  const LinearCalibration cal = fit_calibration(samples);
  EXPECT_NEAR(cal.to_dbm(0.8 * -55.0 + 25.0), -55.0, 0.2);
  EXPECT_LT(calibration_rms_error_db(cal, samples), 0.6);
}

TEST(Calibration, RejectsDegenerateInput) {
  EXPECT_THROW((void)fit_calibration(std::vector<CalibrationSample>{}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)fit_calibration(std::vector<CalibrationSample>{{-60.0, -40.0}}),
      std::invalid_argument);
  const std::vector<CalibrationSample> constant{{-60.0, -40.0},
                                                {-50.0, -40.0}};
  EXPECT_THROW((void)fit_calibration(constant), std::invalid_argument);
}

TEST(SensorSpecs, PaperSensitivities) {
  EXPECT_NEAR(rtl_sdr_spec().pilot_floor_dbm, -98.0, 1e-9);
  EXPECT_NEAR(usrp_b200_spec().pilot_floor_dbm, -103.0, 1e-9);
  // Analyzer floor sits below the -114 dBm channel requirement (it is the
  // only device that can implement sensing-only detection).
  EXPECT_LT(spectrum_analyzer_spec().pilot_floor_dbm +
                rf::kPilotToChannelCorrectionDb,
            rf::kSensingOnlyThresholdDbm);
  // The USRP reading CDF is visibly wider than the RTL's (Fig. 5).
  EXPECT_GT(usrp_b200_spec().gain_jitter_db, rtl_sdr_spec().gain_jitter_db);
}

TEST(Sensor, WiredReadingsMonotoneInInputAboveFloor) {
  Sensor rtl(rtl_sdr_spec(), 1);
  const auto mean_raw = [&](double level) {
    double acc = 0.0;
    for (int i = 0; i < 50; ++i) acc += rtl.measure_wired_raw(level);
    return acc / 50.0;
  };
  EXPECT_LT(mean_raw(-80.0), mean_raw(-70.0));
  EXPECT_LT(mean_raw(-70.0), mean_raw(-50.0));
}

TEST(Sensor, FloorSaturatesWeakInputs) {
  Sensor rtl(rtl_sdr_spec(), 2);
  // Two inputs far below the floor give statistically identical readings.
  double a = 0.0, b = 0.0;
  for (int i = 0; i < 300; ++i) {
    a += rtl.measure_wired_raw(-115.0);
    b += rtl.measure_wired_raw(-130.0);
  }
  EXPECT_NEAR(a / 300, b / 300, 0.15);
  // But -90 (above floor knee) is distinguishable from silence.
  double c = 0.0;
  for (int i = 0; i < 300; ++i) c += rtl.measure_wired_raw(-90.0);
  EXPECT_GT(c / 300, a / 300 + 0.3);
}

TEST(Sensor, UsrpDetectsDeeperThanRtl) {
  Sensor rtl(rtl_sdr_spec(), 3);
  Sensor usrp(usrp_b200_spec(), 4);
  const auto detect_gap = [](Sensor& s, double level) {
    double sig = 0.0, ref = 0.0;
    for (int i = 0; i < 400; ++i) {
      sig += s.measure_wired_raw(level);
      ref += s.measure_wired_raw(-200.0);
    }
    return (sig - ref) / 400.0 / s.spec().raw_slope;  // in dB units
  };
  // At -105 dBm the USRP still sees a clear gap; the RTL barely does.
  EXPECT_GT(detect_gap(usrp, -105.0), 1.0);
  EXPECT_LT(detect_gap(rtl, -105.0), 1.0);
  // At every level the USRP's gap over its silent baseline dominates.
  for (const double level : {-95.0, -100.0, -105.0}) {
    EXPECT_GT(detect_gap(usrp, level), detect_gap(rtl, level));
  }
}

TEST(Sensor, CalibrationSweepYieldsAccurateReadback) {
  for (const SensorSpec& spec : {rtl_sdr_spec(), usrp_b200_spec()}) {
    Sensor sensor(spec, 5);
    const LinearCalibration cal = sensor.calibrate();
    // Calibrated wired readback in the linear regime is accurate.
    for (const double level : {-75.0, -55.0, -35.0}) {
      double acc = 0.0;
      for (int i = 0; i < 100; ++i) {
        acc += cal.to_dbm(sensor.measure_wired_raw(level));
      }
      EXPECT_NEAR(acc / 100, level, 0.5) << spec.name;
    }
  }
}

TEST(Sensor, AnalyzerIsFactoryCalibrated) {
  Sensor analyzer(spectrum_analyzer_spec(), 6);
  EXPECT_TRUE(analyzer.calibration().has_value());
  // Strong channel: calibrated estimate ~ channel power (+0.7 dB margin).
  double acc = 0.0;
  for (int i = 0; i < 200; ++i) {
    acc += analyzer.calibrated_rss_dbm(analyzer.sense_channel(-60.0).raw);
  }
  EXPECT_NEAR(acc / 200, -59.3, 0.4);
}

TEST(Sensor, UncalibratedRssThrows) {
  Sensor rtl(rtl_sdr_spec(), 7);
  EXPECT_THROW((void)rtl.calibrated_rss_dbm(-40.0), std::logic_error);
  rtl.calibrate();
  EXPECT_NO_THROW((void)rtl.calibrated_rss_dbm(-40.0));
}

TEST(Sensor, SenseChannelProducesCaptureOfConfiguredSize) {
  Sensor rtl(rtl_sdr_spec(), 8);
  const SensorReading r = rtl.sense_channel(-70.0);
  EXPECT_EQ(r.iq.size(), 256u);
  EXPECT_TRUE(std::isfinite(r.raw));
}

TEST(Sensor, RtlOverReadsNearDecodabilityThreshold) {
  // The mechanism behind the paper's RTL misdetection rate: the device
  // floor compounds with near-threshold signals, pushing the calibrated
  // estimate above the true power.
  Sensor rtl(rtl_sdr_spec(), 9);
  rtl.calibrate();
  double acc = 0.0;
  for (int i = 0; i < 300; ++i) {
    acc += rtl.calibrated_rss_dbm(rtl.sense_channel(-86.0).raw);
  }
  EXPECT_GT(acc / 300, -84.5);  // reads ~2.5 dB hot at -86 dBm truth
}

TEST(Sensor, ImpulseInjectionRaisesReadings) {
  SensorSpec spec = rtl_sdr_spec();
  spec.impulse_probability = 0.5;
  spec.impulse_mean_db = 10.0;
  Sensor noisy(spec, 10);
  Sensor clean(rtl_sdr_spec(), 10);
  double noisy_acc = 0.0, clean_acc = 0.0;
  for (int i = 0; i < 500; ++i) {
    noisy_acc += noisy.measure_wired_raw(-60.0);
    clean_acc += clean.measure_wired_raw(-60.0);
  }
  EXPECT_GT(noisy_acc / 500, clean_acc / 500 + 2.0);
}

TEST(Sensor, CalibrationSurvivesModestGainDrift) {
  // Section 2.1 robustness claim: the same calibration factors were reused
  // months apart. A modest gain drift shifts calibrated readings by the
  // drift itself (linear map), staying well inside labeling tolerance.
  Sensor rtl(rtl_sdr_spec(), 11);
  rtl.calibrate();
  const auto mean_reading = [&](int n) {
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
      acc += rtl.calibrated_rss_dbm(rtl.sense_channel(-70.0).raw);
    }
    return acc / n;
  };
  const double fresh = mean_reading(200);
  rtl.set_gain_drift_db(0.5);
  const double aged = mean_reading(200);
  EXPECT_NEAR(aged - fresh, 0.5, 0.15);
  EXPECT_NEAR(aged, -69.3 + 0.5, 0.4);  // still accurate in absolute terms
}

TEST(Sensor, DeterministicPerSeed) {
  Sensor a(rtl_sdr_spec(), 42);
  Sensor b(rtl_sdr_spec(), 42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.measure_wired_raw(-70.0), b.measure_wired_raw(-70.0));
  }
}

TEST(Sensor, RejectsZeroSlopeSpec) {
  SensorSpec spec = rtl_sdr_spec();
  spec.raw_slope = 0.0;
  EXPECT_THROW(Sensor(spec, 1), std::invalid_argument);
}

}  // namespace
}  // namespace waldo::sensors
