// End-to-end descriptor wire-format tests across every classifier family:
// bit-identical binary round trips, v0-text/v1-binary golden-file
// compatibility, a deterministic corruption sweep (every truncation length,
// one bit flip per byte), locale robustness of the text form, and the
// binary-vs-text size bar. The goldens under tests/golden/ are committed
// artifacts regenerated only by tools/make_goldens after an *intentional*
// format change — this test never rebuilds them.
#include <cstddef>
#include <fstream>
#include <locale>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "waldo/campaign/measurement.hpp"
#include "waldo/core/features.hpp"
#include "waldo/core/model.hpp"
#include "waldo/core/model_constructor.hpp"

namespace waldo::core {
namespace {

constexpr const char* kFamilies[] = {"svm", "naive_bayes", "decision_tree",
                                     "knn", "logistic_regression"};

/// Deterministic diagonal field (transmitter to the south-west): the class
/// boundary cuts across the k-means localities, so every locality trains a
/// real classifier and the descriptor exercises the family's payload.
campaign::ChannelDataset make_diagonal_dataset(std::size_t n,
                                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 10'000.0);
  std::normal_distribution<double> jitter(0.0, 1.0);
  campaign::ChannelDataset ds;
  ds.channel = 30;
  ds.sensor_name = "synthetic";
  for (std::size_t i = 0; i < n; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{coord(rng), coord(rng)};
    const bool occupied = m.position.east_m + m.position.north_m < 10'000.0;
    m.rss_dbm = (occupied ? -75.0 : -95.0) + jitter(rng);
    m.cft_db = (occupied ? -85.0 : -105.0) + jitter(rng);
    m.aft_db = (occupied ? -95.0 : -108.0) + jitter(rng);
    ds.readings.push_back(m);
  }
  return ds;
}

WhiteSpaceModel build_model(const std::string& family) {
  const auto ds = make_diagonal_dataset(400, 7);
  ModelConstructorConfig cfg;
  cfg.classifier = family;
  cfg.num_features = 3;
  cfg.num_localities = 3;
  return ModelConstructor(cfg).build_with_labeling(ds, {});
}

/// Fixed probe grid: 5x5 positions, each probed with both an
/// occupied-looking and a vacant-looking signal row (num_features = 3).
std::vector<std::vector<double>> probe_grid() {
  std::vector<std::vector<double>> rows;
  for (double east : {500.0, 2'500.0, 5'000.0, 7'500.0, 9'500.0}) {
    for (double north : {500.0, 2'500.0, 5'000.0, 7'500.0, 9'500.0}) {
      const geo::EnuPoint p{east, north};
      rows.push_back(feature_row(p, -75.3, -85.1, -94.9, 3));
      rows.push_back(feature_row(p, -95.2, -104.8, -107.6, 3));
    }
  }
  return rows;
}

void expect_same_predictions(const WhiteSpaceModel& a, const WhiteSpaceModel& b,
                             const std::string& context) {
  for (const auto& row : probe_grid()) {
    ASSERT_EQ(a.predict(row), b.predict(row))
        << context << " at (" << row[0] << ", " << row[1] << ")";
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "cannot open golden file " << path;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------------------
// Round trips

TEST(ModelCodec, BinaryRoundTripIsByteIdentical) {
  for (const char* family : kFamilies) {
    const WhiteSpaceModel model = build_model(family);
    const std::string first = model.serialize();
    const WhiteSpaceModel back = WhiteSpaceModel::deserialize(first);
    const std::string second = back.serialize();
    EXPECT_EQ(first, second) << family
                             << ": serialize -> deserialize -> serialize "
                                "must be byte-identical";
    EXPECT_EQ(back.channel(), model.channel()) << family;
    EXPECT_EQ(back.classifier_kind(), model.classifier_kind()) << family;
    EXPECT_EQ(back.num_localities(), model.num_localities()) << family;
    expect_same_predictions(model, back, std::string(family) + " binary");
  }
}

TEST(ModelCodec, TextRoundTripPreservesPredictions) {
  for (const char* family : kFamilies) {
    const WhiteSpaceModel model = build_model(family);
    const WhiteSpaceModel back =
        WhiteSpaceModel::deserialize(model.serialize_text());
    expect_same_predictions(model, back, std::string(family) + " text");
  }
}

TEST(ModelCodec, BinaryAtMost60PercentOfText) {
  // The acceptance bar from the paper's low-bandwidth story: the binary
  // descriptor must be at most 60% of the text form for SVM and NB.
  for (const char* family : {"svm", "naive_bayes"}) {
    const WhiteSpaceModel model = build_model(family);
    const std::size_t text = model.serialize_text().size();
    const std::size_t binary = model.serialize().size();
    EXPECT_LE(binary * 100, text * 60)
        << family << ": binary " << binary << " B vs text " << text << " B";
    EXPECT_EQ(model.descriptor_size_bytes(), binary) << family;
  }
}

// ---------------------------------------------------------------------------
// Golden files (committed wire-format pins)

TEST(ModelCodec, GoldenV0AndV1DecodeToIdenticalPredictions) {
  for (const char* family : kFamilies) {
    const std::string base =
        std::string(WALDO_GOLDEN_DIR) + "/" + family;
    const std::string v0_bytes = read_file(base + "_v0.wsm");
    const std::string v1_bytes = read_file(base + "_v1.wsm");
    ASSERT_FALSE(v0_bytes.empty()) << family;
    ASSERT_FALSE(v1_bytes.empty()) << family;

    const WhiteSpaceModel v0 = WhiteSpaceModel::deserialize(v0_bytes);
    const WhiteSpaceModel v1 = WhiteSpaceModel::deserialize(v1_bytes);
    EXPECT_EQ(v0.channel(), 30) << family;
    EXPECT_EQ(v1.channel(), 30) << family;
    EXPECT_EQ(v0.classifier_kind(), family);
    EXPECT_EQ(v1.classifier_kind(), family);
    expect_same_predictions(v0, v1, std::string(family) + " golden v0 vs v1");

    // The binary form is canonical: decoding the committed v1 bytes and
    // re-encoding must reproduce them exactly. (The v0 text form is not
    // re-encoded — it predates the binary container and is read-compatible
    // only.)
    EXPECT_EQ(v1.serialize(), v1_bytes)
        << family << ": v1 golden no longer re-encodes byte-identically — "
        << "the wire format changed. If intentional, bump kFormatVersion "
        << "and regenerate with tools/make_goldens.";
  }
}

// ---------------------------------------------------------------------------
// Corruption sweep

TEST(ModelCodec, EveryTruncationAndByteFlipIsRejected) {
  for (const char* family : kFamilies) {
    const std::string good = build_model(family).serialize();
    ASSERT_NO_THROW((void)WhiteSpaceModel::deserialize(good)) << family;

    // Truncate at every byte offset.
    for (std::size_t len = 0; len < good.size(); ++len) {
      EXPECT_THROW((void)WhiteSpaceModel::deserialize(good.substr(0, len)),
                   std::runtime_error)
          << family << ": truncation to " << len << " bytes accepted";
    }

    // Flip one bit in every byte position. A flip inside the magic routes
    // the bytes to the legacy text parser, which must also reject them —
    // hence std::runtime_error (codec::Error derives from it) rather than
    // the codec error type alone.
    for (std::size_t pos = 0; pos < good.size(); ++pos) {
      std::string bad = good;
      bad[pos] = static_cast<char>(bad[pos] ^ 0x01);
      EXPECT_THROW((void)WhiteSpaceModel::deserialize(bad),
                   std::runtime_error)
          << family << ": bit flip at byte " << pos << " accepted";
    }
  }
}

// ---------------------------------------------------------------------------
// Locale robustness

class CommaDecimalPunct : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
};

/// Installs a comma-decimal global locale for the test's lifetime (models
/// the de_DE-style environments where unimbued streams print "3,14").
class ScopedCommaLocale {
 public:
  ScopedCommaLocale()
      : previous_(std::locale::global(
            std::locale(std::locale::classic(), new CommaDecimalPunct))) {}
  ~ScopedCommaLocale() { std::locale::global(previous_); }

 private:
  std::locale previous_;
};

TEST(ModelCodec, TextFormSurvivesCommaDecimalLocale) {
  const WhiteSpaceModel model = build_model("svm");
  const std::string reference = model.serialize_text();
  {
    const ScopedCommaLocale scoped;
    // Sanity: the hostile locale is really active for unimbued streams.
    std::ostringstream probe;
    probe << 3.5;
    ASSERT_EQ(probe.str(), "3,5")
        << "global comma locale not in effect; test would prove nothing";

    // Descriptor streams are imbued with the classic locale, so the text
    // form must be byte-identical and must parse back under the hostile
    // global locale.
    const std::string text = model.serialize_text();
    EXPECT_EQ(text, reference);
    const WhiteSpaceModel back = WhiteSpaceModel::deserialize(text);
    expect_same_predictions(model, back, "svm comma-locale text");

    // The binary form is locale-immune by construction; spot-check anyway.
    const WhiteSpaceModel bin_back =
        WhiteSpaceModel::deserialize(model.serialize());
    expect_same_predictions(model, bin_back, "svm comma-locale binary");
  }
}

}  // namespace
}  // namespace waldo::core
