#include <gtest/gtest.h>

#include <random>

#include "waldo/ml/matrix.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/ml/stats.hpp"

namespace waldo::ml {
namespace {

TEST(Matrix, BasicShapeAndAccess) {
  Matrix m(3, 2, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  m(1, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
  EXPECT_EQ(m.row(1).size(), 2u);
}

TEST(Matrix, FromRowsAndTake) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  const std::vector<std::size_t> idx{2, 0};
  const Matrix sub = m.take_rows(idx);
  EXPECT_DOUBLE_EQ(sub(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(sub(1, 2), 3.0);
  const Matrix cols = m.take_cols(2);
  EXPECT_EQ(cols.cols(), 2u);
  EXPECT_DOUBLE_EQ(cols(2, 1), 8.0);
  EXPECT_THROW(m.take_cols(5), std::out_of_range);
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {1}}), std::invalid_argument);
}

TEST(Matrix, PushRowGrowsAndValidates) {
  Matrix m;
  const std::vector<double> r1{1.0, 2.0};
  m.push_row(r1);
  m.push_row(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(m.push_row(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Matrix, DotAndDistance) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 27.0);
  const std::vector<double> short_v{1.0};
  EXPECT_THROW((void)dot(a, short_v), std::invalid_argument);
  EXPECT_THROW((void)squared_distance(a, short_v), std::invalid_argument);
}

TEST(Metrics, ConfusionMatrixRates) {
  ConfusionMatrix cm;
  // 10 actually safe: 8 called safe, 2 called not-safe.
  for (int i = 0; i < 8; ++i) cm.add(kSafe, kSafe);
  for (int i = 0; i < 2; ++i) cm.add(kNotSafe, kSafe);
  // 5 actually not safe: 1 called safe, 4 called not-safe.
  cm.add(kSafe, kNotSafe);
  for (int i = 0; i < 4; ++i) cm.add(kNotSafe, kNotSafe);

  EXPECT_EQ(cm.total(), 15u);
  EXPECT_DOUBLE_EQ(cm.fn_rate(), 0.2);
  EXPECT_DOUBLE_EQ(cm.fp_rate(), 0.2);
  EXPECT_NEAR(cm.error_rate(), 3.0 / 15.0, 1e-12);

  ConfusionMatrix other = cm;
  other.merge(cm);
  EXPECT_EQ(other.total(), 30u);
  EXPECT_DOUBLE_EQ(other.fn_rate(), 0.2);
}

TEST(Metrics, EmptyDenominatorsAreZero) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.fp_rate(), 0.0);
  EXPECT_DOUBLE_EQ(cm.fn_rate(), 0.0);
  EXPECT_DOUBLE_EQ(cm.error_rate(), 0.0);
}

TEST(Metrics, CompareLabelsValidatesLength) {
  const std::vector<int> a{kSafe, kNotSafe};
  const std::vector<int> b{kSafe};
  EXPECT_THROW((void)compare_labels(a, b), std::invalid_argument);
}

TEST(Stats, SummarizeKnownValues) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const SummaryStats s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
}

TEST(Stats, BoxStatsOrdered) {
  std::mt19937_64 rng(1);
  std::normal_distribution<double> g(10.0, 2.0);
  std::vector<double> v(500);
  for (auto& x : v) x = g(rng);
  const BoxStats b = box_stats(v);
  EXPECT_LE(b.min, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.max);
  EXPECT_NEAR(b.median, 10.0, 0.4);
  EXPECT_NEAR(b.q3 - b.q1, 2.0 * 1.349, 0.4);  // normal IQR
}

TEST(Stats, EmpiricalCdfMonotone) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const auto cdf = empirical_cdf(v, 5);
  ASSERT_EQ(cdf.size(), 5u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].probability, cdf[i - 1].probability);
  }
  EXPECT_DOUBLE_EQ(cdf.back().probability, 1.0);
  EXPECT_TRUE(empirical_cdf({}, 5).empty());
}

TEST(Stats, PearsonKnownCases) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y{2.0, 4.0, 6.0, 8.0, 10.0};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  for (auto& v : y) v = -v;
  EXPECT_NEAR(pearson_correlation(x, y), -1.0, 1e-12);
  const std::vector<double> constant(5, 3.0);
  EXPECT_DOUBLE_EQ(pearson_correlation(x, constant), 0.0);
  EXPECT_THROW((void)pearson_correlation(x, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Stats, IncompleteBetaProperties) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
  // I_x(1,1) = x (uniform).
  for (double x = 0.1; x < 1.0; x += 0.2) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-10);
  }
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(incomplete_beta(2.5, 4.0, 0.3),
              1.0 - incomplete_beta(4.0, 2.5, 0.7), 1e-10);
  EXPECT_THROW((void)incomplete_beta(0.0, 1.0, 0.5), std::invalid_argument);
}

TEST(Stats, FDistributionSurvival) {
  // Known critical value: F(1, 10) upper 5% ~ 4.965.
  EXPECT_NEAR(f_distribution_sf(4.965, 1.0, 10.0), 0.05, 0.002);
  // F(2, 20) upper 1% ~ 5.849.
  EXPECT_NEAR(f_distribution_sf(5.849, 2.0, 20.0), 0.01, 0.001);
  EXPECT_DOUBLE_EQ(f_distribution_sf(0.0, 3.0, 5.0), 1.0);
}

TEST(Stats, AnovaSeparatedGroupsSignificant) {
  std::mt19937_64 rng(2);
  std::normal_distribution<double> g1(0.0, 1.0), g2(5.0, 1.0);
  std::vector<std::vector<double>> groups(2);
  for (int i = 0; i < 100; ++i) {
    groups[0].push_back(g1(rng));
    groups[1].push_back(g2(rng));
  }
  const AnovaResult r = anova_one_way(groups);
  EXPECT_GT(r.f_statistic, 100.0);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_DOUBLE_EQ(r.df_between, 1.0);
  EXPECT_DOUBLE_EQ(r.df_within, 198.0);
}

TEST(Stats, AnovaIdenticalDistributionsNotSignificant) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<std::vector<double>> groups(2);
  for (int i = 0; i < 200; ++i) {
    groups[0].push_back(g(rng));
    groups[1].push_back(g(rng));
  }
  const AnovaResult r = anova_one_way(groups);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Stats, AnovaDegenerateInputs) {
  // One group only: no test possible.
  const std::vector<std::vector<double>> one{{1.0, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(anova_one_way(one).p_value, 1.0);
  // Zero within-group variance but different means: extreme significance.
  const std::vector<std::vector<double>> split{{1.0, 1.0}, {2.0, 2.0}};
  EXPECT_DOUBLE_EQ(anova_one_way(split).p_value, 0.0);
}

}  // namespace
}  // namespace waldo::ml
