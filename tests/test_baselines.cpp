#include <gtest/gtest.h>

#include <random>

#include "waldo/baselines/geo_database.hpp"
#include "waldo/baselines/interpolation.hpp"
#include "waldo/baselines/sensing_only.hpp"
#include "waldo/baselines/vscope.hpp"
#include "waldo/campaign/labeling.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/sensors/sensor.hpp"

namespace waldo::baselines {
namespace {

class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new rf::Environment(rf::make_metro_environment());
    route_ = new geo::DrivePath(campaign::standard_route(*env_, 900, 21));
  }
  static void TearDownTestSuite() {
    delete env_;
    delete route_;
    env_ = nullptr;
    route_ = nullptr;
  }
  static rf::Environment* env_;
  static geo::DrivePath* route_;
};

rf::Environment* BaselineFixture::env_ = nullptr;
geo::DrivePath* BaselineFixture::route_ = nullptr;

TEST_F(BaselineFixture, GeoDatabaseProtectsAroundTransmitters) {
  const GeoDatabase db(*env_, 46);
  ASSERT_EQ(db.num_contours(), 1u);
  const rf::Transmitter* tx = env_->transmitters_on(46).front();
  EXPECT_EQ(db.classify(tx->location), ml::kNotSafe);
  const geo::EnuPoint far{tx->location.east_m, tx->location.north_m - 2e5};
  EXPECT_EQ(db.classify(far), ml::kSafe);
  EXPECT_GT(db.contour_radius_m(0), 1000.0);
  EXPECT_THROW((void)db.contour_radius_m(5), std::out_of_range);
}

TEST_F(BaselineFixture, GeoDatabaseNeverViolatesSafetyButOverprotects) {
  sensors::Sensor sa(sensors::spectrum_analyzer_spec(), 22);
  std::size_t total_fn = 0, total_fp = 0, safe_total = 0;
  for (const int ch : rf::kEvaluationChannels) {
    auto ds = campaign::collect_channel(*env_, sa, ch, route_->readings);
    const auto labels =
        campaign::label_readings(ds.positions(), ds.rss_values());
    const GeoDatabase db(*env_, ch);
    ml::ConfusionMatrix cm;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      cm.add(db.classify(ds.readings[i].position), labels[i]);
    }
    total_fn += cm.false_not_safe;
    total_fp += cm.false_safe;
    safe_total += cm.actually_safe();
  }
  // The database family is safe (FP ~ 0) but misses a large share of the
  // available white space (the paper's Fig. 4 premise).
  EXPECT_LT(static_cast<double>(total_fp), 0.02 * static_cast<double>(safe_total));
  EXPECT_GT(static_cast<double>(total_fn), 0.15 * static_cast<double>(safe_total));
}

TEST_F(BaselineFixture, GeoDatabaseMarginMonotone) {
  GeoDatabaseConfig lax;
  lax.fading_margin_db = 0.0;
  GeoDatabaseConfig strict;
  strict.fading_margin_db = 10.0;
  const GeoDatabase db_lax(*env_, 15, lax);
  const GeoDatabase db_strict(*env_, 15, strict);
  EXPECT_LT(db_lax.contour_radius_m(0), db_strict.contour_radius_m(0));
}

TEST(VScope, RecoversSyntheticLogDistanceField) {
  // Synthetic world with an exact log-distance law: fit must recover the
  // exponent and intercept.
  const geo::EnuPoint tx{0.0, 0.0};
  campaign::ChannelDataset ds;
  ds.channel = 30;
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> coord(2000.0, 30'000.0);
  for (int i = 0; i < 600; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{coord(rng), coord(rng)};
    const double d_km = geo::distance_m(m.position, tx) / 1000.0;
    m.rss_dbm = -40.0 - 10.0 * 3.3 * std::log10(d_km);
    ds.readings.push_back(m);
  }
  VScopeConfig cfg;
  cfg.num_clusters = 1;
  VScope vs(cfg);
  vs.fit(ds, std::vector<geo::EnuPoint>{tx});
  ASSERT_EQ(vs.fits().size(), 1u);
  EXPECT_NEAR(vs.fits()[0].exponent, 3.3, 0.05);
  EXPECT_NEAR(vs.fits()[0].intercept_dbm, -40.0, 0.5);
  EXPECT_NEAR(vs.predict_rss_dbm(geo::EnuPoint{10'000.0, 0.0}), -73.0, 0.5);
}

TEST(VScope, ClassificationUsesThresholdAndSeparation) {
  const geo::EnuPoint tx{0.0, 0.0};
  campaign::ChannelDataset ds;
  ds.channel = 30;
  std::mt19937_64 rng(24);
  std::uniform_real_distribution<double> coord(-40'000.0, 40'000.0);
  for (int i = 0; i < 500; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{coord(rng), coord(rng)};
    const double d_km =
        std::max(0.2, geo::distance_m(m.position, tx) / 1000.0);
    m.rss_dbm = -50.0 - 35.0 * std::log10(d_km);
    ds.readings.push_back(m);
  }
  VScopeConfig cfg;
  cfg.num_clusters = 1;
  VScope vs(cfg);
  vs.fit(ds, std::vector<geo::EnuPoint>{tx});
  // RSS crosses -84 dBm at ~ 10^(34/35) ~ 9.4 km; separation adds 6 km.
  EXPECT_EQ(vs.classify(geo::EnuPoint{5000.0, 0.0}), ml::kNotSafe);
  EXPECT_EQ(vs.classify(geo::EnuPoint{12'000.0, 0.0}), ml::kNotSafe);
  EXPECT_EQ(vs.classify(geo::EnuPoint{30'000.0, 0.0}), ml::kSafe);
}

TEST(VScope, Validation) {
  VScope vs;
  campaign::ChannelDataset empty;
  EXPECT_THROW(vs.fit(empty, std::vector<geo::EnuPoint>{{0, 0}}),
               std::invalid_argument);
  campaign::ChannelDataset one;
  one.readings.push_back({});
  EXPECT_THROW(vs.fit(one, {}), std::invalid_argument);
  EXPECT_THROW((void)vs.predict_rss_dbm(geo::EnuPoint{0, 0}), std::logic_error);
}

TEST(SensingOnly, ThresholdDecision) {
  EXPECT_EQ(sensing_only_decision(-120.0), ml::kSafe);
  EXPECT_EQ(sensing_only_decision(-114.0), ml::kNotSafe);
  EXPECT_EQ(sensing_only_decision(-50.0), ml::kNotSafe);
  SensingOnlyConfig relaxed;
  relaxed.threshold_dbm = -84.0;
  EXPECT_EQ(sensing_only_decision(-90.0, relaxed), ml::kSafe);
}

TEST(SensingOnly, LowCostSensorsCannotImplementIt) {
  // The cost argument of the paper: RTL/USRP floors sit far above the
  // -114 dBm requirement; only the analyzer qualifies.
  const double rtl_floor = sensors::rtl_sdr_spec().pilot_floor_dbm +
                           rf::kPilotToChannelCorrectionDb;
  const double usrp_floor = sensors::usrp_b200_spec().pilot_floor_dbm +
                            rf::kPilotToChannelCorrectionDb;
  const double sa_floor = sensors::spectrum_analyzer_spec().pilot_floor_dbm +
                          rf::kPilotToChannelCorrectionDb;
  EXPECT_FALSE(sensor_capable_of_sensing_only(rtl_floor));
  EXPECT_FALSE(sensor_capable_of_sensing_only(usrp_floor));
  EXPECT_TRUE(sensor_capable_of_sensing_only(sa_floor));
}

TEST_F(BaselineFixture, SensingOnlyOverprotectsWithAnalyzer) {
  // Channel 17's station sits beyond the NE corner: most of the region is
  // labeled safe, yet the residual signal there is still above -114 dBm,
  // so sensing-only forfeits that white space entirely.
  sensors::Sensor sa(sensors::spectrum_analyzer_spec(), 25);
  auto ds = campaign::collect_channel(*env_, sa, 17, route_->readings);
  const auto labels =
      campaign::label_readings(ds.positions(), ds.rss_values());
  ASSERT_GT(campaign::safe_fraction(labels), 0.3);
  ml::ConfusionMatrix cm;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    cm.add(sensing_only_decision(ds.readings[i].rss_dbm), labels[i]);
  }
  EXPECT_LT(cm.fp_rate(), 0.05);
  EXPECT_GT(cm.fn_rate(), 0.2);
}

TEST(Idw, InterpolatesSmoothField) {
  campaign::ChannelDataset ds;
  ds.channel = 30;
  // RSS = -60 - east/1000 (linear field), on a grid.
  for (int i = 0; i <= 20; ++i) {
    for (int j = 0; j <= 20; ++j) {
      campaign::Measurement m;
      m.position = geo::EnuPoint{i * 500.0, j * 500.0};
      m.rss_dbm = -60.0 - m.position.east_m / 1000.0;
      ds.readings.push_back(m);
    }
  }
  IdwDatabase idw;
  idw.fit(ds);
  EXPECT_NEAR(idw.predict_rss_dbm(geo::EnuPoint{5250.0, 5250.0}), -65.25,
              0.5);
}

TEST(Idw, ClassifyAppliesSeparationRule) {
  campaign::ChannelDataset ds;
  ds.channel = 30;
  for (int i = 0; i < 40; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{i * 400.0, 0.0};
    m.rss_dbm = i == 0 ? -70.0 : -105.0;  // one hot reading at the origin
    ds.readings.push_back(m);
  }
  IdwDatabase idw;
  idw.fit(ds);
  // 4 km from the hot reading: prediction is cold but the separation rule
  // still forbids it.
  EXPECT_EQ(idw.classify(geo::EnuPoint{4000.0, 0.0}), ml::kNotSafe);
  // 10 km away: allowed.
  EXPECT_EQ(idw.classify(geo::EnuPoint{10'000.0, 0.0}), ml::kSafe);
  EXPECT_THROW((void)IdwDatabase().classify(geo::EnuPoint{0, 0}),
               std::logic_error);
}

}  // namespace
}  // namespace waldo::baselines
