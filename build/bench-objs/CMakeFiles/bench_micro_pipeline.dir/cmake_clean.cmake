file(REMOVE_RECURSE
  "../bench/bench_micro_pipeline"
  "../bench/bench_micro_pipeline.pdb"
  "CMakeFiles/bench_micro_pipeline.dir/bench_micro_pipeline.cpp.o"
  "CMakeFiles/bench_micro_pipeline.dir/bench_micro_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
