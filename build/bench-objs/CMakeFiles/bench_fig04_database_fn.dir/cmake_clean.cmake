file(REMOVE_RECURSE
  "../bench/bench_fig04_database_fn"
  "../bench/bench_fig04_database_fn.pdb"
  "CMakeFiles/bench_fig04_database_fn.dir/bench_fig04_database_fn.cpp.o"
  "CMakeFiles/bench_fig04_database_fn.dir/bench_fig04_database_fn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_database_fn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
