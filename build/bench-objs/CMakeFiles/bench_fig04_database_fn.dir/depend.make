# Empty dependencies file for bench_fig04_database_fn.
# This may be replaced when dependencies are built.
