# Empty dependencies file for bench_fig07_label_correlation.
# This may be replaced when dependencies are built.
