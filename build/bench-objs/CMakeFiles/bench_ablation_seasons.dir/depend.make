# Empty dependencies file for bench_ablation_seasons.
# This may be replaced when dependencies are built.
