file(REMOVE_RECURSE
  "../bench/bench_ablation_seasons"
  "../bench/bench_ablation_seasons.pdb"
  "CMakeFiles/bench_ablation_seasons.dir/bench_ablation_seasons.cpp.o"
  "CMakeFiles/bench_ablation_seasons.dir/bench_ablation_seasons.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_seasons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
