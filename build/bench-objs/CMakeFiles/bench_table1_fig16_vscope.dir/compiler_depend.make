# Empty compiler generated dependencies file for bench_table1_fig16_vscope.
# This may be replaced when dependencies are built.
