file(REMOVE_RECURSE
  "../bench/bench_table1_fig16_vscope"
  "../bench/bench_table1_fig16_vscope.pdb"
  "CMakeFiles/bench_table1_fig16_vscope.dir/bench_table1_fig16_vscope.cpp.o"
  "CMakeFiles/bench_table1_fig16_vscope.dir/bench_table1_fig16_vscope.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fig16_vscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
