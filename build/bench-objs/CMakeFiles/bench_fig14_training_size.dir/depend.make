# Empty dependencies file for bench_fig14_training_size.
# This may be replaced when dependencies are built.
