# Empty dependencies file for bench_fig10_11_features.
# This may be replaced when dependencies are built.
