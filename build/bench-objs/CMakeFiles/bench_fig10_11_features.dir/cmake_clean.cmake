file(REMOVE_RECURSE
  "../bench/bench_fig10_11_features"
  "../bench/bench_fig10_11_features.pdb"
  "CMakeFiles/bench_fig10_11_features.dir/bench_fig10_11_features.cpp.o"
  "CMakeFiles/bench_fig10_11_features.dir/bench_fig10_11_features.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
