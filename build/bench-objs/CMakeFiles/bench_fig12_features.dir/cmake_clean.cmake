file(REMOVE_RECURSE
  "../bench/bench_fig12_features"
  "../bench/bench_fig12_features.pdb"
  "CMakeFiles/bench_fig12_features.dir/bench_fig12_features.cpp.o"
  "CMakeFiles/bench_fig12_features.dir/bench_fig12_features.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
