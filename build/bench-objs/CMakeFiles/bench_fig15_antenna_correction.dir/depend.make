# Empty dependencies file for bench_fig15_antenna_correction.
# This may be replaced when dependencies are built.
