file(REMOVE_RECURSE
  "../bench/bench_fig15_antenna_correction"
  "../bench/bench_fig15_antenna_correction.pdb"
  "CMakeFiles/bench_fig15_antenna_correction.dir/bench_fig15_antenna_correction.cpp.o"
  "CMakeFiles/bench_fig15_antenna_correction.dir/bench_fig15_antenna_correction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_antenna_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
