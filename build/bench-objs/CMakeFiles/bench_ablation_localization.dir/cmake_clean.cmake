file(REMOVE_RECURSE
  "../bench/bench_ablation_localization"
  "../bench/bench_ablation_localization.pdb"
  "CMakeFiles/bench_ablation_localization.dir/bench_ablation_localization.cpp.o"
  "CMakeFiles/bench_ablation_localization.dir/bench_ablation_localization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
