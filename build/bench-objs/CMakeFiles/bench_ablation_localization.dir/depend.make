# Empty dependencies file for bench_ablation_localization.
# This may be replaced when dependencies are built.
