file(REMOVE_RECURSE
  "CMakeFiles/waldo_bench_common.dir/common.cpp.o"
  "CMakeFiles/waldo_bench_common.dir/common.cpp.o.d"
  "libwaldo_bench_common.a"
  "libwaldo_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waldo_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
