# Empty dependencies file for waldo_bench_common.
# This may be replaced when dependencies are built.
