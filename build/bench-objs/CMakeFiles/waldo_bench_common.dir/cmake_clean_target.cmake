file(REMOVE_RECURSE
  "libwaldo_bench_common.a"
)
