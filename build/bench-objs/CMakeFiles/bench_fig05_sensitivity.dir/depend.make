# Empty dependencies file for bench_fig05_sensitivity.
# This may be replaced when dependencies are built.
