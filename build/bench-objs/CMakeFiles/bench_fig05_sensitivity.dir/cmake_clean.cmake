file(REMOVE_RECURSE
  "../bench/bench_fig05_sensitivity"
  "../bench/bench_fig05_sensitivity.pdb"
  "CMakeFiles/bench_fig05_sensitivity.dir/bench_fig05_sensitivity.cpp.o"
  "CMakeFiles/bench_fig05_sensitivity.dir/bench_fig05_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
