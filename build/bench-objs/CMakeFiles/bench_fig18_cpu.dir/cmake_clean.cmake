file(REMOVE_RECURSE
  "../bench/bench_fig18_cpu"
  "../bench/bench_fig18_cpu.pdb"
  "CMakeFiles/bench_fig18_cpu.dir/bench_fig18_cpu.cpp.o"
  "CMakeFiles/bench_fig18_cpu.dir/bench_fig18_cpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
