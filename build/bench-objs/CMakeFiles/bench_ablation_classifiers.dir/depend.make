# Empty dependencies file for bench_ablation_classifiers.
# This may be replaced when dependencies are built.
