file(REMOVE_RECURSE
  "../bench/bench_ablation_classifiers"
  "../bench/bench_ablation_classifiers.pdb"
  "CMakeFiles/bench_ablation_classifiers.dir/bench_ablation_classifiers.cpp.o"
  "CMakeFiles/bench_ablation_classifiers.dir/bench_ablation_classifiers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
