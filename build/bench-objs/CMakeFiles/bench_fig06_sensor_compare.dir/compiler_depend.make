# Empty compiler generated dependencies file for bench_fig06_sensor_compare.
# This may be replaced when dependencies are built.
