# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_rf[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_sensors[1]_include.cmake")
include("/root/repo/build/tests/test_ml_stats[1]_include.cmake")
include("/root/repo/build/tests/test_ml_classifiers[1]_include.cmake")
include("/root/repo/build/tests/test_ml_cv[1]_include.cmake")
include("/root/repo/build/tests/test_campaign[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_security[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_locator_kriging[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
