# Empty compiler generated dependencies file for test_locator_kriging.
# This may be replaced when dependencies are built.
