file(REMOVE_RECURSE
  "CMakeFiles/test_locator_kriging.dir/test_locator_kriging.cpp.o"
  "CMakeFiles/test_locator_kriging.dir/test_locator_kriging.cpp.o.d"
  "test_locator_kriging"
  "test_locator_kriging.pdb"
  "test_locator_kriging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locator_kriging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
