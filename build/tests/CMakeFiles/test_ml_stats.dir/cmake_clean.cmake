file(REMOVE_RECURSE
  "CMakeFiles/test_ml_stats.dir/test_ml_stats.cpp.o"
  "CMakeFiles/test_ml_stats.dir/test_ml_stats.cpp.o.d"
  "test_ml_stats"
  "test_ml_stats.pdb"
  "test_ml_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
