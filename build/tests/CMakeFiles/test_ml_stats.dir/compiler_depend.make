# Empty compiler generated dependencies file for test_ml_stats.
# This may be replaced when dependencies are built.
