# Empty dependencies file for waldo.
# This may be replaced when dependencies are built.
