file(REMOVE_RECURSE
  "CMakeFiles/waldo.dir/waldo_cli.cpp.o"
  "CMakeFiles/waldo.dir/waldo_cli.cpp.o.d"
  "waldo"
  "waldo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waldo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
