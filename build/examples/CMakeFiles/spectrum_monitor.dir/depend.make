# Empty dependencies file for spectrum_monitor.
# This may be replaced when dependencies are built.
