file(REMOVE_RECURSE
  "CMakeFiles/spectrum_monitor.dir/spectrum_monitor.cpp.o"
  "CMakeFiles/spectrum_monitor.dir/spectrum_monitor.cpp.o.d"
  "spectrum_monitor"
  "spectrum_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
