file(REMOVE_RECURSE
  "CMakeFiles/wardrive_campaign.dir/wardrive_campaign.cpp.o"
  "CMakeFiles/wardrive_campaign.dir/wardrive_campaign.cpp.o.d"
  "wardrive_campaign"
  "wardrive_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wardrive_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
