# Empty compiler generated dependencies file for wardrive_campaign.
# This may be replaced when dependencies are built.
