# Empty dependencies file for coverage_map.
# This may be replaced when dependencies are built.
