file(REMOVE_RECURSE
  "CMakeFiles/coverage_map.dir/coverage_map.cpp.o"
  "CMakeFiles/coverage_map.dir/coverage_map.cpp.o.d"
  "coverage_map"
  "coverage_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
