# Empty dependencies file for mobile_wsd.
# This may be replaced when dependencies are built.
