file(REMOVE_RECURSE
  "CMakeFiles/mobile_wsd.dir/mobile_wsd.cpp.o"
  "CMakeFiles/mobile_wsd.dir/mobile_wsd.cpp.o.d"
  "mobile_wsd"
  "mobile_wsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_wsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
