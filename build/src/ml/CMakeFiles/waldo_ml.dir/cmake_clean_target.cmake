file(REMOVE_RECURSE
  "libwaldo_ml.a"
)
