
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/waldo_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/waldo_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/cross_validation.cpp" "src/ml/CMakeFiles/waldo_ml.dir/cross_validation.cpp.o" "gcc" "src/ml/CMakeFiles/waldo_ml.dir/cross_validation.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/waldo_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/waldo_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/waldo_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/waldo_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/waldo_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/waldo_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/logistic_regression.cpp" "src/ml/CMakeFiles/waldo_ml.dir/logistic_regression.cpp.o" "gcc" "src/ml/CMakeFiles/waldo_ml.dir/logistic_regression.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/waldo_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/waldo_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/waldo_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/waldo_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/waldo_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/waldo_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/standardizer.cpp" "src/ml/CMakeFiles/waldo_ml.dir/standardizer.cpp.o" "gcc" "src/ml/CMakeFiles/waldo_ml.dir/standardizer.cpp.o.d"
  "/root/repo/src/ml/stats.cpp" "src/ml/CMakeFiles/waldo_ml.dir/stats.cpp.o" "gcc" "src/ml/CMakeFiles/waldo_ml.dir/stats.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/waldo_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/waldo_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
