# Empty compiler generated dependencies file for waldo_ml.
# This may be replaced when dependencies are built.
