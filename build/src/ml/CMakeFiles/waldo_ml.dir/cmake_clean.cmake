file(REMOVE_RECURSE
  "CMakeFiles/waldo_ml.dir/classifier.cpp.o"
  "CMakeFiles/waldo_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/waldo_ml.dir/cross_validation.cpp.o"
  "CMakeFiles/waldo_ml.dir/cross_validation.cpp.o.d"
  "CMakeFiles/waldo_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/waldo_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/waldo_ml.dir/kmeans.cpp.o"
  "CMakeFiles/waldo_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/waldo_ml.dir/knn.cpp.o"
  "CMakeFiles/waldo_ml.dir/knn.cpp.o.d"
  "CMakeFiles/waldo_ml.dir/logistic_regression.cpp.o"
  "CMakeFiles/waldo_ml.dir/logistic_regression.cpp.o.d"
  "CMakeFiles/waldo_ml.dir/matrix.cpp.o"
  "CMakeFiles/waldo_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/waldo_ml.dir/metrics.cpp.o"
  "CMakeFiles/waldo_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/waldo_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/waldo_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/waldo_ml.dir/standardizer.cpp.o"
  "CMakeFiles/waldo_ml.dir/standardizer.cpp.o.d"
  "CMakeFiles/waldo_ml.dir/stats.cpp.o"
  "CMakeFiles/waldo_ml.dir/stats.cpp.o.d"
  "CMakeFiles/waldo_ml.dir/svm.cpp.o"
  "CMakeFiles/waldo_ml.dir/svm.cpp.o.d"
  "libwaldo_ml.a"
  "libwaldo_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waldo_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
