file(REMOVE_RECURSE
  "libwaldo_dsp.a"
)
