file(REMOVE_RECURSE
  "CMakeFiles/waldo_dsp.dir/detectors.cpp.o"
  "CMakeFiles/waldo_dsp.dir/detectors.cpp.o.d"
  "CMakeFiles/waldo_dsp.dir/fft.cpp.o"
  "CMakeFiles/waldo_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/waldo_dsp.dir/iq.cpp.o"
  "CMakeFiles/waldo_dsp.dir/iq.cpp.o.d"
  "libwaldo_dsp.a"
  "libwaldo_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waldo_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
