
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/detectors.cpp" "src/dsp/CMakeFiles/waldo_dsp.dir/detectors.cpp.o" "gcc" "src/dsp/CMakeFiles/waldo_dsp.dir/detectors.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/waldo_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/waldo_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/iq.cpp" "src/dsp/CMakeFiles/waldo_dsp.dir/iq.cpp.o" "gcc" "src/dsp/CMakeFiles/waldo_dsp.dir/iq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rf/CMakeFiles/waldo_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/waldo_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
