# Empty compiler generated dependencies file for waldo_dsp.
# This may be replaced when dependencies are built.
