file(REMOVE_RECURSE
  "libwaldo_baselines.a"
)
