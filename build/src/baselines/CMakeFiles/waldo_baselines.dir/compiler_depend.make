# Empty compiler generated dependencies file for waldo_baselines.
# This may be replaced when dependencies are built.
