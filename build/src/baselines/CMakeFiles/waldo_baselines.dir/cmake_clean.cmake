file(REMOVE_RECURSE
  "CMakeFiles/waldo_baselines.dir/geo_database.cpp.o"
  "CMakeFiles/waldo_baselines.dir/geo_database.cpp.o.d"
  "CMakeFiles/waldo_baselines.dir/interpolation.cpp.o"
  "CMakeFiles/waldo_baselines.dir/interpolation.cpp.o.d"
  "CMakeFiles/waldo_baselines.dir/kriging.cpp.o"
  "CMakeFiles/waldo_baselines.dir/kriging.cpp.o.d"
  "CMakeFiles/waldo_baselines.dir/sensing_only.cpp.o"
  "CMakeFiles/waldo_baselines.dir/sensing_only.cpp.o.d"
  "CMakeFiles/waldo_baselines.dir/vscope.cpp.o"
  "CMakeFiles/waldo_baselines.dir/vscope.cpp.o.d"
  "libwaldo_baselines.a"
  "libwaldo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waldo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
