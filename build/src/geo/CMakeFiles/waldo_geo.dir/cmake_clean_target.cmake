file(REMOVE_RECURSE
  "libwaldo_geo.a"
)
