file(REMOVE_RECURSE
  "CMakeFiles/waldo_geo.dir/drive_path.cpp.o"
  "CMakeFiles/waldo_geo.dir/drive_path.cpp.o.d"
  "CMakeFiles/waldo_geo.dir/grid_index.cpp.o"
  "CMakeFiles/waldo_geo.dir/grid_index.cpp.o.d"
  "CMakeFiles/waldo_geo.dir/latlon.cpp.o"
  "CMakeFiles/waldo_geo.dir/latlon.cpp.o.d"
  "libwaldo_geo.a"
  "libwaldo_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waldo_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
