# Empty dependencies file for waldo_geo.
# This may be replaced when dependencies are built.
