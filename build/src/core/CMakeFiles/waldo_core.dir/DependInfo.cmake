
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/database.cpp" "src/core/CMakeFiles/waldo_core.dir/database.cpp.o" "gcc" "src/core/CMakeFiles/waldo_core.dir/database.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/waldo_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/waldo_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/waldo_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/waldo_core.dir/features.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/waldo_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/waldo_core.dir/model.cpp.o.d"
  "/root/repo/src/core/model_constructor.cpp" "src/core/CMakeFiles/waldo_core.dir/model_constructor.cpp.o" "gcc" "src/core/CMakeFiles/waldo_core.dir/model_constructor.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/waldo_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/waldo_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/security.cpp" "src/core/CMakeFiles/waldo_core.dir/security.cpp.o" "gcc" "src/core/CMakeFiles/waldo_core.dir/security.cpp.o.d"
  "/root/repo/src/core/transmitter_locator.cpp" "src/core/CMakeFiles/waldo_core.dir/transmitter_locator.cpp.o" "gcc" "src/core/CMakeFiles/waldo_core.dir/transmitter_locator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/campaign/CMakeFiles/waldo_campaign.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/waldo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/waldo_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/waldo_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/waldo_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/waldo_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
