file(REMOVE_RECURSE
  "CMakeFiles/waldo_core.dir/database.cpp.o"
  "CMakeFiles/waldo_core.dir/database.cpp.o.d"
  "CMakeFiles/waldo_core.dir/detector.cpp.o"
  "CMakeFiles/waldo_core.dir/detector.cpp.o.d"
  "CMakeFiles/waldo_core.dir/features.cpp.o"
  "CMakeFiles/waldo_core.dir/features.cpp.o.d"
  "CMakeFiles/waldo_core.dir/model.cpp.o"
  "CMakeFiles/waldo_core.dir/model.cpp.o.d"
  "CMakeFiles/waldo_core.dir/model_constructor.cpp.o"
  "CMakeFiles/waldo_core.dir/model_constructor.cpp.o.d"
  "CMakeFiles/waldo_core.dir/protocol.cpp.o"
  "CMakeFiles/waldo_core.dir/protocol.cpp.o.d"
  "CMakeFiles/waldo_core.dir/security.cpp.o"
  "CMakeFiles/waldo_core.dir/security.cpp.o.d"
  "CMakeFiles/waldo_core.dir/transmitter_locator.cpp.o"
  "CMakeFiles/waldo_core.dir/transmitter_locator.cpp.o.d"
  "libwaldo_core.a"
  "libwaldo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waldo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
