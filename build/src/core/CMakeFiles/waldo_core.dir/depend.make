# Empty dependencies file for waldo_core.
# This may be replaced when dependencies are built.
