file(REMOVE_RECURSE
  "libwaldo_core.a"
)
