file(REMOVE_RECURSE
  "CMakeFiles/waldo_device.dir/energy.cpp.o"
  "CMakeFiles/waldo_device.dir/energy.cpp.o.d"
  "CMakeFiles/waldo_device.dir/phone.cpp.o"
  "CMakeFiles/waldo_device.dir/phone.cpp.o.d"
  "libwaldo_device.a"
  "libwaldo_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waldo_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
