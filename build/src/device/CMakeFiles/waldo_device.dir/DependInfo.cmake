
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/energy.cpp" "src/device/CMakeFiles/waldo_device.dir/energy.cpp.o" "gcc" "src/device/CMakeFiles/waldo_device.dir/energy.cpp.o.d"
  "/root/repo/src/device/phone.cpp" "src/device/CMakeFiles/waldo_device.dir/phone.cpp.o" "gcc" "src/device/CMakeFiles/waldo_device.dir/phone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/waldo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/waldo_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/waldo_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/campaign/CMakeFiles/waldo_campaign.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/waldo_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/waldo_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/waldo_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
