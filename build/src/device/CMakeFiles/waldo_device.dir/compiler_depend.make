# Empty compiler generated dependencies file for waldo_device.
# This may be replaced when dependencies are built.
