file(REMOVE_RECURSE
  "libwaldo_device.a"
)
