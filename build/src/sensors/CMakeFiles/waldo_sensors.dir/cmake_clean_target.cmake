file(REMOVE_RECURSE
  "libwaldo_sensors.a"
)
