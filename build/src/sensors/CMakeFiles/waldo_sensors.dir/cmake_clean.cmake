file(REMOVE_RECURSE
  "CMakeFiles/waldo_sensors.dir/calibration.cpp.o"
  "CMakeFiles/waldo_sensors.dir/calibration.cpp.o.d"
  "CMakeFiles/waldo_sensors.dir/sensor.cpp.o"
  "CMakeFiles/waldo_sensors.dir/sensor.cpp.o.d"
  "libwaldo_sensors.a"
  "libwaldo_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waldo_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
