# Empty dependencies file for waldo_sensors.
# This may be replaced when dependencies are built.
