file(REMOVE_RECURSE
  "libwaldo_campaign.a"
)
