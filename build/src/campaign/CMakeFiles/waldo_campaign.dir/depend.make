# Empty dependencies file for waldo_campaign.
# This may be replaced when dependencies are built.
