file(REMOVE_RECURSE
  "CMakeFiles/waldo_campaign.dir/dataset_io.cpp.o"
  "CMakeFiles/waldo_campaign.dir/dataset_io.cpp.o.d"
  "CMakeFiles/waldo_campaign.dir/labeling.cpp.o"
  "CMakeFiles/waldo_campaign.dir/labeling.cpp.o.d"
  "CMakeFiles/waldo_campaign.dir/measurement.cpp.o"
  "CMakeFiles/waldo_campaign.dir/measurement.cpp.o.d"
  "CMakeFiles/waldo_campaign.dir/truth.cpp.o"
  "CMakeFiles/waldo_campaign.dir/truth.cpp.o.d"
  "CMakeFiles/waldo_campaign.dir/wardrive.cpp.o"
  "CMakeFiles/waldo_campaign.dir/wardrive.cpp.o.d"
  "libwaldo_campaign.a"
  "libwaldo_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waldo_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
