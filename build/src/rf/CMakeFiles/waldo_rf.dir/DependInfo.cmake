
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/environment.cpp" "src/rf/CMakeFiles/waldo_rf.dir/environment.cpp.o" "gcc" "src/rf/CMakeFiles/waldo_rf.dir/environment.cpp.o.d"
  "/root/repo/src/rf/path_loss.cpp" "src/rf/CMakeFiles/waldo_rf.dir/path_loss.cpp.o" "gcc" "src/rf/CMakeFiles/waldo_rf.dir/path_loss.cpp.o.d"
  "/root/repo/src/rf/shadowing.cpp" "src/rf/CMakeFiles/waldo_rf.dir/shadowing.cpp.o" "gcc" "src/rf/CMakeFiles/waldo_rf.dir/shadowing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/waldo_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
