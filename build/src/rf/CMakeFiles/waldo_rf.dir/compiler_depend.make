# Empty compiler generated dependencies file for waldo_rf.
# This may be replaced when dependencies are built.
