file(REMOVE_RECURSE
  "libwaldo_rf.a"
)
