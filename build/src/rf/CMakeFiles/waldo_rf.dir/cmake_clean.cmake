file(REMOVE_RECURSE
  "CMakeFiles/waldo_rf.dir/environment.cpp.o"
  "CMakeFiles/waldo_rf.dir/environment.cpp.o.d"
  "CMakeFiles/waldo_rf.dir/path_loss.cpp.o"
  "CMakeFiles/waldo_rf.dir/path_loss.cpp.o.d"
  "CMakeFiles/waldo_rf.dir/shadowing.cpp.o"
  "CMakeFiles/waldo_rf.dir/shadowing.cpp.o.d"
  "libwaldo_rf.a"
  "libwaldo_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waldo_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
