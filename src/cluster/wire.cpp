#include "waldo/cluster/wire.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace waldo::cluster {

namespace {

constexpr std::string_view kMagic = "CLSTR/1";

// Same checked-parsing discipline as core/protocol.cpp: a field must be a
// base-10 integer occupying its whole token.
template <typename Int>
[[nodiscard]] Int parse_int(std::string_view text, const char* field) {
  Int value{};
  const char* const begin = text.data();
  const char* const end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error(std::string("CLSTR: malformed ") + field +
                             ": '" + std::string(text) + "'");
  }
  return value;
}

/// Splits `line` into exactly `n` space-separated tokens.
[[nodiscard]] std::vector<std::string_view> split_tokens(std::string_view line,
                                                         std::size_t n,
                                                         const char* what) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos <= line.size() && tokens.size() < n) {
    const std::size_t space = line.find(' ', pos);
    if (space == std::string_view::npos) {
      tokens.push_back(line.substr(pos));
      pos = line.size() + 1;
    } else {
      tokens.push_back(line.substr(pos, space - pos));
      pos = space + 1;
    }
  }
  if (tokens.size() != n || pos <= line.size()) {
    throw std::runtime_error(std::string("CLSTR: malformed ") + what);
  }
  return tokens;
}

/// Reads "<count>\n" at `pos`, advancing it.
[[nodiscard]] std::size_t read_count_line(const std::string& body,
                                          std::size_t& pos,
                                          const char* what) {
  const std::size_t nl = body.find('\n', pos);
  if (nl == std::string::npos) {
    throw std::runtime_error(std::string("CLSTR: truncated ") + what);
  }
  const auto count = parse_int<std::size_t>(
      std::string_view(body).substr(pos, nl - pos), what);
  pos = nl + 1;
  // A count the remaining body cannot possibly hold is hostile, not a
  // reason to attempt a giant reserve.
  if (count > body.size() - pos + 1) {
    throw std::runtime_error(std::string("CLSTR: implausible ") + what);
  }
  return count;
}

/// Reads "<bytes>\n<raw bytes>" at `pos`, advancing it.
[[nodiscard]] std::string read_blob(const std::string& body, std::size_t& pos,
                                    const char* what) {
  const std::size_t length = read_count_line(body, pos, what);
  if (body.size() - pos < length) {
    throw std::runtime_error(std::string("CLSTR: truncated ") + what);
  }
  std::string blob = body.substr(pos, length);
  pos += length;
  return blob;
}

}  // namespace

std::string encode_envelope(const Envelope& envelope) {
  if (envelope.verb.empty() ||
      envelope.verb.find_first_of(" \t\n") != std::string::npos) {
    throw std::invalid_argument("CLSTR verb must be a single token");
  }
  std::ostringstream os;
  os << kMagic << " " << envelope.verb << " " << envelope.from << " "
     << envelope.tile.tx << " " << envelope.tile.ty << " "
     << envelope.body.size() << "\n"
     << envelope.body;
  return os.str();
}

Envelope decode_envelope(const std::string& wire) {
  const std::size_t nl = wire.find('\n');
  if (nl == std::string::npos) {
    throw std::runtime_error("CLSTR: missing header line");
  }
  const auto tokens = split_tokens(std::string_view(wire.data(), nl), 6,
                                   "envelope header");
  if (tokens[0] != kMagic) throw std::runtime_error("CLSTR: bad magic");
  Envelope env;
  env.verb = std::string(tokens[1]);
  if (env.verb.empty()) throw std::runtime_error("CLSTR: empty verb");
  env.from = parse_int<NodeId>(tokens[2], "sender id");
  env.tile.tx = parse_int<std::int32_t>(tokens[3], "tile x");
  env.tile.ty = parse_int<std::int32_t>(tokens[4], "tile y");
  const auto length = parse_int<std::size_t>(tokens[5], "body length");
  env.body = wire.substr(nl + 1);
  if (env.body.size() != length) {
    throw std::runtime_error("CLSTR: body length mismatch");
  }
  return env;
}

std::string encode_repl_entry(const ReplEntry& entry) {
  std::ostringstream os;
  os << entry.channel << " " << entry.ticket << " " << entry.request_id
     << " " << entry.upload_wire.size() << "\n"
     << entry.upload_wire;
  return os.str();
}

ReplEntry decode_repl_entry(const std::string& body) {
  const std::size_t nl = body.find('\n');
  if (nl == std::string::npos) {
    throw std::runtime_error("CLSTR: truncated repl entry");
  }
  const auto tokens =
      split_tokens(std::string_view(body.data(), nl), 4, "repl entry");
  ReplEntry entry;
  entry.channel = parse_int<int>(tokens[0], "repl channel");
  entry.ticket = parse_int<std::uint64_t>(tokens[1], "repl ticket");
  entry.request_id = parse_int<std::uint64_t>(tokens[2], "repl request id");
  const auto length = parse_int<std::size_t>(tokens[3], "repl wire length");
  entry.upload_wire = body.substr(nl + 1);
  if (entry.upload_wire.size() != length) {
    throw std::runtime_error("CLSTR: repl wire length mismatch");
  }
  return entry;
}

std::string encode_tile_snapshot(const TileSnapshot& snapshot) {
  std::ostringstream os;
  os << snapshot.campaign_csvs.size() << "\n";
  for (const std::string& csv : snapshot.campaign_csvs) {
    os << csv.size() << "\n" << csv;
  }
  os << snapshot.log.size() << "\n";
  for (const ReplEntry& entry : snapshot.log) {
    const std::string encoded = encode_repl_entry(entry);
    os << encoded.size() << "\n" << encoded;
  }
  return os.str();
}

TileSnapshot decode_tile_snapshot(const std::string& body) {
  TileSnapshot snapshot;
  std::size_t pos = 0;
  const std::size_t csvs = read_count_line(body, pos, "snapshot csv count");
  snapshot.campaign_csvs.reserve(csvs);
  for (std::size_t i = 0; i < csvs; ++i) {
    snapshot.campaign_csvs.push_back(read_blob(body, pos, "snapshot csv"));
  }
  const std::size_t entries =
      read_count_line(body, pos, "snapshot log count");
  snapshot.log.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    snapshot.log.push_back(
        decode_repl_entry(read_blob(body, pos, "snapshot log entry")));
  }
  if (pos != body.size()) {
    throw std::runtime_error("CLSTR: trailing bytes after snapshot");
  }
  return snapshot;
}

}  // namespace waldo::cluster
