#include "waldo/cluster/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <variant>

#include "waldo/campaign/dataset_io.hpp"
#include "waldo/cluster/wire.hpp"
#include "waldo/core/protocol.hpp"

namespace waldo::cluster {

/// In-memory fabric: delivers envelopes by direct call into the target
/// node, after letting the FaultInjector adjudicate the message's fate.
/// Dead nodes are unreachable (TransportError), mirroring a refused
/// connection. Duplicated requests are delivered twice back-to-back — the
/// receiver's dedup/idempotency machinery, not delivery discipline, must
/// absorb them.
class Cluster::Loopback final : public Transport {
 public:
  Loopback(std::vector<std::unique_ptr<ClusterNode>>& nodes,
           const MembershipView& membership, FaultInjector& injector)
      : nodes_(&nodes), membership_(&membership), injector_(&injector) {}

  std::string send(NodeId to, const std::string& envelope) override {
    if (to >= nodes_->size()) {
      throw TransportError("loopback: no route to node " +
                           std::to_string(to));
    }
    const FaultInjector::Decision fate = injector_->next();
    if (fate.delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(fate.delay_us));
    }
    if (!membership_->snapshot()->alive(to)) {
      throw TransportError("loopback: node " + std::to_string(to) +
                           " is down");
    }
    if (fate.drop_request) {
      throw TransportError("loopback: request dropped");
    }
    std::string response = (*nodes_)[to]->handle(envelope);
    if (fate.duplicate) {
      // Redelivery: the first response wins, the second is discarded —
      // the shape a retransmit-after-timeout produces.
      (void)(*nodes_)[to]->handle(envelope);
    }
    if (fate.drop_response) {
      throw TransportError("loopback: response dropped");
    }
    return response;
  }

 private:
  std::vector<std::unique_ptr<ClusterNode>>* nodes_;
  const MembershipView* membership_;
  FaultInjector* injector_;
};

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      membership_(config_.num_nodes),
      injector_(config_.faults) {
  if (config_.num_nodes == 0) {
    throw std::invalid_argument("cluster needs at least one node");
  }
  if (config_.replication == 0) {
    throw std::invalid_argument("replication factor must be >= 1");
  }
  const ClusterTopology topo = topology();
  nodes_.reserve(config_.num_nodes);
  for (NodeId id = 0; id < config_.num_nodes; ++id) {
    nodes_.push_back(std::make_unique<ClusterNode>(
        id, topo, config_.constructor_config, config_.labeling,
        config_.upload_policy, membership_, config_.replication_backoff));
  }
  transport_ = std::make_unique<Loopback>(nodes_, membership_, injector_);
  for (auto& node : nodes_) node->attach_transport(*transport_);
}

Cluster::~Cluster() = default;

ClusterTopology Cluster::topology() const {
  return ClusterTopology{.tiling = Tiling(config_.tile_size_m),
                         .num_nodes = config_.num_nodes,
                         .replication = config_.replication};
}

Transport& Cluster::transport() noexcept { return *transport_; }

ClusterNode& Cluster::node(NodeId id) {
  if (id >= nodes_.size()) throw std::out_of_range("cluster: unknown node");
  return *nodes_[id];
}

TileKey Cluster::ingest_campaign(const campaign::ChannelDataset& dataset) {
  if (dataset.readings.empty()) {
    throw std::invalid_argument("refusing to ingest an empty campaign");
  }
  // Normalize through the archival CSV form so every replica — and every
  // future recovery replay — parses the exact same bytes. (CSV is the
  // tier's canonical dataset representation: bit-exact round-trip, PR 3.)
  std::ostringstream os;
  campaign::write_csv(os, dataset);
  const std::string csv = os.str();

  const Tiling tiling(config_.tile_size_m);
  // A campaign sweep belongs to the tile containing its centroid; sweeps
  // are expected to be tile-sized areas (a metro area per tile).
  geo::EnuPoint centroid{};
  for (const campaign::Measurement& m : dataset.readings) {
    centroid.east_m += m.position.east_m;
    centroid.north_m += m.position.north_m;
  }
  centroid.east_m /= static_cast<double>(dataset.readings.size());
  centroid.north_m /= static_cast<double>(dataset.readings.size());
  const TileKey tile = tiling.tile_of(centroid);

  const std::string envelope = encode_envelope(
      {.verb = "ingest", .from = kClientNode, .tile = tile, .body = csv});
  for (const NodeId id :
       replica_set(tile, config_.num_nodes, config_.replication)) {
    const Envelope reply = decode_envelope(nodes_[id]->handle(envelope));
    if (reply.verb != "ok") {
      throw std::runtime_error("cluster: bootstrap ingest failed on node " +
                               std::to_string(id));
    }
  }
  {
    const std::lock_guard lock(bootstrap_mutex_);
    bootstrap_csvs_[tile].push_back(csv);
  }
  return tile;
}

campaign::ChannelDataset Cluster::normalized_campaign(
    TileKey tile, std::size_t index) const {
  const std::lock_guard lock(bootstrap_mutex_);
  const auto it = bootstrap_csvs_.find(tile);
  if (it == bootstrap_csvs_.end() || index >= it->second.size()) {
    throw std::out_of_range("cluster: no such bootstrap campaign");
  }
  std::istringstream is(it->second[index]);
  return campaign::read_csv(is);
}

std::vector<TileKey> Cluster::tiles() const {
  const std::lock_guard lock(bootstrap_mutex_);
  std::vector<TileKey> out;
  out.reserve(bootstrap_csvs_.size());
  for (const auto& [tile, csvs] : bootstrap_csvs_) out.push_back(tile);
  return out;
}

std::vector<NodeId> Cluster::replicas_of(TileKey tile) const {
  return replica_set(tile, config_.num_nodes, config_.replication);
}

void Cluster::kill(NodeId id) {
  membership_.set_health(id, NodeHealth::kDead);
  // wipe() waits for in-flight handlers, so by the time kill() returns the
  // node is unreachable AND empty — clean fail-stop.
  node(id).wipe();
}

void Cluster::recover(NodeId id) {
  ClusterNode& target = node(id);
  membership_.set_health(id, NodeHealth::kSyncing);

  for (const TileKey tile : tiles()) {
    const auto replicas = replicas_of(tile);
    if (std::find(replicas.begin(), replicas.end(), id) == replicas.end()) {
      continue;  // not an owner
    }

    // Pull the tile from a ready peer, riding the same faulty transport as
    // everything else — recovery must survive drops and delays too.
    const std::string pull = encode_envelope(
        {.verb = "pull", .from = id, .tile = tile, .body = {}});
    runtime::Backoff backoff(config_.replication_backoff,
                             runtime::split_seed(0x7EC0BEEF, id));
    bool installed = false;
    for (int attempt = 0; attempt < 400 && !installed; ++attempt) {
      const auto m = membership_.snapshot();
      NodeId source = kClientNode;
      for (const NodeId n : replicas) {
        if (n != id && m->ready(n)) {
          source = n;
          break;
        }
      }
      if (source == kClientNode) break;  // nobody to pull from
      try {
        const Envelope reply =
            decode_envelope(transport_->send(source, pull));
        if (reply.verb == "state") {
          target.install_snapshot(tile, decode_tile_snapshot(reply.body));
          installed = true;
          break;
        }
      } catch (const TransportError&) {
        // dropped — retry below
      }
      std::this_thread::sleep_for(backoff.next());
    }

    if (!installed) {
      // No ready peer holds the tile (replication == 1 and the only copy
      // died with this node). Crowd uploads are gone; restore at least the
      // trusted bootstrap campaigns the harness retains — the archival
      // re-provisioning a real operator would perform.
      TileSnapshot bootstrap_only;
      {
        const std::lock_guard lock(bootstrap_mutex_);
        bootstrap_only.campaign_csvs = bootstrap_csvs_.at(tile);
      }
      target.install_snapshot(tile, bootstrap_only);
    }
  }

  membership_.set_health(id, NodeHealth::kReady);
}

}  // namespace waldo::cluster
