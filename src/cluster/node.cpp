#include "waldo/cluster/node.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <variant>

#include "waldo/campaign/dataset_io.hpp"
#include "waldo/core/protocol.hpp"
#include "waldo/service/service.hpp"

namespace waldo::cluster {

struct ClusterNode::Tile {
  Tile(const core::ModelConstructorConfig& constructor_config,
       const campaign::LabelingConfig& labeling,
       const core::UploadPolicy& upload_policy, bool synced_in)
      : service(constructor_config, labeling, upload_policy),
        server(service),
        synced(synced_in) {}

  service::SpectrumService service;  // thread-safe; reads skip `mutex`
  core::ProtocolServer server;       // serves downloads off `service`

  /// Serialises every write to the tile (client uploads, replication,
  /// state transfer) and guards the fields below. Holding it across the
  /// synchronous replication RPC is deliberate: the tile's log order IS
  /// its replication order, and the fencing re-check must be atomic with
  /// the apply. Downloads never take it.
  std::mutex mutex;
  std::vector<std::string> campaign_csvs;
  std::map<int, std::map<std::uint64_t, ReplEntry>> log;
  std::map<std::uint64_t, std::string> dedup;  // request id -> response
  std::map<int, std::map<std::uint64_t, ReplEntry>> reorder;
  /// False while the tile only buffers replication (fresh from a wipe,
  /// waiting for install_snapshot). Client traffic requires synced.
  bool synced;
};

struct ClusterNode::Counters {
  std::atomic<std::uint64_t> ingests{0};
  std::atomic<std::uint64_t> downloads{0};
  std::atomic<std::uint64_t> uploads{0};
  std::atomic<std::uint64_t> repl_applied{0};
  std::atomic<std::uint64_t> repl_buffered{0};
  std::atomic<std::uint64_t> repl_duplicates{0};
  std::atomic<std::uint64_t> repl_fenced{0};
  std::atomic<std::uint64_t> dedup_hits{0};
  std::atomic<std::uint64_t> not_owner{0};
  std::atomic<std::uint64_t> not_ready{0};
  std::atomic<std::uint64_t> pulls{0};
  std::atomic<std::uint64_t> installs{0};
  std::atomic<std::uint64_t> repl_abandoned{0};
  std::atomic<std::uint64_t> mismatches{0};
};

ClusterNode::ClusterNode(NodeId id, ClusterTopology topology,
                         core::ModelConstructorConfig constructor_config,
                         campaign::LabelingConfig labeling,
                         core::UploadPolicy upload_policy,
                         const MembershipView& membership,
                         runtime::BackoffConfig replication_backoff)
    : id_(id),
      topology_(topology),
      constructor_config_(std::move(constructor_config)),
      labeling_(labeling),
      upload_policy_(upload_policy),
      replication_backoff_(replication_backoff),
      membership_(&membership),
      counters_(std::make_unique<Counters>()) {}

ClusterNode::~ClusterNode() = default;

void ClusterNode::attach_transport(Transport& transport) noexcept {
  transport_ = &transport;
}

NodeId ClusterNode::tile_primary(const Membership& m, TileKey tile) const {
  for (const NodeId n :
       replica_set(tile, topology_.num_nodes, topology_.replication)) {
    if (m.alive(n)) return n;
  }
  return kClientNode;
}

ClusterNode::Tile* ClusterNode::find_tile(TileKey key) const {
  const std::lock_guard lock(tiles_mutex_);
  const auto it = tiles_.find(key);
  return it == tiles_.end() ? nullptr : it->second.get();
}

ClusterNode::Tile& ClusterNode::tile_or_create(TileKey key, bool synced) {
  const std::lock_guard lock(tiles_mutex_);
  auto& slot = tiles_[key];
  if (!slot) {
    slot = std::make_unique<Tile>(constructor_config_, labeling_,
                                  upload_policy_, synced);
  }
  return *slot;
}

std::string ClusterNode::error_envelope(TileKey tile, core::ErrorCode code,
                                        int channel,
                                        std::string reason) const {
  return encode_envelope(
      {.verb = "wsnp",
       .from = id_,
       .tile = tile,
       .body = core::encode(core::ErrorResponse{.reason = std::move(reason),
                                                .code = code,
                                                .channel = channel})});
}

std::string ClusterNode::handle(const std::string& envelope_wire) noexcept {
  Envelope request;
  try {
    request = decode_envelope(envelope_wire);
  } catch (const std::exception& e) {
    return error_envelope(TileKey{}, core::ErrorCode::kMalformed, 0,
                          e.what());
  }
  try {
    // Shared against wipe(): a dying node finishes in-flight requests
    // before its tiles vanish, so handlers never race the teardown.
    const std::shared_lock lifecycle(lifecycle_mutex_);
    if (!membership_->snapshot()->alive(id_)) {
      return error_envelope(request.tile, core::ErrorCode::kUnavailable, 0,
                            "node is down");
    }
    if (request.verb == "wsnp") return handle_wsnp(request);
    if (request.verb == "repl") return handle_repl(request);
    if (request.verb == "ingest") return handle_ingest(request);
    if (request.verb == "pull") return handle_pull(request);
    return error_envelope(request.tile, core::ErrorCode::kBadRequest, 0,
                          "unknown cluster verb: " + request.verb);
  } catch (const std::exception& e) {
    return error_envelope(request.tile, core::ErrorCode::kInternal, 0,
                          e.what());
  } catch (...) {
    return error_envelope(request.tile, core::ErrorCode::kInternal, 0,
                          "unidentified failure");
  }
}

std::string ClusterNode::handle_ingest(const Envelope& request) {
  std::istringstream is(request.body);
  campaign::ChannelDataset dataset = campaign::read_csv(is);
  Tile& t = tile_or_create(request.tile, /*synced=*/true);
  const std::lock_guard lock(t.mutex);
  t.campaign_csvs.push_back(request.body);
  t.service.ingest_campaign(std::move(dataset));
  counters_->ingests.fetch_add(1, std::memory_order_relaxed);
  return encode_envelope(
      {.verb = "ok", .from = id_, .tile = request.tile, .body = {}});
}

std::string ClusterNode::handle_wsnp(const Envelope& request) {
  {
    const auto m = membership_->snapshot();
    if (!m->ready(id_)) {
      counters_->not_ready.fetch_add(1, std::memory_order_relaxed);
      return error_envelope(request.tile, core::ErrorCode::kNotReady, 0,
                            "node is syncing");
    }
  }
  const auto replicas =
      replica_set(request.tile, topology_.num_nodes, topology_.replication);
  if (std::find(replicas.begin(), replicas.end(), id_) == replicas.end()) {
    counters_->not_owner.fetch_add(1, std::memory_order_relaxed);
    return error_envelope(request.tile, core::ErrorCode::kNotOwner, 0,
                          "node does not host this tile");
  }

  core::Message message;
  try {
    message = core::decode(request.body);
  } catch (const std::exception& e) {
    return error_envelope(request.tile, core::ErrorCode::kMalformed, 0,
                          e.what());
  }

  if (const auto* r = std::get_if<core::ModelRequest>(&message)) {
    Tile* t = find_tile(request.tile);
    if (t == nullptr || !t->synced) {
      counters_->not_ready.fetch_add(1, std::memory_order_relaxed);
      return error_envelope(request.tile, core::ErrorCode::kNotReady,
                            r->channel, "tile not resident");
    }
    // Reads go straight to the thread-safe service (cached descriptor fast
    // path); they never contend with the tile write mutex.
    counters_->downloads.fetch_add(1, std::memory_order_relaxed);
    return encode_envelope({.verb = "wsnp",
                            .from = id_,
                            .tile = request.tile,
                            .body = t->server.handle(request.body)});
  }

  const auto* r = std::get_if<core::UploadRequest>(&message);
  if (r == nullptr) {
    return error_envelope(request.tile, core::ErrorCode::kBadRequest, 0,
                          "cluster nodes accept request messages only");
  }

  Tile* t = find_tile(request.tile);
  if (t == nullptr || !t->synced) {
    counters_->not_ready.fetch_add(1, std::memory_order_relaxed);
    return error_envelope(request.tile, core::ErrorCode::kNotReady,
                          r->channel, "tile not resident");
  }
  const std::lock_guard lock(t->mutex);
  // Fencing: re-validate primacy against a FRESH membership snapshot under
  // the tile mutex. A node the control plane just killed or deposed (a
  // recovering higher-priority replica went non-dead) must stop accepting
  // here, atomically with the apply — this is what keeps two nodes from
  // ever growing the same channel log concurrently.
  {
    const auto now = membership_->snapshot();
    if (!now->ready(id_) || tile_primary(*now, request.tile) != id_) {
      counters_->not_owner.fetch_add(1, std::memory_order_relaxed);
      return error_envelope(request.tile, core::ErrorCode::kNotOwner,
                            r->channel, "not the tile primary");
    }
  }
  if (r->request_id != 0) {
    const auto hit = t->dedup.find(r->request_id);
    if (hit != t->dedup.end()) {
      counters_->dedup_hits.fetch_add(1, std::memory_order_relaxed);
      return encode_envelope({.verb = "wsnp",
                              .from = id_,
                              .tile = request.tile,
                              .body = hit->second});
    }
  }

  ReplEntry entry{.channel = r->channel,
                  .ticket = 0,
                  .request_id = r->request_id,
                  .upload_wire = request.body};
  std::string response;
  try {
    response = apply_locked(*t, entry, /*expect_ticket=*/false);
  } catch (const std::out_of_range& e) {
    return error_envelope(request.tile, core::ErrorCode::kUnknownChannel,
                          r->channel, e.what());
  }
  counters_->uploads.fetch_add(1, std::memory_order_relaxed);
  if (!replicate_locked(request.tile, entry)) {
    // A receiver fenced us: we are being deposed (or are already marked
    // dead). The local apply survives in the log; if this node lives on,
    // the entry reaches peers via the recovery pull, and the client's
    // retry lands on the dedup record — so not acking here is safe.
    return error_envelope(request.tile, core::ErrorCode::kUnavailable,
                          r->channel, "deposed during replication");
  }
  return encode_envelope({.verb = "wsnp",
                          .from = id_,
                          .tile = request.tile,
                          .body = response});
}

std::string ClusterNode::handle_repl(const Envelope& request) {
  ReplEntry entry = decode_repl_entry(request.body);
  Tile& t = tile_or_create(request.tile, /*synced=*/false);
  const std::lock_guard lock(t.mutex);
  // Fence stale writers: only the current primary may append. Checked
  // under the tile mutex against a fresh snapshot, mirroring the
  // sender-side check.
  if (tile_primary(*membership_->snapshot(), request.tile) != request.from) {
    counters_->repl_fenced.fetch_add(1, std::memory_order_relaxed);
    return error_envelope(request.tile, core::ErrorCode::kNotOwner,
                          entry.channel,
                          "replication fenced: sender is not the primary");
  }
  const int channel = entry.channel;
  if (!t.synced) {
    // Syncing: hold everything until install_snapshot replays the pulled
    // state, then drain. Ack now — the entry is durable in the buffer.
    t.reorder[channel][entry.ticket] = std::move(entry);
    counters_->repl_buffered.fetch_add(1, std::memory_order_relaxed);
  } else if (entry.ticket < t.service.uploads_applied(channel)) {
    counters_->repl_duplicates.fetch_add(1, std::memory_order_relaxed);
  } else {
    t.reorder[channel][entry.ticket] = std::move(entry);
    drain_reorder_locked(t);
  }
  return encode_envelope(
      {.verb = "ok", .from = id_, .tile = request.tile, .body = {}});
}

std::string ClusterNode::handle_pull(const Envelope& request) {
  Tile* t = find_tile(request.tile);
  if (t == nullptr) {
    return error_envelope(request.tile, core::ErrorCode::kNotReady, 0,
                          "tile not resident");
  }
  const std::lock_guard lock(t->mutex);
  if (!t->synced) {
    return error_envelope(request.tile, core::ErrorCode::kNotReady, 0,
                          "tile not synced");
  }
  TileSnapshot snapshot;
  snapshot.campaign_csvs = t->campaign_csvs;
  for (const auto& [channel, entries] : t->log) {
    for (const auto& [ticket, entry] : entries) snapshot.log.push_back(entry);
  }
  counters_->pulls.fetch_add(1, std::memory_order_relaxed);
  return encode_envelope({.verb = "state",
                          .from = id_,
                          .tile = request.tile,
                          .body = encode_tile_snapshot(snapshot)});
}

std::string ClusterNode::apply_locked(Tile& t, ReplEntry& entry,
                                      bool expect_ticket) {
  const core::Message message = core::decode(entry.upload_wire);
  const auto* upload = std::get_if<core::UploadRequest>(&message);
  if (upload == nullptr) {
    throw std::runtime_error("cluster: log entry is not an upload_request");
  }
  const core::UploadResult result = t.service.upload_measurements(
      upload->channel, upload->readings, upload->contributor);
  if (expect_ticket && result.ticket != entry.ticket) {
    // The service applied identical bytes but landed on a different
    // ticket than the primary assigned: the logs have split.
    counters_->mismatches.fetch_add(1, std::memory_order_relaxed);
    throw std::logic_error("cluster: replica ticket diverged");
  }
  entry.ticket = result.ticket;
  entry.channel = upload->channel;
  const std::string response =
      core::encode(core::UploadResponse{.accepted = result.accepted,
                                        .rejected = result.rejected,
                                        .pending = result.pending,
                                        .ticket = result.ticket});
  t.log[entry.channel][entry.ticket] = entry;
  if (entry.request_id != 0) t.dedup[entry.request_id] = response;
  return response;
}

void ClusterNode::drain_reorder_locked(Tile& t) {
  for (auto it = t.reorder.begin(); it != t.reorder.end();) {
    auto& pending = it->second;
    const int channel = it->first;
    while (!pending.empty()) {
      const std::uint64_t next = t.service.uploads_applied(channel);
      const auto first = pending.begin();
      if (first->first < next) {
        counters_->repl_duplicates.fetch_add(1, std::memory_order_relaxed);
        pending.erase(first);
        continue;
      }
      if (first->first > next) break;  // gap — wait for the missing entry
      ReplEntry entry = std::move(first->second);
      pending.erase(first);
      (void)apply_locked(t, entry, /*expect_ticket=*/true);
      counters_->repl_applied.fetch_add(1, std::memory_order_relaxed);
    }
    it = pending.empty() ? t.reorder.erase(it) : ++it;
  }
}

bool ClusterNode::replicate_locked(TileKey key, const ReplEntry& entry) {
  const auto replicas =
      replica_set(key, topology_.num_nodes, topology_.replication);
  if (replicas.size() <= 1) return true;
  const std::string wire = encode_envelope({.verb = "repl",
                                            .from = id_,
                                            .tile = key,
                                            .body = encode_repl_entry(entry)});
  for (const NodeId peer : replicas) {
    if (peer == id_) continue;
    runtime::Backoff backoff(replication_backoff_,
                             runtime::split_seed(entry.request_id,
                                                 entry.ticket));
    // Transport faults retry forever (the peer either accepts or dies);
    // persistent *protocol* errors are logic faults — bounded retries,
    // then give up loudly rather than hang the tile.
    int protocol_failures = 0;
    while (true) {
      if (!membership_->snapshot()->alive(peer)) break;  // resyncs later
      try {
        const Envelope reply = decode_envelope(transport_->send(peer, wire));
        if (reply.verb == "ok") break;
        const core::Message message = core::decode(reply.body);
        if (const auto* err = std::get_if<core::ErrorResponse>(&message)) {
          if (err->code == core::ErrorCode::kNotOwner) return false;  // fenced
        }
        if (++protocol_failures > 50) {
          counters_->repl_abandoned.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      } catch (const TransportError&) {
        // dropped request or reply — retry
      } catch (const std::exception&) {
        if (++protocol_failures > 50) {
          counters_->repl_abandoned.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      std::this_thread::sleep_for(backoff.next());
    }
  }
  return true;
}

void ClusterNode::wipe() {
  const std::unique_lock lifecycle(lifecycle_mutex_);
  const std::lock_guard lock(tiles_mutex_);
  tiles_.clear();
}

void ClusterNode::install_snapshot(TileKey tile, const TileSnapshot& snapshot) {
  const std::shared_lock lifecycle(lifecycle_mutex_);
  Tile& t = tile_or_create(tile, /*synced=*/false);
  const std::lock_guard lock(t.mutex);
  if (t.synced) return;
  for (const std::string& csv : snapshot.campaign_csvs) {
    std::istringstream is(csv);
    t.service.ingest_campaign(campaign::read_csv(is));
    t.campaign_csvs.push_back(csv);
  }
  for (ReplEntry entry : snapshot.log) {
    const std::uint64_t next = t.service.uploads_applied(entry.channel);
    if (entry.ticket < next) continue;  // defensively tolerate duplicates
    if (entry.ticket > next) {
      throw std::runtime_error("cluster: snapshot log has a ticket gap");
    }
    (void)apply_locked(t, entry, /*expect_ticket=*/true);
  }
  t.synced = true;
  drain_reorder_locked(t);
  counters_->installs.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TileKey> ClusterNode::tiles() const {
  const std::lock_guard lock(tiles_mutex_);
  std::vector<TileKey> out;
  out.reserve(tiles_.size());
  for (const auto& [key, tile] : tiles_) out.push_back(key);
  return out;
}

std::vector<int> ClusterNode::channels(TileKey tile) const {
  Tile* t = find_tile(tile);
  return t == nullptr ? std::vector<int>{} : t->service.channels();
}

std::string ClusterNode::descriptor_bytes(TileKey tile, int channel) {
  Tile* t = find_tile(tile);
  if (t == nullptr) return {};
  try {
    return *t->service.download_descriptor(channel);
  } catch (const std::out_of_range&) {
    return {};
  }
}

std::string ClusterNode::dataset_csv(TileKey tile, int channel) const {
  Tile* t = find_tile(tile);
  if (t == nullptr) return {};
  try {
    std::ostringstream os;
    campaign::write_csv(os, t->service.dataset_snapshot(channel));
    return os.str();
  } catch (const std::out_of_range&) {
    return {};
  }
}

std::uint64_t ClusterNode::log_size(TileKey tile, int channel) const {
  Tile* t = find_tile(tile);
  if (t == nullptr) return 0;
  const std::lock_guard lock(t->mutex);
  const auto it = t->log.find(channel);
  return it == t->log.end() ? 0 : it->second.size();
}

NodeStats ClusterNode::stats() const {
  const Counters& c = *counters_;
  NodeStats out;
  out.ingests = c.ingests.load(std::memory_order_relaxed);
  out.downloads_served = c.downloads.load(std::memory_order_relaxed);
  out.uploads_applied = c.uploads.load(std::memory_order_relaxed);
  out.repl_applied = c.repl_applied.load(std::memory_order_relaxed);
  out.repl_buffered = c.repl_buffered.load(std::memory_order_relaxed);
  out.repl_duplicates = c.repl_duplicates.load(std::memory_order_relaxed);
  out.repl_fenced = c.repl_fenced.load(std::memory_order_relaxed);
  out.dedup_hits = c.dedup_hits.load(std::memory_order_relaxed);
  out.rejected_not_owner = c.not_owner.load(std::memory_order_relaxed);
  out.rejected_not_ready = c.not_ready.load(std::memory_order_relaxed);
  out.pulls_served = c.pulls.load(std::memory_order_relaxed);
  out.snapshots_installed = c.installs.load(std::memory_order_relaxed);
  out.repl_abandoned = c.repl_abandoned.load(std::memory_order_relaxed);
  out.ticket_mismatches = c.mismatches.load(std::memory_order_relaxed);
  return out;
}

}  // namespace waldo::cluster
