#include "waldo/cluster/router.hpp"

#include <optional>
#include <stdexcept>
#include <thread>
#include <variant>

#include "waldo/cluster/wire.hpp"
#include "waldo/runtime/seed.hpp"

namespace waldo::cluster {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t elapsed_ns(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

ClusterRouter::ClusterRouter(ClusterTopology topology, Transport& transport,
                             const MembershipView& membership,
                             RouterConfig config)
    : topology_(topology),
      transport_(&transport),
      membership_(&membership),
      config_(config) {}

std::uint64_t ClusterRouter::next_request_id() noexcept {
  const std::uint64_t ordinal =
      request_counter_.fetch_add(1, std::memory_order_relaxed);
  // split_seed output could in principle be 0 (the "no dedup" sentinel);
  // force the low bit instead of special-casing the one-in-2^64 draw.
  return runtime::split_seed(config_.seed, ordinal) | 1u;
}

std::string ClusterRouter::route(const geo::EnuPoint& location,
                                 const std::string& wire, bool is_upload) {
  const TileKey tile = topology_.tiling.tile_of(location);
  const auto replicas =
      replica_set(tile, topology_.num_nodes, topology_.replication);
  const std::string envelope = encode_envelope(
      {.verb = "wsnp", .from = kClientNode, .tile = tile, .body = wire});

  const Clock::time_point start = Clock::now();
  runtime::Backoff backoff(
      config_.backoff,
      runtime::split_seed(config_.seed,
                          request_counter_.fetch_add(1,
                                                     std::memory_order_relaxed)));
  std::size_t rotate =
      (is_upload || !config_.spread_reads)
          ? 0
          : static_cast<std::size_t>(
                read_rotor_.fetch_add(1, std::memory_order_relaxed) %
                replicas.size());
  std::uint64_t attempts = 0;
  std::string last_failure = "no live replica";

  const auto finish = [&](const std::string& body) {
    const std::uint64_t ns = elapsed_ns(start);
    request_latency_.record(ns);
    if (attempts > 0) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      failover_latency_.record(ns);
    }
    return body;
  };

  while (true) {
    // Pick this attempt's target. Uploads chase the tile primary (first
    // non-dead replica — matches the node-side fencing rule); reads take
    // the first *ready* replica starting from a rotating offset.
    const auto m = membership_->snapshot();
    NodeId target = kClientNode;
    if (is_upload) {
      for (const NodeId n : replicas) {
        if (m->alive(n)) {
          target = n;
          break;
        }
      }
    } else {
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        const NodeId n = replicas[(rotate + i) % replicas.size()];
        if (m->ready(n)) {
          target = n;
          break;
        }
      }
    }

    if (target != kClientNode) {
      std::optional<core::ErrorResponse> permanent;
      try {
        const Envelope reply =
            decode_envelope(transport_->send(target, envelope));
        const core::Message message = core::decode(reply.body);
        if (const auto* err = std::get_if<core::ErrorResponse>(&message)) {
          if (core::is_retryable(err->code)) {
            last_failure = err->reason;
          } else {
            permanent = *err;
          }
        } else {
          return finish(reply.body);
        }
      } catch (const TransportError& e) {
        last_failure = e.what();
      } catch (const std::exception& e) {
        last_failure = e.what();  // garbled reply — retry
      }
      if (permanent.has_value()) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        throw std::runtime_error(
            "cluster: permanent error (code " +
            std::to_string(static_cast<int>(permanent->code)) + ", channel " +
            std::to_string(permanent->channel) + "): " + permanent->reason);
      }
    }

    if (Clock::now() - start >
        std::chrono::duration_cast<Clock::duration>(config_.deadline)) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("cluster: request deadline exceeded; last: " +
                               last_failure);
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    ++attempts;
    if (!is_upload) ++rotate;  // reads fail over to the next replica
    std::this_thread::sleep_for(backoff.next());
  }
}

core::UploadResponse ClusterRouter::upload(
    int channel, const geo::EnuPoint& location, const std::string& contributor,
    std::span<const campaign::Measurement> readings) {
  core::UploadRequest request;
  request.channel = channel;
  request.contributor = contributor;
  request.request_id = next_request_id();
  request.location = location;
  request.readings.assign(readings.begin(), readings.end());
  uploads_.fetch_add(1, std::memory_order_relaxed);
  // One wire for every attempt: the request id must not change across
  // retries or the dedup table cannot recognise them.
  const std::string body =
      route(location, core::encode(request), /*is_upload=*/true);
  const core::Message reply = core::decode(body);
  const auto* response = std::get_if<core::UploadResponse>(&reply);
  if (response == nullptr) {
    throw std::runtime_error("cluster: unexpected reply to upload");
  }
  return *response;
}

std::string ClusterRouter::download_descriptor(int channel,
                                               const geo::EnuPoint& location) {
  downloads_.fetch_add(1, std::memory_order_relaxed);
  const std::string body = route(
      location,
      core::encode(core::ModelRequest{.channel = channel,
                                      .location = location}),
      /*is_upload=*/false);
  core::Message reply = core::decode(body);
  auto* response = std::get_if<core::ModelResponse>(&reply);
  if (response == nullptr) {
    throw std::runtime_error("cluster: unexpected reply to model request");
  }
  return std::move(response->descriptor);
}

RouterStats ClusterRouter::stats() const {
  RouterStats out;
  out.uploads = uploads_.load(std::memory_order_relaxed);
  out.downloads = downloads_.load(std::memory_order_relaxed);
  out.requests = out.uploads + out.downloads;
  out.retries = retries_.load(std::memory_order_relaxed);
  out.failovers = failovers_.load(std::memory_order_relaxed);
  out.failures = failures_.load(std::memory_order_relaxed);
  out.request_latency = request_latency_.snapshot();
  out.failover_latency = failover_latency_.snapshot();
  return out;
}

}  // namespace waldo::cluster
