#include "waldo/cluster/tiling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "waldo/runtime/seed.hpp"

namespace waldo::cluster {

Tiling::Tiling(double tile_size_m) : tile_size_m_(tile_size_m) {
  if (!(tile_size_m > 0.0) || !std::isfinite(tile_size_m)) {
    throw std::invalid_argument("tile size must be a positive finite length");
  }
}

TileKey Tiling::tile_of(const geo::EnuPoint& p) const noexcept {
  return TileKey{
      .tx = static_cast<std::int32_t>(std::floor(p.east_m / tile_size_m_)),
      .ty = static_cast<std::int32_t>(std::floor(p.north_m / tile_size_m_))};
}

geo::EnuPoint Tiling::center(TileKey tile) const noexcept {
  return geo::EnuPoint{
      .east_m = (static_cast<double>(tile.tx) + 0.5) * tile_size_m_,
      .north_m = (static_cast<double>(tile.ty) + 0.5) * tile_size_m_};
}

namespace {

/// One HRW score: a SplitMix64 mix of the tile coordinates and node id.
/// Pure function of its inputs — every participant ranks identically.
[[nodiscard]] std::uint64_t hrw_score(TileKey tile, NodeId node) noexcept {
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tile.tx)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(tile.ty));
  return runtime::split_seed(runtime::mix64(packed), node);
}

}  // namespace

std::vector<NodeId> rendezvous_order(TileKey tile, NodeId num_nodes) {
  std::vector<NodeId> order(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) order[n] = n;
  std::sort(order.begin(), order.end(), [tile](NodeId a, NodeId b) {
    const std::uint64_t sa = hrw_score(tile, a);
    const std::uint64_t sb = hrw_score(tile, b);
    return sa != sb ? sa > sb : a < b;
  });
  return order;
}

std::vector<NodeId> replica_set(TileKey tile, NodeId num_nodes,
                                std::size_t replication) {
  std::vector<NodeId> order = rendezvous_order(tile, num_nodes);
  if (replication < order.size()) order.resize(replication);
  return order;
}

}  // namespace waldo::cluster
