// Cluster — the in-process harness that assembles the tier: N nodes, a
// shared membership view, a loopback Transport with fault injection, and
// the bootstrap / kill / recover lifecycle a control plane would drive.
//
// Everything observable about the cluster is reachable from here:
// construct, ingest campaigns (bootstrap goes to every replica as the
// same normalized CSV bytes, so replicas parse identical state), hand the
// transport + membership to as many ClusterRouter instances as you like,
// then kill/recover nodes while traffic flows.
//
// kill(n) marks the node dead and wipes its state — process-crash
// semantics, not a graceful drain. recover(n) re-admits it as kSyncing,
// pulls each owned tile's TileSnapshot from a ready replica (through the
// fault-injected transport, with retries), installs and replays it, and
// only then marks the node kReady. With replication >= 2 a recovered node
// converges to byte-identical state; with replication == 1 a kill loses
// the tile's crowd uploads by construction (single copy) and recover
// falls back to re-ingesting the bootstrap campaigns the harness retains.
//
// Failure model (docs/CLUSTER.md): single failure at a time, fail-stop,
// shared membership truth. The Transport seam and the verb set are where
// sockets, gossip membership and anti-entropy would slot in.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "waldo/campaign/measurement.hpp"
#include "waldo/cluster/membership.hpp"
#include "waldo/cluster/node.hpp"
#include "waldo/cluster/transport.hpp"
#include "waldo/core/model_constructor.hpp"

namespace waldo::cluster {

struct ClusterConfig {
  NodeId num_nodes = 1;
  std::size_t replication = 1;
  double tile_size_m = 50'000.0;
  core::ModelConstructorConfig constructor_config;
  campaign::LabelingConfig labeling;
  core::UploadPolicy upload_policy;
  /// Faults the loopback transport injects on every message (client,
  /// replication and recovery traffic alike).
  FaultPlan faults;
  /// Retry pacing for node-to-node replication and recovery pulls.
  runtime::BackoffConfig replication_backoff{
      .base = std::chrono::nanoseconds{100'000},
      .cap = std::chrono::nanoseconds{5'000'000}};
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] ClusterTopology topology() const;
  [[nodiscard]] Transport& transport() noexcept;
  [[nodiscard]] MembershipView& membership() noexcept { return membership_; }
  [[nodiscard]] ClusterNode& node(NodeId id);

  /// Bootstrap: normalizes the dataset through its CSV form (the archival
  /// format — replicas must parse identical bytes) and ingests it on every
  /// replica of the covering tile. Not fault-injected: bootstrap models
  /// offline provisioning, not live traffic. Returns the tile.
  TileKey ingest_campaign(const campaign::ChannelDataset& dataset);

  /// The normalized dataset exactly as replicas ingested it — the input a
  /// determinism test must replay.
  [[nodiscard]] campaign::ChannelDataset normalized_campaign(
      TileKey tile, std::size_t index) const;

  /// Tiles that have been bootstrapped, in key order.
  [[nodiscard]] std::vector<TileKey> tiles() const;
  [[nodiscard]] std::vector<NodeId> replicas_of(TileKey tile) const;

  /// Fail-stop: membership -> kDead (routers and peers stop using it,
  /// in-flight sends start failing), then the state is wiped.
  void kill(NodeId id);

  /// Re-admits a killed node: kSyncing, per-tile snapshot pull + replay
  /// (retried through the faulty transport), then kReady. Safe to call
  /// while client traffic is flowing.
  void recover(NodeId id);

 private:
  class Loopback;

  ClusterConfig config_;
  MembershipView membership_;
  FaultInjector injector_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  std::unique_ptr<Loopback> transport_;

  mutable std::mutex bootstrap_mutex_;
  std::map<TileKey, std::vector<std::string>> bootstrap_csvs_;
};

}  // namespace waldo::cluster
