// The pluggable message fabric between cluster participants.
//
// Transport::send carries one request envelope to one node and returns its
// response envelope — the narrow waist where an in-memory loopback (this
// PR) and a socket fabric (future) are interchangeable. Failures are
// exceptions (TransportError), never silent: a router that catches one
// knows only that the request MAY have executed, which is exactly the
// ambiguity real networks force and the reason uploads carry dedup
// request ids.
//
// FaultInjector is the chaos hook the loopback consults per message. Every
// decision derives from (seed, message-ordinal) via SplitMix64, so a fault
// schedule is reproducible for a given interleaving without any global
// RNG state — rerunning a seed under a debugger replays the same drops.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "waldo/cluster/tiling.hpp"
#include "waldo/runtime/seed.hpp"

namespace waldo::cluster {

/// The message never completed: dropped request, dropped response, or the
/// destination node is dead. The caller cannot know whether the far side
/// executed the request.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Delivers `envelope` to node `to`; returns the response envelope.
  /// Throws TransportError when delivery or the reply fails.
  virtual std::string send(NodeId to, const std::string& envelope) = 0;
};

/// Probabilities in [0, 1]; all zero (the default) injects nothing.
struct FaultPlan {
  double drop_request = 0.0;    ///< message lost before the node sees it
  double drop_response = 0.0;   ///< node executed, reply lost
  double duplicate_request = 0.0;  ///< message delivered twice
  double delay = 0.0;           ///< message delayed before delivery
  std::uint32_t max_delay_us = 0;  ///< uniform delay bound when delayed
  std::uint64_t seed = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan = {}) : plan_(plan) {}

  struct Decision {
    bool drop_request = false;
    bool drop_response = false;
    bool duplicate = false;
    std::uint32_t delay_us = 0;
  };

  /// The fate of the next message. Thread-safe; the i-th call's decision
  /// is a pure function of (plan.seed, i).
  [[nodiscard]] Decision next() noexcept {
    const std::uint64_t ordinal =
        ordinal_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t state = runtime::split_seed(plan_.seed, ordinal);
    const auto draw = [&state]() noexcept {
      state = runtime::mix64(state);
      return static_cast<double>(state >> 11) * 0x1.0p-53;  // U[0, 1)
    };
    Decision d;
    d.drop_request = draw() < plan_.drop_request;
    d.drop_response = draw() < plan_.drop_response;
    d.duplicate = draw() < plan_.duplicate_request;
    if (draw() < plan_.delay && plan_.max_delay_us > 0) {
      d.delay_us = static_cast<std::uint32_t>(
          draw() * static_cast<double>(plan_.max_delay_us));
    }
    return d;
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Messages adjudicated so far.
  [[nodiscard]] std::uint64_t messages() const noexcept {
    return ordinal_.load(std::memory_order_relaxed);
  }

 private:
  FaultPlan plan_;
  std::atomic<std::uint64_t> ordinal_{0};
};

}  // namespace waldo::cluster
