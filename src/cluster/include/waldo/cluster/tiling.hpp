// Geographic partitioning for the clustered spectrum database.
//
// The world plane is cut into square tiles of `tile_size_m` metres; a tile
// is the unit of placement and replication. Each tile carries the FULL
// per-channel state for its area (its own campaign datasets, upload log
// and models) — the paper's models are per-metro-area to begin with, so a
// tile maps naturally to "one served area". Keeping whole channels inside
// one tile is what preserves the repo's determinism contract: a tile's
// models stay byte-identical to a single-node serial replay of that tile's
// upload stream.
//
// Placement is rendezvous (highest-random-weight) hashing: every node
// scores hash(node, tile) and the replica set is the top-R scorers. HRW
// needs no coordination, no ring state, and moves only ~1/N of tiles when
// the node count changes — and, unlike consistent-hash rings, placement is
// a pure function of (tile, num_nodes, R) so every router and node
// computes identical replica sets forever.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "waldo/geo/latlon.hpp"

namespace waldo::cluster {

using NodeId = std::uint32_t;

struct TileKey {
  std::int32_t tx = 0;
  std::int32_t ty = 0;

  friend auto operator<=>(const TileKey&, const TileKey&) = default;
};

class Tiling {
 public:
  /// Throws std::invalid_argument unless tile_size_m > 0.
  explicit Tiling(double tile_size_m);

  /// The tile containing `p` (floor division; tile (0,0) spans
  /// [0, size) x [0, size)).
  [[nodiscard]] TileKey tile_of(const geo::EnuPoint& p) const noexcept;

  /// Centre of a tile, for diagnostics and synthetic routing.
  [[nodiscard]] geo::EnuPoint center(TileKey tile) const noexcept;

  [[nodiscard]] double tile_size_m() const noexcept { return tile_size_m_; }

 private:
  double tile_size_m_;
};

/// All node ids 0..num_nodes-1 ordered by descending HRW score for `tile`
/// (ties broken by id). The first entry is the tile's preferred primary;
/// the first R entries are its replica set.
[[nodiscard]] std::vector<NodeId> rendezvous_order(TileKey tile,
                                                   NodeId num_nodes);

/// The first min(replication, num_nodes) entries of rendezvous_order —
/// the nodes that hold `tile`, in failover-priority order.
[[nodiscard]] std::vector<NodeId> replica_set(TileKey tile, NodeId num_nodes,
                                              std::size_t replication);

}  // namespace waldo::cluster
