// Shared cluster membership: which nodes are alive, and in what state.
//
// A node is kReady (serving), kSyncing (revived, pulling state — accepts
// replication traffic but not client traffic) or kDead. The view is a
// mutex-guarded immutable snapshot swapped atomically on every change, so
// routers and nodes read a consistent epoch-stamped picture with one
// shared_ptr copy and never block each other. In this in-process tier the
// harness (cluster::Cluster) is the single writer — the seam where a real
// deployment would plug in its failure detector / control plane.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "waldo/cluster/tiling.hpp"

namespace waldo::cluster {

enum class NodeHealth : std::uint8_t { kDead = 0, kSyncing = 1, kReady = 2 };

struct Membership {
  std::uint64_t epoch = 0;
  std::vector<NodeHealth> health;  ///< indexed by NodeId

  [[nodiscard]] bool ready(NodeId node) const noexcept {
    return node < health.size() && health[node] == NodeHealth::kReady;
  }
  [[nodiscard]] bool alive(NodeId node) const noexcept {
    return node < health.size() && health[node] != NodeHealth::kDead;
  }
};

class MembershipView {
 public:
  /// All nodes start kReady.
  explicit MembershipView(NodeId num_nodes);

  /// Immutable point-in-time snapshot; never null.
  [[nodiscard]] std::shared_ptr<const Membership> snapshot() const;

  /// Publishes a new snapshot with `node` in `health`; bumps the epoch.
  void set_health(NodeId node, NodeHealth health);

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const Membership> current_;
};

}  // namespace waldo::cluster
