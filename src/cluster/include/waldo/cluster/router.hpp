// ClusterRouter — the client-facing edge of the cluster tier.
//
// The router owns no spectrum state. It computes the tile for a request's
// location, ranks the tile's replicas by HRW priority, and drives the
// request to completion against the membership view: uploads go to the
// tile primary, downloads spread across ready replicas (synchronous
// replication means any ready replica is as current as the ack the client
// saw). Every failure mode maps to one policy:
//
//  - TransportError / garbled reply -> retry (next replica for reads),
//    after a deterministic exponential-backoff-with-jitter delay;
//  - retryable WSNP error (kNotOwner, kNotReady, kUnavailable) -> same;
//  - permanent WSNP error (kMalformed, kUnknownChannel, ...) -> throw
//    immediately: resending a bad request anywhere fails identically;
//  - per-request deadline exceeded -> throw with the last failure.
//
// Uploads are made retry-safe by stamping each logical request with a
// unique request id (derived from the router seed): a retried frame that
// already executed hits the server's dedup table and returns the original
// ledger — exactly-once upload semantics over an at-most-once transport.
//
// Latency accounting feeds two LatencyHistograms: one over all requests,
// one over requests that needed more than one attempt (the failover path)
// — the p50/p99 columns in BENCH_cluster.json.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>

#include "waldo/campaign/measurement.hpp"
#include "waldo/cluster/membership.hpp"
#include "waldo/cluster/node.hpp"
#include "waldo/cluster/transport.hpp"
#include "waldo/core/protocol.hpp"
#include "waldo/runtime/backoff.hpp"
#include "waldo/runtime/histogram.hpp"

namespace waldo::cluster {

struct RouterConfig {
  /// A request that cannot be completed within this budget fails.
  std::chrono::milliseconds deadline{5'000};
  /// Delay schedule between attempts; in-process scale by default.
  runtime::BackoffConfig backoff{.base = std::chrono::nanoseconds{200'000},
                                 .cap = std::chrono::nanoseconds{10'000'000}};
  /// Root for request-id generation and jitter streams.
  std::uint64_t seed = 1;
  /// Rotate downloads across ready replicas instead of always reading the
  /// primary — the read-scaling half of the replication bargain.
  bool spread_reads = true;
};

struct RouterStats {
  std::uint64_t requests = 0;
  std::uint64_t uploads = 0;
  std::uint64_t downloads = 0;
  std::uint64_t retries = 0;    ///< extra attempts beyond the first
  std::uint64_t failovers = 0;  ///< requests that needed >1 attempt
  std::uint64_t failures = 0;   ///< permanent errors + deadline misses
  runtime::LatencyHistogram::Snapshot request_latency;
  runtime::LatencyHistogram::Snapshot failover_latency;
};

class ClusterRouter {
 public:
  ClusterRouter(ClusterTopology topology, Transport& transport,
                const MembershipView& membership, RouterConfig config = {});

  /// Uploads a batch for the tile containing `location`. Throws
  /// std::runtime_error on permanent errors or deadline exhaustion.
  core::UploadResponse upload(int channel, const geo::EnuPoint& location,
                              const std::string& contributor,
                              std::span<const campaign::Measurement> readings);

  /// Serialized model descriptor for (channel, tile-of-location) — the
  /// node-cached bytes, shipped without re-serialization. Throws like
  /// upload().
  std::string download_descriptor(int channel, const geo::EnuPoint& location);

  /// Routes a pre-encoded WSNP request wire (is_upload selects primary
  /// vs. spread-read placement). Returns the WSNP response body.
  std::string route(const geo::EnuPoint& location, const std::string& wire,
                    bool is_upload);

  /// Unique, never-zero id for a logical upload; stable retry identity.
  [[nodiscard]] std::uint64_t next_request_id() noexcept;

  [[nodiscard]] RouterStats stats() const;

 private:
  const ClusterTopology topology_;
  Transport* transport_;
  const MembershipView* membership_;
  const RouterConfig config_;

  std::atomic<std::uint64_t> request_counter_{0};
  std::atomic<std::uint64_t> read_rotor_{0};
  std::atomic<std::uint64_t> uploads_{0};
  std::atomic<std::uint64_t> downloads_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> failures_{0};
  runtime::LatencyHistogram request_latency_;
  runtime::LatencyHistogram failover_latency_;
};

}  // namespace waldo::cluster
