// One cluster node: a set of tile-scoped SpectrumService instances plus
// the replication machinery that keeps replicas byte-identical.
//
// Data model. A node hosts every tile whose HRW replica set contains it.
// Each tile owns a full SpectrumService (campaign datasets, pending pools,
// models, descriptor caches) plus the cluster bookkeeping: the normalized
// campaign CSVs it was bootstrapped with, the complete per-channel upload
// log in apply-ticket order, a request-id dedup table, and a reorder
// buffer for replication frames that arrive out of ticket order.
//
// Write path. The tile's primary (first non-dead replica in HRW order)
// applies a client upload through its service — which assigns the
// per-channel apply ticket — appends the verbatim client wire to its log,
// and synchronously replicates {ticket, request_id, wire} to every other
// live replica before acknowledging. Secondaries apply entries strictly in
// ticket order (the reorder buffer absorbs transport reordering), so every
// replica applies the identical byte stream in the identical order and the
// existing serial-replay determinism theorem (tests/test_service.cpp)
// makes their datasets, models and descriptors byte-identical.
//
// Safety under failure.
//  - Exactly-once: uploads carry a request id; primaries and secondaries
//    both remember id -> response, so client retries after a lost ack (and
//    injector-duplicated frames) return the original ledger instead of
//    applying twice.
//  - Fencing: upload acceptance re-validates "am I the primary, am I
//    ready" against a fresh membership snapshot *under the tile mutex*,
//    and replication receivers re-validate the sender the same way. A
//    primary that was just killed (or deposed by a recovery) has its final
//    in-flight writes rejected rather than split into a second log head.
//  - Recovery: a wiped node re-enters as kSyncing, buffers incoming
//    replication, installs a pulled TileSnapshot (campaign CSVs + log),
//    replays it, drains the buffer, and only then serves again — with
//    state byte-identical to its peers (test-enforced).
//
// Lock order: lifecycle_mutex_ (shared for handlers, unique for wipe) ->
// tiles_mutex_ -> Tile::mutex. Replication RPCs are issued while holding
// the *local* tile mutex; they can only take mutexes on other nodes, so
// the cross-node acquisition graph is acyclic (replication never flows
// back to the sender for the same tile).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "waldo/campaign/labeling.hpp"
#include "waldo/cluster/membership.hpp"
#include "waldo/cluster/tiling.hpp"
#include "waldo/cluster/transport.hpp"
#include "waldo/cluster/wire.hpp"
#include "waldo/core/database.hpp"
#include "waldo/core/model_constructor.hpp"
#include "waldo/core/protocol.hpp"
#include "waldo/runtime/backoff.hpp"

namespace waldo::cluster {

/// Placement parameters every participant must agree on.
struct ClusterTopology {
  Tiling tiling{50'000.0};
  NodeId num_nodes = 1;
  std::size_t replication = 1;
};

/// Monotonic per-node traffic counters (snapshot of atomics).
struct NodeStats {
  std::uint64_t ingests = 0;
  std::uint64_t downloads_served = 0;
  std::uint64_t uploads_applied = 0;     ///< as primary
  std::uint64_t repl_applied = 0;        ///< as secondary
  std::uint64_t repl_buffered = 0;       ///< arrived while syncing
  std::uint64_t repl_duplicates = 0;     ///< ticket already applied
  std::uint64_t repl_fenced = 0;         ///< rejected: sender not primary
  std::uint64_t dedup_hits = 0;
  std::uint64_t rejected_not_owner = 0;
  std::uint64_t rejected_not_ready = 0;
  std::uint64_t pulls_served = 0;
  std::uint64_t snapshots_installed = 0;
  /// Replication to a live peer gave up after persistent non-transport
  /// errors (a logic fault, not a network fault); tests assert 0.
  std::uint64_t repl_abandoned = 0;
  /// A replicated apply produced a different ticket than the primary's —
  /// a log-divergence alarm; tests assert it stays 0.
  std::uint64_t ticket_mismatches = 0;
};

class ClusterNode {
 public:
  ClusterNode(NodeId id, ClusterTopology topology,
              core::ModelConstructorConfig constructor_config,
              campaign::LabelingConfig labeling,
              core::UploadPolicy upload_policy,
              const MembershipView& membership,
              runtime::BackoffConfig replication_backoff = {});
  ~ClusterNode();

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Fabric used for outbound replication. Must be set (once) before any
  /// traffic arrives; the cluster harness wires it after all nodes exist.
  void attach_transport(Transport& transport) noexcept;

  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Handles one CLSTR envelope; every failure comes back as a response
  /// envelope (a WSNP error body), never an exception.
  [[nodiscard]] std::string handle(const std::string& envelope_wire) noexcept;

  /// Process-restart semantics: discards every tile. The caller must have
  /// already marked the node kDead; in-flight handlers finish first.
  void wipe();

  /// Recovery: installs a pulled tile snapshot (or completes a tile that
  /// replication frames created in the buffering state), replays its log,
  /// and drains buffered replication. Idempotent on an already-synced
  /// tile. Throws on corrupt snapshots.
  void install_snapshot(TileKey tile, const TileSnapshot& snapshot);

  // -- verification/diagnostic accessors (bypass the transport) --

  [[nodiscard]] std::vector<TileKey> tiles() const;
  [[nodiscard]] std::vector<int> channels(TileKey tile) const;
  /// Serialized model descriptor for a (tile, channel); builds if stale.
  /// Empty string when the tile/channel is absent.
  [[nodiscard]] std::string descriptor_bytes(TileKey tile, int channel);
  /// Normalized CSV of the (tile, channel) trusted dataset; empty when
  /// absent. Byte-comparable across replicas.
  [[nodiscard]] std::string dataset_csv(TileKey tile, int channel) const;
  [[nodiscard]] std::uint64_t log_size(TileKey tile, int channel) const;

  [[nodiscard]] NodeStats stats() const;

 private:
  struct Tile;

  [[nodiscard]] std::string handle_ingest(const Envelope& request);
  [[nodiscard]] std::string handle_wsnp(const Envelope& request);
  [[nodiscard]] std::string handle_repl(const Envelope& request);
  [[nodiscard]] std::string handle_pull(const Envelope& request);

  /// First non-dead replica for `tile` under `m` — the fencing rule every
  /// participant applies identically. kClientNode when all are dead.
  [[nodiscard]] NodeId tile_primary(const Membership& m, TileKey tile) const;

  [[nodiscard]] Tile* find_tile(TileKey key) const;
  [[nodiscard]] Tile& tile_or_create(TileKey key, bool synced);

  /// Applies one upload wire through the tile service and records it in
  /// the log + dedup table; fills entry.ticket with the assigned ticket.
  /// With expect_ticket, the assigned ticket must equal the entry's
  /// (replica replay) or the logs have split — throws std::logic_error.
  /// Caller holds the tile mutex. Returns the response wire.
  [[nodiscard]] std::string apply_locked(Tile& t, ReplEntry& entry,
                                         bool expect_ticket);

  /// Applies every buffered entry that is next in its channel's ticket
  /// order; drops already-applied duplicates. Caller holds the tile mutex.
  void drain_reorder_locked(Tile& t);

  /// Synchronously replicates `entry` to every live replica other than
  /// this node. Returns false if a receiver fenced us (caller must not
  /// ack). Caller holds the tile mutex.
  [[nodiscard]] bool replicate_locked(TileKey key, const ReplEntry& entry);

  [[nodiscard]] std::string error_envelope(TileKey tile,
                                           core::ErrorCode code, int channel,
                                           std::string reason) const;

  const NodeId id_;
  const ClusterTopology topology_;
  const core::ModelConstructorConfig constructor_config_;
  const campaign::LabelingConfig labeling_;
  const core::UploadPolicy upload_policy_;
  const runtime::BackoffConfig replication_backoff_;
  const MembershipView* membership_;
  Transport* transport_ = nullptr;

  /// Held shared by every handler, unique by wipe(): a wipe (node death)
  /// waits for in-flight requests instead of racing their tile pointers.
  mutable std::shared_mutex lifecycle_mutex_;

  mutable std::mutex tiles_mutex_;  ///< guards the map, not tile contents
  std::map<TileKey, std::unique_ptr<Tile>> tiles_;

  struct Counters;
  std::unique_ptr<Counters> counters_;
};

}  // namespace waldo::cluster
