// The intra-cluster wire format, one level below WSNP.
//
// Every message between router and nodes (and node to node) is a CLSTR/1
// envelope naming a verb and the tile it addresses:
//
//   CLSTR/1 <verb> <from> <tile-x> <tile-y> <body-bytes>\n<body>
//
// `from` is the sending node id (kClientNode for router/client traffic).
// Receivers use it to fence stale writers: a replication frame from a node
// that is no longer the tile's primary is rejected, which is what keeps a
// killed primary's final in-flight writes from splitting the log.
//
// Verbs: "wsnp" (a client WSNP request or response rides in the body —
// the cluster never re-encodes client traffic), "repl" (a replicated
// upload: ticket-stamped WSNP upload wire), "ingest" (a trusted campaign
// as CSV — replicas parse the same normalized bytes, so bootstrap state is
// identical everywhere), "pull" (state-transfer request; empty body),
// "state" (pull response: a full TileSnapshot) and "ok" (bare ack).
//
// Bodies are length-prefixed byte strings: binary descriptors and CSVs
// pass through unmolested. Decode is checked the same way WSNP is —
// hostile lengths, trailing garbage and truncation are rejected, never
// trusted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "waldo/cluster/tiling.hpp"

namespace waldo::cluster {

/// Sentinel `from` for traffic that originates outside the node set.
inline constexpr NodeId kClientNode = 0xFFFFFFFFu;

struct Envelope {
  std::string verb;
  NodeId from = kClientNode;
  TileKey tile;
  std::string body;
};

[[nodiscard]] std::string encode_envelope(const Envelope& envelope);
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Envelope decode_envelope(const std::string& wire);

/// One replicated upload: where it sits in the channel's total order
/// (ticket), its dedup identity, and the verbatim WSNP upload_request wire
/// the primary applied. Replicas replay the exact client bytes — nothing
/// is re-encoded between replicas, so there is nothing to drift.
struct ReplEntry {
  int channel = 0;
  std::uint64_t ticket = 0;
  std::uint64_t request_id = 0;
  std::string upload_wire;
};

[[nodiscard]] std::string encode_repl_entry(const ReplEntry& entry);
[[nodiscard]] ReplEntry decode_repl_entry(const std::string& body);

/// Full tile state for recovery: the normalized campaign CSVs the tile was
/// bootstrapped with plus its complete upload log in apply order.
/// Reingesting the CSVs and replaying the log reproduces the tile
/// byte-for-byte (the repo's determinism contract, applied to recovery).
struct TileSnapshot {
  std::vector<std::string> campaign_csvs;
  std::vector<ReplEntry> log;
};

[[nodiscard]] std::string encode_tile_snapshot(const TileSnapshot& snapshot);
[[nodiscard]] TileSnapshot decode_tile_snapshot(const std::string& body);

}  // namespace waldo::cluster
