#include "waldo/cluster/membership.hpp"

#include <stdexcept>

namespace waldo::cluster {

MembershipView::MembershipView(NodeId num_nodes) {
  auto initial = std::make_shared<Membership>();
  initial->health.assign(num_nodes, NodeHealth::kReady);
  current_ = std::move(initial);
}

std::shared_ptr<const Membership> MembershipView::snapshot() const {
  const std::lock_guard lock(mutex_);
  return current_;
}

void MembershipView::set_health(NodeId node, NodeHealth health) {
  const std::lock_guard lock(mutex_);
  if (node >= current_->health.size()) {
    throw std::out_of_range("membership: unknown node id");
  }
  auto next = std::make_shared<Membership>(*current_);
  next->epoch += 1;
  next->health[node] = health;
  current_ = std::move(next);
}

}  // namespace waldo::cluster
