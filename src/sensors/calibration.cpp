#include "waldo/sensors/calibration.hpp"

#include <cmath>

namespace waldo::sensors {

LinearCalibration fit_calibration(
    std::span<const CalibrationSample> samples) {
  if (samples.size() < 2) {
    throw std::invalid_argument("calibration needs at least two samples");
  }
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (const CalibrationSample& s : samples) {
    sx += s.raw_reading;
    sy += s.input_dbm;
    sxx += s.raw_reading * s.raw_reading;
    sxy += s.raw_reading * s.input_dbm;
  }
  const auto n = static_cast<double>(samples.size());
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    throw std::invalid_argument(
        "calibration sweep is degenerate (constant raw readings)");
  }
  LinearCalibration cal;
  cal.slope = (n * sxy - sx * sy) / denom;
  cal.intercept = (sy - cal.slope * sx) / n;
  return cal;
}

double calibration_rms_error_db(const LinearCalibration& cal,
                                std::span<const CalibrationSample> samples) {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  for (const CalibrationSample& s : samples) {
    const double e = cal.to_dbm(s.raw_reading) - s.input_dbm;
    acc += e * e;
  }
  return std::sqrt(acc / static_cast<double>(samples.size()));
}

}  // namespace waldo::sensors
