// Spectrum-sensor device models. Each model turns the environment's true
// channel power into (a) a raw device reading in device-specific units and
// (b) a 256-sample I/Q capture carrying the device's own noise floor — the
// two artifacts every reading of the paper's dataset consists of.
//
// The three concrete specs are parameterised from the paper's Section 2
// findings:
//   RTL-SDR   — pilot-band floor ~ -98 dBm, very tight reading CDF,
//               compressed (non-unit) raw scale, rare impulsive spikes;
//   USRP B200 — floor ~ -103 dBm, visibly wider reading CDF (gain jitter);
//   FieldFox  — floor below the -114 dBm regulatory level; ground truth.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "waldo/dsp/detectors.hpp"
#include "waldo/dsp/iq.hpp"
#include "waldo/sensors/calibration.hpp"

namespace waldo::sensors {

struct SensorSpec {
  std::string name;
  /// Equivalent noise power within the pilot measurement band, dBm. A CW
  /// input at this level doubles the detector statistic; this is the
  /// device's sensitivity knee.
  double pilot_floor_dbm = -98.0;
  /// Std-dev of per-reading gain error, dB (reading CDF width in Fig. 5).
  double gain_jitter_db = 0.15;
  /// Raw device units: raw = raw_slope * measured_dbm + raw_offset_db.
  double raw_slope = 1.0;
  double raw_offset_db = 0.0;
  /// Raw-reading quantisation step, dB-equivalent device units.
  double quantization_db = 0.1;
  /// Probability of an impulsive interference spike on a reading, and its
  /// mean magnitude (exponentially distributed), dB.
  double impulse_probability = 0.0;
  double impulse_mean_db = 6.0;
};

/// Spec presets matching the paper's hardware.
[[nodiscard]] SensorSpec rtl_sdr_spec();
[[nodiscard]] SensorSpec usrp_b200_spec();
[[nodiscard]] SensorSpec spectrum_analyzer_spec();

/// One sensing event.
struct SensorReading {
  double raw = 0.0;                ///< device-units pilot-band reading
  std::vector<dsp::cplx> iq;      ///< 256 I/Q samples (fft-able capture)
};

/// A stateful sensor instance. Deterministic given its seed; distinct
/// physical units of the same model should use distinct seeds.
class Sensor {
 public:
  Sensor(SensorSpec spec, std::uint64_t seed,
         dsp::CaptureConfig capture = {});

  [[nodiscard]] const SensorSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const dsp::CaptureConfig& capture_config() const noexcept {
    return capture_;
  }

  /// Wired measurement of a signal-generator CW at `input_dbm` (the tone
  /// lands in the pilot band). Returns the raw device reading only.
  [[nodiscard]] double measure_wired_raw(double input_dbm);

  /// Over-the-air measurement of a TV channel whose true total power at
  /// the antenna is `channel_power_dbm`. Produces the raw pilot-band
  /// reading and the I/Q capture. Draws from the sensor's sequential
  /// engine, so consecutive calls produce fresh noise.
  [[nodiscard]] SensorReading sense_channel(double channel_power_dbm);

  /// Stream-seeded variant: the same measurement, but every random draw
  /// comes from an engine seeded with split_seed(unit seed, stream_id)
  /// instead of the sequential engine. The reading is a pure function of
  /// (spec, calibration, drift, seed, stream_id) — independent of call
  /// order and of any other stream — which is what lets a war-drive sweep
  /// fan readings out across threads and still produce byte-identical
  /// datasets (docs/CONCURRENCY.md).
  [[nodiscard]] SensorReading sense_channel(double channel_power_dbm,
                                            std::uint64_t stream_id) const;

  /// Allocation-free stream-seeded measurement: the raw reading is
  /// returned and the capture lands in `ws` (ws.time holds the I/Q
  /// samples; ws.shifted the synthesis spectrum). Bit-identical to
  /// sense_channel(power, stream_id) — same draws, same arithmetic — but
  /// reuses the workspace's buffers, so the steady state performs zero
  /// heap allocation per reading. With `spectrum_only` the inverse
  /// transform is skipped and only ws.shifted is valid (the
  /// --fast-spectral path); the raw reading is unaffected either way.
  double sense_channel_into(double channel_power_dbm, std::uint64_t stream_id,
                            dsp::CaptureWorkspace& ws,
                            bool spectrum_only = false) const;

  void set_calibration(const LinearCalibration& cal) noexcept {
    calibration_ = cal;
  }
  [[nodiscard]] const std::optional<LinearCalibration>& calibration()
      const noexcept {
    return calibration_;
  }

  /// Simulates ageing/temperature gain drift since calibration: every
  /// subsequent measurement shifts by `drift_db`. The Section 2.1
  /// robustness claim is that calibration survives months of this.
  void set_gain_drift_db(double drift_db) noexcept { gain_drift_db_ = drift_db; }
  [[nodiscard]] double gain_drift_db() const noexcept {
    return gain_drift_db_;
  }

  /// Calibrated channel-power estimate from a raw reading: linear map back
  /// to dBm plus the 12 dB pilot-to-channel correction. Throws if the
  /// sensor has not been calibrated.
  [[nodiscard]] double calibrated_rss_dbm(double raw) const;

  /// Runs the full signal-generator calibration sweep on this sensor and
  /// installs the fitted map. Sweep levels default to the strong regime
  /// where the device response is linear. Returns the fit.
  LinearCalibration calibrate(std::vector<double> sweep_levels_dbm = {},
                              std::size_t readings_per_level = 50);

 private:
  /// Pilot-band power actually measured for a given in-band signal power:
  /// signal compounded with the device floor, plus gain jitter/impulses.
  /// Draws from `rng`.
  [[nodiscard]] double measured_pilot_band_dbm(double signal_pilot_dbm,
                                               std::mt19937_64& rng) const;

  /// Shared implementation of both sense_channel overloads.
  [[nodiscard]] SensorReading sense_channel_with(double channel_power_dbm,
                                                 std::mt19937_64& rng) const;

  /// Core of every sense path: raw reading plus capture synthesis into a
  /// workspace.
  double sense_channel_ws(double channel_power_dbm, std::mt19937_64& rng,
                          dsp::CaptureWorkspace& ws, bool spectrum_only) const;

  SensorSpec spec_;
  dsp::CaptureConfig capture_;
  std::uint64_t seed_;
  std::mt19937_64 rng_;
  std::optional<LinearCalibration> calibration_;
  double gain_drift_db_ = 0.0;
};

}  // namespace waldo::sensors
