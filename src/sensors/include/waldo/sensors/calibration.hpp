// Linear calibration of raw sensor readings against a signal generator,
// reproducing the paper's wired Agilent E4422B procedure: sweep known input
// levels, record raw device readings, least-squares fit the linear map from
// raw units back to dBm.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

namespace waldo::sensors {

/// dBm = slope * raw + intercept.
struct LinearCalibration {
  double slope = 1.0;
  double intercept = 0.0;

  [[nodiscard]] double to_dbm(double raw) const noexcept {
    return slope * raw + intercept;
  }
};

/// One calibration observation: a known generator level and the raw value
/// the device reported.
struct CalibrationSample {
  double input_dbm = 0.0;
  double raw_reading = 0.0;
};

/// Ordinary least squares fit of input_dbm on raw_reading. Requires at
/// least two samples with distinct raw readings.
[[nodiscard]] LinearCalibration fit_calibration(
    std::span<const CalibrationSample> samples);

/// Root-mean-square residual of a calibration over samples, in dB.
[[nodiscard]] double calibration_rms_error_db(
    const LinearCalibration& cal, std::span<const CalibrationSample> samples);

}  // namespace waldo::sensors
