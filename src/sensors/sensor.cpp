#include "waldo/sensors/sensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "waldo/rf/channels.hpp"
#include "waldo/rf/units.hpp"
#include "waldo/runtime/seed.hpp"

namespace waldo::sensors {

SensorSpec rtl_sdr_spec() {
  return SensorSpec{
      .name = "RTL-SDR",
      .pilot_floor_dbm = -98.0,
      .gain_jitter_db = 0.15,
      .raw_slope = 0.75,
      .raw_offset_db = 28.0,  // raw ~ -45.5 at the floor, as in Fig. 5(c)
      .quantization_db = 0.25,
      // Impulsive urban interference is modelled but off by default: with
      // Algorithm 1's 6 km dilation a handful of spikes would poison the
      // whole metro area. Failure-injection tests turn it on explicitly.
      .impulse_probability = 0.0,
      .impulse_mean_db = 8.0};
}

SensorSpec usrp_b200_spec() {
  return SensorSpec{
      .name = "USRP B200",
      .pilot_floor_dbm = -103.0,
      .gain_jitter_db = 1.0,
      .raw_slope = 1.0,
      .raw_offset_db = 30.5,  // raw ~ -72.5 at the floor, as in Fig. 5(b)
      .quantization_db = 0.05,
      .impulse_probability = 0.0,
      .impulse_mean_db = 6.0};
}

SensorSpec spectrum_analyzer_spec() {
  return SensorSpec{
      .name = "FieldFox",
      .pilot_floor_dbm = -130.0,  // channel floor -118 dBm: comfortably
                                  // below the -114 dBm sensing requirement
      .gain_jitter_db = 0.1,
      .raw_slope = 1.0,
      .raw_offset_db = 0.0,  // reads dBm natively
      .quantization_db = 0.01,
      .impulse_probability = 0.0,
      .impulse_mean_db = 0.0};
}

Sensor::Sensor(SensorSpec spec, std::uint64_t seed, dsp::CaptureConfig capture)
    : spec_(std::move(spec)), capture_(capture), seed_(seed), rng_(seed) {
  if (spec_.raw_slope == 0.0) {
    throw std::invalid_argument("sensor raw slope must be nonzero");
  }
  // The analyzer is factory-calibrated; it reads dBm natively.
  if (spec_.raw_offset_db == 0.0 && spec_.raw_slope == 1.0) {
    calibration_ = LinearCalibration{1.0, 0.0};
  }
}

double Sensor::measured_pilot_band_dbm(double signal_pilot_dbm,
                                       std::mt19937_64& rng) const {
  // The detector statistic saturates at the device floor: the signal and
  // the equivalent noise power compound.
  double measured = rf::add_dbm(signal_pilot_dbm, spec_.pilot_floor_dbm);
  std::normal_distribution<double> jitter(0.0, spec_.gain_jitter_db);
  measured += jitter(rng) + gain_drift_db_;
  if (spec_.impulse_probability > 0.0) {
    std::bernoulli_distribution hit(spec_.impulse_probability);
    if (hit(rng)) {
      std::exponential_distribution<double> spike(1.0 /
                                                  spec_.impulse_mean_db);
      measured += spike(rng);
    }
  }
  return measured;
}

double Sensor::measure_wired_raw(double input_dbm) {
  // A wired CW lands entirely in the pilot band.
  const double measured = measured_pilot_band_dbm(input_dbm, rng_);
  double raw = spec_.raw_slope * measured + spec_.raw_offset_db;
  if (spec_.quantization_db > 0.0) {
    raw = std::round(raw / spec_.quantization_db) * spec_.quantization_db;
  }
  return raw;
}

SensorReading Sensor::sense_channel(double channel_power_dbm) {
  return sense_channel_with(channel_power_dbm, rng_);
}

SensorReading Sensor::sense_channel(double channel_power_dbm,
                                    std::uint64_t stream_id) const {
  std::mt19937_64 rng(runtime::split_seed(seed_, stream_id));
  return sense_channel_with(channel_power_dbm, rng);
}

double Sensor::sense_channel_into(double channel_power_dbm,
                                  std::uint64_t stream_id,
                                  dsp::CaptureWorkspace& ws,
                                  bool spectrum_only) const {
  std::mt19937_64 rng(runtime::split_seed(seed_, stream_id));
  return sense_channel_ws(channel_power_dbm, rng, ws, spectrum_only);
}

double Sensor::sense_channel_ws(double channel_power_dbm,
                                std::mt19937_64& rng,
                                dsp::CaptureWorkspace& ws,
                                bool spectrum_only) const {
  // Pilot-band signal content: the pilot line (11.3 dB below channel power)
  // dominates; the sliver of data spectrum inside the pilot band is ~23 dB
  // below channel power and is included for completeness.
  const double pilot_dbm = channel_power_dbm - rf::kPilotBelowChannelDb;
  const double pilot_band_hz =
      3.0 * capture_.sample_rate_hz / static_cast<double>(capture_.num_samples);
  const double data_in_band_dbm =
      channel_power_dbm +
      rf::ratio_to_db(pilot_band_hz / capture_.channel_bandwidth_hz);
  const double signal_dbm = rf::add_dbm(pilot_dbm, data_in_band_dbm);

  const double measured = measured_pilot_band_dbm(signal_dbm, rng);
  double raw = spec_.raw_slope * measured + spec_.raw_offset_db;
  if (spec_.quantization_db > 0.0) {
    raw = std::round(raw / spec_.quantization_db) * spec_.quantization_db;
  }

  // The capture carries the device's own noise floor spread over the full
  // tuner bandwidth (floor is per pilot band of 3 bins).
  const double capture_noise_dbm =
      spec_.pilot_floor_dbm +
      rf::ratio_to_db(static_cast<double>(capture_.num_samples) / 3.0);
  dsp::synthesize_capture_into(capture_, channel_power_dbm, capture_noise_dbm,
                               rng, ws, spectrum_only);
  return raw;
}

SensorReading Sensor::sense_channel_with(double channel_power_dbm,
                                         std::mt19937_64& rng) const {
  dsp::CaptureWorkspace ws;
  SensorReading out;
  out.raw = sense_channel_ws(channel_power_dbm, rng, ws,
                             /*spectrum_only=*/false);
  out.iq = std::move(ws.time);
  return out;
}

double Sensor::calibrated_rss_dbm(double raw) const {
  if (!calibration_.has_value()) {
    throw std::logic_error("sensor '" + spec_.name + "' is not calibrated");
  }
  // Paper Section 2.1: add 12 dB to the calibrated pilot power to estimate
  // total channel power (the pilot is required to sit 11.3 dB below it; the
  // extra 0.7 dB is the paper's own margin and is kept as-is).
  return calibration_->to_dbm(raw) + rf::kPilotToChannelCorrectionDb;
}

LinearCalibration Sensor::calibrate(std::vector<double> sweep_levels_dbm,
                                    std::size_t readings_per_level) {
  if (sweep_levels_dbm.empty()) {
    // Strong-signal regime, well above every device floor.
    sweep_levels_dbm = {-80.0, -70.0, -60.0, -50.0, -40.0, -30.0};
  }
  std::vector<CalibrationSample> samples;
  samples.reserve(sweep_levels_dbm.size() * readings_per_level);
  for (const double level : sweep_levels_dbm) {
    for (std::size_t i = 0; i < readings_per_level; ++i) {
      samples.push_back(CalibrationSample{
          .input_dbm = level, .raw_reading = measure_wired_raw(level)});
    }
  }
  const LinearCalibration cal = fit_calibration(samples);
  calibration_ = cal;
  return cal;
}

}  // namespace waldo::sensors
