#include "waldo/device/phone.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "waldo/core/features.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/ml/stats.hpp"

namespace waldo::device {

sensors::SensorSpec phone_rtl_sdr_spec() {
  sensors::SensorSpec spec = sensors::rtl_sdr_spec();
  spec.name = "RTL-SDR (phone)";
  // USB-OTG power noise and the lack of a fixed mount roughly triple the
  // reading jitter relative to the bench setup.
  spec.gain_jitter_db = 0.5;
  return spec;
}

PhoneRuntime::PhoneRuntime(PhoneConfig config, sensors::Sensor sensor)
    : config_(config), sensor_(std::move(sensor)) {
  if (!sensor_.calibration().has_value()) {
    throw std::invalid_argument("phone sensor must be calibrated");
  }
}

void PhoneRuntime::install_model(core::WhiteSpaceModel model) {
  const int channel = model.channel();
  models_.insert_or_assign(channel, std::move(model));
}

bool PhoneRuntime::has_model(int channel) const noexcept {
  return models_.contains(channel);
}

std::size_t PhoneRuntime::ensure_models(core::SpectrumDatabase& database,
                                        std::span<const int> channels) {
  std::size_t bytes = 0;
  for (const int ch : channels) {
    if (has_model(ch)) continue;
    const std::string descriptor = database.download_model(ch);
    bytes += descriptor.size();
    install_model(core::WhiteSpaceModel::deserialize(descriptor));
  }
  bytes_downloaded_ += bytes;
  return bytes;
}

ChannelScan PhoneRuntime::run_scan(const rf::Environment& environment,
                                   int channel, geo::EnuPoint position,
                                   double step_east_m, double step_north_m) {
  const auto model_it = models_.find(channel);
  if (model_it == models_.end()) {
    throw std::logic_error("no model installed for channel " +
                           std::to_string(channel));
  }
  const core::WhiteSpaceModel& model = model_it->second;

  ChannelScan scan;
  scan.channel = channel;

  if (config_.cache_constant_channels) {
    if (const std::optional<int> constant = model.constant_label()) {
      scan.cached = true;
      scan.converged = true;
      scan.decision = *constant;
      return scan;
    }
  }

  core::ConvergenceFilter filter(config_.detector);

  std::vector<double> cft_values, aft_values;
  using clock = std::chrono::steady_clock;
  double processing_s = 0.0;

  while (!filter.converged() && !filter.exhausted()) {
    const double truth = environment.true_rss_dbm(channel, position);
    sensors::SensorReading reading = sensor_.sense_channel(truth);
    scan.acquisition_time_s += config_.reading_period_s;

    const auto t0 = clock::now();
    const double rss = sensor_.calibrated_rss_dbm(reading.raw);
    const core::SpectralFeatures spectral =
        core::extract_spectral_features(reading.iq);
    cft_values.push_back(spectral.cft_db);
    aft_values.push_back(spectral.aft_db);
    filter.ingest(rss);
    processing_s += std::chrono::duration<double>(clock::now() - t0).count();

    position.east_m += step_east_m;
    position.north_m += step_north_m;
  }

  scan.converged = filter.converged();
  scan.readings_used = filter.samples_seen();

  const auto t0 = clock::now();
  const double rss_estimate = filter.estimate_dbm();
  const double cft = ml::summarize(cft_values).mean;
  const double aft = ml::summarize(aft_values).mean;
  const std::vector<double> row = core::feature_row(
      position, rss_estimate, cft, aft, model.num_features());
  scan.decision = model.predict(row);
  processing_s += std::chrono::duration<double>(clock::now() - t0).count();
  scan.processing_time_s = processing_s * config_.processing_time_scale;

  // A non-converged (mobile) scan defaults to the conservative decision.
  if (!scan.converged) scan.decision = ml::kNotSafe;
  return scan;
}

ChannelScan PhoneRuntime::scan_channel(const rf::Environment& environment,
                                       int channel,
                                       const geo::EnuPoint& position) {
  return run_scan(environment, channel, position, 0.0, 0.0);
}

ChannelScan PhoneRuntime::scan_channel_mobile(
    const rf::Environment& environment, int channel,
    const geo::EnuPoint& start, double speed_east_mps,
    double speed_north_mps) {
  return run_scan(environment, channel, start,
                  speed_east_mps * config_.reading_period_s,
                  speed_north_mps * config_.reading_period_s);
}

ScanReport PhoneRuntime::scan_cycle(const rf::Environment& environment,
                                    std::span<const int> channels,
                                    const geo::EnuPoint& position) {
  ScanReport report;
  report.channels.reserve(channels.size());
  for (const int ch : channels) {
    ChannelScan scan = scan_channel(environment, ch, position);
    report.busy_time_s += scan.convergence_time_s();
    report.processing_time_s += scan.processing_time_s;
    report.channels.push_back(std::move(scan));
  }
  return report;
}

}  // namespace waldo::device
