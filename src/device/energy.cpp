#include "waldo/device/energy.hpp"

namespace waldo::device {

double scan_energy_j(const ScanReport& report, const EnergyModel& model) {
  double acquisition_s = 0.0;
  for (const ChannelScan& scan : report.channels) {
    acquisition_s += scan.acquisition_time_s;
  }
  return acquisition_s * model.sdr_active_w +
         report.processing_time_s * model.cpu_active_w;
}

double transfer_energy_j(std::size_t bytes, const EnergyModel& model) {
  return model.radio_wakeup_j +
         static_cast<double>(bytes) / 1024.0 * model.radio_j_per_kb;
}

double waldo_daily_energy_j(std::size_t model_bytes,
                            const ScanReport& typical_cycle,
                            std::size_t cycles_per_day,
                            const EnergyModel& model) {
  return transfer_energy_j(model_bytes, model) +
         static_cast<double>(cycles_per_day) *
             scan_energy_j(typical_cycle, model);
}

double database_daily_energy_j(std::size_t query_bytes,
                               std::size_t queries_per_day,
                               const EnergyModel& model) {
  return static_cast<double>(queries_per_day) *
         transfer_energy_j(query_bytes, model);
}

}  // namespace waldo::device
