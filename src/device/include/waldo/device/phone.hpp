// Simulated mobile WSD runtime (Section 5). The paper's prototype pairs an
// RTL-SDR with an Android phone over USB-OTG and re-scans every 60 s; this
// module reproduces the runtime around the real pipeline: real captures,
// real FFT/feature extraction and real model inference are executed and
// *timed*, while acquisition latency (USB transfer + retune) is modelled as
// a per-reading constant.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "waldo/core/database.hpp"
#include "waldo/core/detector.hpp"
#include "waldo/core/model.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/sensors/sensor.hpp"

namespace waldo::device {

struct PhoneConfig {
  /// FCC-mandated re-check interval.
  double scan_period_s = 60.0;
  /// Acquisition latency per reading: retune + 256-sample USB-OTG transfer
  /// on an RTL dongle (dominated by USB turnaround, ~10 ms class).
  double reading_period_s = 0.012;
  /// Multiplier applied to the *measured* processing time to emulate a
  /// slower compute stack. 1.0 reports the native C++ pipeline; the Fig. 18
  /// reproduction uses ~200 to model the paper's 2015 Android phone running
  /// Java + JNI OpenCV.
  double processing_time_scale = 1.0;
  /// Skip sensing on channels whose downloaded model is a single area-wide
  /// constant (Section 5: clearly vacant — or blanket-occupied — channels
  /// can be cached and not scanned). Brings the 30-channel cycle under the
  /// IEEE 802.22 2 s budget in typical markets.
  bool cache_constant_channels = true;
  core::DetectorConfig detector;
};

/// Outcome of scanning one channel at one position.
struct ChannelScan {
  int channel = 0;
  bool converged = false;
  /// Decision served from the model's area-wide constant without sensing.
  bool cached = false;
  int decision = 0;                ///< ml::kSafe / ml::kNotSafe
  std::size_t readings_used = 0;
  double acquisition_time_s = 0.0; ///< modelled sensor-side latency
  double processing_time_s = 0.0;  ///< measured CPU work (FFT + features + model)
  [[nodiscard]] double convergence_time_s() const noexcept {
    return acquisition_time_s + processing_time_s;
  }
};

/// Outcome of one full scan cycle.
struct ScanReport {
  std::vector<ChannelScan> channels;
  double busy_time_s = 0.0;
  double processing_time_s = 0.0;
  /// CPU share while the scan is active (peak-period utilisation, Fig 18).
  [[nodiscard]] double cpu_active_fraction() const noexcept {
    return busy_time_s > 0.0 ? processing_time_s / busy_time_s : 0.0;
  }
  /// CPU share normalised over the whole scan period (the paper's 2.35 %).
  [[nodiscard]] double cpu_duty_fraction(double scan_period_s) const noexcept {
    return scan_period_s > 0.0 ? processing_time_s / scan_period_s : 0.0;
  }
};

class PhoneRuntime {
 public:
  PhoneRuntime(PhoneConfig config, sensors::Sensor sensor);

  /// Installs a downloaded model (Local Model Parameters Updater cache).
  void install_model(core::WhiteSpaceModel model);
  [[nodiscard]] bool has_model(int channel) const noexcept;

  /// Downloads any missing models from the database; returns bytes moved.
  std::size_t ensure_models(core::SpectrumDatabase& database,
                            std::span<const int> channels);

  /// Scans one channel at a stationary position: streams sensor readings
  /// through the convergence filter, then classifies with the installed
  /// model.
  [[nodiscard]] ChannelScan scan_channel(const rf::Environment& environment,
                                         int channel,
                                         const geo::EnuPoint& position);

  /// Scans one channel while moving (readings taken along the motion
  /// vector); convergence may fail — the mobility caveat of Section 5.
  [[nodiscard]] ChannelScan scan_channel_mobile(
      const rf::Environment& environment, int channel,
      const geo::EnuPoint& start, double speed_east_mps,
      double speed_north_mps);

  /// Full cycle over `channels` at a position.
  [[nodiscard]] ScanReport scan_cycle(const rf::Environment& environment,
                                      std::span<const int> channels,
                                      const geo::EnuPoint& position);

  [[nodiscard]] std::size_t bytes_downloaded() const noexcept {
    return bytes_downloaded_;
  }
  [[nodiscard]] const PhoneConfig& config() const noexcept { return config_; }
  [[nodiscard]] sensors::Sensor& sensor() noexcept { return sensor_; }

 private:
  [[nodiscard]] ChannelScan run_scan(const rf::Environment& environment,
                                     int channel, geo::EnuPoint position,
                                     double step_east_m, double step_north_m);

  PhoneConfig config_;
  sensors::Sensor sensor_;
  std::map<int, core::WhiteSpaceModel> models_;
  std::size_t bytes_downloaded_ = 0;
};

/// The phone-attached RTL-SDR: same dongle as the campaign unit but with
/// the extra reading jitter of a moving, USB-powered setup.
[[nodiscard]] sensors::SensorSpec phone_rtl_sdr_spec();

}  // namespace waldo::device
