// Device energy accounting (Section 5 / the Brouwers-Langendoen question:
// "will dynamic spectrum access drain my battery?"). Converts scan reports
// and network exchanges into joules so the three access strategies —
// Waldo (one model download, local sensing), conventional database (one
// query per location change) and sensing-only — compare on battery cost.
#pragma once

#include <cstddef>

#include "waldo/device/phone.hpp"

namespace waldo::device {

struct EnergyModel {
  /// RTL-SDR dongle powered over USB-OTG while acquiring.
  double sdr_active_w = 1.1;
  /// Application processor while crunching samples.
  double cpu_active_w = 1.6;
  /// Cellular radio energy per kilobyte transferred (LTE class).
  double radio_j_per_kb = 0.12;
  /// Fixed cost of waking the cellular radio for one round trip (RRC
  /// promotion + tail energy).
  double radio_wakeup_j = 6.0;
};

/// Energy of one scan cycle: dongle during acquisition + CPU during
/// processing.
[[nodiscard]] double scan_energy_j(const ScanReport& report,
                                   const EnergyModel& model = {});

/// Energy of one network exchange of `bytes` (query or model download).
[[nodiscard]] double transfer_energy_j(std::size_t bytes,
                                       const EnergyModel& model = {});

/// Daily energy of the Waldo strategy: one model download per channel set
/// plus `cycles_per_day` local scan cycles.
[[nodiscard]] double waldo_daily_energy_j(std::size_t model_bytes,
                                          const ScanReport& typical_cycle,
                                          std::size_t cycles_per_day,
                                          const EnergyModel& model = {});

/// Daily energy of the conventional-database strategy: one query round
/// trip per re-check (a few kB each), no sensing.
[[nodiscard]] double database_daily_energy_j(std::size_t query_bytes,
                                             std::size_t queries_per_day,
                                             const EnergyModel& model = {});

}  // namespace waldo::device
