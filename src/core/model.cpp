#include "waldo/core/model.hpp"

#include <iomanip>
#include <locale>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "waldo/codec/codec.hpp"
#include "waldo/core/features.hpp"
#include "waldo/ml/decision_tree.hpp"
#include "waldo/ml/kmeans.hpp"
#include "waldo/ml/logistic_regression.hpp"
#include "waldo/ml/knn.hpp"
#include "waldo/ml/naive_bayes.hpp"
#include "waldo/ml/svm.hpp"

namespace waldo::core {

std::unique_ptr<ml::Classifier> make_classifier(const std::string& kind) {
  if (kind == "svm") return std::make_unique<ml::Svm>();
  if (kind == "naive_bayes") return std::make_unique<ml::GaussianNaiveBayes>();
  if (kind == "decision_tree") return std::make_unique<ml::DecisionTree>();
  if (kind == "knn") return std::make_unique<ml::KnnClassifier>();
  if (kind == "logistic_regression") {
    return std::make_unique<ml::LogisticRegression>();
  }
  throw std::invalid_argument("unknown classifier kind: " + kind);
}

WhiteSpaceModel::WhiteSpaceModel(int channel, int num_features,
                                 std::string classifier_kind,
                                 ml::Matrix centroids,
                                 std::vector<Locality> localities)
    : channel_(channel),
      num_features_(num_features),
      classifier_kind_(std::move(classifier_kind)),
      centroids_(std::move(centroids)),
      localities_(std::move(localities)) {
  if (centroids_.rows() != localities_.size()) {
    throw std::invalid_argument("centroid / locality count mismatch");
  }
  if (centroids_.cols() != 2) {
    throw std::invalid_argument("centroids must be 2-D locations");
  }
}

std::size_t WhiteSpaceModel::num_constant_localities() const noexcept {
  std::size_t n = 0;
  for (const Locality& l : localities_) n += l.constant ? 1 : 0;
  return n;
}

std::optional<int> WhiteSpaceModel::constant_label() const {
  if (localities_.empty()) return std::nullopt;
  const Locality& first = localities_.front();
  if (!first.constant) return std::nullopt;
  for (const Locality& l : localities_) {
    if (!l.constant || l.constant_label != first.constant_label) {
      return std::nullopt;
    }
  }
  return first.constant_label;
}

std::size_t WhiteSpaceModel::locality_of(const geo::EnuPoint& p) const {
  if (centroids_.rows() == 0) throw std::logic_error("model has no localities");
  const double loc[2] = {p.east_m, p.north_m};
  return ml::nearest_centroid(centroids_, loc);
}

int WhiteSpaceModel::predict(std::span<const double> feature_row) const {
  if (feature_row.size() != feature_columns(num_features_)) {
    throw std::invalid_argument("feature row width mismatch");
  }
  const std::size_t c =
      locality_of(geo::EnuPoint{feature_row[0], feature_row[1]});
  const Locality& l = localities_[c];
  if (l.constant) return l.constant_label;
  return l.classifier->predict(feature_row);
}

void WhiteSpaceModel::save(std::ostream& out) const {
  out.imbue(std::locale::classic());
  out << std::setprecision(17);
  out << "waldo_model v1 channel=" << channel_
      << " features=" << num_features_ << " kind=" << classifier_kind_
      << " localities=" << localities_.size() << "\n";
  for (std::size_t c = 0; c < centroids_.rows(); ++c) {
    out << centroids_(c, 0) << " " << centroids_(c, 1) << "\n";
  }
  for (const Locality& l : localities_) {
    if (l.constant) {
      out << "constant " << l.constant_label << "\n";
    } else {
      out << "classifier\n";
      l.classifier->save(out);
    }
  }
}

void WhiteSpaceModel::load(std::istream& in) {
  in.imbue(std::locale::classic());
  std::string magic, version;
  in >> magic >> version;
  if (magic != "waldo_model" || version != "v1") {
    throw std::runtime_error("bad model descriptor header");
  }
  std::size_t count = 0;
  for (int field = 0; field < 4; ++field) {
    std::string tok;
    in >> tok;
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("malformed model header field: " + tok);
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (key == "channel") {
      channel_ = std::stoi(value);
    } else if (key == "features") {
      num_features_ = std::stoi(value);
    } else if (key == "kind") {
      classifier_kind_ = value;
    } else if (key == "localities") {
      count = static_cast<std::size_t>(std::stoul(value));
    }
  }
  centroids_ = ml::Matrix(count, 2);
  for (std::size_t c = 0; c < count; ++c) {
    in >> centroids_(c, 0) >> centroids_(c, 1);
  }
  localities_.clear();
  localities_.reserve(count);
  for (std::size_t c = 0; c < count; ++c) {
    std::string tag;
    in >> tag;
    Locality l;
    if (tag == "constant") {
      l.constant = true;
      in >> l.constant_label;
    } else if (tag == "classifier") {
      l.classifier = make_classifier(classifier_kind_);
      l.classifier->load(in);
    } else {
      throw std::runtime_error("bad locality tag: " + tag);
    }
    localities_.push_back(std::move(l));
  }
  if (!in) throw std::runtime_error("truncated model descriptor");
}

void WhiteSpaceModel::save(codec::Writer& out) const {
  out.i64(channel_);
  out.i64(num_features_);
  out.str(classifier_kind_);
  out.u64(localities_.size());
  for (std::size_t c = 0; c < centroids_.rows(); ++c) {
    out.f64(centroids_(c, 0));
    out.f64(centroids_(c, 1));
  }
  for (const Locality& l : localities_) {
    if (l.constant) {
      out.u8(0);
      out.i64(l.constant_label);
    } else {
      out.u8(1);
      l.classifier->save(out);
    }
  }
}

void WhiteSpaceModel::load(codec::Reader& in) {
  channel_ = static_cast<int>(in.i64());
  num_features_ = static_cast<int>(in.i64());
  classifier_kind_ = in.str();
  // Validates the kind up front so a corrupt string fails here, not
  // halfway through a locality.
  (void)make_classifier(classifier_kind_);
  // Each locality contributes a 16-byte centroid plus at least a tag byte.
  const std::size_t count = in.count(17);
  centroids_ = ml::Matrix(count, 2);
  for (std::size_t c = 0; c < count; ++c) {
    centroids_(c, 0) = in.f64();
    centroids_(c, 1) = in.f64();
  }
  localities_.clear();
  localities_.reserve(count);
  for (std::size_t c = 0; c < count; ++c) {
    Locality l;
    const std::uint8_t tag = in.u8();
    if (tag == 0) {
      l.constant = true;
      l.constant_label = static_cast<int>(in.i64());
    } else if (tag == 1) {
      l.classifier = make_classifier(classifier_kind_);
      l.classifier->load(in);
    } else {
      throw codec::Error("bad locality tag");
    }
    localities_.push_back(std::move(l));
  }
  in.expect_done();
}

std::string WhiteSpaceModel::serialize() const {
  codec::Writer w;
  save(w);
  return std::move(w).finish();
}

std::string WhiteSpaceModel::serialize_text() const {
  std::ostringstream os;
  save(os);
  return os.str();
}

WhiteSpaceModel WhiteSpaceModel::deserialize(const std::string& bytes) {
  WhiteSpaceModel m;
  if (codec::is_binary(bytes)) {
    codec::Reader r(bytes);
    m.load(r);
  } else {
    std::istringstream is(bytes);
    m.load(is);
  }
  return m;
}

std::size_t WhiteSpaceModel::descriptor_size_bytes() const {
  return serialize().size();
}

}  // namespace waldo::core
