#include "waldo/core/features.hpp"

#include <stdexcept>

#include "waldo/dsp/detectors.hpp"

namespace waldo::core {

std::vector<double> feature_row(const geo::EnuPoint& position, double rss_dbm,
                                double cft_db, double aft_db,
                                int num_features) {
  if (num_features < kMinFeatures || num_features > kMaxFeatures) {
    throw std::invalid_argument("feature count must be in [1, 4]");
  }
  std::vector<double> row;
  row.reserve(feature_columns(num_features));
  row.push_back(position.east_m);
  row.push_back(position.north_m);
  if (num_features >= 2) row.push_back(rss_dbm);
  if (num_features >= 3) row.push_back(cft_db);
  if (num_features >= 4) row.push_back(aft_db);
  return row;
}

ml::Matrix build_features(const campaign::ChannelDataset& data,
                          int num_features) {
  ml::Matrix x;
  for (const campaign::Measurement& m : data.readings) {
    x.push_row(
        feature_row(m.position, m.rss_dbm, m.cft_db, m.aft_db, num_features));
  }
  return x;
}

SpectralFeatures extract_spectral_features(
    std::span<const dsp::cplx> capture) {
  return SpectralFeatures{.cft_db = dsp::central_bin_db(capture),
                          .aft_db = dsp::central_band_mean_db(capture)};
}

SpectralFeatures extract_spectral_features(std::span<const dsp::cplx> capture,
                                           dsp::CaptureWorkspace& ws) {
  const auto ps = dsp::power_spectrum_shifted_into(capture, ws);
  return SpectralFeatures{.cft_db = dsp::central_bin_db_from_power(ps),
                          .aft_db = dsp::central_band_mean_db_from_power(ps)};
}

SpectralFeatures spectral_features_from_spectrum(
    std::span<const dsp::cplx> shifted_spectrum) {
  return SpectralFeatures{
      .cft_db = dsp::central_bin_db_from_spectrum(shifted_spectrum),
      .aft_db = dsp::central_band_mean_db_from_spectrum(shifted_spectrum)};
}

const char* feature_name(int index) {
  switch (index) {
    case 1:
      return "location";
    case 2:
      return "RSS";
    case 3:
      return "CFT";
    case 4:
      return "AFT";
    default:
      throw std::invalid_argument("feature index must be in [1, 4]");
  }
}

}  // namespace waldo::core
