#include "waldo/core/detector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace waldo::core {

namespace {

/// Acklam's rational approximation of the standard normal quantile
/// function; relative error below 1.15e-9 over (0, 1).
[[nodiscard]] double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("normal quantile needs p in (0, 1)");
  }
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

double normal_critical_value(double confidence) {
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("confidence must be in (0, 1)");
  }
  return normal_quantile(0.5 + confidence / 2.0);
}

ConvergenceFilter::ConvergenceFilter(DetectorConfig config)
    : config_(config) {
  if (config_.alpha_db <= 0.0) {
    throw std::invalid_argument("alpha must be positive");
  }
  if (config_.min_samples < 2) config_.min_samples = 2;
}

void ConvergenceFilter::reset() {
  readings_.clear();
  converged_ = false;
}

std::vector<double> ConvergenceFilter::trimmed() const {
  std::vector<double> sorted(readings_);
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  const auto lo = static_cast<std::size_t>(config_.outlier_low_quantile *
                                           static_cast<double>(n));
  auto hi = static_cast<std::size_t>(
      std::ceil(config_.outlier_high_quantile * static_cast<double>(n)));
  hi = std::max(std::min(hi, n), lo + 1);
  return std::vector<double>(sorted.begin() + static_cast<std::ptrdiff_t>(lo),
                             sorted.begin() + static_cast<std::ptrdiff_t>(hi));
}

double ConvergenceFilter::estimate_dbm() const {
  if (readings_.empty()) throw std::logic_error("no readings ingested");
  const std::vector<double> kept = trimmed();
  double sum = 0.0;
  for (const double v : kept) sum += v;
  return sum / static_cast<double>(kept.size());
}

double ConvergenceFilter::ci_span_db() const {
  const std::vector<double> kept = trimmed();
  if (kept.size() < 2) return std::numeric_limits<double>::infinity();
  double mean = 0.0;
  for (const double v : kept) mean += v;
  mean /= static_cast<double>(kept.size());
  double ss = 0.0;
  for (const double v : kept) ss += (v - mean) * (v - mean);
  const double sd = std::sqrt(ss / static_cast<double>(kept.size() - 1));
  const double z = normal_critical_value(config_.confidence);
  return 2.0 * z * sd / std::sqrt(static_cast<double>(kept.size()));
}

bool ConvergenceFilter::ingest(double rss_dbm) {
  if (converged_) return true;
  readings_.push_back(rss_dbm);
  if (readings_.size() < config_.min_samples) return false;
  if (ci_span_db() < config_.alpha_db) converged_ = true;
  return converged_;
}

bool ConvergenceFilter::exhausted() const noexcept {
  return !converged_ && readings_.size() >= config_.max_samples;
}

}  // namespace waldo::core
