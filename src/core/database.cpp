#include "waldo/core/database.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "waldo/geo/grid_index.hpp"
#include "waldo/ml/stats.hpp"

namespace waldo::core {

UploadResult screen_upload(const campaign::ChannelDataset& stored,
                           std::vector<PendingReading>& pending,
                           const UploadPolicy& policy,
                           std::span<const campaign::Measurement> readings,
                           const std::string& contributor,
                           std::vector<campaign::Measurement>& accepted) {
  UploadResult result;
  if (readings.empty()) return result;

  // Correlation check against the stored neighbourhood (Section 3.4 /
  // secure collaborative sensing): an upload deviating wildly from what
  // nearby trusted readings saw is rejected; an upload nobody can vouch
  // for is held pending until independently corroborated.
  const geo::GridIndex index(stored.positions(),
                             std::max(50.0, policy.neighbourhood_m));
  const std::vector<double> stored_rss = stored.rss_values();

  for (const campaign::Measurement& m : readings) {
    const std::vector<std::size_t> nearby =
        index.query_radius(m.position, policy.neighbourhood_m);
    if (nearby.size() >= policy.min_neighbours) {
      std::vector<double> neighbour_rss;
      neighbour_rss.reserve(nearby.size());
      for (const std::size_t j : nearby) {
        neighbour_rss.push_back(stored_rss[j]);
      }
      const double median = ml::quantile(neighbour_rss, 0.5);
      if (std::abs(m.rss_dbm - median) > policy.max_deviation_db) {
        ++result.rejected;
      } else {
        accepted.push_back(m);
        ++result.accepted;
      }
      continue;
    }

    // Unexplored territory: look for corroborating pending readings from
    // other contributors.
    std::vector<std::size_t> corroborators;
    std::size_t distinct = 1;  // this contributor
    for (std::size_t p = 0; p < pending.size(); ++p) {
      const PendingReading& pr = pending[p];
      if (geo::distance_m(pr.measurement.position, m.position) >
          policy.corroboration_m) {
        continue;
      }
      if (std::abs(pr.measurement.rss_dbm - m.rss_dbm) >
          policy.max_deviation_db) {
        continue;
      }
      corroborators.push_back(p);
      if (pr.contributor != contributor) ++distinct;
    }
    if (distinct >= policy.min_corroborators) {
      // Promote the agreeing cluster plus this reading.
      accepted.push_back(m);
      ++result.accepted;
      for (auto rit = corroborators.rbegin(); rit != corroborators.rend();
           ++rit) {
        accepted.push_back(pending[*rit].measurement);
        ++result.accepted;  // promoted into the trusted store now
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(*rit));
      }
    } else {
      pending.push_back(PendingReading{m, contributor});
      ++result.pending;
    }
  }
  return result;
}

SpectrumDatabase::SpectrumDatabase(ModelConstructorConfig constructor_config,
                                   campaign::LabelingConfig labeling,
                                   UploadPolicy upload_policy)
    : constructor_config_(std::move(constructor_config)),
      labeling_(labeling),
      upload_policy_(upload_policy) {}

void SpectrumDatabase::ingest_campaign(campaign::ChannelDataset dataset) {
  if (dataset.readings.empty()) {
    throw std::invalid_argument("refusing to ingest an empty campaign");
  }
  const int channel = dataset.channel;
  auto it = data_.find(channel);
  if (it == data_.end()) {
    data_.emplace(channel, std::move(dataset));
  } else {
    auto& readings = it->second.readings;
    readings.insert(readings.end(),
                    std::make_move_iterator(dataset.readings.begin()),
                    std::make_move_iterator(dataset.readings.end()));
  }
  model_cache_.erase(channel);
  descriptor_cache_.erase(channel);
  accepted_since_build_[channel] = 0;
}

bool SpectrumDatabase::has_channel(int channel) const noexcept {
  return data_.contains(channel);
}

std::vector<int> SpectrumDatabase::channels() const {
  std::vector<int> out;
  out.reserve(data_.size());
  for (const auto& [ch, _] : data_) out.push_back(ch);
  return out;
}

const campaign::ChannelDataset& SpectrumDatabase::dataset(int channel) const {
  const auto it = data_.find(channel);
  if (it == data_.end()) {
    throw std::out_of_range("no data for channel " + std::to_string(channel));
  }
  return it->second;
}

std::vector<int> SpectrumDatabase::labels(int channel) const {
  const campaign::ChannelDataset& ds = dataset(channel);
  return campaign::label_readings(ds.positions(), ds.rss_values(), labeling_);
}

const WhiteSpaceModel& SpectrumDatabase::model(int channel) {
  auto it = model_cache_.find(channel);
  if (it != model_cache_.end()) return it->second;
  const ModelConstructor constructor(constructor_config_);
  WhiteSpaceModel m =
      constructor.build_with_labeling(dataset(channel), labeling_);
  ++stats_.models_built;
  // The fresh build folds in every accepted reading: nothing is stale.
  accepted_since_build_[channel] = 0;
  return model_cache_.emplace(channel, std::move(m)).first->second;
}

std::string SpectrumDatabase::download_model(int channel) {
  // Serve the serialized descriptor cached alongside the model: a repeat
  // download is a string copy, not a re-serialization. `model(channel)`
  // (re)builds on demand, and both caches are erased together, so a live
  // descriptor_cache_ entry always matches the cached model.
  auto it = descriptor_cache_.find(channel);
  if (it == descriptor_cache_.end() || !model_cache_.contains(channel)) {
    ++stats_.descriptor_cache_misses;
    it = descriptor_cache_
             .insert_or_assign(channel, model(channel).serialize())
             .first;
  } else {
    ++stats_.descriptor_cache_hits;
    stats_.bytes_from_cache += it->second.size();
  }
  ++stats_.model_downloads;
  stats_.bytes_served += it->second.size();
  return it->second;
}

SpectrumDatabase::UploadResult SpectrumDatabase::upload_measurements(
    int channel, std::span<const campaign::Measurement> readings,
    const std::string& contributor) {
  auto it = data_.find(channel);
  if (it == data_.end()) {
    throw std::out_of_range(
        "uploads require a bootstrapped channel (trusted campaign first)");
  }
  campaign::ChannelDataset& stored = it->second;

  std::vector<campaign::Measurement> accepted;
  UploadResult result = screen_upload(stored, pending_[channel],
                                      upload_policy_, readings, contributor,
                                      accepted);
  result.ticket = uploads_applied_[channel]++;

  if (!accepted.empty()) {
    stored.readings.insert(stored.readings.end(),
                           std::make_move_iterator(accepted.begin()),
                           std::make_move_iterator(accepted.end()));
    std::size_t& stale = accepted_since_build_[channel];
    stale += result.accepted;
    if (stale >= upload_policy_.rebuild_threshold) {
      model_cache_.erase(channel);
      descriptor_cache_.erase(channel);
      stale = 0;
    }
  }
  stats_.uploads_accepted += result.accepted;
  stats_.uploads_rejected += result.rejected;
  return result;
}

std::size_t SpectrumDatabase::purge_pending(const std::string& contributor) {
  std::size_t purged = 0;
  for (auto& [channel, pending] : pending_) {
    purged += std::erase_if(pending, [&contributor](const PendingReading& pr) {
      return pr.contributor == contributor;
    });
  }
  return purged;
}

std::size_t SpectrumDatabase::pending_count(int channel) const noexcept {
  const auto it = pending_.find(channel);
  return it == pending_.end() ? 0 : it->second.size();
}

std::size_t SpectrumDatabase::staleness(int channel) const noexcept {
  const auto it = accepted_since_build_.find(channel);
  return it == accepted_since_build_.end() ? 0 : it->second;
}

}  // namespace waldo::core
