// Secure crowdsourced updating (Section 3.4). Waldo's central database
// accepts measurements from untrusted devices, so a malicious contributor
// can try to (a) forge vacancy — report low RSS so the model opens an
// occupied channel and causes interference — or (b) forge occupancy — deny
// white space to competitors. Following the collaborative-sensing defence
// the paper adopts (Fatemieh et al.), uploads are cross-checked against
// trusted nearby readings and contributors accrue a reputation; identities
// that keep failing the correlation test are quarantined, which also blunts
// Sybil strategies (every new identity starts with limited influence).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "waldo/core/database.hpp"

namespace waldo::core {

/// Attack models used by tests and the security ablation bench.
enum class AttackType {
  kFalseVacancy,    ///< claim an occupied area is silent
  kFalseOccupancy,  ///< claim a vacant area is hot
};

struct AttackConfig {
  AttackType type = AttackType::kFalseVacancy;
  /// Area the attacker wants to flip.
  geo::BoundingBox target_area;
  /// RSS the attacker forges (dBm). Vacancy attacks report near-floor
  /// values; occupancy attacks report decodable-strength values.
  double forged_rss_dbm = -110.0;
  std::size_t num_reports = 50;
  std::uint64_t seed = 5150;
};

/// Fabricates a batch of malicious measurements per the attack config.
[[nodiscard]] std::vector<campaign::Measurement> forge_uploads(
    const AttackConfig& config);

struct ReputationPolicy {
  /// EWMA weight of the newest batch's acceptance ratio.
  double smoothing = 0.3;
  /// Contributors below this reputation are quarantined: their uploads are
  /// dropped before reaching the database.
  double quarantine_threshold = 0.4;
  /// Starting reputation of an unknown identity (limits Sybil influence:
  /// a fresh identity is only one bad batch away from quarantine).
  double initial_reputation = 0.5;
};

struct ContributorRecord {
  double reputation = 0.5;
  std::size_t batches = 0;
  std::size_t readings_accepted = 0;
  std::size_t readings_rejected = 0;
  bool quarantined = false;
};

/// Gatekeeper between devices and SpectrumDatabase::upload_measurements.
class SecureUpdater {
 public:
  explicit SecureUpdater(ReputationPolicy policy = {}) : policy_(policy) {}

  struct SubmitResult {
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    std::size_t pending = 0;   ///< held for corroboration
    bool quarantined = false;  ///< batch dropped without touching the DB
    /// Pending readings of this contributor purged across all channels
    /// when this batch tripped the quarantine threshold (a quarantined
    /// identity's stash must never be promoted by later corroboration).
    std::size_t purged_pending = 0;
  };

  /// Submits a batch on behalf of `contributor`. Quarantined contributors
  /// are refused outright; otherwise the database's correlation check runs
  /// and the outcome updates the contributor's reputation. Crossing the
  /// quarantine threshold also purges the contributor's pending readings.
  SubmitResult submit(SpectrumDatabase& database, int channel,
                      const std::string& contributor,
                      std::span<const campaign::Measurement> readings);

  [[nodiscard]] const ContributorRecord& record(
      const std::string& contributor) const;
  [[nodiscard]] bool is_quarantined(const std::string& contributor) const;
  [[nodiscard]] std::size_t num_contributors() const noexcept {
    return records_.size();
  }
  [[nodiscard]] const ReputationPolicy& policy() const noexcept {
    return policy_;
  }

 private:
  ReputationPolicy policy_;
  std::map<std::string, ContributorRecord> records_;
};

}  // namespace waldo::core
