// The White Space Detection Model a WSD downloads: locality centroids plus
// one compact classifier per locality. Clusters whose training data was
// single-class collapse to a constant label ("binary clusters" in the
// paper), which costs nothing to ship or evaluate.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "waldo/geo/latlon.hpp"
#include "waldo/ml/classifier.hpp"
#include "waldo/ml/matrix.hpp"

namespace waldo::core {

/// Creates an untrained classifier by family name ("svm", "naive_bayes",
/// "decision_tree", "knn", "logistic_regression"). Throws on unknown names.
[[nodiscard]] std::unique_ptr<ml::Classifier> make_classifier(
    const std::string& kind);

class WhiteSpaceModel {
 public:
  struct Locality {
    bool constant = false;
    int constant_label = 0;
    std::unique_ptr<ml::Classifier> classifier;  ///< null when constant
  };

  WhiteSpaceModel() = default;
  WhiteSpaceModel(int channel, int num_features, std::string classifier_kind,
                  ml::Matrix centroids, std::vector<Locality> localities);

  [[nodiscard]] int channel() const noexcept { return channel_; }
  [[nodiscard]] int num_features() const noexcept { return num_features_; }
  [[nodiscard]] const std::string& classifier_kind() const noexcept {
    return classifier_kind_;
  }
  [[nodiscard]] std::size_t num_localities() const noexcept {
    return localities_.size();
  }
  [[nodiscard]] std::size_t num_constant_localities() const noexcept;
  [[nodiscard]] const ml::Matrix& centroids() const noexcept {
    return centroids_;
  }

  /// Locality index owning a position.
  [[nodiscard]] std::size_t locality_of(const geo::EnuPoint& p) const;

  /// If every locality is a constant with the same label, that label —
  /// the channel's state is area-wide and devices may cache the decision
  /// without sensing (Section 5: "clearly vacant channels ... can be
  /// cached and not scanned"). Empty otherwise.
  [[nodiscard]] std::optional<int> constant_label() const;

  /// Classifies a full feature row (first two columns are the location).
  [[nodiscard]] int predict(std::span<const double> feature_row) const;

  /// Descriptor round-trip. The descriptor is what travels from the
  /// spectrum database to the device. Two wire forms exist:
  ///   - v1 (current): the compact binary waldo::codec container —
  ///     `serialize()` emits it, and round trips are bit-exact.
  ///   - v0 (legacy): the line-oriented text form — `save`/`load` and
  ///     `serialize_text()` keep it readable and writable for old devices
  ///     and files (streams imbued with the classic locale).
  /// `deserialize` sniffs the magic and accepts either form.
  void save(std::ostream& out) const;
  void load(std::istream& in);
  void save(codec::Writer& out) const;
  void load(codec::Reader& in);
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] std::string serialize_text() const;
  [[nodiscard]] static WhiteSpaceModel deserialize(const std::string& bytes);
  /// Binary (v1) descriptor size.
  [[nodiscard]] std::size_t descriptor_size_bytes() const;

 private:
  int channel_ = 0;
  int num_features_ = 1;
  std::string classifier_kind_;
  ml::Matrix centroids_;  ///< k x 2, location space
  std::vector<Locality> localities_;
};

}  // namespace waldo::core
