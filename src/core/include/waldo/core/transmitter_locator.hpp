// Transmitter localisation from campaign measurements — the Section 6
// application ("determining protected areas of primary spectrum users and
// monitoring cross interference"): given location-tagged RSS readings of a
// channel, estimate where the incumbent transmits from and how its signal
// decays, without any registration data.
//
// Method: coarse-to-fine grid search over candidate transmitter positions;
// at each candidate, the best-fit log-distance model (intercept + exponent,
// closed-form least squares on RSS vs log10 distance) scores the candidate
// by residual error. Physically meaningful fits (positive path-loss
// exponent) are preferred. Only readings with detectable signal take part —
// floor-saturated readings carry no range information.
#pragma once

#include <cstdint>
#include <optional>

#include "waldo/campaign/measurement.hpp"

namespace waldo::core {

struct LocatorConfig {
  /// Readings below this level are treated as floor-saturated and ignored.
  /// Low-cost sensors compress near their floor, which flattens the fitted
  /// slope, so only clearly-detectable readings carry range information.
  double min_rss_dbm = -86.0;
  /// Search margin beyond the readings' bounding box, meters (transmitters
  /// usually sit outside the drive area).
  double search_margin_m = 40'000.0;
  /// Coarse grid pitch; each refinement halves it.
  double coarse_step_m = 4'000.0;
  std::size_t refinement_rounds = 5;
  /// Minimum usable readings for a fit.
  std::size_t min_readings = 20;
  /// Robustness: after each trim round the worst-residual share of
  /// readings is dropped and the search repeats. Obstruction pockets put
  /// large, distance-uncorrelated negative outliers in the data; trimming
  /// keeps them from flattening the fitted slope.
  double trim_fraction = 0.2;
  std::size_t trim_rounds = 2;
};

struct TransmitterEstimate {
  geo::EnuPoint position;
  double path_loss_exponent = 0.0;   ///< n of the fitted log-distance law
  double intercept_dbm = 0.0;        ///< predicted RSS at 1 km
  double rmse_db = 0.0;              ///< fit residual
  std::size_t readings_used = 0;
};

/// Estimates the dominant transmitter of `data`'s channel. Returns empty
/// when too few readings rise above the detection floor (a genuinely dark
/// channel has nothing to locate).
[[nodiscard]] std::optional<TransmitterEstimate> locate_transmitter(
    const campaign::ChannelDataset& data, const LocatorConfig& config = {});

}  // namespace waldo::core
