// Feature construction (Section 3.2). A conventional spectrum database
// classifies on location alone; Waldo appends signal features extracted
// from the 256-sample capture, in the paper's fixed order:
//   1 feature  : location (east, north — counts as one feature)
//   2 features : + RSS  (calibrated channel-power estimate)
//   3 features : + CFT  (central DFT bin power)
//   4 features : + AFT  (mean power of the central 15 % of DFT bins)
#pragma once

#include <span>
#include <vector>

#include "waldo/campaign/measurement.hpp"
#include "waldo/dsp/fft.hpp"
#include "waldo/dsp/iq.hpp"
#include "waldo/ml/matrix.hpp"

namespace waldo::core {

inline constexpr int kMinFeatures = 1;
inline constexpr int kMaxFeatures = 4;

/// Number of matrix columns a feature count expands to (location is two
/// coordinates).
[[nodiscard]] constexpr std::size_t feature_columns(int num_features) {
  return 1 + static_cast<std::size_t>(num_features);
}

/// One feature row from measurement ingredients.
[[nodiscard]] std::vector<double> feature_row(const geo::EnuPoint& position,
                                              double rss_dbm, double cft_db,
                                              double aft_db,
                                              int num_features);

/// Feature matrix over a whole dataset.
[[nodiscard]] ml::Matrix build_features(const campaign::ChannelDataset& data,
                                        int num_features);

/// Extracts the (RSS-excluded) spectral features from a live capture: CFT
/// and AFT, in that order. RSS comes from the calibrated raw reading, not
/// the capture.
struct SpectralFeatures {
  double cft_db = 0.0;
  double aft_db = 0.0;
};
[[nodiscard]] SpectralFeatures extract_spectral_features(
    std::span<const dsp::cplx> capture);

/// Workspace form: one FFT serves both CFT and AFT (the allocating form
/// transforms the capture twice), reusing `ws`'s scratch buffers.
/// Bit-identical to the allocating form.
[[nodiscard]] SpectralFeatures extract_spectral_features(
    std::span<const dsp::cplx> capture, dsp::CaptureWorkspace& ws);

/// Fast-spectral form: CFT and AFT straight from the synthesized
/// fftshift-ordered spectrum, skipping the ifft -> fft round trip. Equal
/// to the exact path within FFT round-trip error (see tests).
[[nodiscard]] SpectralFeatures spectral_features_from_spectrum(
    std::span<const dsp::cplx> shifted_spectrum);

/// Human-readable name of the n-th feature (1-based, matching the paper's
/// "number of features" axis).
[[nodiscard]] const char* feature_name(int index);

}  // namespace waldo::core
