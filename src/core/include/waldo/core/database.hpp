// Waldo's central spectrum database (Sections 3.1 and 3.4). The offline
// phase ingests trusted campaign data and constructs per-channel models;
// the online phase serves compact model descriptors to devices and accepts
// crowd-sourced measurement uploads, sanity-checked by correlating each
// upload against nearby stored readings (the defence of [26]).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "waldo/campaign/labeling.hpp"
#include "waldo/campaign/measurement.hpp"
#include "waldo/core/model.hpp"
#include "waldo/core/model_constructor.hpp"

namespace waldo::core {

struct DatabaseStats {
  std::size_t models_built = 0;
  std::size_t model_downloads = 0;
  std::size_t bytes_served = 0;
  std::size_t uploads_accepted = 0;
  std::size_t uploads_rejected = 0;
};

struct UploadPolicy {
  /// Radius within which stored readings vouch for an upload.
  double neighbourhood_m = 1'000.0;
  /// Minimum vouching neighbours required to apply the correlation test.
  std::size_t min_neighbours = 3;
  /// Maximum deviation from the neighbourhood median RSS before an upload
  /// is rejected as implausible / malicious. Honest readings deviate by
  /// shadowing-pocket depth plus device noise (a few dB).
  double max_deviation_db = 12.0;
  /// Uploads in unexplored territory cannot be correlation-checked, so
  /// they are *held pending* instead of trusted: a pending reading is
  /// promoted into the dataset only once readings from enough distinct
  /// contributors agree with it. (Colluding Sybil identities can still
  /// corroborate each other — the full defence of Fatemieh et al. adds
  /// RF-propagation consistency, which the correlation test approximates
  /// only where trusted data exists.)
  double corroboration_m = 500.0;
  std::size_t min_corroborators = 2;
  /// Cached models are invalidated only after this many readings have been
  /// accepted since the last build — retraining per upload batch would make
  /// large deployments rebuild constantly for negligible accuracy gain.
  std::size_t rebuild_threshold = 1;
};

class SpectrumDatabase {
 public:
  explicit SpectrumDatabase(ModelConstructorConfig constructor_config = {},
                            campaign::LabelingConfig labeling = {},
                            UploadPolicy upload_policy = {});

  /// Offline phase: stores a trusted campaign sweep for its channel
  /// (appends if the channel already has data) and invalidates any cached
  /// model.
  void ingest_campaign(campaign::ChannelDataset dataset);

  [[nodiscard]] bool has_channel(int channel) const noexcept;
  [[nodiscard]] std::vector<int> channels() const;
  [[nodiscard]] const campaign::ChannelDataset& dataset(int channel) const;

  /// Algorithm 1 labels of the stored dataset (computed fresh).
  [[nodiscard]] std::vector<int> labels(int channel) const;

  /// Builds (or returns the cached) detection model for a channel.
  [[nodiscard]] const WhiteSpaceModel& model(int channel);

  /// Serialized model descriptor — what a WSD's Local Model Parameters
  /// Updater downloads. Accounts traffic in stats().
  [[nodiscard]] std::string download_model(int channel);

  /// Online phase, Global Model Updater: submits device measurements.
  /// `contributor` identifies the uploading device for the corroboration
  /// rule (pending readings are promoted only by *other* contributors).
  struct UploadResult {
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    std::size_t pending = 0;  ///< held for corroboration, not yet trusted
  };
  UploadResult upload_measurements(
      int channel, std::span<const campaign::Measurement> readings,
      const std::string& contributor = "anonymous");

  /// Readings currently awaiting corroboration on a channel.
  [[nodiscard]] std::size_t pending_count(int channel) const noexcept;

  /// Accepted readings not yet reflected in the cached model.
  [[nodiscard]] std::size_t staleness(int channel) const noexcept;

  [[nodiscard]] const DatabaseStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const campaign::LabelingConfig& labeling_config()
      const noexcept {
    return labeling_;
  }

 private:
  ModelConstructorConfig constructor_config_;
  campaign::LabelingConfig labeling_;
  UploadPolicy upload_policy_;
  struct PendingReading {
    campaign::Measurement measurement;
    std::string contributor;
  };

  std::map<int, campaign::ChannelDataset> data_;
  std::map<int, std::size_t> accepted_since_build_;
  std::map<int, std::vector<PendingReading>> pending_;
  std::map<int, WhiteSpaceModel> model_cache_;
  DatabaseStats stats_;
};

}  // namespace waldo::core
