// Waldo's central spectrum database (Sections 3.1 and 3.4). The offline
// phase ingests trusted campaign data and constructs per-channel models;
// the online phase serves compact model descriptors to devices and accepts
// crowd-sourced measurement uploads, sanity-checked by correlating each
// upload against nearby stored readings (the defence of [26]).
//
// SpectrumDatabase is the single-threaded reference implementation of the
// SpectrumStore surface; service::SpectrumService (src/service) is the
// thread-safe per-channel-sharded serving layer. Both screen uploads with
// the same screen_upload() function, so they accept exactly the same
// readings given the same per-channel request order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "waldo/campaign/labeling.hpp"
#include "waldo/campaign/measurement.hpp"
#include "waldo/core/model.hpp"
#include "waldo/core/model_constructor.hpp"

namespace waldo::core {

struct DatabaseStats {
  std::size_t models_built = 0;
  std::size_t model_downloads = 0;
  std::size_t bytes_served = 0;
  std::size_t uploads_accepted = 0;
  std::size_t uploads_rejected = 0;
  /// Downloads answered from the cached serialized descriptor (no
  /// re-serialization) vs. downloads that had to serialize the model.
  /// The cache is invalidated together with the model cache.
  std::size_t descriptor_cache_hits = 0;
  std::size_t descriptor_cache_misses = 0;
  /// Bytes of `bytes_served` that came straight from the cache.
  std::size_t bytes_from_cache = 0;
};

struct UploadPolicy {
  /// Radius within which stored readings vouch for an upload.
  double neighbourhood_m = 1'000.0;
  /// Minimum vouching neighbours required to apply the correlation test.
  std::size_t min_neighbours = 3;
  /// Maximum deviation from the neighbourhood median RSS before an upload
  /// is rejected as implausible / malicious. Honest readings deviate by
  /// shadowing-pocket depth plus device noise (a few dB).
  double max_deviation_db = 12.0;
  /// Uploads in unexplored territory cannot be correlation-checked, so
  /// they are *held pending* instead of trusted: a pending reading is
  /// promoted into the dataset only once readings from enough distinct
  /// contributors agree with it. (Colluding Sybil identities can still
  /// corroborate each other — the full defence of Fatemieh et al. adds
  /// RF-propagation consistency, which the correlation test approximates
  /// only where trusted data exists.)
  double corroboration_m = 500.0;
  std::size_t min_corroborators = 2;
  /// Cached models are invalidated only after this many readings have been
  /// accepted since the last build — retraining per upload batch would make
  /// large deployments rebuild constantly for negligible accuracy gain.
  std::size_t rebuild_threshold = 1;
};

/// A crowd-sourced reading parked for corroboration — seen but not trusted.
struct PendingReading {
  campaign::Measurement measurement;
  std::string contributor;
};

/// Ledger of one upload batch.
struct UploadResult {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t pending = 0;  ///< held for corroboration, not yet trusted
  /// 0-based position of this batch in the channel's total upload order
  /// (every upload call consumes one ticket, even all-rejected ones —
  /// they may still park pending readings). Replaying recorded batches in
  /// ticket order against a fresh store reproduces the channel's dataset
  /// and pending pool byte-for-byte; tests/test_service.cpp holds the
  /// concurrent serving layer to exactly that contract.
  std::uint64_t ticket = 0;
};

/// Screens one upload batch against a channel's trusted dataset and pending
/// pool per `policy` (Section 3.4): readings the stored neighbourhood can
/// vouch for are correlation-checked; readings in unexplored territory are
/// promoted when enough distinct contributors corroborate, parked pending
/// otherwise. Mutates `pending` (parks new readings, removes promoted ones)
/// and appends every newly trusted measurement — each accepted batch
/// reading followed by the pendings it promoted — to `accepted`. The
/// returned ledger's ticket is left 0; stores stamp their own apply order.
[[nodiscard]] UploadResult screen_upload(
    const campaign::ChannelDataset& stored,
    std::vector<PendingReading>& pending, const UploadPolicy& policy,
    std::span<const campaign::Measurement> readings,
    const std::string& contributor,
    std::vector<campaign::Measurement>& accepted);

/// The store surface the WSNP ProtocolServer serves from. Thread safety is
/// the implementor's contract: ProtocolServer::handle is reentrant exactly
/// when the store behind it is (SpectrumDatabase is single-threaded;
/// service::SpectrumService is safe for arbitrary concurrent callers).
class SpectrumStore {
 public:
  virtual ~SpectrumStore() = default;

  [[nodiscard]] virtual bool has_channel(int channel) const = 0;

  /// Serialized model descriptor — what a WSD's Local Model Parameters
  /// Updater downloads. Implementations account traffic in their stats.
  [[nodiscard]] virtual std::string download_model(int channel) = 0;

  /// Online phase, Global Model Updater: submits device measurements.
  /// `contributor` identifies the uploading device for the corroboration
  /// rule (pending readings are promoted only by *other* contributors).
  virtual UploadResult upload_measurements(
      int channel, std::span<const campaign::Measurement> readings,
      const std::string& contributor) = 0;
};

class SpectrumDatabase : public SpectrumStore {
 public:
  using UploadResult = core::UploadResult;

  explicit SpectrumDatabase(ModelConstructorConfig constructor_config = {},
                            campaign::LabelingConfig labeling = {},
                            UploadPolicy upload_policy = {});

  /// Offline phase: stores a trusted campaign sweep for its channel
  /// (appends if the channel already has data), invalidates any cached
  /// model and zeroes the staleness counter (the next build sees
  /// everything, so nothing is "accepted since build" any more).
  void ingest_campaign(campaign::ChannelDataset dataset);

  [[nodiscard]] bool has_channel(int channel) const noexcept override;
  [[nodiscard]] std::vector<int> channels() const;
  [[nodiscard]] const campaign::ChannelDataset& dataset(int channel) const;

  /// Algorithm 1 labels of the stored dataset (computed fresh).
  [[nodiscard]] std::vector<int> labels(int channel) const;

  /// Builds (or returns the cached) detection model for a channel. A
  /// rebuild folds in every accepted reading, so it resets the channel's
  /// staleness counter.
  [[nodiscard]] const WhiteSpaceModel& model(int channel);

  [[nodiscard]] std::string download_model(int channel) override;

  UploadResult upload_measurements(
      int channel, std::span<const campaign::Measurement> readings,
      const std::string& contributor = "anonymous") override;

  /// Drops every pending (not-yet-corroborated) reading parked by
  /// `contributor`, on all channels; returns how many were purged.
  /// SecureUpdater calls this at quarantine time so a quarantined
  /// identity's stash can never be promoted by later corroboration.
  std::size_t purge_pending(const std::string& contributor);

  /// Readings currently awaiting corroboration on a channel.
  [[nodiscard]] std::size_t pending_count(int channel) const noexcept;

  /// Accepted readings not yet reflected in the cached model.
  [[nodiscard]] std::size_t staleness(int channel) const noexcept;

  [[nodiscard]] const DatabaseStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const campaign::LabelingConfig& labeling_config()
      const noexcept {
    return labeling_;
  }

 private:
  ModelConstructorConfig constructor_config_;
  campaign::LabelingConfig labeling_;
  UploadPolicy upload_policy_;

  std::map<int, campaign::ChannelDataset> data_;
  std::map<int, std::size_t> accepted_since_build_;
  std::map<int, std::uint64_t> uploads_applied_;
  std::map<int, std::vector<PendingReading>> pending_;
  std::map<int, WhiteSpaceModel> model_cache_;
  /// Serialized form of the entry in model_cache_; erased alongside it.
  std::map<int, std::string> descriptor_cache_;
  DatabaseStats stats_;
};

}  // namespace waldo::core
