// The on-device White Space Detector (Section 3.3). Low-cost hardware is
// noisy, so the detector streams readings and only commits to a value once
// it is stable: readings outside the 5th..95th percentile are discarded,
// the rest are averaged, and the estimate converges when the span of the
// 90 % confidence interval of the mean drops below the sensitivity
// parameter alpha (dB).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace waldo::core {

struct DetectorConfig {
  double alpha_db = 0.5;           ///< CI-span convergence threshold
  double confidence = 0.90;        ///< CI level
  double outlier_low_quantile = 0.05;
  double outlier_high_quantile = 0.95;
  std::size_t min_samples = 5;     ///< refuse to converge earlier
  std::size_t max_samples = 500;   ///< mobility guard: give up after this
};

/// Streaming convergence filter for one channel's RSS estimate.
class ConvergenceFilter {
 public:
  explicit ConvergenceFilter(DetectorConfig config = {});

  /// Feeds one reading. Returns true once converged (and stays true).
  bool ingest(double rss_dbm);

  [[nodiscard]] bool converged() const noexcept { return converged_; }
  /// True when max_samples was hit without convergence (mobile scenario).
  [[nodiscard]] bool exhausted() const noexcept;

  /// Trimmed-mean estimate over the accepted readings. Requires at least
  /// one ingested reading.
  [[nodiscard]] double estimate_dbm() const;
  /// Current span of the confidence interval of the mean, dB.
  [[nodiscard]] double ci_span_db() const;
  [[nodiscard]] std::size_t samples_seen() const noexcept {
    return readings_.size();
  }

  void reset();

  [[nodiscard]] const DetectorConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Readings surviving the percentile trim.
  [[nodiscard]] std::vector<double> trimmed() const;

  DetectorConfig config_;
  std::vector<double> readings_;
  bool converged_ = false;
};

/// Two-sided normal critical value for a `confidence` interval (e.g.
/// 1.645 at 90 %). Exposed for tests.
[[nodiscard]] double normal_critical_value(double confidence);

}  // namespace waldo::core
