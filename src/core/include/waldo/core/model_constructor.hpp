// The Model Constructor (Section 3.2): centrally labels a campaign dataset
// with Algorithm 1, identifies localities with k-means over reading
// locations, and trains one compact classifier per locality — collapsing
// single-class localities to constant labels.
#pragma once

#include <cstdint>
#include <string>

#include "waldo/campaign/labeling.hpp"
#include "waldo/campaign/measurement.hpp"
#include "waldo/core/model.hpp"
#include "waldo/ml/svm.hpp"

namespace waldo::core {

struct ModelConstructorConfig {
  /// Number of localities (paper evaluates k in {1, 3, 5}; 1 disables
  /// clustering).
  std::size_t num_localities = 3;
  /// Classifier family for non-constant localities.
  std::string classifier = "svm";
  /// Paper's feature axis: 1 = location only ... 4 = + AFT.
  int num_features = 3;
  /// Optional per-locality training-row cap (0 = no cap); evaluation-cost
  /// knob for wide sweeps, never applied at prediction time.
  std::size_t max_train_samples = 0;
  /// SVM hyperparameters when classifier == "svm".
  ml::SvmConfig svm;
  std::uint64_t seed = 23;
  /// Worker threads for model construction (0 = all hardware threads,
  /// 1 = serial). The k per-locality classifiers train concurrently and
  /// the k-means assignment step fans out per reading. Per-locality
  /// randomness (the max_train_samples subsample) is seeded from
  /// (seed + 1, locality index), so the serialized model is byte-identical
  /// for every thread count. See docs/CONCURRENCY.md.
  unsigned threads = 0;
};

class ModelConstructor {
 public:
  explicit ModelConstructor(ModelConstructorConfig config = {})
      : config_(std::move(config)) {}

  [[nodiscard]] const ModelConstructorConfig& config() const noexcept {
    return config_;
  }

  /// Builds a model from a dataset and its Algorithm 1 labels (parallel to
  /// `data.readings`).
  [[nodiscard]] WhiteSpaceModel build(const campaign::ChannelDataset& data,
                                      std::span<const int> labels) const;

  /// Convenience: labels the dataset with Algorithm 1, then builds.
  [[nodiscard]] WhiteSpaceModel build_with_labeling(
      const campaign::ChannelDataset& data,
      const campaign::LabelingConfig& labeling = {}) const;

 private:
  ModelConstructorConfig config_;
};

}  // namespace waldo::core
