// The White Space Network Protocol of Figure 8: the wire format a mobile
// WSD speaks to the central spectrum database. Four request/response pairs
// cover the system's online phase — model download (Local Model Parameters
// Updater) and measurement upload (Global Model Updater) — over any byte
// transport (the reproduction's tests run it over a lambda; a deployment
// would run it over TCP/HTTP).
//
// Wire format: a one-line header `WSNP/1 <type> <body-bytes>` followed by
// `\n` and the body. Bodies are line-oriented text, matching the model
// descriptors they carry.
#pragma once

#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "waldo/campaign/measurement.hpp"
#include "waldo/core/database.hpp"

namespace waldo::core {

struct ModelRequest {
  int channel = 0;
  /// Requester location; lets the server pick the covering model (and,
  /// in a multi-area deployment, the right region shard).
  geo::EnuPoint location;
};

struct ModelResponse {
  int channel = 0;
  std::string descriptor;  ///< serialized WhiteSpaceModel
};

struct UploadRequest {
  int channel = 0;
  /// Single-token identity (no whitespace) — enforced at encode time.
  std::string contributor;
  /// Client-chosen request identity. A tier that retries uploads (the
  /// cluster router) sets this to a unique value per logical request so
  /// the server can deduplicate redelivered frames; 0 means "no dedup".
  std::uint64_t request_id = 0;
  /// Uploader location — routing metadata. A sharded deployment picks the
  /// owning tile/replicas from it without parsing the readings.
  geo::EnuPoint location;
  std::vector<campaign::Measurement> readings;  ///< I/Q not transmitted
};

struct UploadResponse {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t pending = 0;
  /// Per-channel apply ticket (see core::UploadResult::ticket): where this
  /// batch landed in the channel's total upload order. Lets a client — or
  /// the serving-layer stress test — reconstruct the serial order that a
  /// concurrent server actually applied.
  std::uint64_t ticket = 0;
};

/// Machine-readable failure classes. The split that matters operationally
/// is retryable vs. permanent: a router that sees kNotOwner should fail
/// over to another replica, while resending a kMalformed frame anywhere
/// would fail identically.
enum class ErrorCode : int {
  kUnspecified = 0,     ///< legacy / unclassified (pre-PR-5 peers)
  kMalformed = 1,       ///< frame failed to decode — permanent
  kUnknownChannel = 2,  ///< no data for the channel — permanent
  kBadRequest = 3,      ///< wrong message kind for this endpoint — permanent
  kInternal = 4,        ///< server-side exception — permanent
  kNotOwner = 5,        ///< replica does not own the key — retry elsewhere
  kNotReady = 6,        ///< replica is (re)syncing — retry elsewhere
  kUnavailable = 7,     ///< transient (shutting down, overload) — retry
};

/// True for the codes a client should retry (possibly against a different
/// replica); false for codes where the request itself is at fault.
[[nodiscard]] constexpr bool is_retryable(ErrorCode code) noexcept {
  return code == ErrorCode::kNotOwner || code == ErrorCode::kNotReady ||
         code == ErrorCode::kUnavailable;
}

struct ErrorResponse {
  std::string reason;
  ErrorCode code = ErrorCode::kUnspecified;
  /// The channel the failing request addressed; 0 when the failure is not
  /// channel-specific (e.g. an undecodable frame).
  int channel = 0;
};

using Message = std::variant<ModelRequest, ModelResponse, UploadRequest,
                             UploadResponse, ErrorResponse>;

/// Serialises a message to its wire form.
[[nodiscard]] std::string encode(const Message& message);

/// Parses a wire string. Throws std::runtime_error on malformed input
/// (bad magic, unknown type, truncated body).
[[nodiscard]] Message decode(const std::string& wire);

/// Server side: binds a SpectrumStore behind the protocol. Every request
/// wire string maps to exactly one response wire string; internal errors
/// surface as ErrorResponse rather than exceptions. handle() keeps no
/// per-request state, so it is reentrant: concurrent calls are safe
/// whenever the backing store is thread-safe (service::SpectrumService is;
/// a bare SpectrumDatabase is single-threaded).
class ProtocolServer {
 public:
  explicit ProtocolServer(SpectrumStore& store) : store_(&store) {}

  [[nodiscard]] std::string handle(const std::string& request_wire) const;

 private:
  SpectrumStore* store_;
};

/// Client side: issues typed requests through a caller-supplied transport
/// (a callable taking the request wire and returning the response wire).
class ProtocolClient {
 public:
  using Transport = std::function<std::string(const std::string&)>;

  explicit ProtocolClient(Transport transport)
      : transport_(std::move(transport)) {}

  /// Downloads and deserialises the model for a channel. Throws
  /// std::runtime_error carrying the server's reason on error replies.
  [[nodiscard]] WhiteSpaceModel fetch_model(int channel,
                                            const geo::EnuPoint& location);

  /// Uploads measurements; returns the server's ledger. `location` and
  /// `request_id` ride along as routing/dedup metadata (see
  /// UploadRequest); single-node callers may leave them defaulted.
  UploadResponse upload(int channel, const std::string& contributor,
                        std::span<const campaign::Measurement> readings,
                        const geo::EnuPoint& location = {},
                        std::uint64_t request_id = 0);

 private:
  Transport transport_;
};

}  // namespace waldo::core
