#include "waldo/core/protocol.hpp"

#include <charconv>
#include <iomanip>
#include <locale>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace waldo::core {

namespace {

constexpr const char* kMagic = "WSNP/1";

// Parses a base-10 integer occupying the whole of `text`: empty input,
// non-digit bytes, and trailing junk are all rejected, naming the field.
template <typename Int>
[[nodiscard]] Int parse_int_field(std::string_view text, const char* field) {
  Int value{};
  const char* const begin = text.data();
  const char* const end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error(std::string("WSNP: malformed ") + field +
                             ": '" + std::string(text) + "'");
  }
  return value;
}

// Throws unless nothing but whitespace remains — numeric fields followed
// by trailing garbage ("46 1 2 junk") must not decode successfully.
void require_drained(std::istream& is, const char* what) {
  char stray = '\0';
  if (is >> stray) {
    throw std::runtime_error(std::string("WSNP: trailing garbage after ") +
                             what);
  }
}

[[nodiscard]] const char* type_name(const Message& m) {
  struct Visitor {
    const char* operator()(const ModelRequest&) { return "model_request"; }
    const char* operator()(const ModelResponse&) { return "model_response"; }
    const char* operator()(const UploadRequest&) { return "upload_request"; }
    const char* operator()(const UploadResponse&) {
      return "upload_response";
    }
    const char* operator()(const ErrorResponse&) { return "error"; }
  };
  return std::visit(Visitor{}, m);
}

[[nodiscard]] std::string encode_body(const Message& m) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::setprecision(17);
  struct Visitor {
    std::ostringstream& os;
    void operator()(const ModelRequest& r) {
      os << r.channel << " " << r.location.east_m << " "
         << r.location.north_m << "\n";
    }
    void operator()(const ModelResponse& r) {
      // Length-prefixed: binary descriptors may contain any byte value,
      // so the old "rest of the body" framing is replaced by an explicit
      // byte count on the first line.
      os << r.channel << " " << r.descriptor.size() << "\n" << r.descriptor;
    }
    void operator()(const UploadRequest& r) {
      if (r.contributor.empty() ||
          r.contributor.find_first_of(" \t\n") != std::string::npos) {
        throw std::invalid_argument(
            "contributor must be a single non-empty token");
      }
      os << r.channel << " " << r.contributor << " " << r.readings.size()
         << " " << r.request_id << " " << r.location.east_m << " "
         << r.location.north_m << "\n";
      for (const campaign::Measurement& m : r.readings) {
        os << m.position.east_m << " " << m.position.north_m << " " << m.raw
           << " " << m.rss_dbm << " " << m.cft_db << " " << m.aft_db << "\n";
      }
    }
    void operator()(const UploadResponse& r) {
      os << r.accepted << " " << r.rejected << " " << r.pending << " "
         << r.ticket << "\n";
    }
    void operator()(const ErrorResponse& r) {
      os << static_cast<int>(r.code) << " " << r.channel << " " << r.reason
         << "\n";
    }
  };
  std::visit(Visitor{os}, m);
  return os.str();
}

[[nodiscard]] Message decode_body(const std::string& type,
                                  const std::string& body) {
  std::istringstream is(body);
  is.imbue(std::locale::classic());
  if (type == "model_request") {
    ModelRequest r;
    if (!(is >> r.channel >> r.location.east_m >> r.location.north_m)) {
      throw std::runtime_error("malformed model_request body");
    }
    require_drained(is, "model_request fields");
    return r;
  }
  if (type == "model_response") {
    // First line is "<channel> <descriptor-bytes>"; the descriptor
    // follows raw (it is binary, so it is never parsed as text here).
    ModelResponse r;
    const auto nl = body.find('\n');
    if (nl == std::string::npos) {
      throw std::runtime_error("malformed model_response body");
    }
    const std::string_view line(body.data(), nl);
    const auto space = line.find(' ');
    if (space == std::string_view::npos) {
      throw std::runtime_error("malformed model_response body");
    }
    r.channel =
        parse_int_field<int>(line.substr(0, space), "model_response channel");
    const auto declared = parse_int_field<std::size_t>(
        line.substr(space + 1), "model_response descriptor length");
    r.descriptor = body.substr(nl + 1);
    if (r.descriptor.size() != declared) {
      throw std::runtime_error("WSNP: descriptor length mismatch");
    }
    return r;
  }
  if (type == "upload_request") {
    UploadRequest r;
    std::size_t count = 0;
    if (!(is >> r.channel >> r.contributor >> count >> r.request_id >>
          r.location.east_m >> r.location.north_m)) {
      throw std::runtime_error("malformed upload_request body");
    }
    // Each reading occupies at least a dozen body bytes; a count the body
    // cannot possibly hold is a malformed (or hostile) frame, not a reason
    // to attempt a giant allocation.
    if (count > body.size()) {
      throw std::runtime_error("WSNP: malformed upload_request count");
    }
    r.readings.resize(count);
    for (campaign::Measurement& m : r.readings) {
      if (!(is >> m.position.east_m >> m.position.north_m >> m.raw >>
            m.rss_dbm >> m.cft_db >> m.aft_db)) {
        throw std::runtime_error("truncated upload_request body");
      }
    }
    require_drained(is, "upload_request readings");
    return r;
  }
  if (type == "upload_response") {
    UploadResponse r;
    if (!(is >> r.accepted >> r.rejected >> r.pending >> r.ticket)) {
      throw std::runtime_error("malformed upload_response body");
    }
    require_drained(is, "upload_response fields");
    return r;
  }
  if (type == "error") {
    // "<code> <channel> <reason...>". Legacy (pre-code) error bodies were
    // the bare reason line; if the first token is not an integer, fall
    // back to treating the whole line as the reason with kUnspecified.
    ErrorResponse r;
    std::string line;
    std::getline(is, line);
    std::istringstream fields(line);
    fields.imbue(std::locale::classic());
    int code = 0;
    if (fields >> code >> r.channel) {
      r.code = static_cast<ErrorCode>(code);
      std::getline(fields >> std::ws, r.reason);
    } else {
      r.reason = line;
      r.code = ErrorCode::kUnspecified;
      r.channel = 0;
    }
    return r;
  }
  throw std::runtime_error("unknown WSNP message type: " + type);
}

}  // namespace

std::string encode(const Message& message) {
  const std::string body = encode_body(message);
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << kMagic << " " << type_name(message) << " " << body.size() << "\n"
     << body;
  return os.str();
}

Message decode(const std::string& wire) {
  const auto header_end = wire.find('\n');
  if (header_end == std::string::npos) {
    throw std::runtime_error("WSNP: missing header line");
  }
  std::istringstream header(wire.substr(0, header_end));
  header.imbue(std::locale::classic());
  std::string magic, type;
  std::string length_token;
  if (!(header >> magic >> type >> length_token) || magic != kMagic) {
    throw std::runtime_error("WSNP: bad header");
  }
  require_drained(header, "WSNP header");
  const std::size_t length =
      parse_int_field<std::size_t>(length_token, "body length");
  const std::string body = wire.substr(header_end + 1);
  if (body.size() != length) {
    throw std::runtime_error("WSNP: body length mismatch");
  }
  return decode_body(type, body);
}

std::string ProtocolServer::handle(const std::string& request_wire) const {
  Message request;
  try {
    request = decode(request_wire);
  } catch (const std::exception& e) {
    return encode(ErrorResponse{.reason = e.what(),
                                .code = ErrorCode::kMalformed});
  }

  if (const auto* r = std::get_if<ModelRequest>(&request)) {
    try {
      if (!store_->has_channel(r->channel)) {
        return encode(ErrorResponse{
            .reason = "no data for channel " + std::to_string(r->channel),
            .code = ErrorCode::kUnknownChannel,
            .channel = r->channel});
      }
      return encode(ModelResponse{
          .channel = r->channel,
          .descriptor = store_->download_model(r->channel)});
    } catch (const std::exception& e) {
      return encode(ErrorResponse{.reason = e.what(),
                                  .code = ErrorCode::kInternal,
                                  .channel = r->channel});
    }
  }
  if (const auto* r = std::get_if<UploadRequest>(&request)) {
    try {
      const UploadResult result =
          store_->upload_measurements(r->channel, r->readings,
                                      r->contributor);
      return encode(UploadResponse{.accepted = result.accepted,
                                   .rejected = result.rejected,
                                   .pending = result.pending,
                                   .ticket = result.ticket});
    } catch (const std::out_of_range& e) {
      // SpectrumDatabase/SpectrumService throw out_of_range for uploads
      // addressing a channel that was never bootstrapped.
      return encode(ErrorResponse{.reason = e.what(),
                                  .code = ErrorCode::kUnknownChannel,
                                  .channel = r->channel});
    } catch (const std::exception& e) {
      return encode(ErrorResponse{.reason = e.what(),
                                  .code = ErrorCode::kInternal,
                                  .channel = r->channel});
    }
  }
  return encode(
      ErrorResponse{.reason = "server only accepts request messages",
                    .code = ErrorCode::kBadRequest});
}

WhiteSpaceModel ProtocolClient::fetch_model(int channel,
                                            const geo::EnuPoint& location) {
  const Message reply = decode(transport_(
      encode(ModelRequest{.channel = channel, .location = location})));
  if (const auto* error = std::get_if<ErrorResponse>(&reply)) {
    throw std::runtime_error("WSNP error: " + error->reason);
  }
  const auto* response = std::get_if<ModelResponse>(&reply);
  if (response == nullptr) {
    throw std::runtime_error("WSNP: unexpected reply to model request");
  }
  return WhiteSpaceModel::deserialize(response->descriptor);
}

UploadResponse ProtocolClient::upload(
    int channel, const std::string& contributor,
    std::span<const campaign::Measurement> readings,
    const geo::EnuPoint& location, std::uint64_t request_id) {
  UploadRequest request;
  request.channel = channel;
  request.contributor = contributor;
  request.request_id = request_id;
  request.location = location;
  request.readings.assign(readings.begin(), readings.end());
  const Message reply = decode(transport_(encode(request)));
  if (const auto* error = std::get_if<ErrorResponse>(&reply)) {
    throw std::runtime_error("WSNP error: " + error->reason);
  }
  const auto* response = std::get_if<UploadResponse>(&reply);
  if (response == nullptr) {
    throw std::runtime_error("WSNP: unexpected reply to upload request");
  }
  return *response;
}

}  // namespace waldo::core
