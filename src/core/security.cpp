#include "waldo/core/security.hpp"

#include <random>
#include <stdexcept>

namespace waldo::core {

std::vector<campaign::Measurement> forge_uploads(const AttackConfig& config) {
  if (config.target_area.width_m() <= 0.0 ||
      config.target_area.height_m() <= 0.0) {
    throw std::invalid_argument("attack target area must have positive area");
  }
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> ue(config.target_area.min_east_m,
                                            config.target_area.max_east_m);
  std::uniform_real_distribution<double> un(config.target_area.min_north_m,
                                            config.target_area.max_north_m);
  std::normal_distribution<double> jitter(0.0, 0.5);  // plausible-looking

  std::vector<campaign::Measurement> out;
  out.reserve(config.num_reports);
  for (std::size_t i = 0; i < config.num_reports; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{ue(rng), un(rng)};
    m.rss_dbm = config.forged_rss_dbm + jitter(rng);
    // A naive attacker forges spectral features consistent with the claim.
    m.cft_db = m.rss_dbm - 11.3;
    m.aft_db = m.rss_dbm - 20.0;
    out.push_back(m);
  }
  return out;
}

SecureUpdater::SubmitResult SecureUpdater::submit(
    SpectrumDatabase& database, int channel, const std::string& contributor,
    std::span<const campaign::Measurement> readings) {
  ContributorRecord& rec =
      records_.try_emplace(contributor,
                           ContributorRecord{
                               .reputation = policy_.initial_reputation})
          .first->second;

  SubmitResult result;
  if (rec.quarantined) {
    result.quarantined = true;
    result.rejected = readings.size();
    return result;
  }

  const SpectrumDatabase::UploadResult upload =
      database.upload_measurements(channel, readings, contributor);
  result.accepted = upload.accepted;
  result.rejected = upload.rejected;
  result.pending = upload.pending;

  ++rec.batches;
  rec.readings_accepted += upload.accepted;
  rec.readings_rejected += upload.rejected;
  const std::size_t total = upload.accepted + upload.rejected;
  if (total > 0) {
    const double batch_score =
        static_cast<double>(upload.accepted) / static_cast<double>(total);
    rec.reputation = (1.0 - policy_.smoothing) * rec.reputation +
                     policy_.smoothing * batch_score;
  }
  if (rec.reputation < policy_.quarantine_threshold) {
    rec.quarantined = true;
    // Readings this identity parked before tripping the threshold must not
    // linger: a later accomplice could corroborate them into the trusted
    // store, bypassing the quarantine entirely.
    result.purged_pending = database.purge_pending(contributor);
  }
  return result;
}

const ContributorRecord& SecureUpdater::record(
    const std::string& contributor) const {
  const auto it = records_.find(contributor);
  if (it == records_.end()) {
    throw std::out_of_range("unknown contributor: " + contributor);
  }
  return it->second;
}

bool SecureUpdater::is_quarantined(const std::string& contributor) const {
  const auto it = records_.find(contributor);
  return it != records_.end() && it->second.quarantined;
}

}  // namespace waldo::core
