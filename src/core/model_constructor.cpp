#include "waldo/core/model_constructor.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "waldo/core/features.hpp"
#include "waldo/ml/kmeans.hpp"
#include "waldo/ml/metrics.hpp"

namespace waldo::core {

WhiteSpaceModel ModelConstructor::build(const campaign::ChannelDataset& data,
                                        std::span<const int> labels) const {
  if (data.readings.empty()) {
    throw std::invalid_argument("cannot build a model from an empty dataset");
  }
  if (labels.size() != data.readings.size()) {
    throw std::invalid_argument("labels / readings size mismatch");
  }

  // Localities from reading locations only.
  ml::Matrix locations(data.readings.size(), 2);
  for (std::size_t i = 0; i < data.readings.size(); ++i) {
    locations(i, 0) = data.readings[i].position.east_m;
    locations(i, 1) = data.readings[i].position.north_m;
  }
  ml::KMeansConfig kmc;
  kmc.k = std::max<std::size_t>(1, config_.num_localities);
  kmc.seed = config_.seed;
  const ml::KMeansResult clusters = ml::kmeans(locations, kmc);
  const std::size_t k = clusters.centroids.rows();

  const ml::Matrix features = build_features(data, config_.num_features);

  std::vector<WhiteSpaceModel::Locality> localities;
  localities.reserve(k);
  std::mt19937_64 rng(config_.seed + 1);

  for (std::size_t c = 0; c < k; ++c) {
    std::vector<std::size_t> member;
    for (std::size_t i = 0; i < data.readings.size(); ++i) {
      if (clusters.assignment[i] == c) member.push_back(i);
    }

    WhiteSpaceModel::Locality loc;
    std::size_t safe = 0;
    for (const std::size_t i : member) safe += labels[i] == ml::kSafe ? 1 : 0;

    if (member.empty() || safe == 0 || safe == member.size()) {
      // Binary locality: no classifier to ship. Empty localities default
      // to the conservative "not safe".
      loc.constant = true;
      loc.constant_label = (!member.empty() && safe == member.size())
                               ? ml::kSafe
                               : ml::kNotSafe;
      localities.push_back(std::move(loc));
      continue;
    }

    if (config_.max_train_samples > 0 &&
        member.size() > config_.max_train_samples) {
      std::shuffle(member.begin(), member.end(), rng);
      member.resize(config_.max_train_samples);
    }

    const ml::Matrix x = features.take_rows(member);
    std::vector<int> y;
    y.reserve(member.size());
    for (const std::size_t i : member) y.push_back(labels[i]);

    std::unique_ptr<ml::Classifier> clf;
    if (config_.classifier == "svm") {
      clf = std::make_unique<ml::Svm>(config_.svm);
    } else {
      clf = make_classifier(config_.classifier);
    }
    clf->fit(x, y);
    loc.classifier = std::move(clf);
    localities.push_back(std::move(loc));
  }

  return WhiteSpaceModel(data.channel, config_.num_features,
                         config_.classifier, clusters.centroids,
                         std::move(localities));
}

WhiteSpaceModel ModelConstructor::build_with_labeling(
    const campaign::ChannelDataset& data,
    const campaign::LabelingConfig& labeling) const {
  const std::vector<geo::EnuPoint> positions = data.positions();
  const std::vector<double> rss = data.rss_values();
  const std::vector<int> labels =
      campaign::label_readings(positions, rss, labeling);
  return build(data, labels);
}

}  // namespace waldo::core
