#include "waldo/core/model_constructor.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "waldo/core/features.hpp"
#include "waldo/ml/kmeans.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/runtime/parallel.hpp"
#include "waldo/runtime/seed.hpp"
#include "waldo/runtime/stage_timer.hpp"

namespace waldo::core {

WhiteSpaceModel ModelConstructor::build(const campaign::ChannelDataset& data,
                                        std::span<const int> labels) const {
  if (data.readings.empty()) {
    throw std::invalid_argument("cannot build a model from an empty dataset");
  }
  if (labels.size() != data.readings.size()) {
    throw std::invalid_argument("labels / readings size mismatch");
  }
  runtime::StageTimer& timer = runtime::StageTimer::global();

  // Localities from reading locations only.
  ml::Matrix locations(data.readings.size(), 2);
  for (std::size_t i = 0; i < data.readings.size(); ++i) {
    locations(i, 0) = data.readings[i].position.east_m;
    locations(i, 1) = data.readings[i].position.north_m;
  }
  ml::KMeansConfig kmc;
  kmc.k = std::max<std::size_t>(1, config_.num_localities);
  kmc.seed = config_.seed;
  kmc.threads = config_.threads;
  ml::KMeansResult clusters;
  {
    const auto timing = timer.scope("model.kmeans", data.readings.size());
    clusters = ml::kmeans(locations, kmc);
  }
  const std::size_t k = clusters.centroids.rows();

  const ml::Matrix features = [&] {
    const auto timing = timer.scope("model.features", data.readings.size());
    return build_features(data, config_.num_features);
  }();

  // Membership lists per locality (cheap, serial).
  std::vector<std::vector<std::size_t>> members(k);
  for (std::size_t i = 0; i < data.readings.size(); ++i) {
    members[clusters.assignment[i]].push_back(i);
  }

  // Per-locality training — k independent classifiers, the pipeline's
  // dominant cost, fanned out across threads. Each locality's subsample
  // shuffle is seeded from (seed + 1, locality index), so the trained
  // model is a pure function of (config, data, labels): thread counts and
  // scheduling cannot change a single byte of the descriptor.
  const auto timing = timer.scope("model.train", k);
  std::vector<WhiteSpaceModel::Locality> localities =
      runtime::parallel_map(k, config_.threads, [&](std::size_t c) {
        std::vector<std::size_t> member = members[c];

        WhiteSpaceModel::Locality loc;
        std::size_t safe = 0;
        for (const std::size_t i : member) {
          safe += labels[i] == ml::kSafe ? 1 : 0;
        }

        if (member.empty() || safe == 0 || safe == member.size()) {
          // Binary locality: no classifier to ship. Empty localities
          // default to the conservative "not safe".
          loc.constant = true;
          loc.constant_label = (!member.empty() && safe == member.size())
                                   ? ml::kSafe
                                   : ml::kNotSafe;
          return loc;
        }

        if (config_.max_train_samples > 0 &&
            member.size() > config_.max_train_samples) {
          std::mt19937_64 rng(runtime::split_seed(config_.seed + 1, c));
          std::shuffle(member.begin(), member.end(), rng);
          member.resize(config_.max_train_samples);
        }

        const ml::Matrix x = features.take_rows(member);
        std::vector<int> y;
        y.reserve(member.size());
        for (const std::size_t i : member) y.push_back(labels[i]);

        std::unique_ptr<ml::Classifier> clf;
        if (config_.classifier == "svm") {
          clf = std::make_unique<ml::Svm>(config_.svm);
        } else {
          clf = make_classifier(config_.classifier);
        }
        clf->fit(x, y);
        loc.classifier = std::move(clf);
        return loc;
      });

  return WhiteSpaceModel(data.channel, config_.num_features,
                         config_.classifier, clusters.centroids,
                         std::move(localities));
}

WhiteSpaceModel ModelConstructor::build_with_labeling(
    const campaign::ChannelDataset& data,
    const campaign::LabelingConfig& labeling) const {
  const std::vector<geo::EnuPoint> positions = data.positions();
  const std::vector<double> rss = data.rss_values();
  const std::vector<int> labels =
      campaign::label_readings(positions, rss, labeling);
  return build(data, labels);
}

}  // namespace waldo::core
