#include "waldo/core/transmitter_locator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace waldo::core {

namespace {

struct Fit {
  double intercept = 0.0;
  double exponent = 0.0;
  double sse = std::numeric_limits<double>::infinity();
};

/// Closed-form least squares of rss = intercept - 10 n log10(d_km) for a
/// candidate transmitter position.
[[nodiscard]] Fit fit_candidate(const geo::EnuPoint& candidate,
                                std::span<const geo::EnuPoint> positions,
                                std::span<const double> rss) {
  const std::size_t n = positions.size();
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d_km =
        std::max(50.0, geo::distance_m(positions[i], candidate)) / 1000.0;
    xs[i] = std::log10(d_km);
    sx += xs[i];
    sy += rss[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * rss[i];
  }
  const auto dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  Fit fit;
  if (std::abs(denom) < 1e-9) return fit;  // degenerate geometry
  const double slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - slope * sx) / dn;
  fit.exponent = -slope / 10.0;
  if (fit.exponent <= 0.5) return fit;  // physically implausible: reject
  fit.sse = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = rss[i] - (fit.intercept + slope * xs[i]);
    fit.sse += e * e;
  }
  return fit;
}

}  // namespace

namespace {

struct SearchResult {
  geo::EnuPoint position;
  Fit fit;
};

/// One full coarse-to-fine search over the given readings.
[[nodiscard]] SearchResult grid_search(std::span<const geo::EnuPoint> positions,
                                       std::span<const double> rss,
                                       const LocatorConfig& config) {
  geo::BoundingBox box = geo::BoundingBox::of(positions);
  box.min_east_m -= config.search_margin_m;
  box.min_north_m -= config.search_margin_m;
  box.max_east_m += config.search_margin_m;
  box.max_north_m += config.search_margin_m;

  geo::EnuPoint best{(box.min_east_m + box.max_east_m) / 2.0,
                     (box.min_north_m + box.max_north_m) / 2.0};
  Fit best_fit;
  double step = config.coarse_step_m;

  // Round 0 scans the whole expanded box; refinements scan a shrinking
  // neighbourhood of the incumbent best at half the pitch.
  double east_lo = box.min_east_m, east_hi = box.max_east_m;
  double north_lo = box.min_north_m, north_hi = box.max_north_m;
  for (std::size_t round = 0; round <= config.refinement_rounds; ++round) {
    for (double e = east_lo; e <= east_hi; e += step) {
      for (double n = north_lo; n <= north_hi; n += step) {
        const Fit fit = fit_candidate(geo::EnuPoint{e, n}, positions, rss);
        if (fit.sse < best_fit.sse) {
          best_fit = fit;
          best = geo::EnuPoint{e, n};
        }
      }
    }
    east_lo = best.east_m - 2.0 * step;
    east_hi = best.east_m + 2.0 * step;
    north_lo = best.north_m - 2.0 * step;
    north_hi = best.north_m + 2.0 * step;
    step /= 2.0;
  }

  return SearchResult{.position = best, .fit = best_fit};
}

}  // namespace

std::optional<TransmitterEstimate> locate_transmitter(
    const campaign::ChannelDataset& data, const LocatorConfig& config) {
  std::vector<geo::EnuPoint> positions;
  std::vector<double> rss;
  for (const campaign::Measurement& m : data.readings) {
    if (m.rss_dbm >= config.min_rss_dbm) {
      positions.push_back(m.position);
      rss.push_back(m.rss_dbm);
    }
  }
  if (positions.size() < config.min_readings) return std::nullopt;

  SearchResult result = grid_search(positions, rss, config);
  if (!std::isfinite(result.fit.sse)) return std::nullopt;

  // Candidate solutions are scored by the median absolute residual over
  // the ORIGINAL reading set: robust to outliers, yet immune to the
  // trivial SSE shrinkage of fitting fewer points.
  const std::vector<geo::EnuPoint> all_positions = positions;
  const std::vector<double> all_rss = rss;
  const auto median_residual = [&](const SearchResult& sr) {
    std::vector<double> res(all_positions.size());
    for (std::size_t i = 0; i < all_positions.size(); ++i) {
      const double d_km =
          std::max(50.0, geo::distance_m(all_positions[i], sr.position)) /
          1000.0;
      const double predicted =
          sr.fit.intercept - 10.0 * sr.fit.exponent * std::log10(d_km);
      res[i] = std::abs(all_rss[i] - predicted);
    }
    std::nth_element(res.begin(), res.begin() + static_cast<std::ptrdiff_t>(
                                      res.size() / 2),
                     res.end());
    return res[res.size() / 2];
  };
  double best_score = median_residual(result);

  // Robust re-fit: drop the worst residuals (obstruction-pocket outliers)
  // and search again.
  for (std::size_t round = 0; round < config.trim_rounds; ++round) {
    const std::size_t keep = static_cast<std::size_t>(
        (1.0 - config.trim_fraction) * static_cast<double>(positions.size()));
    if (keep < config.min_readings) break;
    std::vector<std::size_t> order(positions.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    const auto residual = [&](std::size_t i) {
      const double d_km =
          std::max(50.0, geo::distance_m(positions[i], result.position)) /
          1000.0;
      const double predicted =
          result.fit.intercept -
          10.0 * result.fit.exponent * std::log10(d_km);
      return std::abs(rss[i] - predicted);
    };
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return residual(a) < residual(b);
    });
    std::vector<geo::EnuPoint> kept_pos;
    std::vector<double> kept_rss;
    kept_pos.reserve(keep);
    kept_rss.reserve(keep);
    for (std::size_t k = 0; k < keep; ++k) {
      kept_pos.push_back(positions[order[k]]);
      kept_rss.push_back(rss[order[k]]);
    }
    positions = std::move(kept_pos);
    rss = std::move(kept_rss);
    const SearchResult refined = grid_search(positions, rss, config);
    if (std::isfinite(refined.fit.sse)) {
      const double score = median_residual(refined);
      if (score < best_score) {
        best_score = score;
        result = refined;
      }
    }
  }

  return TransmitterEstimate{
      .position = result.position,
      .path_loss_exponent = result.fit.exponent,
      .intercept_dbm = result.fit.intercept,
      .rmse_db = std::sqrt(result.fit.sse /
                           static_cast<double>(positions.size())),
      .readings_used = positions.size()};
}

}  // namespace waldo::core
