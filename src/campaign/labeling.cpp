#include "waldo/campaign/labeling.hpp"

#include <stdexcept>

#include "waldo/geo/grid_index.hpp"
#include "waldo/ml/metrics.hpp"

namespace waldo::campaign {

std::vector<int> label_readings(std::span<const geo::EnuPoint> positions,
                                std::span<const double> rss_dbm,
                                const LabelingConfig& config) {
  if (positions.size() != rss_dbm.size()) {
    throw std::invalid_argument("label_readings: size mismatch");
  }
  std::vector<int> labels(positions.size(), ml::kSafe);
  if (positions.empty()) return labels;

  const geo::GridIndex index(
      std::vector<geo::EnuPoint>(positions.begin(), positions.end()),
      std::max(1.0, config.separation_m / 4.0));

  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (rss_dbm[i] + config.correction_db <= config.threshold_dbm) continue;
    labels[i] = ml::kNotSafe;
    index.for_each_within(positions[i], config.separation_m,
                          [&labels](std::size_t j) {
                            labels[j] = ml::kNotSafe;
                          });
  }
  return labels;
}

double safe_fraction(std::span<const int> labels) noexcept {
  if (labels.empty()) return 0.0;
  std::size_t safe = 0;
  for (const int l : labels) safe += (l == ml::kSafe) ? 1 : 0;
  return static_cast<double>(safe) / static_cast<double>(labels.size());
}

}  // namespace waldo::campaign
