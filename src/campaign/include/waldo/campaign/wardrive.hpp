// War-driving simulation: drives a calibrated sensor along a route through
// the RF environment and records one Measurement per route point — the
// synthetic stand-in for the paper's 800 km Atlanta collection drives.
#pragma once

#include <span>

#include "waldo/campaign/measurement.hpp"
#include "waldo/geo/drive_path.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/sensors/sensor.hpp"

namespace waldo::campaign {

struct CollectOptions {
  /// Keep the 256 I/Q samples on each Measurement (memory: ~4 kB/reading).
  bool keep_iq = false;
  /// Worker threads for the per-reading sensing fan-out (0 = all hardware
  /// threads). The dataset is byte-identical for every thread count: each
  /// reading's sensing noise is seeded from (channel, route index), not
  /// drawn from a shared sequential engine. See docs/CONCURRENCY.md.
  unsigned threads = 0;
  /// Compute CFT/AFT straight from the synthesized capture spectrum,
  /// skipping the ifft -> fft round trip. The raw reading (and therefore
  /// RSS) is bit-identical either way; CFT/AFT agree with the exact path
  /// within FFT round-trip error (~1e-10 dB, test-enforced at 1e-6 dB).
  /// Ignored when keep_iq is set — keeping the capture requires the
  /// inverse transform anyway, so the exact path is used.
  bool fast_spectral = false;
};

/// Collects one channel sweep along `route` with `sensor` (which must be
/// calibrated). Every reading records the calibrated RSS estimate and the
/// CFT/AFT spectral features computed from the capture. Collection is a
/// pure function of (sensor unit seed, channel, route): re-collecting the
/// same sweep reproduces it exactly.
[[nodiscard]] ChannelDataset collect_channel(
    const rf::Environment& environment, sensors::Sensor& sensor, int channel,
    std::span<const geo::EnuPoint> route, const CollectOptions& options = {});

/// The standard campaign route for an environment: a coverage-seeking
/// drive over the environment's region (paper geometry: 5282 readings,
/// >= 20 m apart, spread over ~700 km^2).
[[nodiscard]] geo::DrivePath standard_route(const rf::Environment& environment,
                                            std::size_t num_readings = 5282,
                                            std::uint64_t seed = 99);

}  // namespace waldo::campaign
