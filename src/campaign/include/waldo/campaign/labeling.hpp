// Algorithm 1 of the paper: a location is NOT safe for white-space
// operation if any reading within the separation distance (6 km for
// portable WSDs) sees power above the decodable-TV threshold (-84 dBm).
// The rule is deliberately biased toward incumbent protection: one strong
// reading poisons its whole 6 km neighbourhood, while an isolated weak
// reading is rescued by its non-noisy neighbours.
#pragma once

#include <span>
#include <vector>

#include "waldo/geo/latlon.hpp"
#include "waldo/rf/channels.hpp"

namespace waldo::campaign {

struct LabelingConfig {
  double threshold_dbm = rf::kDecodableThresholdDbm;  ///< -84 dBm
  double separation_m = rf::kSeparationDistanceM;     ///< 6 km
  /// Constant added to every reading before thresholding — the paper's
  /// +7.5 dB antenna correction factor study sets this.
  double correction_db = 0.0;
};

/// Labels every reading kSafe / kNotSafe per Algorithm 1. `positions` and
/// `rss_dbm` must be parallel arrays.
[[nodiscard]] std::vector<int> label_readings(
    std::span<const geo::EnuPoint> positions, std::span<const double> rss_dbm,
    const LabelingConfig& config = {});

/// Fraction of readings labeled kSafe — the channel's white-space
/// availability under a given labeling.
[[nodiscard]] double safe_fraction(std::span<const int> labels) noexcept;

}  // namespace waldo::campaign
