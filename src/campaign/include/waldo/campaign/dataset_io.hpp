// CSV round-trip for channel datasets (without I/Q payloads) so campaigns
// can be archived and re-analysed without re-simulating.
#pragma once

#include <iosfwd>
#include <string>

#include "waldo/campaign/measurement.hpp"

namespace waldo::campaign {

/// Writes `east_m,north_m,raw,rss_dbm,cft_db,aft_db,true_rss_dbm` rows with
/// a header carrying channel and sensor name.
void write_csv(std::ostream& out, const ChannelDataset& dataset);
void write_csv_file(const std::string& path, const ChannelDataset& dataset);

/// Reads a dataset written by write_csv. Throws std::runtime_error on
/// malformed input.
[[nodiscard]] ChannelDataset read_csv(std::istream& in);
[[nodiscard]] ChannelDataset read_csv_file(const std::string& path);

}  // namespace waldo::campaign
