// Measurement records — what one war-driving reading consists of in the
// paper: GPS location, a calibrated signal-strength reading, and 256 I/Q
// samples (here kept optionally, with the two DFT features the I/Q exists
// to provide precomputed at collection time).
#pragma once

#include <string>
#include <vector>

#include "waldo/dsp/fft.hpp"
#include "waldo/geo/latlon.hpp"

namespace waldo::campaign {

struct Measurement {
  geo::EnuPoint position;
  double raw = 0.0;            ///< raw device-unit reading
  double rss_dbm = 0.0;        ///< calibrated channel-power estimate
  double cft_db = 0.0;         ///< central DFT bin power (CFT feature)
  double aft_db = 0.0;         ///< mean central 15 % DFT bins (AFT feature)
  double true_rss_dbm = 0.0;   ///< environment ground truth (validation only)
  /// Raw capture; empty unless the collector was asked to keep I/Q.
  std::vector<dsp::cplx> iq;
};

/// All readings of one sensor on one channel.
struct ChannelDataset {
  int channel = 0;
  std::string sensor_name;
  std::vector<Measurement> readings;

  [[nodiscard]] std::size_t size() const noexcept { return readings.size(); }

  [[nodiscard]] std::vector<geo::EnuPoint> positions() const;
  [[nodiscard]] std::vector<double> rss_values() const;
};

}  // namespace waldo::campaign
