// Campaign-independent regulatory ground truth. Algorithm 1 labels depend
// on which points a drive happened to sample; for validating detection
// systems (Fig. 4's "spectrum analyzer ground truth" role) we also need the
// label field itself: a location is truly not safe iff the TV signal is
// decodable anywhere within the separation distance. Computed once per
// channel by thresholding the environment's true RSS on a fine grid and
// dilating by the separation radius.
#pragma once

#include <memory>
#include <vector>

#include "waldo/campaign/labeling.hpp"
#include "waldo/rf/environment.hpp"

namespace waldo::campaign {

class GroundTruthLabeler {
 public:
  /// Builds the truth map for one channel. `grid_m` is the sampling pitch
  /// of the decodability field (keep well under the separation distance).
  /// RSS is evaluated at the campaign receiver height plus
  /// `config.correction_db`, mirroring how measured labels are produced.
  GroundTruthLabeler(const rf::Environment& environment, int channel,
                     const LabelingConfig& config = {}, double grid_m = 250.0);

  /// kSafe / kNotSafe at an arbitrary location (nearest grid cell).
  [[nodiscard]] int label(const geo::EnuPoint& p) const noexcept;

  [[nodiscard]] std::vector<int> label_all(
      std::span<const geo::EnuPoint> points) const;

  /// Fraction of the region's grid cells that are safe.
  [[nodiscard]] double safe_area_fraction() const noexcept;

  [[nodiscard]] int channel() const noexcept { return channel_; }

 private:
  [[nodiscard]] std::size_t cell_index(std::size_t ix,
                                       std::size_t iy) const noexcept {
    return iy * nx_ + ix;
  }

  int channel_ = 0;
  geo::BoundingBox region_;
  double grid_m_ = 250.0;
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<int> labels_;  // grid of kSafe / kNotSafe
};

}  // namespace waldo::campaign
