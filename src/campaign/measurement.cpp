#include "waldo/campaign/measurement.hpp"

namespace waldo::campaign {

std::vector<geo::EnuPoint> ChannelDataset::positions() const {
  std::vector<geo::EnuPoint> out;
  out.reserve(readings.size());
  for (const Measurement& m : readings) out.push_back(m.position);
  return out;
}

std::vector<double> ChannelDataset::rss_values() const {
  std::vector<double> out;
  out.reserve(readings.size());
  for (const Measurement& m : readings) out.push_back(m.rss_dbm);
  return out;
}

}  // namespace waldo::campaign
