#include "waldo/campaign/truth.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "waldo/ml/metrics.hpp"

namespace waldo::campaign {

GroundTruthLabeler::GroundTruthLabeler(const rf::Environment& environment,
                                       int channel,
                                       const LabelingConfig& config,
                                       double grid_m)
    : channel_(channel), grid_m_(grid_m) {
  if (grid_m <= 0.0 || grid_m > config.separation_m / 2.0) {
    throw std::invalid_argument(
        "truth grid pitch must be positive and well under the separation "
        "distance");
  }
  // The decodability field must extend one separation radius beyond the
  // region so dilation at the edges is correct.
  const geo::BoundingBox& r = environment.config().region;
  region_ = geo::BoundingBox{r.min_east_m - config.separation_m,
                             r.min_north_m - config.separation_m,
                             r.max_east_m + config.separation_m,
                             r.max_north_m + config.separation_m};
  nx_ = static_cast<std::size_t>(region_.width_m() / grid_m_) + 2;
  ny_ = static_cast<std::size_t>(region_.height_m() / grid_m_) + 2;

  std::vector<char> decodable(nx_ * ny_, 0);
  for (std::size_t iy = 0; iy < ny_; ++iy) {
    for (std::size_t ix = 0; ix < nx_; ++ix) {
      const geo::EnuPoint p{
          region_.min_east_m + static_cast<double>(ix) * grid_m_,
          region_.min_north_m + static_cast<double>(iy) * grid_m_};
      const double rss =
          environment.true_rss_dbm(channel, p) + config.correction_db;
      decodable[cell_index(ix, iy)] = rss > config.threshold_dbm ? 1 : 0;
    }
  }

  // Dilate the decodable set by the separation radius: a cell is not safe
  // if any decodable cell lies within it. Precompute the disk offsets.
  const auto radius_cells =
      static_cast<std::ptrdiff_t>(std::ceil(config.separation_m / grid_m_));
  std::vector<std::pair<std::ptrdiff_t, std::ptrdiff_t>> disk;
  const double r2 = (config.separation_m / grid_m_) *
                    (config.separation_m / grid_m_);
  for (std::ptrdiff_t dy = -radius_cells; dy <= radius_cells; ++dy) {
    for (std::ptrdiff_t dx = -radius_cells; dx <= radius_cells; ++dx) {
      if (static_cast<double>(dx * dx + dy * dy) <= r2) disk.emplace_back(dx, dy);
    }
  }

  labels_.assign(nx_ * ny_, ml::kSafe);
  for (std::size_t iy = 0; iy < ny_; ++iy) {
    for (std::size_t ix = 0; ix < nx_; ++ix) {
      if (!decodable[cell_index(ix, iy)]) continue;
      for (const auto& [dx, dy] : disk) {
        const auto jx = static_cast<std::ptrdiff_t>(ix) + dx;
        const auto jy = static_cast<std::ptrdiff_t>(iy) + dy;
        if (jx < 0 || jy < 0 || jx >= static_cast<std::ptrdiff_t>(nx_) ||
            jy >= static_cast<std::ptrdiff_t>(ny_)) {
          continue;
        }
        labels_[cell_index(static_cast<std::size_t>(jx),
                           static_cast<std::size_t>(jy))] = ml::kNotSafe;
      }
    }
  }
}

int GroundTruthLabeler::label(const geo::EnuPoint& p) const noexcept {
  const double fx = (p.east_m - region_.min_east_m) / grid_m_;
  const double fy = (p.north_m - region_.min_north_m) / grid_m_;
  const auto ix = static_cast<std::size_t>(std::clamp(
      fx, 0.0, static_cast<double>(nx_ - 1)));
  const auto iy = static_cast<std::size_t>(std::clamp(
      fy, 0.0, static_cast<double>(ny_ - 1)));
  return labels_[cell_index(ix, iy)];
}

std::vector<int> GroundTruthLabeler::label_all(
    std::span<const geo::EnuPoint> points) const {
  std::vector<int> out;
  out.reserve(points.size());
  for (const geo::EnuPoint& p : points) out.push_back(label(p));
  return out;
}

double GroundTruthLabeler::safe_area_fraction() const noexcept {
  if (labels_.empty()) return 0.0;
  std::size_t safe = 0;
  for (const int l : labels_) safe += l == ml::kSafe ? 1 : 0;
  return static_cast<double>(safe) / static_cast<double>(labels_.size());
}

}  // namespace waldo::campaign
