#include "waldo/campaign/dataset_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace waldo::campaign {

void write_csv(std::ostream& out, const ChannelDataset& dataset) {
  out << "# waldo-dataset v1 channel=" << dataset.channel
      << " sensor=" << dataset.sensor_name << "\n";
  out << "east_m,north_m,raw,rss_dbm,cft_db,aft_db,true_rss_dbm\n";
  // max_digits10 (17) is the round-trip guarantee: 12 significant digits
  // silently perturb doubles on write→read, breaking the repo's
  // bit-identical golden-hash contracts.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const Measurement& m : dataset.readings) {
    out << m.position.east_m << ',' << m.position.north_m << ',' << m.raw
        << ',' << m.rss_dbm << ',' << m.cft_db << ',' << m.aft_db << ','
        << m.true_rss_dbm << '\n';
  }
}

void write_csv_file(const std::string& path, const ChannelDataset& dataset) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_csv(out, dataset);
}

ChannelDataset read_csv(std::istream& in) {
  ChannelDataset ds;
  std::string line;
  if (!std::getline(in, line) || line.rfind("# waldo-dataset v1", 0) != 0) {
    throw std::runtime_error("missing waldo-dataset header");
  }
  {
    std::istringstream hdr(line);
    std::string tok;
    while (hdr >> tok) {
      if (tok.rfind("channel=", 0) == 0) ds.channel = std::stoi(tok.substr(8));
      if (tok.rfind("sensor=", 0) == 0) ds.sensor_name = tok.substr(7);
    }
  }
  if (!std::getline(in, line)) {
    throw std::runtime_error("missing column header");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    Measurement m;
    // Each separator must actually be a comma — extracting into a char
    // accepts any byte, which would silently misparse rows written with
    // the wrong delimiter (or shifted columns).
    const auto comma_then = [&row](double& value) {
      char separator = '\0';
      return static_cast<bool>(row >> separator) && separator == ',' &&
             static_cast<bool>(row >> value);
    };
    bool ok = static_cast<bool>(row >> m.position.east_m);
    ok = ok && comma_then(m.position.north_m) && comma_then(m.raw) &&
         comma_then(m.rss_dbm) && comma_then(m.cft_db) &&
         comma_then(m.aft_db) && comma_then(m.true_rss_dbm);
    if (ok) {
      char stray = '\0';
      ok = !(row >> stray);  // no trailing junk after the last column
    }
    if (!ok) {
      throw std::runtime_error("malformed dataset row: " + line);
    }
    ds.readings.push_back(m);
  }
  return ds;
}

ChannelDataset read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return read_csv(in);
}

}  // namespace waldo::campaign
