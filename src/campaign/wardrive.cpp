#include "waldo/campaign/wardrive.hpp"

#include "waldo/dsp/detectors.hpp"
#include "waldo/runtime/parallel.hpp"
#include "waldo/runtime/seed.hpp"
#include "waldo/runtime/stage_timer.hpp"

namespace waldo::campaign {

ChannelDataset collect_channel(const rf::Environment& environment,
                               sensors::Sensor& sensor, int channel,
                               std::span<const geo::EnuPoint> route,
                               const CollectOptions& options) {
  const auto timing = runtime::StageTimer::global().scope(
      "campaign.collect_channel", route.size());

  ChannelDataset ds;
  ds.channel = channel;
  ds.sensor_name = sensor.spec().name;
  ds.readings.resize(route.size());

  // Readings are independent: each derives its sensing noise from the
  // stream (channel, route index), so the sweep is a pure function of the
  // sensor's unit seed and the route — whatever the thread count.
  const auto channel_stream =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(channel));
  // Keeping the capture requires the inverse transform; fast_spectral is
  // only honoured when the time-domain samples are discarded anyway.
  const bool fast = options.fast_spectral && !options.keep_iq;
  // One workspace per lane: a lane is owned by a single executor for the
  // whole loop, so its scratch buffers are reused allocation-free across
  // every reading that lane processes (docs/CONCURRENCY.md).
  std::vector<dsp::CaptureWorkspace> workspaces(
      runtime::parallel_lane_count(route.size(), options.threads));
  runtime::parallel_for_lanes(
      route.size(), options.threads, [&](std::size_t lane, std::size_t i) {
        dsp::CaptureWorkspace& ws = workspaces[lane];
        const geo::EnuPoint& p = route[i];
        const double truth = environment.true_rss_dbm(channel, p);
        const double raw = sensor.sense_channel_into(
            truth, runtime::split_seed(channel_stream, i), ws,
            /*spectrum_only=*/fast);

        Measurement& m = ds.readings[i];
        m.position = p;
        m.raw = raw;
        m.rss_dbm = sensor.calibrated_rss_dbm(raw);
        if (fast) {
          m.cft_db = dsp::central_bin_db_from_spectrum(ws.shifted);
          m.aft_db = dsp::central_band_mean_db_from_spectrum(ws.shifted);
        } else {
          const auto ps = dsp::power_spectrum_shifted_into(ws.time, ws);
          m.cft_db = dsp::central_bin_db_from_power(ps);
          m.aft_db = dsp::central_band_mean_db_from_power(ps);
        }
        m.true_rss_dbm = truth;
        if (options.keep_iq) m.iq = ws.time;
      });
  return ds;
}

geo::DrivePath standard_route(const rf::Environment& environment,
                              std::size_t num_readings, std::uint64_t seed) {
  const geo::BoundingBox& region = environment.config().region;
  geo::DrivePathConfig cfg;
  cfg.region_side_m = std::min(region.width_m(), region.height_m());
  cfg.num_readings = num_readings;
  cfg.seed = seed;
  geo::DrivePath path = geo::generate_drive_path(cfg);
  // The generator works in [0, side]^2; shift onto the region origin.
  for (geo::EnuPoint& p : path.readings) {
    p.east_m += region.min_east_m;
    p.north_m += region.min_north_m;
  }
  return path;
}

}  // namespace waldo::campaign
