#include "waldo/dsp/fft.hpp"

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace waldo::dsp {

namespace {

/// Complex product by the naive formula — the value __muldc3 (the libcall
/// behind std::complex operator*) returns for finite operands, without the
/// non-finite fix-up branches. Every operand in a transform of finite data
/// is finite, so planned and operator* transforms agree bit for bit.
[[nodiscard]] inline cplx mul(const cplx& a, const cplx& b) noexcept {
  return cplx(a.real() * b.real() - a.imag() * b.imag(),
              a.real() * b.imag() + a.imag() * b.real());
}

}  // namespace

void reference_transform(std::span<cplx> a, bool inverse) {
  const std::size_t n = a.size();
  if (!is_pow2(n)) throw std::invalid_argument("FFT size must be 2^k");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * std::numbers::pi / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (cplx& x : a) x *= inv_n;
  }
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_pow2(n)) throw std::invalid_argument("FFT size must be 2^k");
  if (n > (std::size_t{1} << 31)) {
    throw std::invalid_argument("FFT size too large for plan index type");
  }
  // Bit-reversal swap pairs, exactly the pairs the direct loop swaps.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      swaps_.push_back(static_cast<std::uint32_t>(i));
      swaps_.push_back(static_cast<std::uint32_t>(j));
    }
  }
  // Twiddle tables per stage, generated with the direct loop's incremental
  // `w *= wlen` recurrence (NOT cos/sin per entry): every block of a stage
  // restarts the same recurrence, so one table per stage reproduces the
  // direct transform's values exactly.
  forward_.reserve(n > 0 ? n - 1 : 0);
  inverse_.reserve(n > 0 ? n - 1 : 0);
  for (const bool inv : {false, true}) {
    std::vector<cplx>& table = inv ? inverse_ : forward_;
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const double ang = 2.0 * std::numbers::pi / static_cast<double>(len) *
                         (inv ? 1.0 : -1.0);
      const cplx wlen(std::cos(ang), std::sin(ang));
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        table.push_back(w);
        w *= wlen;
      }
    }
  }
}

void FftPlan::run(std::span<cplx> data, const std::vector<cplx>& tw) const {
  cplx* const a = data.data();
  for (std::size_t s = 0; s + 1 < swaps_.size(); s += 2) {
    std::swap(a[swaps_[s]], a[swaps_[s + 1]]);
  }
  std::size_t offset = 0;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const cplx* const stage = tw.data() + offset;
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cplx u = a[i + k];
        const cplx v = mul(a[i + k + half], stage[k]);
        a[i + k] = u + v;
        a[i + k + half] = u - v;
      }
    }
    offset += half;
  }
}

void FftPlan::forward(std::span<cplx> data) const {
  if (data.size() != n_) {
    throw std::invalid_argument("FFT plan size mismatch");
  }
  run(data, forward_);
}

void FftPlan::inverse(std::span<cplx> data) const {
  if (data.size() != n_) {
    throw std::invalid_argument("FFT plan size mismatch");
  }
  run(data, inverse_);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (cplx& x : data) x *= inv_n;
}

const FftPlan& fft_plan(std::size_t n) {
  if (!is_pow2(n)) throw std::invalid_argument("FFT size must be 2^k");
  // One slot per power of two; plans are built once and never freed, so a
  // reference stays valid for the life of the process and the fast path is
  // a single acquire load.
  static std::array<std::atomic<const FftPlan*>, 64> cache{};
  auto& slot = cache[static_cast<std::size_t>(std::countr_zero(n))];
  const FftPlan* plan = slot.load(std::memory_order_acquire);
  if (plan == nullptr) {
    const auto* fresh = new FftPlan(n);
    const FftPlan* expected = nullptr;
    if (slot.compare_exchange_strong(expected, fresh,
                                     std::memory_order_acq_rel)) {
      plan = fresh;
    } else {
      delete fresh;  // another thread won the race
      plan = expected;
    }
  }
  return *plan;
}

void fft_inplace(std::span<cplx> data) { fft_plan(data.size()).forward(data); }

void ifft_inplace(std::span<cplx> data) {
  fft_plan(data.size()).inverse(data);
}

std::vector<cplx> fft(std::span<const cplx> data) {
  std::vector<cplx> out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

std::vector<double> power_spectrum_shifted(std::span<const cplx> data) {
  const std::size_t n = data.size();
  std::vector<cplx> spec = fft(data);
  std::vector<double> power(n);
  const double norm = 1.0 / (static_cast<double>(n) * static_cast<double>(n));
  for (std::size_t k = 0; k < n; ++k) {
    // fftshift: output index n/2 corresponds to DC (bin 0).
    const std::size_t src = (k + n / 2) % n;
    power[k] = std::norm(spec[src]) * norm;
  }
  return power;
}

std::vector<double> hann_window(std::size_t n) {
  std::vector<double> w(n);
  if (n == 1) {
    w[0] = 1.0;
    return w;
  }
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                                 static_cast<double>(i) /
                                 static_cast<double>(n - 1)));
  }
  return w;
}

double mean_power(std::span<const cplx> data) noexcept {
  if (data.empty()) return 0.0;
  double acc = 0.0;
  for (const cplx& x : data) acc += std::norm(x);
  return acc / static_cast<double>(data.size());
}

}  // namespace waldo::dsp
