#include "waldo/dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace waldo::dsp {

namespace {

void transform(std::span<cplx> a, bool inverse) {
  const std::size_t n = a.size();
  if (!is_pow2(n)) throw std::invalid_argument("FFT size must be 2^k");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * std::numbers::pi / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (cplx& x : a) x *= inv_n;
  }
}

}  // namespace

void fft_inplace(std::span<cplx> data) { transform(data, /*inverse=*/false); }

void ifft_inplace(std::span<cplx> data) { transform(data, /*inverse=*/true); }

std::vector<cplx> fft(std::span<const cplx> data) {
  std::vector<cplx> out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

std::vector<double> power_spectrum_shifted(std::span<const cplx> data) {
  const std::size_t n = data.size();
  std::vector<cplx> spec = fft(data);
  std::vector<double> power(n);
  const double norm = 1.0 / (static_cast<double>(n) * static_cast<double>(n));
  for (std::size_t k = 0; k < n; ++k) {
    // fftshift: output index n/2 corresponds to DC (bin 0).
    const std::size_t src = (k + n / 2) % n;
    power[k] = std::norm(spec[src]) * norm;
  }
  return power;
}

std::vector<double> hann_window(std::size_t n) {
  std::vector<double> w(n);
  if (n == 1) {
    w[0] = 1.0;
    return w;
  }
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                                 static_cast<double>(i) /
                                 static_cast<double>(n - 1)));
  }
  return w;
}

double mean_power(std::span<const cplx> data) noexcept {
  if (data.empty()) return 0.0;
  double acc = 0.0;
  for (const cplx& x : data) acc += std::norm(x);
  return acc / static_cast<double>(data.size());
}

}  // namespace waldo::dsp
