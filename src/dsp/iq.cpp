#include "waldo/dsp/iq.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "waldo/rf/channels.hpp"
#include "waldo/rf/units.hpp"

namespace waldo::dsp {

double in_capture_data_fraction(const CaptureConfig& config) noexcept {
  const double lo = config.pilot_offset_hz - config.lower_edge_offset_hz;
  const double hi = lo + config.channel_bandwidth_hz;
  const double half = config.sample_rate_hz / 2.0;
  const double overlap =
      std::max(0.0, std::min(hi, half) - std::max(lo, -half));
  return overlap / config.channel_bandwidth_hz;
}

void synthesize_capture_into(const CaptureConfig& config,
                             double channel_power_dbm, double noise_power_dbm,
                             std::mt19937_64& rng, CaptureWorkspace& ws,
                             bool spectrum_only) {
  const std::size_t n = config.num_samples;
  if (!is_pow2(n)) throw std::invalid_argument("capture size must be 2^k");
  const double df = config.sample_rate_hz / static_cast<double>(n);

  const double channel_mw = rf::dbm_to_mw(channel_power_dbm);
  const double noise_mw = rf::dbm_to_mw(noise_power_dbm);
  const double pilot_share =
      std::pow(10.0, -rf::kPilotBelowChannelDb / 10.0);  // ~0.074
  const double pilot_mw = channel_mw * pilot_share;
  const double data_mw_total = channel_mw * (1.0 - pilot_share);

  // Channel edges relative to the capture centre.
  const double band_lo = config.pilot_offset_hz - config.lower_edge_offset_hz;
  const double band_hi = band_lo + config.channel_bandwidth_hz;

  // Count data bins inside the capture to split the in-capture data power.
  std::size_t data_bins = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double f = (static_cast<double>(k) - static_cast<double>(n) / 2.0) * df;
    if (f >= band_lo && f <= band_hi) ++data_bins;
  }
  const double in_capture_data_mw =
      data_mw_total * in_capture_data_fraction(config);
  const double data_mw_per_bin =
      data_bins > 0 ? in_capture_data_mw / static_cast<double>(data_bins) : 0.0;
  const double noise_mw_per_bin = noise_mw / static_cast<double>(n);

  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> uphase(0.0,
                                                2.0 * std::numbers::pi);
  const double dn = static_cast<double>(n);

  // Build the fftshift-ordered spectrum (bin n/2 = capture centre).
  std::vector<cplx>& spec_shifted = ws.shifted;
  spec_shifted.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double f = (static_cast<double>(k) - dn / 2.0) * df;
    double bin_mw = noise_mw_per_bin;
    if (f >= band_lo && f <= band_hi) bin_mw += data_mw_per_bin;
    const double sigma = dn * std::sqrt(bin_mw / 2.0);
    spec_shifted[k] = cplx(sigma * gauss(rng), sigma * gauss(rng));
  }
  // Pilot line in the bin nearest the pilot offset, with a random phase.
  if (pilot_mw > 0.0) {
    const double kf = config.pilot_offset_hz / df + dn / 2.0;
    const auto kpilot = static_cast<std::size_t>(
        std::clamp(std::llround(kf), 0LL, static_cast<long long>(n - 1)));
    const double phi = uphase(rng);
    spec_shifted[kpilot] +=
        dn * std::sqrt(pilot_mw) * cplx(std::cos(phi), std::sin(phi));
  }
  if (spectrum_only) return;

  // Un-shift and inverse transform to time domain.
  std::vector<cplx>& spec = ws.time;
  spec.resize(n);
  for (std::size_t k = 0; k < n; ++k) spec[(k + n / 2) % n] = spec_shifted[k];
  ifft_inplace(spec);
}

std::vector<cplx> synthesize_capture(const CaptureConfig& config,
                                     double channel_power_dbm,
                                     double noise_power_dbm,
                                     std::mt19937_64& rng) {
  CaptureWorkspace ws;
  synthesize_capture_into(config, channel_power_dbm, noise_power_dbm, rng, ws);
  return std::move(ws.time);
}

}  // namespace waldo::dsp
