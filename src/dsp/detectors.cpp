#include "waldo/dsp/detectors.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "waldo/rf/channels.hpp"
#include "waldo/rf/units.hpp"

namespace waldo::dsp {

namespace {
constexpr double kFloorMw = 1e-22;  // ~ -220 dBm; keeps log10 finite
}

double energy_detector_dbm(std::span<const cplx> capture) {
  return rf::mw_to_dbm(std::max(mean_power(capture), kFloorMw));
}

double pilot_band_power_dbm(std::span<const cplx> capture,
                            std::size_t pilot_bins) {
  if (pilot_bins == 0 || pilot_bins % 2 == 0) {
    throw std::invalid_argument("pilot_bins must be odd and nonzero");
  }
  const std::vector<double> ps = power_spectrum_shifted(capture);
  const std::size_t n = ps.size();
  if (pilot_bins > n) pilot_bins = n | 1;
  const std::size_t c = n / 2;
  const std::size_t half = pilot_bins / 2;
  double mw = 0.0;
  for (std::size_t k = c - half; k <= c + half; ++k) mw += ps[k];
  return rf::mw_to_dbm(std::max(mw, kFloorMw));
}

double pilot_detector_dbm(std::span<const cplx> capture,
                          std::size_t pilot_bins) {
  return pilot_band_power_dbm(capture, pilot_bins) +
         rf::kPilotToChannelCorrectionDb;
}

double matched_pilot_power_dbm(std::span<const cplx> capture,
                               std::size_t search_bins,
                               std::size_t pilot_bins) {
  if (search_bins == 0 || search_bins % 2 == 0) {
    throw std::invalid_argument("search_bins must be odd and nonzero");
  }
  if (pilot_bins == 0 || pilot_bins % 2 == 0) {
    throw std::invalid_argument("pilot_bins must be odd and nonzero");
  }
  const std::vector<double> ps = power_spectrum_shifted(capture);
  const std::size_t n = ps.size();
  const std::size_t c = n / 2;
  const std::size_t search_half = std::min(search_bins / 2, c - 1);
  const std::size_t pilot_half = pilot_bins / 2;
  double best_mw = kFloorMw;
  for (std::size_t k = c - search_half; k <= c + search_half; ++k) {
    double mw = 0.0;
    for (std::size_t j = k - pilot_half; j <= k + pilot_half && j < n; ++j) {
      mw += ps[j];
    }
    best_mw = std::max(best_mw, mw);
  }
  return rf::mw_to_dbm(best_mw);
}

double central_bin_db(std::span<const cplx> capture) {
  const std::vector<double> ps = power_spectrum_shifted(capture);
  return rf::mw_to_dbm(std::max(ps[ps.size() / 2], kFloorMw));
}

double central_band_mean_db(std::span<const cplx> capture, double fraction) {
  const std::vector<double> ps = power_spectrum_shifted(capture);
  const std::size_t n = ps.size();
  const auto span_bins = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(n)));
  const std::size_t start = (n - span_bins) / 2;
  double mw = 0.0;
  for (std::size_t k = start; k < start + span_bins; ++k) mw += ps[k];
  mw /= static_cast<double>(span_bins);
  return rf::mw_to_dbm(std::max(mw, kFloorMw));
}

}  // namespace waldo::dsp
