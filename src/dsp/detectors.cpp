#include "waldo/dsp/detectors.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "waldo/rf/channels.hpp"
#include "waldo/rf/units.hpp"

namespace waldo::dsp {

namespace {

constexpr double kFloorMw = 1e-22;  // ~ -220 dBm; keeps log10 finite

[[nodiscard]] double pilot_band_mw(std::span<const double> ps,
                                   std::size_t pilot_bins) {
  if (pilot_bins == 0 || pilot_bins % 2 == 0) {
    throw std::invalid_argument("pilot_bins must be odd and nonzero");
  }
  const std::size_t n = ps.size();
  if (pilot_bins > n) pilot_bins = n | 1;
  const std::size_t c = n / 2;
  const std::size_t half = pilot_bins / 2;
  double mw = 0.0;
  for (std::size_t k = c - half; k <= c + half; ++k) mw += ps[k];
  return mw;
}

[[nodiscard]] double central_band_mean_mw(std::span<const double> ps,
                                          double fraction) {
  const std::size_t n = ps.size();
  const auto span_bins = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(n)));
  const std::size_t start = (n - span_bins) / 2;
  double mw = 0.0;
  for (std::size_t k = start; k < start + span_bins; ++k) mw += ps[k];
  return mw / static_cast<double>(span_bins);
}

}  // namespace

double energy_detector_dbm(std::span<const cplx> capture) {
  return rf::mw_to_dbm(std::max(mean_power(capture), kFloorMw));
}

std::span<const double> power_spectrum_shifted_into(
    std::span<const cplx> capture, CaptureWorkspace& ws) {
  const std::size_t n = capture.size();
  ws.scratch.assign(capture.begin(), capture.end());
  fft_inplace(ws.scratch);
  ws.power.resize(n);
  const double norm = 1.0 / (static_cast<double>(n) * static_cast<double>(n));
  for (std::size_t k = 0; k < n; ++k) {
    // fftshift: output index n/2 corresponds to DC (bin 0).
    const std::size_t src = (k + n / 2) % n;
    ws.power[k] = std::norm(ws.scratch[src]) * norm;
  }
  return ws.power;
}

double pilot_band_power_dbm(std::span<const cplx> capture,
                            std::size_t pilot_bins) {
  const std::vector<double> ps = power_spectrum_shifted(capture);
  return rf::mw_to_dbm(std::max(pilot_band_mw(ps, pilot_bins), kFloorMw));
}

double pilot_band_power_dbm(std::span<const cplx> capture,
                            CaptureWorkspace& ws, std::size_t pilot_bins) {
  const auto ps = power_spectrum_shifted_into(capture, ws);
  return rf::mw_to_dbm(std::max(pilot_band_mw(ps, pilot_bins), kFloorMw));
}

double pilot_detector_dbm(std::span<const cplx> capture,
                          std::size_t pilot_bins) {
  return pilot_band_power_dbm(capture, pilot_bins) +
         rf::kPilotToChannelCorrectionDb;
}

double pilot_detector_dbm(std::span<const cplx> capture, CaptureWorkspace& ws,
                          std::size_t pilot_bins) {
  return pilot_band_power_dbm(capture, ws, pilot_bins) +
         rf::kPilotToChannelCorrectionDb;
}

double matched_pilot_power_dbm(std::span<const cplx> capture,
                               std::size_t search_bins,
                               std::size_t pilot_bins) {
  if (search_bins == 0 || search_bins % 2 == 0) {
    throw std::invalid_argument("search_bins must be odd and nonzero");
  }
  if (pilot_bins == 0 || pilot_bins % 2 == 0) {
    throw std::invalid_argument("pilot_bins must be odd and nonzero");
  }
  const std::vector<double> ps = power_spectrum_shifted(capture);
  const std::size_t n = ps.size();
  const std::size_t c = n / 2;
  const std::size_t search_half = std::min(search_bins / 2, c - 1);
  const std::size_t pilot_half = pilot_bins / 2;
  double best_mw = kFloorMw;
  for (std::size_t k = c - search_half; k <= c + search_half; ++k) {
    double mw = 0.0;
    for (std::size_t j = k - pilot_half; j <= k + pilot_half && j < n; ++j) {
      mw += ps[j];
    }
    best_mw = std::max(best_mw, mw);
  }
  return rf::mw_to_dbm(best_mw);
}

double central_bin_db(std::span<const cplx> capture) {
  const std::vector<double> ps = power_spectrum_shifted(capture);
  return rf::mw_to_dbm(std::max(ps[ps.size() / 2], kFloorMw));
}

double central_bin_db(std::span<const cplx> capture, CaptureWorkspace& ws) {
  const auto ps = power_spectrum_shifted_into(capture, ws);
  return rf::mw_to_dbm(std::max(ps[ps.size() / 2], kFloorMw));
}

double central_band_mean_db(std::span<const cplx> capture, double fraction) {
  const std::vector<double> ps = power_spectrum_shifted(capture);
  return rf::mw_to_dbm(std::max(central_band_mean_mw(ps, fraction), kFloorMw));
}

double central_band_mean_db(std::span<const cplx> capture,
                            CaptureWorkspace& ws, double fraction) {
  const auto ps = power_spectrum_shifted_into(capture, ws);
  return rf::mw_to_dbm(std::max(central_band_mean_mw(ps, fraction), kFloorMw));
}

double central_bin_db_from_power(std::span<const double> ps) {
  return rf::mw_to_dbm(std::max(ps[ps.size() / 2], kFloorMw));
}

double central_band_mean_db_from_power(std::span<const double> ps,
                                       double fraction) {
  return rf::mw_to_dbm(std::max(central_band_mean_mw(ps, fraction), kFloorMw));
}

double central_bin_db_from_spectrum(std::span<const cplx> shifted_spectrum) {
  const std::size_t n = shifted_spectrum.size();
  const double norm = 1.0 / (static_cast<double>(n) * static_cast<double>(n));
  const double mw = std::norm(shifted_spectrum[n / 2]) * norm;
  return rf::mw_to_dbm(std::max(mw, kFloorMw));
}

double central_band_mean_db_from_spectrum(
    std::span<const cplx> shifted_spectrum, double fraction) {
  const std::size_t n = shifted_spectrum.size();
  const double norm = 1.0 / (static_cast<double>(n) * static_cast<double>(n));
  const auto span_bins = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(n)));
  const std::size_t start = (n - span_bins) / 2;
  double mw = 0.0;
  for (std::size_t k = start; k < start + span_bins; ++k) {
    mw += std::norm(shifted_spectrum[k]) * norm;
  }
  mw /= static_cast<double>(span_bins);
  return rf::mw_to_dbm(std::max(mw, kFloorMw));
}

}  // namespace waldo::dsp
