// Synthesis of short complex-baseband captures of an ATSC-like TV signal as
// seen by an SDR tuned to a channel's pilot. The capture is built in the
// frequency domain so the band structure (pilot tone, in-channel data
// spectrum, out-of-channel silence, white noise floor) is exact, then
// inverse-transformed to the 256 time-domain I/Q samples the paper's energy
// detector and feature extractor consume.
//
// Amplitude convention: |x|^2 averaged over the capture equals power in
// linear milliwatts, so dsp::mean_power() composes with rf::mw_to_dbm().
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "waldo/dsp/fft.hpp"

namespace waldo::dsp {

struct CaptureConfig {
  std::size_t num_samples = 256;     ///< paper: 256 I/Q samples per reading
  double sample_rate_hz = 2.4e6;     ///< RTL-SDR-class tuner bandwidth
  /// Pilot position relative to the capture centre, Hz. 0 = tuned exactly
  /// to the pilot (the campaign setup).
  double pilot_offset_hz = 0.0;
  /// Fraction of the capture band (above the pilot) occupied by in-channel
  /// data. With the tuner on the pilot (309 kHz above the lower edge), the
  /// lower ~0.89 MHz of a 2.4 MHz window is out of channel.
  double lower_edge_offset_hz = 309'440.559;
  double channel_bandwidth_hz = 6e6;
};

/// Reusable scratch buffers for the capture -> feature hot path. One
/// workspace belongs to exactly one lane of a parallel stage (or one serial
/// caller); after it has warmed to the capture size, every synthesis /
/// detector call through it is allocation-free. See docs/CONCURRENCY.md.
struct CaptureWorkspace {
  /// fftshift-ordered synthesis spectrum (bin n/2 = capture centre). Valid
  /// after synthesize_capture_into until the next call; the --fast-spectral
  /// path reads CFT/AFT straight from it.
  std::vector<cplx> shifted;
  /// Time-domain capture (the I/Q samples of the latest synthesis).
  std::vector<cplx> time;
  /// Detector scratch: FFT working buffer and per-bin power.
  std::vector<cplx> scratch;
  std::vector<double> power;
};

/// Generates one capture of a TV channel.
///
/// `channel_power_dbm`: total 6 MHz channel power at the antenna; pass a
///     very low value (e.g. -200) for a vacant channel.
/// `noise_power_dbm`: total in-capture noise power (thermal + receiver NF).
[[nodiscard]] std::vector<cplx> synthesize_capture(
    const CaptureConfig& config, double channel_power_dbm,
    double noise_power_dbm, std::mt19937_64& rng);

/// Allocation-free variant: synthesizes into `ws.shifted` (frequency
/// domain) and `ws.time` (time domain). Bit-identical to
/// synthesize_capture — same RNG draws in the same order, same arithmetic.
/// With `spectrum_only` the inverse transform is skipped and `ws.time` is
/// left untouched: the RNG stream is consumed identically, so raw readings
/// and subsequent draws are unaffected (the --fast-spectral path uses this
/// to drop the ifft entirely).
void synthesize_capture_into(const CaptureConfig& config,
                             double channel_power_dbm, double noise_power_dbm,
                             std::mt19937_64& rng, CaptureWorkspace& ws,
                             bool spectrum_only = false);

/// In-capture share of the channel's data power: the fraction of the 6 MHz
/// data spectrum that falls inside the capture window, as a linear ratio.
[[nodiscard]] double in_capture_data_fraction(const CaptureConfig& config)
    noexcept;

}  // namespace waldo::dsp
