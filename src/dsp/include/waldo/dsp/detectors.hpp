// Detection statistics over I/Q captures: the classic full-band energy
// detector and the pilot-narrowband detector the paper adopts from V-Scope
// (pilot-band power + 12 dB), which buys ~8 dB of effective noise-floor
// headroom over full-band energy detection.
#pragma once

#include <span>

#include "waldo/dsp/fft.hpp"
#include "waldo/dsp/iq.hpp"

namespace waldo::dsp {

/// Full-capture energy estimate in dBm (mean |x|^2 over the capture).
[[nodiscard]] double energy_detector_dbm(std::span<const cplx> capture);

/// Pilot-band power in dBm: sum of the `pilot_bins` central fftshifted DFT
/// bins (the capture is tuned to the pilot). `pilot_bins` must be odd.
[[nodiscard]] double pilot_band_power_dbm(std::span<const cplx> capture,
                                          std::size_t pilot_bins = 3);

/// The paper's channel-power estimate: pilot-band power plus the 12 dB
/// pilot-to-channel correction.
[[nodiscard]] double pilot_detector_dbm(std::span<const cplx> capture,
                                        std::size_t pilot_bins = 3);

/// Matched-filter pilot search: the maximum pilot-band power over a window
/// of candidate frequency offsets (bins) around the capture centre, dBm.
/// Robust to tuner frequency error, which defeats the fixed central-bin
/// statistic: a pilot `offset` bins away still correlates at full strength
/// with the matching complex exponential. `search_bins` must be odd.
[[nodiscard]] double matched_pilot_power_dbm(std::span<const cplx> capture,
                                             std::size_t search_bins = 9,
                                             std::size_t pilot_bins = 3);

/// Central DFT bin power in dB (relative scale) — the CFT feature.
[[nodiscard]] double central_bin_db(std::span<const cplx> capture);

/// Mean power of the central `fraction` of DFT bins in dB — the AFT
/// feature (paper: central 15 %).
[[nodiscard]] double central_band_mean_db(std::span<const cplx> capture,
                                          double fraction = 0.15);

}  // namespace waldo::dsp
