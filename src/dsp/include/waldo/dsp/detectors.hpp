// Detection statistics over I/Q captures: the classic full-band energy
// detector and the pilot-narrowband detector the paper adopts from V-Scope
// (pilot-band power + 12 dB), which buys ~8 dB of effective noise-floor
// headroom over full-band energy detection.
//
// Every statistic has two forms: the original allocating form (a fresh
// power spectrum per call) and a CaptureWorkspace form that reuses the
// workspace's scratch buffers — bit-identical results, zero steady-state
// heap allocation. The *_from_spectrum variants compute the statistic
// straight from a synthesized fftshift-ordered spectrum, skipping the
// ifft -> fft round trip (the --fast-spectral path; equal to the exact
// path within FFT round-trip error, see tests/test_dsp.cpp).
#pragma once

#include <span>

#include "waldo/dsp/fft.hpp"
#include "waldo/dsp/iq.hpp"

namespace waldo::dsp {

/// Full-capture energy estimate in dBm (mean |x|^2 over the capture).
[[nodiscard]] double energy_detector_dbm(std::span<const cplx> capture);

/// Fills ws.power with the fftshifted per-bin power spectrum of `capture`
/// (semantics of power_spectrum_shifted) using ws.scratch for the FFT;
/// allocation-free once the workspace has warmed to the capture size.
/// Returns a span over ws.power.
std::span<const double> power_spectrum_shifted_into(
    std::span<const cplx> capture, CaptureWorkspace& ws);

/// Pilot-band power in dBm: sum of the `pilot_bins` central fftshifted DFT
/// bins (the capture is tuned to the pilot). `pilot_bins` must be odd.
[[nodiscard]] double pilot_band_power_dbm(std::span<const cplx> capture,
                                          std::size_t pilot_bins = 3);
[[nodiscard]] double pilot_band_power_dbm(std::span<const cplx> capture,
                                          CaptureWorkspace& ws,
                                          std::size_t pilot_bins = 3);

/// The paper's channel-power estimate: pilot-band power plus the 12 dB
/// pilot-to-channel correction.
[[nodiscard]] double pilot_detector_dbm(std::span<const cplx> capture,
                                        std::size_t pilot_bins = 3);
[[nodiscard]] double pilot_detector_dbm(std::span<const cplx> capture,
                                        CaptureWorkspace& ws,
                                        std::size_t pilot_bins = 3);

/// Matched-filter pilot search: the maximum pilot-band power over a window
/// of candidate frequency offsets (bins) around the capture centre, dBm.
/// Robust to tuner frequency error, which defeats the fixed central-bin
/// statistic: a pilot `offset` bins away still correlates at full strength
/// with the matching complex exponential. `search_bins` must be odd.
[[nodiscard]] double matched_pilot_power_dbm(std::span<const cplx> capture,
                                             std::size_t search_bins = 9,
                                             std::size_t pilot_bins = 3);

/// Central DFT bin power in dB (relative scale) — the CFT feature.
[[nodiscard]] double central_bin_db(std::span<const cplx> capture);
[[nodiscard]] double central_bin_db(std::span<const cplx> capture,
                                    CaptureWorkspace& ws);

/// Mean power of the central `fraction` of DFT bins in dB — the AFT
/// feature (paper: central 15 %).
[[nodiscard]] double central_band_mean_db(std::span<const cplx> capture,
                                          double fraction = 0.15);
[[nodiscard]] double central_band_mean_db(std::span<const cplx> capture,
                                          CaptureWorkspace& ws,
                                          double fraction = 0.15);

/// CFT / AFT from an already-computed fftshifted power spectrum (e.g.
/// power_spectrum_shifted_into's output) — lets one spectrum serve both
/// features with bit-identical results.
[[nodiscard]] double central_bin_db_from_power(std::span<const double> ps);
[[nodiscard]] double central_band_mean_db_from_power(std::span<const double> ps,
                                                     double fraction = 0.15);

/// CFT straight from a synthesized fftshift-ordered spectrum (per-bin
/// power |S_k|^2 / N^2), no transform at all.
[[nodiscard]] double central_bin_db_from_spectrum(
    std::span<const cplx> shifted_spectrum);

/// AFT straight from a synthesized fftshift-ordered spectrum.
[[nodiscard]] double central_band_mean_db_from_spectrum(
    std::span<const cplx> shifted_spectrum, double fraction = 0.15);

}  // namespace waldo::dsp
