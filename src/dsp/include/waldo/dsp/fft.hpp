// Minimal in-place radix-2 FFT and spectral helpers. No external DSP
// dependency: feature extraction (CFT/AFT) and the pilot detector need only
// power-of-two transforms over short captures.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace waldo::dsp {

using cplx = std::complex<double>;

/// True if n is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place forward FFT. `data.size()` must be a power of two.
void fft_inplace(std::span<cplx> data);

/// In-place inverse FFT (normalised by 1/N).
void ifft_inplace(std::span<cplx> data);

/// Forward FFT returning a new vector.
[[nodiscard]] std::vector<cplx> fft(std::span<const cplx> data);

/// Per-bin power |X_k|^2 / N^2 of the FFT of `data`, in linear units of the
/// input's power scale, arranged with DC at index N/2 (fftshift order) so
/// bin N/2 is the capture's centre frequency.
[[nodiscard]] std::vector<double> power_spectrum_shifted(
    std::span<const cplx> data);

/// Hann window coefficients.
[[nodiscard]] std::vector<double> hann_window(std::size_t n);

/// Mean |x|^2 of a capture (the classic energy detector statistic) in the
/// input's linear power scale.
[[nodiscard]] double mean_power(std::span<const cplx> data) noexcept;

}  // namespace waldo::dsp
