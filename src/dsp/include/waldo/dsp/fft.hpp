// Minimal in-place radix-2 FFT and spectral helpers. No external DSP
// dependency: feature extraction (CFT/AFT) and the pilot detector need only
// power-of-two transforms over short captures.
//
// Transforms run through a process-wide FftPlan cache: per-size twiddle
// factors and the bit-reversal permutation are computed once per size with
// the exact incremental recurrence the direct loop uses, so planned and
// unplanned transforms are bit-identical while the per-call sin/cos cost
// drops to zero in the steady state.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace waldo::dsp {

using cplx = std::complex<double>;

/// True if n is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Precomputed transform state for one power-of-two size: bit-reversal swap
/// pairs plus forward and inverse twiddle tables. The tables are generated
/// with the same `w *= wlen` recurrence the direct transform runs per
/// block, so applying a plan reproduces the unplanned transform bit for
/// bit (enforced by tests/test_dsp.cpp). Immutable after construction and
/// safe to share across threads.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward transform of `data` (size must equal size()).
  void forward(std::span<cplx> data) const;
  /// In-place inverse transform, normalised by 1/N.
  void inverse(std::span<cplx> data) const;

 private:
  void run(std::span<cplx> data, const std::vector<cplx>& twiddles) const;

  std::size_t n_;
  std::vector<std::uint32_t> swaps_;  ///< flattened (i, j) pairs, i < j
  std::vector<cplx> forward_;  ///< stages len=2,4,..,n_ concatenated
  std::vector<cplx> inverse_;
};

/// The process-wide plan for size `n` (a power of two; throws otherwise).
/// Plans are built once on first request and cached for the life of the
/// process; lookups after that are lock-free loads.
[[nodiscard]] const FftPlan& fft_plan(std::size_t n);

/// In-place forward FFT. `data.size()` must be a power of two.
void fft_inplace(std::span<cplx> data);

/// In-place inverse FFT (normalised by 1/N).
void ifft_inplace(std::span<cplx> data);

/// The direct (non-memoized) transform — the recurrence the plans memoize.
/// Kept as the reference implementation for the bit-identity tests; prefer
/// fft_inplace / ifft_inplace everywhere else.
void reference_transform(std::span<cplx> data, bool inverse);

/// Forward FFT returning a new vector.
[[nodiscard]] std::vector<cplx> fft(std::span<const cplx> data);

/// Per-bin power |X_k|^2 / N^2 of the FFT of `data`, in linear units of the
/// input's power scale, arranged with DC at index N/2 (fftshift order) so
/// bin N/2 is the capture's centre frequency.
[[nodiscard]] std::vector<double> power_spectrum_shifted(
    std::span<const cplx> data);

/// Hann window coefficients.
[[nodiscard]] std::vector<double> hann_window(std::size_t n);

/// Mean |x|^2 of a capture (the classic energy detector statistic) in the
/// input's linear power scale.
[[nodiscard]] double mean_power(std::span<const cplx> data) noexcept;

}  // namespace waldo::dsp
