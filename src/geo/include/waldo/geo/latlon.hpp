// Geographic primitives: WGS-84 coordinates, great-circle distance, and a
// local tangent-plane (ENU) projection good to metro scale (< 50 km).
#pragma once

#include <cmath>
#include <numbers>

namespace waldo::geo {

/// Mean Earth radius in meters (IUGG).
inline constexpr double kEarthRadiusM = 6371008.8;

[[nodiscard]] constexpr double deg_to_rad(double deg) noexcept {
  return deg * std::numbers::pi / 180.0;
}

[[nodiscard]] constexpr double rad_to_deg(double rad) noexcept {
  return rad * 180.0 / std::numbers::pi;
}

/// A WGS-84 geographic coordinate in decimal degrees.
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const LatLon&, const LatLon&) = default;
};

/// A point in a local east-north plane, meters relative to a projection
/// origin.
struct EnuPoint {
  double east_m = 0.0;
  double north_m = 0.0;

  friend bool operator==(const EnuPoint&, const EnuPoint&) = default;
};

/// Great-circle (haversine) distance between two coordinates in meters.
[[nodiscard]] double haversine_m(const LatLon& a, const LatLon& b) noexcept;

/// Euclidean distance between two ENU points in meters.
[[nodiscard]] inline double distance_m(const EnuPoint& a,
                                       const EnuPoint& b) noexcept {
  return std::hypot(a.east_m - b.east_m, a.north_m - b.north_m);
}

/// Equirectangular projection around a fixed origin. Distortion at 25 km
/// from the origin is below 0.1 % at mid latitudes, far below the shadowing
/// decorrelation scale this library cares about.
class LocalProjection {
 public:
  explicit LocalProjection(const LatLon& origin) noexcept
      : origin_(origin), cos_lat0_(std::cos(deg_to_rad(origin.lat_deg))) {}

  [[nodiscard]] const LatLon& origin() const noexcept { return origin_; }

  [[nodiscard]] EnuPoint to_enu(const LatLon& p) const noexcept {
    return EnuPoint{
        .east_m = kEarthRadiusM * cos_lat0_ *
                  deg_to_rad(p.lon_deg - origin_.lon_deg),
        .north_m = kEarthRadiusM * deg_to_rad(p.lat_deg - origin_.lat_deg)};
  }

  [[nodiscard]] LatLon to_latlon(const EnuPoint& p) const noexcept {
    return LatLon{
        .lat_deg = origin_.lat_deg + rad_to_deg(p.north_m / kEarthRadiusM),
        .lon_deg = origin_.lon_deg +
                   rad_to_deg(p.east_m / (kEarthRadiusM * cos_lat0_))};
  }

 private:
  LatLon origin_;
  double cos_lat0_;
};

/// Axis-aligned bounding box in the local ENU plane.
struct BoundingBox {
  double min_east_m = 0.0;
  double min_north_m = 0.0;
  double max_east_m = 0.0;
  double max_north_m = 0.0;

  [[nodiscard]] double width_m() const noexcept {
    return max_east_m - min_east_m;
  }
  [[nodiscard]] double height_m() const noexcept {
    return max_north_m - min_north_m;
  }
  [[nodiscard]] double area_km2() const noexcept {
    return width_m() * height_m() / 1e6;
  }
  [[nodiscard]] bool contains(const EnuPoint& p) const noexcept {
    return p.east_m >= min_east_m && p.east_m <= max_east_m &&
           p.north_m >= min_north_m && p.north_m <= max_north_m;
  }
  /// Grows the box so that `p` is inside it.
  void expand(const EnuPoint& p) noexcept;
  /// Smallest box containing a range of points.
  template <typename Range>
  [[nodiscard]] static BoundingBox of(const Range& points) {
    BoundingBox box{1e18, 1e18, -1e18, -1e18};
    for (const EnuPoint& p : points) box.expand(p);
    return box;
  }
};

}  // namespace waldo::geo
