// Synthetic war-driving path generation. Real spectrum-measurement
// campaigns follow roads, so collected datasets are sparse, corridor-shaped
// and unevenly distributed — properties the paper calls out as the reason
// for choosing compact classifiers. The generator reproduces that geometry:
// a Manhattan-style road grid over the metro area and a coverage-seeking
// random drive on it.
#pragma once

#include <cstdint>
#include <vector>

#include "waldo/geo/latlon.hpp"

namespace waldo::geo {

struct DrivePathConfig {
  /// Side of the (square) metro region, meters. 26.5 km ~ 700 km^2.
  double region_side_m = 26'500.0;
  /// Road grid block size, meters.
  double block_m = 800.0;
  /// Distance between consecutive recorded readings, meters. Must be
  /// > 20 m (shadowing decorrelation distance, Gudmundson).
  double reading_spacing_m = 150.0;
  /// Number of readings to produce (paper: 5282 per channel per sensor).
  std::size_t num_readings = 5282;
  /// Random seed for the coverage-seeking walk.
  std::uint64_t seed = 1;
};

struct DrivePath {
  std::vector<EnuPoint> readings;  ///< one recording position per reading
  double total_length_m = 0.0;     ///< driven distance
  /// Number of distinct road-grid blocks visited (coverage proxy).
  std::size_t blocks_visited = 0;
};

/// Generates a drive path per `cfg`. The walk starts at the region center,
/// moves along grid streets one block at a time, and prefers directions
/// leading to less-visited blocks so that the campaign spreads over the
/// whole region instead of looping near the start.
[[nodiscard]] DrivePath generate_drive_path(const DrivePathConfig& cfg);

/// Greedily thins `points` so that every surviving pair is at least
/// `min_dist_m` apart (order-preserving). Used to enforce the >20 m
/// decorrelation spacing on arbitrary point sets.
[[nodiscard]] std::vector<EnuPoint> thin_by_distance(
    const std::vector<EnuPoint>& points, double min_dist_m);

}  // namespace waldo::geo
