// Uniform-grid spatial index over ENU points. Built once, queried many
// times; radius queries are the hot path of Algorithm 1 labeling (every
// strong reading poisons all readings within 6 km).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "waldo/geo/latlon.hpp"

namespace waldo::geo {

class GridIndex {
 public:
  /// Builds an index over `points`. `cell_size_m` trades memory for query
  /// selectivity; pick it near the typical query radius.
  GridIndex(std::vector<EnuPoint> points, double cell_size_m);

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] double cell_size_m() const noexcept { return cell_size_m_; }
  [[nodiscard]] const std::vector<EnuPoint>& points() const noexcept {
    return points_;
  }

  /// Indices of all points within `radius_m` of `center` (inclusive).
  [[nodiscard]] std::vector<std::size_t> query_radius(
      const EnuPoint& center, double radius_m) const;

  /// Calls `fn(index)` for every point within `radius_m` of `center`.
  void for_each_within(const EnuPoint& center, double radius_m,
                       const std::function<void(std::size_t)>& fn) const;

  /// Index of the nearest point to `center`, or `size()` if empty.
  [[nodiscard]] std::size_t nearest(const EnuPoint& center) const;

  /// Indices of the k nearest points, closest first.
  [[nodiscard]] std::vector<std::size_t> k_nearest(const EnuPoint& center,
                                                   std::size_t k) const;

 private:
  struct CellKey {
    std::int64_t cx;
    std::int64_t cy;
    friend bool operator==(const CellKey&, const CellKey&) = default;
  };
  struct CellKeyHash {
    [[nodiscard]] std::size_t operator()(const CellKey& k) const noexcept {
      const auto h1 = static_cast<std::uint64_t>(k.cx) * 0x9E3779B97F4A7C15ULL;
      const auto h2 = static_cast<std::uint64_t>(k.cy) * 0xC2B2AE3D27D4EB4FULL;
      return static_cast<std::size_t>(h1 ^ (h2 >> 1));
    }
  };

  [[nodiscard]] CellKey cell_of(const EnuPoint& p) const noexcept;

  std::vector<EnuPoint> points_;
  double cell_size_m_;
  std::unordered_map<CellKey, std::vector<std::size_t>, CellKeyHash> cells_;
};

}  // namespace waldo::geo
