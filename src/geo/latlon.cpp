#include "waldo/geo/latlon.hpp"

#include <algorithm>

namespace waldo::geo {

double haversine_m(const LatLon& a, const LatLon& b) noexcept {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusM * std::asin(std::sqrt(std::min(1.0, h)));
}

void BoundingBox::expand(const EnuPoint& p) noexcept {
  min_east_m = std::min(min_east_m, p.east_m);
  min_north_m = std::min(min_north_m, p.north_m);
  max_east_m = std::max(max_east_m, p.east_m);
  max_north_m = std::max(max_north_m, p.north_m);
}

}  // namespace waldo::geo
