#include "waldo/geo/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace waldo::geo {

GridIndex::GridIndex(std::vector<EnuPoint> points, double cell_size_m)
    : points_(std::move(points)), cell_size_m_(cell_size_m) {
  if (cell_size_m <= 0.0) {
    throw std::invalid_argument("GridIndex cell size must be positive");
  }
  for (std::size_t i = 0; i < points_.size(); ++i) {
    cells_[cell_of(points_[i])].push_back(i);
  }
}

GridIndex::CellKey GridIndex::cell_of(const EnuPoint& p) const noexcept {
  return CellKey{
      .cx = static_cast<std::int64_t>(std::floor(p.east_m / cell_size_m_)),
      .cy = static_cast<std::int64_t>(std::floor(p.north_m / cell_size_m_))};
}

void GridIndex::for_each_within(
    const EnuPoint& center, double radius_m,
    const std::function<void(std::size_t)>& fn) const {
  if (radius_m < 0.0) return;
  const CellKey c0 = cell_of(EnuPoint{center.east_m - radius_m,
                                      center.north_m - radius_m});
  const CellKey c1 = cell_of(EnuPoint{center.east_m + radius_m,
                                      center.north_m + radius_m});
  const double r2 = radius_m * radius_m;
  for (std::int64_t cx = c0.cx; cx <= c1.cx; ++cx) {
    for (std::int64_t cy = c0.cy; cy <= c1.cy; ++cy) {
      const auto it = cells_.find(CellKey{cx, cy});
      if (it == cells_.end()) continue;
      for (const std::size_t i : it->second) {
        const double de = points_[i].east_m - center.east_m;
        const double dn = points_[i].north_m - center.north_m;
        if (de * de + dn * dn <= r2) fn(i);
      }
    }
  }
}

std::vector<std::size_t> GridIndex::query_radius(const EnuPoint& center,
                                                 double radius_m) const {
  std::vector<std::size_t> out;
  for_each_within(center, radius_m,
                  [&out](std::size_t i) { out.push_back(i); });
  return out;
}

std::size_t GridIndex::nearest(const EnuPoint& center) const {
  if (points_.empty()) return 0;
  // Expand the search ring until a hit is found, then verify one extra ring
  // (a point in a farther cell can still be closer than one found first).
  double best_d2 = std::numeric_limits<double>::infinity();
  std::size_t best = points_.size();
  for (double radius = cell_size_m_;; radius *= 2.0) {
    for_each_within(center, radius, [&](std::size_t i) {
      const double de = points_[i].east_m - center.east_m;
      const double dn = points_[i].north_m - center.north_m;
      const double d2 = de * de + dn * dn;
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    });
    if (best != points_.size() && best_d2 <= radius * radius) return best;
    if (radius > 1e9) break;  // degenerate: points extremely far away
  }
  // Fall back to a linear scan for pathological layouts.
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double de = points_[i].east_m - center.east_m;
    const double dn = points_[i].north_m - center.north_m;
    const double d2 = de * de + dn * dn;
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

std::vector<std::size_t> GridIndex::k_nearest(const EnuPoint& center,
                                              std::size_t k) const {
  k = std::min(k, points_.size());
  if (k == 0) return {};
  std::vector<std::size_t> candidates;
  for (double radius = cell_size_m_;; radius *= 2.0) {
    candidates = query_radius(center, radius);
    if (candidates.size() >= k || radius > 1e9) break;
  }
  if (candidates.size() < k) {
    candidates.resize(points_.size());
    for (std::size_t i = 0; i < points_.size(); ++i) candidates[i] = i;
  }
  const auto dist2 = [&](std::size_t i) {
    const double de = points_[i].east_m - center.east_m;
    const double dn = points_[i].north_m - center.north_m;
    return de * de + dn * dn;
  };
  std::partial_sort(candidates.begin(), candidates.begin() + static_cast<std::ptrdiff_t>(k),
                    candidates.end(), [&](std::size_t a, std::size_t b) {
                      return dist2(a) < dist2(b);
                    });
  candidates.resize(k);
  return candidates;
}

}  // namespace waldo::geo
