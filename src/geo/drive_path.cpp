#include "waldo/geo/drive_path.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <random>
#include <stdexcept>
#include <unordered_map>

#include "waldo/geo/grid_index.hpp"

namespace waldo::geo {

namespace {

struct Block {
  std::int64_t bx;
  std::int64_t by;
  friend bool operator==(const Block&, const Block&) = default;
};

struct BlockHash {
  [[nodiscard]] std::size_t operator()(const Block& b) const noexcept {
    const auto h1 = static_cast<std::uint64_t>(b.bx) * 0x9E3779B97F4A7C15ULL;
    const auto h2 = static_cast<std::uint64_t>(b.by) * 0xC2B2AE3D27D4EB4FULL;
    return static_cast<std::size_t>(h1 ^ (h2 >> 1));
  }
};

}  // namespace

DrivePath generate_drive_path(const DrivePathConfig& cfg) {
  if (cfg.reading_spacing_m <= 20.0) {
    throw std::invalid_argument(
        "reading spacing must exceed the 20 m shadowing decorrelation "
        "distance");
  }
  if (cfg.block_m <= 0.0 || cfg.region_side_m <= cfg.block_m) {
    throw std::invalid_argument("region must span multiple blocks");
  }

  const auto max_block =
      static_cast<std::int64_t>(cfg.region_side_m / cfg.block_m);
  std::mt19937_64 rng(cfg.seed);
  std::unordered_map<Block, std::uint32_t, BlockHash> visits;

  DrivePath out;
  out.readings.reserve(cfg.num_readings);

  // Current intersection, in block units; start at region center.
  Block cur{max_block / 2, max_block / 2};
  ++visits[cur];
  double leftover_m = 0.0;  // distance carried into the next segment

  static constexpr std::array<std::array<int, 2>, 4> kDirs{
      {{1, 0}, {-1, 0}, {0, 1}, {0, -1}}};

  while (out.readings.size() < cfg.num_readings) {
    // Score each direction by inverse visit count of the target block, with
    // a small uniform floor so the walk is not fully deterministic.
    std::array<double, 4> weight{};
    double total = 0.0;
    for (std::size_t d = 0; d < kDirs.size(); ++d) {
      const Block next{cur.bx + kDirs[d][0], cur.by + kDirs[d][1]};
      if (next.bx < 0 || next.by < 0 || next.bx > max_block ||
          next.by > max_block) {
        weight[d] = 0.0;
        continue;
      }
      const auto it = visits.find(next);
      const double v = (it == visits.end()) ? 0.0 : it->second;
      weight[d] = 1.0 / (1.0 + 4.0 * v) + 0.02;
      total += weight[d];
    }
    std::uniform_real_distribution<double> pick(0.0, total);
    double r = pick(rng);
    std::size_t chosen = 0;
    for (std::size_t d = 0; d < kDirs.size(); ++d) {
      if (r < weight[d]) {
        chosen = d;
        break;
      }
      r -= weight[d];
    }

    const Block next{cur.bx + kDirs[chosen][0], cur.by + kDirs[chosen][1]};
    const EnuPoint from{static_cast<double>(cur.bx) * cfg.block_m,
                        static_cast<double>(cur.by) * cfg.block_m};
    const EnuPoint to{static_cast<double>(next.bx) * cfg.block_m,
                      static_cast<double>(next.by) * cfg.block_m};

    // Emit readings along the segment every reading_spacing_m.
    const double seg_len = distance_m(from, to);
    double pos = cfg.reading_spacing_m - leftover_m;
    while (pos <= seg_len && out.readings.size() < cfg.num_readings) {
      const double t = pos / seg_len;
      out.readings.push_back(
          EnuPoint{from.east_m + t * (to.east_m - from.east_m),
                   from.north_m + t * (to.north_m - from.north_m)});
      pos += cfg.reading_spacing_m;
    }
    leftover_m = seg_len - (pos - cfg.reading_spacing_m);
    out.total_length_m += seg_len;
    cur = next;
    ++visits[cur];
  }

  out.blocks_visited = visits.size();
  return out;
}

std::vector<EnuPoint> thin_by_distance(const std::vector<EnuPoint>& points,
                                       double min_dist_m) {
  std::vector<EnuPoint> kept;
  kept.reserve(points.size());
  // Incremental grid over the kept points; rebuilt lazily in chunks would be
  // faster, but a fresh index per doubling keeps the code simple and the
  // call sites are offline.
  for (const EnuPoint& p : points) {
    bool ok = true;
    for (const EnuPoint& q : kept) {
      if (distance_m(p, q) < min_dist_m) {
        ok = false;
        break;
      }
    }
    if (ok) kept.push_back(p);
  }
  return kept;
}

}  // namespace waldo::geo
