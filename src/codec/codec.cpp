#include "waldo/codec/codec.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace waldo::codec {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

// Varints longer than this cannot encode a 64-bit value.
constexpr std::size_t kMaxVarintBytes = 10;

constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1u);
}

static_assert(std::endian::native == std::endian::little,
              "waldo::codec assumes a little-endian host");

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char byte : data) {
    c = kCrcTable[(c ^ static_cast<std::uint8_t>(byte)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

bool is_binary(std::string_view bytes) noexcept {
  return bytes.size() >= kMagic.size() &&
         bytes.compare(0, kMagic.size(), kMagic) == 0;
}

Writer::Writer() {
  buf_.append(kMagic);
  u64(kFormatVersion);
}

void Writer::u8(std::uint8_t value) {
  buf_.push_back(static_cast<char>(value));
}

void Writer::u64(std::uint64_t value) {
  while (value >= 0x80u) {
    buf_.push_back(static_cast<char>((value & 0x7Fu) | 0x80u));
    value >>= 7;
  }
  buf_.push_back(static_cast<char>(value));
}

void Writer::i64(std::int64_t value) { u64(zigzag(value)); }

void Writer::f64(double value) {
  const auto bits = std::bit_cast<std::uint64_t>(value);
  char raw[8];
  std::memcpy(raw, &bits, 8);
  buf_.append(raw, 8);
}

void Writer::str(std::string_view value) {
  u64(value.size());
  buf_.append(value);
}

void Writer::f64_array(const std::vector<double>& values) {
  u64(values.size());
  for (const double v : values) f64(v);
}

std::string Writer::finish() && {
  const std::uint32_t crc = crc32(buf_);
  char raw[4];
  std::memcpy(raw, &crc, 4);
  buf_.append(raw, 4);
  return std::move(buf_);
}

Reader::Reader(std::string_view descriptor) {
  if (!is_binary(descriptor)) {
    throw Error("bad magic (not a binary descriptor)");
  }
  if (descriptor.size() < kMagic.size() + 1 + 4) {
    throw Error("descriptor truncated (shorter than header + trailer)");
  }
  const std::string_view body =
      descriptor.substr(0, descriptor.size() - 4);
  std::uint32_t stored = 0;
  std::memcpy(&stored, descriptor.data() + body.size(), 4);
  if (crc32(body) != stored) {
    throw Error("CRC mismatch (descriptor corrupted)");
  }
  pos_ = body.data() + kMagic.size();
  end_ = body.data() + body.size();
  const std::uint64_t version = u64();
  if (version != kFormatVersion) {
    throw Error("unsupported format version " + std::to_string(version) +
                " (this build reads v" + std::to_string(kFormatVersion) +
                ")");
  }
}

void Reader::need(std::size_t bytes, const char* what) const {
  if (remaining() < bytes) {
    throw Error(std::string("descriptor truncated reading ") + what);
  }
}

std::uint8_t Reader::u8() {
  need(1, "u8");
  return static_cast<std::uint8_t>(*pos_++);
}

std::uint64_t Reader::u64() {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    need(1, "varint");
    const auto byte = static_cast<std::uint8_t>(*pos_++);
    if (i == kMaxVarintBytes - 1 && byte > 1u) {
      throw Error("varint overflows 64 bits");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7Fu) << (7 * i);
    if ((byte & 0x80u) == 0) return value;
  }
  throw Error("varint longer than 10 bytes");
}

std::int64_t Reader::i64() { return unzigzag(u64()); }

double Reader::f64() {
  need(8, "f64");
  std::uint64_t bits = 0;
  std::memcpy(&bits, pos_, 8);
  pos_ += 8;
  return std::bit_cast<double>(bits);
}

std::string Reader::str() {
  const std::uint64_t len = u64();
  if (len > remaining()) {
    throw Error("string length " + std::to_string(len) +
                " exceeds remaining payload");
  }
  std::string out(pos_, static_cast<std::size_t>(len));
  pos_ += len;
  return out;
}

std::size_t Reader::count(std::size_t min_bytes_per_item) {
  const std::uint64_t n = u64();
  if (min_bytes_per_item == 0) min_bytes_per_item = 1;
  if (n > remaining() / min_bytes_per_item) {
    throw Error("element count " + std::to_string(n) +
                " exceeds remaining payload");
  }
  return static_cast<std::size_t>(n);
}

std::vector<double> Reader::f64_array() {
  const std::size_t n = count(8);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(f64());
  return out;
}

void Reader::expect_done() const {
  if (remaining() != 0) {
    throw Error(std::to_string(remaining()) +
                " trailing payload byte(s) after descriptor");
  }
}

}  // namespace waldo::codec
