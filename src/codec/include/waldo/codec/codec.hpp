// waldo::codec — the binary wire format for model descriptors.
//
// A descriptor is a self-contained container:
//
//   [4-byte magic "WSDB"] [varint format version] [payload...] [CRC32 LE]
//
// The payload is a flat sequence of primitives:
//   - u64: unsigned LEB128 varint (7 bits per byte, LSB first, max 10 bytes)
//   - i64: zigzag-mapped to u64, then varint
//   - f64: the raw IEEE-754 bit pattern, 8 bytes little-endian (bit-exact
//     round trips — no decimal formatting, no locale sensitivity)
//   - str: varint length followed by the raw bytes
//
// The CRC32 trailer (reflected polynomial 0xEDB88320, the zlib/PNG CRC)
// covers everything before it, magic and version included. `Reader`
// validates magic, version, and CRC up front, and every read is bounds-
// checked against the payload — truncated, bit-flipped, or adversarial
// length-prefixed input throws `codec::Error` instead of over-reading or
// allocating unboundedly. See docs/WIRE_FORMAT.md for the full layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace waldo::codec {

/// Thrown on any malformed descriptor: bad magic, unsupported version,
/// CRC mismatch, truncation, or a length prefix the payload cannot hold.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what)
      : std::runtime_error("waldo codec: " + what) {}
};

/// First four bytes of every binary descriptor.
inline constexpr std::string_view kMagic{"WSDB"};

/// Current container format version (the legacy text format is "v0").
inline constexpr std::uint64_t kFormatVersion = 1;

/// CRC32 (reflected 0xEDB88320) of `data`, as used by the trailer.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

/// True if `bytes` starts with the binary-descriptor magic.
[[nodiscard]] bool is_binary(std::string_view bytes) noexcept;

/// Serializes primitives into a descriptor. Construction writes the magic
/// and version; `finish()` appends the CRC trailer and yields the bytes.
class Writer {
 public:
  Writer();

  void u8(std::uint8_t value);
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void f64(double value);
  void str(std::string_view value);
  /// Varint count followed by the raw values.
  void f64_array(const std::vector<double>& values);

  /// Bytes written so far (magic + version + payload, no trailer yet).
  [[nodiscard]] std::size_t size_bytes() const noexcept { return buf_.size(); }

  /// Appends the CRC32 trailer and returns the complete descriptor.
  /// The writer is consumed; no further writes are valid.
  [[nodiscard]] std::string finish() &&;

 private:
  std::string buf_;
};

/// Bounds-checked deserializer. The constructor validates the magic, the
/// format version, and the CRC trailer; individual reads then walk the
/// payload and throw `Error` on any truncation or malformed varint.
class Reader {
 public:
  /// `descriptor` must outlive the reader (views, does not copy).
  explicit Reader(std::string_view descriptor);

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<double> f64_array();

  /// Reads a varint element count whose elements each occupy at least
  /// `min_bytes_per_item` payload bytes, and rejects counts the remaining
  /// payload cannot possibly hold — the guard that keeps adversarial
  /// length prefixes from driving unbounded allocation.
  [[nodiscard]] std::size_t count(std::size_t min_bytes_per_item);

  /// Payload bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - pos_);
  }

  /// Throws unless the payload has been consumed exactly.
  void expect_done() const;

 private:
  const char* pos_ = nullptr;
  const char* end_ = nullptr;

  void need(std::size_t bytes, const char* what) const;
};

}  // namespace waldo::codec
