// The request-serving frontend: N worker threads (a dedicated
// runtime::ThreadPool) draining a queue of WSNP wire requests against one
// SpectrumService through a reentrant ProtocolServer. Per-request error
// isolation is absolute — a malformed or throwing request resolves to an
// encoded ErrorResponse, never an exception out of a worker — and every
// request is accounted in a ServiceStats snapshot (counts, bytes, p50/p99
// handle latency) queryable at any time (CLI: `waldo serve-bench`).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <string>

#include "waldo/core/protocol.hpp"
#include "waldo/runtime/histogram.hpp"
#include "waldo/runtime/thread_pool.hpp"
#include "waldo/service/service.hpp"

namespace waldo::service {

/// Point-in-time operational snapshot of a frontend and its service.
struct ServiceStats {
  std::uint64_t requests_served = 0;
  std::uint64_t error_responses = 0;  ///< requests answered with an error
  std::uint64_t bytes_served = 0;     ///< response wire bytes
  std::uint64_t model_downloads = 0;
  std::uint64_t uploads_accepted = 0;
  std::uint64_t uploads_rejected = 0;
  std::uint64_t uploads_pending = 0;
  std::uint64_t rebuilds = 0;  ///< models built by the service
  /// Descriptor-cache effectiveness: downloads served from the cached
  /// serialized descriptor vs. downloads that had to serialize, and the
  /// bytes that came from the cache (subset of the service's bytes).
  std::uint64_t descriptor_cache_hits = 0;
  std::uint64_t descriptor_cache_misses = 0;
  std::uint64_t bytes_from_cache = 0;
  double p50_handle_us = 0.0;  ///< handle-latency quantiles (microseconds)
  double p99_handle_us = 0.0;
  std::uint64_t max_handle_us = 0;
};

class ServiceFrontend {
 public:
  /// `workers` = 0 resolves to all hardware threads (runtime convention).
  ServiceFrontend(SpectrumService& service, unsigned workers);
  /// Joins the workers after draining every in-flight request.
  ~ServiceFrontend() = default;

  ServiceFrontend(const ServiceFrontend&) = delete;
  ServiceFrontend& operator=(const ServiceFrontend&) = delete;

  /// Enqueues one request; the future yields the response wire. Workers
  /// never throw: malformed or throwing requests resolve to an encoded
  /// ErrorResponse (per-request error isolation).
  [[nodiscard]] std::future<std::string> submit(std::string request_wire);

  /// Synchronous convenience: serves on the calling thread with the same
  /// isolation and accounting (useful for in-process transports).
  [[nodiscard]] std::string handle(const std::string& request_wire);

  [[nodiscard]] unsigned workers() const noexcept { return pool_.size(); }
  [[nodiscard]] ServiceStats stats() const;

 private:
  [[nodiscard]] std::string handle_isolated(
      const std::string& request_wire) noexcept;

  SpectrumService* service_;
  core::ProtocolServer server_;
  runtime::ThreadPool pool_;
  runtime::LatencyHistogram latency_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace waldo::service
