// waldo::service — the always-on serving layer of the central spectrum
// database. The paper's deployment model (Section 3) is one repository
// absorbing crowd-sourced uploads from many mobile WSDs while serving
// model downloads to many more; SpectrumService makes that concurrent:
//
//  - State is sharded per TV channel. Each shard owns its dataset,
//    pending-corroboration pool, staleness counter and model cache behind
//    its own std::shared_mutex, so downloads are concurrent readers and
//    uploads are per-channel writers — traffic on channel 15 never waits
//    on channel 46.
//  - Model rebuilds run OUTSIDE the shard lock, from an immutable dataset
//    snapshot taken under a brief shared lock, and are serialised by a
//    per-shard rebuild mutex so a thundering herd of stale readers builds
//    once. A slow rebuild never blocks downloads of other channels, and
//    blocks this channel's uploads only for the snapshot copy.
//  - Every upload is stamped with a per-channel apply ticket; replaying
//    recorded batches in ticket order against a single-threaded
//    SpectrumDatabase reproduces the datasets and models byte-for-byte
//    (enforced by tests/test_service.cpp, run under TSan in CI).
//
// Full locking protocol: docs/CONCURRENCY.md, "The serving layer".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "waldo/campaign/labeling.hpp"
#include "waldo/campaign/measurement.hpp"
#include "waldo/core/database.hpp"
#include "waldo/core/model.hpp"
#include "waldo/core/model_constructor.hpp"

namespace waldo::service {

/// Monotonic service-wide traffic counters (snapshot of atomics).
struct ServiceCounters {
  std::uint64_t models_built = 0;  ///< rebuilds, over all channels
  std::uint64_t model_downloads = 0;
  std::uint64_t bytes_served = 0;  ///< descriptor bytes
  std::uint64_t uploads_accepted = 0;
  std::uint64_t uploads_rejected = 0;
  std::uint64_t uploads_pending = 0;
  /// Downloads served straight from the descriptor cached inside the
  /// model snapshot (a string copy) vs. downloads that serialized the
  /// model. hits + misses == model_downloads.
  std::uint64_t descriptor_cache_hits = 0;
  std::uint64_t descriptor_cache_misses = 0;
  std::uint64_t bytes_from_cache = 0;  ///< subset of bytes_served
};

/// Thread-safe, per-channel-sharded spectrum store. Mirrors
/// SpectrumDatabase semantics exactly (same screen_upload, same
/// rebuild-threshold cache policy) — only the concurrency differs.
class SpectrumService final : public core::SpectrumStore {
 public:
  explicit SpectrumService(core::ModelConstructorConfig constructor_config = {},
                           campaign::LabelingConfig labeling = {},
                           core::UploadPolicy upload_policy = {});
  ~SpectrumService() override;

  SpectrumService(const SpectrumService&) = delete;
  SpectrumService& operator=(const SpectrumService&) = delete;

  /// Offline phase: stores a trusted sweep (appends if the channel exists),
  /// invalidates the cached model and zeroes the staleness counter.
  /// Safe to call concurrently with serving traffic.
  void ingest_campaign(campaign::ChannelDataset dataset);

  [[nodiscard]] bool has_channel(int channel) const override;
  [[nodiscard]] std::vector<int> channels() const;

  /// The channel's current model — cached when fresh, rebuilt outside the
  /// shard lock otherwise. The returned snapshot stays valid (immutable)
  /// however long the caller holds it. Throws std::out_of_range for
  /// unknown channels.
  [[nodiscard]] std::shared_ptr<const core::WhiteSpaceModel> model(
      int channel);

  [[nodiscard]] std::string download_model(int channel) override;

  /// Zero-copy variant of download_model: the cached serialized descriptor
  /// as a shared immutable blob (serializing first on a cache miss). The
  /// cluster tier ships these bytes to clients without re-serializing or
  /// copying per request. Counter semantics match download_model exactly.
  /// Throws std::out_of_range for unknown channels.
  [[nodiscard]] std::shared_ptr<const std::string> download_descriptor(
      int channel);

  core::UploadResult upload_measurements(
      int channel, std::span<const campaign::Measurement> readings,
      const std::string& contributor) override;

  /// Copy of the channel's trusted dataset (for replay verification and
  /// offline export). Throws std::out_of_range for unknown channels.
  [[nodiscard]] campaign::ChannelDataset dataset_snapshot(int channel) const;

  /// Drops every pending reading parked by `contributor`, on all channels.
  std::size_t purge_pending(const std::string& contributor);

  [[nodiscard]] std::size_t pending_count(int channel) const;
  [[nodiscard]] std::size_t staleness(int channel) const;

  /// Next apply ticket the channel will assign == number of uploads
  /// applied so far (0 for unknown channels). Replication uses this to
  /// know where a replica's upload log ends.
  [[nodiscard]] std::uint64_t uploads_applied(int channel) const;

  [[nodiscard]] ServiceCounters counters() const;

 private:
  struct Shard;

  /// Shard lookup (shared map lock). Throws std::out_of_range when the
  /// channel was never bootstrapped; nullptr-tolerant variant for the
  /// noexcept-style queries.
  [[nodiscard]] Shard& shard(int channel) const;
  [[nodiscard]] Shard* find_shard(int channel) const noexcept;

  core::ModelConstructorConfig constructor_config_;
  campaign::LabelingConfig labeling_;
  core::UploadPolicy upload_policy_;

  /// Guards the channel → shard map only; shard *contents* are guarded by
  /// each shard's own mutexes. Shards are never removed, so a looked-up
  /// pointer stays valid for the service's lifetime.
  mutable std::shared_mutex shards_mutex_;
  std::map<int, std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> models_built_{0};
  std::atomic<std::uint64_t> model_downloads_{0};
  std::atomic<std::uint64_t> bytes_served_{0};
  std::atomic<std::uint64_t> uploads_accepted_{0};
  std::atomic<std::uint64_t> uploads_rejected_{0};
  std::atomic<std::uint64_t> uploads_pending_{0};
  std::atomic<std::uint64_t> descriptor_cache_hits_{0};
  std::atomic<std::uint64_t> descriptor_cache_misses_{0};
  std::atomic<std::uint64_t> bytes_from_cache_{0};
};

}  // namespace waldo::service
