#include "waldo/service/frontend.hpp"

#include <chrono>
#include <memory>
#include <string_view>
#include <utility>

namespace waldo::service {

namespace {

// Cheap error-reply detection on the wire form — avoids a decode just to
// account the response. The header is "WSNP/1 error <len>\n...".
[[nodiscard]] bool is_error_wire(std::string_view wire) noexcept {
  constexpr std::string_view kErrorPrefix = "WSNP/1 error ";
  return wire.substr(0, kErrorPrefix.size()) == kErrorPrefix;
}

}  // namespace

ServiceFrontend::ServiceFrontend(SpectrumService& service, unsigned workers)
    : service_(&service),
      server_(service),
      pool_(runtime::resolve_threads(workers)) {}

std::string ServiceFrontend::handle_isolated(
    const std::string& request_wire) noexcept {
  const auto start = std::chrono::steady_clock::now();
  std::string response;
  try {
    response = server_.handle(request_wire);
  } catch (const std::exception& e) {
    // ProtocolServer already folds its exceptions into ErrorResponse; this
    // is the worker's last line of defence (e.g. bad_alloc mid-encode).
    try {
      response = core::encode(core::ErrorResponse{.reason = e.what()});
    } catch (...) {
      response.clear();
    }
  } catch (...) {
    try {
      response = core::encode(core::ErrorResponse{.reason = "unknown error"});
    } catch (...) {
      response.clear();
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  latency_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  requests_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(response.size(), std::memory_order_relaxed);
  if (is_error_wire(response)) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

std::future<std::string> ServiceFrontend::submit(std::string request_wire) {
  // ThreadPool tasks are std::function (copyable), so the promise rides in
  // a shared_ptr.
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  pool_.submit([this, promise, wire = std::move(request_wire)] {
    promise->set_value(handle_isolated(wire));
  });
  return future;
}

std::string ServiceFrontend::handle(const std::string& request_wire) {
  return handle_isolated(request_wire);
}

ServiceStats ServiceFrontend::stats() const {
  ServiceStats out;
  out.requests_served = requests_.load(std::memory_order_relaxed);
  out.error_responses = errors_.load(std::memory_order_relaxed);
  out.bytes_served = bytes_.load(std::memory_order_relaxed);
  const ServiceCounters service = service_->counters();
  out.model_downloads = service.model_downloads;
  out.uploads_accepted = service.uploads_accepted;
  out.uploads_rejected = service.uploads_rejected;
  out.uploads_pending = service.uploads_pending;
  out.rebuilds = service.models_built;
  out.descriptor_cache_hits = service.descriptor_cache_hits;
  out.descriptor_cache_misses = service.descriptor_cache_misses;
  out.bytes_from_cache = service.bytes_from_cache;
  const runtime::LatencyHistogram::Snapshot latency = latency_.snapshot();
  out.p50_handle_us = latency.p50_ns / 1000.0;
  out.p99_handle_us = latency.p99_ns / 1000.0;
  out.max_handle_us = latency.max_ns / 1000;
  return out;
}

}  // namespace waldo::service
