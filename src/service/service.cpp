#include "waldo/service/service.hpp"

#include <mutex>
#include <stdexcept>
#include <utility>

namespace waldo::service {

// Lock order (docs/CONCURRENCY.md): shards_mutex_ -> rebuild_mutex ->
// state_mutex, each optional, never taken upward. state_mutex is never
// held across a model build; rebuild_mutex is never held by readers of a
// fresh cache.
struct SpectrumService::Shard {
  mutable std::shared_mutex state_mutex;

  // All fields below are guarded by state_mutex.
  campaign::ChannelDataset dataset;
  std::vector<core::PendingReading> pending;
  std::size_t accepted_since_build = 0;
  std::uint64_t uploads_applied = 0;  // apply-ticket counter
  /// Bumped on every cache-invalidation event (ingest, staleness crossing
  /// the rebuild threshold). The cached model is fresh iff
  /// model_generation == generation.
  std::uint64_t generation = 0;
  std::shared_ptr<const core::WhiteSpaceModel> model;
  std::uint64_t model_generation = 0;
  /// Serialized form of `model`, filled lazily by the first download of
  /// each snapshot and reset whenever a new model is published — the
  /// invalidation rule that makes a repeat download a memcpy. Non-null
  /// implies it is the serialization of the current `model`.
  std::shared_ptr<const std::string> descriptor;

  /// Serialises rebuilds of this channel so a thundering herd of stale
  /// readers builds once. Never held while holding state_mutex upward.
  std::mutex rebuild_mutex;
};

SpectrumService::SpectrumService(
    core::ModelConstructorConfig constructor_config,
    campaign::LabelingConfig labeling, core::UploadPolicy upload_policy)
    : constructor_config_(std::move(constructor_config)),
      labeling_(labeling),
      upload_policy_(upload_policy) {}

SpectrumService::~SpectrumService() = default;

SpectrumService::Shard* SpectrumService::find_shard(
    int channel) const noexcept {
  const std::shared_lock lock(shards_mutex_);
  const auto it = shards_.find(channel);
  return it == shards_.end() ? nullptr : it->second.get();
}

SpectrumService::Shard& SpectrumService::shard(int channel) const {
  Shard* s = find_shard(channel);
  if (s == nullptr) {
    throw std::out_of_range("no data for channel " + std::to_string(channel));
  }
  return *s;
}

void SpectrumService::ingest_campaign(campaign::ChannelDataset dataset) {
  if (dataset.readings.empty()) {
    throw std::invalid_argument("refusing to ingest an empty campaign");
  }
  const int channel = dataset.channel;
  Shard* s = nullptr;
  {
    const std::unique_lock lock(shards_mutex_);
    auto& slot = shards_[channel];
    if (!slot) slot = std::make_unique<Shard>();
    s = slot.get();
  }
  const std::unique_lock lock(s->state_mutex);
  if (s->dataset.readings.empty()) {
    s->dataset = std::move(dataset);
  } else {
    auto& readings = s->dataset.readings;
    readings.insert(readings.end(),
                    std::make_move_iterator(dataset.readings.begin()),
                    std::make_move_iterator(dataset.readings.end()));
  }
  ++s->generation;  // cached model (if any) is now stale
  s->accepted_since_build = 0;
}

bool SpectrumService::has_channel(int channel) const {
  return find_shard(channel) != nullptr;
}

std::vector<int> SpectrumService::channels() const {
  const std::shared_lock lock(shards_mutex_);
  std::vector<int> out;
  out.reserve(shards_.size());
  for (const auto& [ch, _] : shards_) out.push_back(ch);
  return out;
}

std::shared_ptr<const core::WhiteSpaceModel> SpectrumService::model(
    int channel) {
  Shard& s = shard(channel);
  {
    const std::shared_lock lock(s.state_mutex);
    if (s.model && s.model_generation == s.generation) return s.model;
  }

  // Stale (or absent): rebuild, serialised per channel. Concurrent readers
  // of other channels are untouched; late arrivals for this channel queue
  // on rebuild_mutex and reuse the freshly published model.
  const std::lock_guard rebuild(s.rebuild_mutex);
  campaign::ChannelDataset snapshot;
  std::uint64_t built_from = 0;
  {
    const std::shared_lock lock(s.state_mutex);
    if (s.model && s.model_generation == s.generation) return s.model;
    snapshot = s.dataset;  // uploads wait only for this copy
    built_from = s.generation;
  }
  const core::ModelConstructor constructor(constructor_config_);
  auto built = std::make_shared<const core::WhiteSpaceModel>(
      constructor.build_with_labeling(snapshot, labeling_));
  models_built_.fetch_add(1, std::memory_order_relaxed);

  const std::unique_lock lock(s.state_mutex);
  s.model = built;
  s.model_generation = built_from;
  s.descriptor.reset();  // cached bytes described the previous snapshot
  if (built_from == s.generation) s.accepted_since_build = 0;
  // If the dataset moved on mid-build the published model is already
  // stale (model_generation < generation) and the next reader rebuilds;
  // the returned snapshot is still a consistent point-in-time model.
  return built;
}

std::shared_ptr<const std::string> SpectrumService::download_descriptor(
    int channel) {
  Shard& s = shard(channel);
  {
    // Fast path: a fresh model whose descriptor is already serialized —
    // the download shares the cached bytes without copying them.
    const std::shared_lock lock(s.state_mutex);
    if (s.descriptor && s.model && s.model_generation == s.generation) {
      std::shared_ptr<const std::string> cached = s.descriptor;
      descriptor_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      bytes_from_cache_.fetch_add(cached->size(), std::memory_order_relaxed);
      model_downloads_.fetch_add(1, std::memory_order_relaxed);
      bytes_served_.fetch_add(cached->size(), std::memory_order_relaxed);
      return cached;
    }
  }

  // Miss: fetch the current snapshot (rebuilding if stale), serialize it
  // outside every lock, and publish the bytes only if that exact snapshot
  // is still the one installed — binary serialization is deterministic,
  // so racing misses publish identical bytes either way.
  descriptor_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  const std::shared_ptr<const core::WhiteSpaceModel> m = model(channel);
  auto fresh = std::make_shared<const std::string>(m->serialize());
  {
    const std::unique_lock lock(s.state_mutex);
    if (s.model == m) s.descriptor = fresh;
  }
  model_downloads_.fetch_add(1, std::memory_order_relaxed);
  bytes_served_.fetch_add(fresh->size(), std::memory_order_relaxed);
  return fresh;
}

std::string SpectrumService::download_model(int channel) {
  return *download_descriptor(channel);
}

core::UploadResult SpectrumService::upload_measurements(
    int channel, std::span<const campaign::Measurement> readings,
    const std::string& contributor) {
  Shard* s = find_shard(channel);
  if (s == nullptr) {
    throw std::out_of_range(
        "uploads require a bootstrapped channel (trusted campaign first)");
  }
  std::vector<campaign::Measurement> accepted;
  core::UploadResult result;
  {
    const std::unique_lock lock(s->state_mutex);
    result = core::screen_upload(s->dataset, s->pending, upload_policy_,
                                 readings, contributor, accepted);
    result.ticket = s->uploads_applied++;
    if (!accepted.empty()) {
      auto& stored = s->dataset.readings;
      stored.insert(stored.end(), std::make_move_iterator(accepted.begin()),
                    std::make_move_iterator(accepted.end()));
      s->accepted_since_build += result.accepted;
      if (s->accepted_since_build >= upload_policy_.rebuild_threshold) {
        ++s->generation;  // invalidate the cached model
        s->accepted_since_build = 0;
      }
    }
  }
  uploads_accepted_.fetch_add(result.accepted, std::memory_order_relaxed);
  uploads_rejected_.fetch_add(result.rejected, std::memory_order_relaxed);
  uploads_pending_.fetch_add(result.pending, std::memory_order_relaxed);
  return result;
}

campaign::ChannelDataset SpectrumService::dataset_snapshot(
    int channel) const {
  Shard& s = shard(channel);
  const std::shared_lock lock(s.state_mutex);
  return s.dataset;
}

std::size_t SpectrumService::purge_pending(const std::string& contributor) {
  std::vector<Shard*> all;
  {
    const std::shared_lock lock(shards_mutex_);
    all.reserve(shards_.size());
    for (const auto& [ch, s] : shards_) all.push_back(s.get());
  }
  std::size_t purged = 0;
  for (Shard* s : all) {
    const std::unique_lock lock(s->state_mutex);
    purged += std::erase_if(
        s->pending, [&contributor](const core::PendingReading& pr) {
          return pr.contributor == contributor;
        });
  }
  return purged;
}

std::size_t SpectrumService::pending_count(int channel) const {
  Shard* s = find_shard(channel);
  if (s == nullptr) return 0;
  const std::shared_lock lock(s->state_mutex);
  return s->pending.size();
}

std::uint64_t SpectrumService::uploads_applied(int channel) const {
  Shard* s = find_shard(channel);
  if (s == nullptr) return 0;
  const std::shared_lock lock(s->state_mutex);
  return s->uploads_applied;
}

std::size_t SpectrumService::staleness(int channel) const {
  Shard* s = find_shard(channel);
  if (s == nullptr) return 0;
  const std::shared_lock lock(s->state_mutex);
  return s->accepted_since_build;
}

ServiceCounters SpectrumService::counters() const {
  ServiceCounters out;
  out.models_built = models_built_.load(std::memory_order_relaxed);
  out.model_downloads = model_downloads_.load(std::memory_order_relaxed);
  out.bytes_served = bytes_served_.load(std::memory_order_relaxed);
  out.uploads_accepted = uploads_accepted_.load(std::memory_order_relaxed);
  out.uploads_rejected = uploads_rejected_.load(std::memory_order_relaxed);
  out.uploads_pending = uploads_pending_.load(std::memory_order_relaxed);
  out.descriptor_cache_hits =
      descriptor_cache_hits_.load(std::memory_order_relaxed);
  out.descriptor_cache_misses =
      descriptor_cache_misses_.load(std::memory_order_relaxed);
  out.bytes_from_cache = bytes_from_cache_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace waldo::service
