#include "waldo/runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "waldo/runtime/parallel.hpp"

namespace waldo::runtime {

namespace {

thread_local bool t_on_worker_thread = false;

}  // namespace

unsigned hardware_threads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("WALDO_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  return hardware_threads();
}

ThreadPool::ThreadPool(unsigned num_threads) {
  workers_.reserve(std::max(1u, num_threads));
  for (unsigned t = 0; t < std::max(1u, num_threads); ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker_thread; }

ThreadPool& ThreadPool::global() {
  // The submitting thread always executes alongside the workers, so the
  // pool itself needs one fewer thread than the hardware offers.
  static ThreadPool pool(std::max(1u, resolve_threads(0) - 1));
  return pool;
}

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t parallel_lane_count(std::size_t count, unsigned threads) noexcept {
  if (count == 0) return 1;
  const unsigned want = resolve_threads(threads);
  if (want <= 1 || count == 1 || ThreadPool::on_worker_thread()) return 1;
  return std::min<std::size_t>(count, want);
}

void parallel_for_lanes(
    std::size_t count, unsigned threads,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const unsigned want = resolve_threads(threads);
  if (want <= 1 || count == 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < count; ++i) body(0, i);
    return;
  }

  struct SharedState {
    std::atomic<std::size_t> next{0};
    std::size_t count = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t active = 0;
    std::exception_ptr error;
  };
  // Shared, not stack-owned: a helper task may still be tearing down its
  // reference for a moment after the caller is released.
  auto state = std::make_shared<SharedState>();
  state->count = count;
  state->body = &body;

  const auto drain = [](SharedState& s, std::size_t lane) {
    for (std::size_t i; (i = s.next.fetch_add(1)) < s.count;) {
      try {
        (*s.body)(lane, i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.error) s.error = std::current_exception();
        s.next.store(s.count);  // abandon remaining indices
      }
    }
  };

  ThreadPool& pool = ThreadPool::global();
  const std::size_t lanes = std::min<std::size_t>(count, want);
  const std::size_t helpers =
      std::min<std::size_t>(lanes, pool.size() + 1) - 1;
  // An explicit request larger than the pool (threads > hardware) is
  // honoured with ephemeral threads: oversubscription costs wall-clock,
  // never correctness, and lets tests drive N lanes on any host.
  const std::size_t extra = lanes - 1 - helpers;
  {
    const std::lock_guard<std::mutex> lock(state->mutex);
    state->active = helpers + extra;
  }
  // The caller is lane 0; helpers and ephemerals take 1..lanes-1. A lane
  // number is owned by its executor for the whole call — that is what lets
  // callers hand each lane its own scratch workspace.
  const auto run_and_retire = [state, drain](std::size_t lane) {
    drain(*state, lane);
    const std::lock_guard<std::mutex> lock(state->mutex);
    if (--state->active == 0) state->done.notify_all();
  };
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([run_and_retire, lane = h + 1] { run_and_retire(lane); });
  }
  std::vector<std::thread> ephemeral;
  ephemeral.reserve(extra);
  for (std::size_t e = 0; e < extra; ++e) {
    ephemeral.emplace_back([run_and_retire, lane = helpers + 1 + e] {
      t_on_worker_thread = true;
      run_and_retire(lane);
    });
  }

  drain(*state, 0);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&state] { return state->active == 0; });
    error = state->error;
  }
  for (std::thread& t : ephemeral) t.join();
  if (error) std::rethrow_exception(error);
}

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_lanes(count, threads,
                     [&body](std::size_t, std::size_t i) { body(i); });
}

}  // namespace waldo::runtime
