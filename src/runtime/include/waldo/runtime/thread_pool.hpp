// Fixed-size thread pool backing the pipeline's parallel stages. One
// process-wide pool (sized to the hardware, overridable with the
// WALDO_THREADS environment variable) is shared by every stage; callers
// never own threads themselves — they express data parallelism through
// parallel_for / parallel_map (parallel.hpp) and the pool schedules it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace waldo::runtime {

/// Number of hardware threads, never less than 1.
[[nodiscard]] unsigned hardware_threads() noexcept;

/// Resolves a user-facing `threads` knob: 0 means "auto" (all hardware
/// threads, or WALDO_THREADS when set); anything else is taken literally.
[[nodiscard]] unsigned resolve_threads(unsigned requested) noexcept;

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task. Tasks must not block waiting for other tasks in the
  /// same pool (parallel_for never does; it keeps the submitting thread as
  /// one of the executors and runs nested parallelism inline).
  void submit(std::function<void()> task);

  /// True when the calling thread is one of *any* pool's workers. Used by
  /// parallel_for to run nested parallel sections inline instead of
  /// deadlocking on a saturated pool.
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// The process-wide pool, created on first use with
  /// resolve_threads(0) - 1 workers (the caller of a parallel section is
  /// always the remaining executor).
  [[nodiscard]] static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace waldo::runtime
