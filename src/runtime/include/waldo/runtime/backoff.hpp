// Deterministic exponential backoff with jitter — the retry timer behind
// the cluster router and replication paths (waldo::cluster).
//
// Classic "full jitter" backoff draws its randomness from a global RNG,
// which makes retry schedules depend on thread interleaving. Backoff
// instead derives every delay from a (seed, stream) pair via the same
// SplitMix64 splitting the rest of the codebase uses (see seed.hpp), so a
// given request's retry schedule is a pure function of its identity: test
// runs replay the exact same delays, and two racing requests never
// synchronize their retries (distinct streams decorrelate).
//
// Delay for attempt n (0-based):
//   raw      = min(cap, base * multiplier^n)        (saturating)
//   delay    = raw * (1 - jitter) + raw * jitter * u,  u ~ U[0, 1)
//
// jitter = 0 gives the deterministic exponential ladder; jitter = 1 gives
// full jitter over [0, raw).
#pragma once

#include <chrono>
#include <cstdint>

#include "waldo/runtime/seed.hpp"

namespace waldo::runtime {

struct BackoffConfig {
  std::chrono::nanoseconds base{1'000'000};    // first delay: 1 ms
  std::chrono::nanoseconds cap{100'000'000};   // delays saturate at 100 ms
  double multiplier = 2.0;
  double jitter = 0.5;  // fraction of each delay that is randomized, [0, 1]
  std::uint64_t seed = 0;
};

class Backoff {
 public:
  /// A backoff schedule for sub-stream `stream` (e.g. a request id) of the
  /// configured seed. Same (config, stream) => same delay sequence.
  constexpr explicit Backoff(const BackoffConfig& config,
                             std::uint64_t stream = 0) noexcept
      : config_(config), state_(split_seed(config.seed, stream)) {}

  /// Delay to sleep before the next retry; advances the schedule.
  [[nodiscard]] constexpr std::chrono::nanoseconds next() noexcept {
    const double raw = raw_delay_ns(attempts_++);
    double scaled = raw;
    if (config_.jitter > 0.0) {
      state_ = mix64(state_);
      // 53 high bits -> u in [0, 1): the double-precision unit draw.
      const double u =
          static_cast<double>(state_ >> 11) * 0x1.0p-53;
      scaled = raw * (1.0 - config_.jitter) + raw * config_.jitter * u;
    }
    return std::chrono::nanoseconds(static_cast<std::int64_t>(scaled));
  }

  /// Number of next() calls so far.
  [[nodiscard]] constexpr std::uint64_t attempts() const noexcept {
    return attempts_;
  }

  /// Rewinds to attempt 0 with the original stream state.
  constexpr void reset(std::uint64_t stream = 0) noexcept {
    attempts_ = 0;
    state_ = split_seed(config_.seed, stream);
  }

 private:
  [[nodiscard]] constexpr double raw_delay_ns(std::uint64_t attempt) const
      noexcept {
    const double cap = static_cast<double>(config_.cap.count());
    double raw = static_cast<double>(config_.base.count());
    for (std::uint64_t i = 0; i < attempt && raw < cap; ++i) {
      raw *= config_.multiplier;
    }
    return raw < cap ? raw : cap;
  }

  BackoffConfig config_;
  std::uint64_t state_;
  std::uint64_t attempts_ = 0;
};

}  // namespace waldo::runtime
