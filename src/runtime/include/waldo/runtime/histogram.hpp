// Lock-free fixed-footprint latency histogram: log2 octaves subdivided
// into 16 linear sub-buckets (HdrHistogram-style), so quantile estimates
// are within ~6 % of the true value at any scale from 1 ns to hours.
// record() is wait-free (one relaxed fetch_add) and safe from any number
// of threads; snapshot() is approximate while writers are active and
// exact at quiescence. The serving layer (waldo::service) uses it for its
// p50/p99 handle-latency stats.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace waldo::runtime {

class LatencyHistogram {
 public:
  /// Accumulates one observation. Wait-free, thread-safe.
  void record(std::uint64_t nanos) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t max_ns = 0;
    double p50_ns = 0.0;
    double p90_ns = 0.0;
    double p99_ns = 0.0;
  };
  /// Point-in-time quantile summary (bucket-midpoint interpolation).
  [[nodiscard]] Snapshot snapshot() const;

  /// Resets every counter to zero. Not linearisable against concurrent
  /// record() calls — meant for between-phase reuse at quiescence.
  void reset() noexcept;

  static constexpr std::size_t kBuckets = 1024;

 private:
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t nanos) noexcept;
  [[nodiscard]] static double bucket_midpoint_ns(std::size_t index) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace waldo::runtime
