// Data-parallel loops over an index range. The workhorse of every hot
// stage: per-locality training, k-means assignment, per-fold CV,
// per-reading collection, per-query baseline batches.
//
// Guarantees (the concurrency contract, see docs/CONCURRENCY.md):
//  - `body(i)` is invoked exactly once for every i in [0, count) unless a
//    body throws, in which case remaining indices may be skipped and the
//    first exception is rethrown on the calling thread.
//  - Each invocation sees a distinct index; writes to index-owned slots
//    need no synchronisation.
//  - `threads <= 1` (after resolve_threads) runs the plain serial loop on
//    the calling thread — byte-for-byte today's single-threaded behaviour.
//  - Nested calls (a body that itself calls parallel_for) run inline
//    serially instead of re-entering the pool, so nesting is always safe.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "waldo/runtime/thread_pool.hpp"

namespace waldo::runtime {

/// Runs body(0) ... body(count - 1), distributing indices over at most
/// `threads` executors (0 = auto). The calling thread participates, so a
/// pool of size N serves parallel_for(..., N + 1, ...).
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& body);

/// Number of lanes parallel_for_lanes will use for a (count, threads)
/// request: callers size per-lane scratch (workspaces, arenas) with this
/// before launching. Always >= 1.
[[nodiscard]] std::size_t parallel_lane_count(std::size_t count,
                                              unsigned threads) noexcept;

/// Lane-aware variant: body(lane, i) with lane < parallel_lane_count(count,
/// threads). Each lane value is owned by exactly one executor for the whole
/// call, so lane-indexed scratch buffers need no synchronisation — the
/// workspace-ownership pattern of docs/CONCURRENCY.md. Same coverage,
/// ordering, and exception semantics as parallel_for; the serial path
/// (1 lane) runs in index order on the calling thread with lane 0.
void parallel_for_lanes(
    std::size_t count, unsigned threads,
    const std::function<void(std::size_t, std::size_t)>& body);

/// Maps fn over [0, count) into a vector, preserving index order. The
/// result type must be default-constructible and move-assignable.
template <typename F>
[[nodiscard]] auto parallel_map(std::size_t count, unsigned threads, F&& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  std::vector<decltype(fn(std::size_t{}))> out(count);
  parallel_for(count, threads,
               [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace waldo::runtime
