// Lightweight per-stage wall-clock and item counters. Pipeline stages
// (collection, clustering, training, cross-validation) record into the
// process-wide timer; benches and the CLI print the report to show where
// the time went and how parallelism changed it.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace waldo::runtime {

class StageTimer {
 public:
  struct Stage {
    double seconds = 0.0;      ///< accumulated wall-clock
    std::uint64_t calls = 0;   ///< number of recordings
    std::uint64_t items = 0;   ///< accumulated work items (stage-defined)
  };

  /// RAII recorder: accumulates the scope's wall-clock into `name` on
  /// destruction. Move-only.
  class Scope {
   public:
    Scope(StageTimer& timer, std::string name, std::uint64_t items)
        : timer_(&timer),
          name_(std::move(name)),
          items_(items),
          start_(std::chrono::steady_clock::now()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope(Scope&& other) noexcept
        : timer_(other.timer_),
          name_(std::move(other.name_)),
          items_(other.items_),
          start_(other.start_) {
      other.timer_ = nullptr;
    }
    ~Scope() {
      if (timer_ == nullptr) return;
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_;
      timer_->record(name_, elapsed.count(), items_);
    }

   private:
    StageTimer* timer_;
    std::string name_;
    std::uint64_t items_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Times the enclosing scope into stage `name`.
  [[nodiscard]] Scope scope(std::string name, std::uint64_t items = 0) {
    return Scope(*this, std::move(name), items);
  }

  /// Direct accumulation (thread-safe).
  void record(const std::string& name, double seconds,
              std::uint64_t items = 0);

  /// Snapshot of every stage recorded so far.
  [[nodiscard]] std::map<std::string, Stage> stages() const;

  /// Fixed-width human-readable table, one row per stage; empty string
  /// when nothing was recorded.
  [[nodiscard]] std::string report() const;

  void reset();

  /// The process-wide timer the pipeline records into.
  [[nodiscard]] static StageTimer& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Stage> stages_;
};

}  // namespace waldo::runtime
