// Deterministic RNG seed splitting — the contract that makes every
// parallel stage in this codebase bit-identical to its serial execution.
//
// A stage that needs randomness per task (per locality, per fold, per
// reading) derives each task's engine seed as a pure function of the
// stage's root seed and the task's index:
//
//   std::mt19937_64 rng(runtime::split_seed(root_seed, task_index));
//
// The derived seed does not depend on execution order, thread count or
// scheduling, so `threads = 1` and `threads = N` consume identical random
// streams. This replaces the older pattern of one engine shared across a
// loop, whose draws depended on iteration order. See docs/CONCURRENCY.md.
#pragma once

#include <cstdint>

namespace waldo::runtime {

/// SplitMix64 finalizer (Steele, Lea & Flood / Vigna): a cheap bijective
/// mixer whose outputs pass BigCrush. Used to decorrelate nearby integer
/// inputs (seed, seed + 1, ...) into independent-looking seeds.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seed for sub-stream `stream` of the generator rooted at `root`.
/// Distinct (root, stream) pairs yield decorrelated seeds; the same pair
/// always yields the same seed.
[[nodiscard]] constexpr std::uint64_t split_seed(std::uint64_t root,
                                                 std::uint64_t stream) noexcept {
  return mix64(root + 0x632be59bd9b4e019ULL * (stream + 1));
}

}  // namespace waldo::runtime
