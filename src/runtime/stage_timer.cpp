#include "waldo/runtime/stage_timer.hpp"

#include <cstdio>

namespace waldo::runtime {

void StageTimer::record(const std::string& name, double seconds,
                        std::uint64_t items) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stage& stage = stages_[name];
  stage.seconds += seconds;
  stage.calls += 1;
  stage.items += items;
}

std::map<std::string, StageTimer::Stage> StageTimer::stages() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stages_;
}

std::string StageTimer::report() const {
  const auto snapshot = stages();
  if (snapshot.empty()) return {};
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-28s %10s %8s %12s\n", "stage",
                "seconds", "calls", "items");
  out += line;
  for (const auto& [name, stage] : snapshot) {
    std::snprintf(line, sizeof(line), "%-28s %10.3f %8llu %12llu\n",
                  name.c_str(), stage.seconds,
                  static_cast<unsigned long long>(stage.calls),
                  static_cast<unsigned long long>(stage.items));
    out += line;
  }
  return out;
}

void StageTimer::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stages_.clear();
}

StageTimer& StageTimer::global() {
  static StageTimer timer;
  return timer;
}

}  // namespace waldo::runtime
