#include "waldo/runtime/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace waldo::runtime {

// Index layout: values 0..15 map to buckets 0..15 exactly; larger values
// land in (octave << 4) + top-4-mantissa-bits, giving 16 linear
// sub-buckets per power of two. The top index for a 64-bit value is 975,
// comfortably inside kBuckets.
std::size_t LatencyHistogram::bucket_index(std::uint64_t nanos) noexcept {
  if (nanos < 16) return static_cast<std::size_t>(nanos);
  const int msb = 63 - std::countl_zero(nanos);
  const int shift = msb - 4;
  const std::size_t index = (static_cast<std::size_t>(msb - 3) << 4) +
                            static_cast<std::size_t>((nanos >> shift) & 0xF);
  // Saturate so an arithmetic slip can never index out of bounds; the top
  // reachable index for a 64-bit value is 975 < kBuckets.
  return index < kBuckets ? index : kBuckets - 1;
}

double LatencyHistogram::bucket_midpoint_ns(std::size_t index) noexcept {
  if (index < 16) return static_cast<double>(index);
  const std::size_t octave = index >> 4;  // >= 1
  const std::uint64_t sub = index & 0xF;
  const int shift = static_cast<int>(octave) - 1;
  const double lo = static_cast<double>((16 + sub) << shift);
  const double width = static_cast<double>(std::uint64_t{1} << shift);
  return lo + width / 2.0;
}

void LatencyHistogram::record(std::uint64_t nanos) noexcept {
  buckets_[bucket_index(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (nanos > seen && !max_ns_.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot out;
  std::array<std::uint64_t, kBuckets> counts;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    out.count += counts[b];
  }
  out.max_ns = max_ns_.load(std::memory_order_relaxed);
  if (out.count == 0) return out;

  const auto quantile = [&counts, &out](double q) {
    // Nearest-rank (1-based, ceil): the q-quantile of n observations is
    // the ceil(q*n)-th smallest — floor would under-report tail quantiles
    // whenever q*n is fractional (p99 of 3 samples must be the largest).
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(out.count)));
    if (target < 1) target = 1;
    if (target > out.count) target = out.count;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen >= target) return bucket_midpoint_ns(b);
    }
    return bucket_midpoint_ns(kBuckets - 1);
  };
  // Bucket midpoints can overshoot the true sample values (a single
  // observation of 17 ns lands in a bucket whose midpoint is 17.5 ns), so
  // clamp every quantile to the exact recorded maximum. This keeps the
  // p50 <= p90 <= p99 <= max invariant that sparse histograms (failover
  // stats with a handful of samples) would otherwise violate.
  const double cap = static_cast<double>(out.max_ns);
  out.p50_ns = std::min(quantile(0.50), cap);
  out.p90_ns = std::min(quantile(0.90), cap);
  out.p99_ns = std::min(quantile(0.99), cap);
  return out;
}

void LatencyHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace waldo::runtime
