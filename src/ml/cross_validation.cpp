#include "waldo/ml/cross_validation.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

#include "waldo/runtime/parallel.hpp"

namespace waldo::ml {

std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n,
                                                    std::size_t folds,
                                                    std::uint64_t seed) {
  if (folds < 2) throw std::invalid_argument("need at least 2 folds");
  if (n < folds) throw std::invalid_argument("fewer samples than folds");
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::mt19937_64 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<std::vector<std::size_t>> out(folds);
  for (std::size_t i = 0; i < n; ++i) out[i % folds].push_back(perm[i]);
  return out;
}

namespace {

/// Uniform random subsample of `idx` down to `cap` elements (no-op if cap
/// is zero or already satisfied).
void cap_indices(std::vector<std::size_t>& idx, std::size_t cap,
                 std::uint64_t seed) {
  if (cap == 0 || idx.size() <= cap) return;
  std::mt19937_64 rng(seed);
  std::shuffle(idx.begin(), idx.end(), rng);
  idx.resize(cap);
}

}  // namespace

CrossValidationResult cross_validate(const Matrix& x, std::span<const int> y,
                                     const ClassifierFactory& factory,
                                     const CrossValidationConfig& config) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("cross_validate: size mismatch");
  }
  const auto folds = kfold_indices(x.rows(), config.folds, config.seed);

  CrossValidationResult result;
  // Folds train and evaluate independently; the overall matrix merges in
  // fold order afterwards, so the result is thread-count invariant.
  result.per_fold = runtime::parallel_map(
      folds.size(), config.threads, [&](std::size_t f) {
        std::vector<std::size_t> train_idx;
        train_idx.reserve(x.rows() - folds[f].size());
        for (std::size_t g = 0; g < folds.size(); ++g) {
          if (g == f) continue;
          train_idx.insert(train_idx.end(), folds[g].begin(),
                           folds[g].end());
        }
        cap_indices(train_idx, config.max_train_samples, config.seed + f);

        const Matrix x_train = x.take_rows(train_idx);
        std::vector<int> y_train;
        y_train.reserve(train_idx.size());
        for (const std::size_t i : train_idx) y_train.push_back(y[i]);

        auto model = factory();
        model->fit(x_train, y_train);

        ConfusionMatrix cm;
        for (const std::size_t i : folds[f]) {
          cm.add(model->predict(x.row(i)), y[i]);
        }
        return cm;
      });
  for (const ConfusionMatrix& cm : result.per_fold) result.overall.merge(cm);
  return result;
}

ConfusionMatrix evaluate_training_fraction(const Matrix& x,
                                           std::span<const int> y,
                                           const ClassifierFactory& factory,
                                           double train_fraction,
                                           double test_fraction,
                                           std::uint64_t seed,
                                           std::size_t max_train_samples) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("evaluate_training_fraction: size mismatch");
  }
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  test_fraction = std::clamp(test_fraction, 0.01, 0.9);

  std::vector<std::size_t> perm(x.rows());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::mt19937_64 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);

  const auto test_n = std::max<std::size_t>(
      1, static_cast<std::size_t>(test_fraction *
                                  static_cast<double>(x.rows())));
  std::vector<std::size_t> test_idx(perm.begin(),
                                    perm.begin() +
                                        static_cast<std::ptrdiff_t>(test_n));
  std::vector<std::size_t> pool(perm.begin() +
                                    static_cast<std::ptrdiff_t>(test_n),
                                perm.end());
  const auto train_n = std::max<std::size_t>(
      2, static_cast<std::size_t>(train_fraction *
                                  static_cast<double>(pool.size())));
  pool.resize(std::min(train_n, pool.size()));
  cap_indices(pool, max_train_samples, seed + 1);

  const Matrix x_train = x.take_rows(pool);
  std::vector<int> y_train;
  y_train.reserve(pool.size());
  for (const std::size_t i : pool) y_train.push_back(y[i]);

  auto model = factory();
  model->fit(x_train, y_train);

  ConfusionMatrix cm;
  for (const std::size_t i : test_idx) {
    cm.add(model->predict(x.row(i)), y[i]);
  }
  return cm;
}

}  // namespace waldo::ml
