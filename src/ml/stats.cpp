#include "waldo/ml/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace waldo::ml {

SummaryStats summarize(std::span<const double> values) {
  SummaryStats s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (const double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile of empty range");
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

BoxStats box_stats(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("box_stats of empty range");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  };
  double sum = 0.0;
  for (const double v : sorted) sum += v;
  return BoxStats{.min = sorted.front(),
                  .q1 = at(0.25),
                  .median = at(0.5),
                  .q3 = at(0.75),
                  .max = sorted.back(),
                  .mean = sum / static_cast<double>(sorted.size())};
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t points) {
  std::vector<CdfPoint> out;
  if (values.empty() || points == 0) return out;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p = static_cast<double>(i + 1) / static_cast<double>(points);
    const auto idx = static_cast<std::size_t>(
        std::min(p * static_cast<double>(sorted.size()),
                 static_cast<double>(sorted.size() - 1)));
    out.push_back(CdfPoint{.value = sorted[idx], .probability = p});
  }
  return out;
}

double pearson_correlation(std::span<const double> x,
                           std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("pearson: length mismatch");
  }
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

/// Log of the beta function via lgamma.
[[nodiscard]] double log_beta(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

/// Lentz's continued fraction for the incomplete beta function.
[[nodiscard]] double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double dm = m;
    const double m2 = 2.0 * dm;
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) {
    throw std::invalid_argument("incomplete_beta: a, b must be positive");
  }
  x = std::clamp(x, 0.0, 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double front =
      std::exp(a * std::log(x) + b * std::log(1.0 - x) - log_beta(a, b));
  // Use the symmetry transformation for faster convergence.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - std::exp(b * std::log(1.0 - x) + a * std::log(x) -
                        log_beta(a, b)) *
                   betacf(b, a, 1.0 - x) / b;
}

double f_distribution_sf(double f, double d1, double d2) {
  if (f <= 0.0) return 1.0;
  return incomplete_beta(d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * f));
}

AnovaResult anova_one_way(std::span<const std::vector<double>> groups) {
  std::size_t total_n = 0;
  double grand_sum = 0.0;
  std::size_t nonempty = 0;
  for (const auto& g : groups) {
    total_n += g.size();
    for (const double v : g) grand_sum += v;
    if (!g.empty()) ++nonempty;
  }
  AnovaResult r;
  if (nonempty < 2 || total_n <= nonempty) return r;
  const double grand_mean = grand_sum / static_cast<double>(total_n);

  double ss_between = 0.0;
  double ss_within = 0.0;
  for (const auto& g : groups) {
    if (g.empty()) continue;
    double gm = 0.0;
    for (const double v : g) gm += v;
    gm /= static_cast<double>(g.size());
    ss_between += static_cast<double>(g.size()) * (gm - grand_mean) *
                  (gm - grand_mean);
    for (const double v : g) ss_within += (v - gm) * (v - gm);
  }
  r.df_between = static_cast<double>(nonempty - 1);
  r.df_within = static_cast<double>(total_n - nonempty);
  if (ss_within <= 0.0) {
    // Degenerate: all within-group variance vanished; report an extreme F.
    r.f_statistic = 1e12;
    r.p_value = 0.0;
    return r;
  }
  r.f_statistic =
      (ss_between / r.df_between) / (ss_within / r.df_within);
  r.p_value = f_distribution_sf(r.f_statistic, r.df_between, r.df_within);
  return r;
}

}  // namespace waldo::ml
