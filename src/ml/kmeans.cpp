#include "waldo/ml/kmeans.hpp"

#include <algorithm>
#include <limits>
#include <random>
#include <stdexcept>

#include "waldo/runtime/parallel.hpp"

namespace waldo::ml {

std::size_t nearest_centroid(const Matrix& centroids,
                             std::span<const double> x) {
  if (centroids.rows() == 0) throw std::logic_error("no centroids");
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    const double d2 = squared_distance(centroids.row(c), x);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = c;
    }
  }
  return best;
}

KMeansResult kmeans(const Matrix& x, const KMeansConfig& config) {
  if (x.rows() == 0) throw std::invalid_argument("kmeans: empty input");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const std::size_t k = std::max<std::size_t>(1, std::min(config.k, n));

  std::mt19937_64 rng(config.seed);

  // k-means++ seeding.
  Matrix centroids(k, d);
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  {
    std::uniform_int_distribution<std::size_t> first(0, n - 1);
    const auto f = first(rng);
    std::copy(x.row(f).begin(), x.row(f).end(), centroids.row(0).begin());
    for (std::size_t c = 1; c < k; ++c) {
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        min_d2[i] =
            std::min(min_d2[i], squared_distance(x.row(i),
                                                 centroids.row(c - 1)));
        total += min_d2[i];
      }
      std::size_t chosen = n - 1;
      if (total > 0.0) {
        std::uniform_real_distribution<double> u(0.0, total);
        double r = u(rng);
        for (std::size_t i = 0; i < n; ++i) {
          if (r < min_d2[i]) {
            chosen = i;
            break;
          }
          r -= min_d2[i];
        }
      }
      std::copy(x.row(chosen).begin(), x.row(chosen).end(),
                centroids.row(c).begin());
    }
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    // Assign — the O(n k d) hot step, fanned out per row. The inertia
    // reduction runs serially afterwards so its floating-point summation
    // order (row 0 .. n-1) never depends on the thread count.
    runtime::parallel_for(n, config.threads, [&](std::size_t i) {
      result.assignment[i] = nearest_centroid(centroids, x.row(i));
    });
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      inertia += squared_distance(centroids.row(result.assignment[i]),
                                  x.row(i));
    }
    result.inertia = inertia;
    result.iterations = iter + 1;

    // Update.
    Matrix sums(k, d, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = result.assignment[i];
      ++counts[c];
      for (std::size_t j = 0; j < d; ++j) sums(c, j) += x(i, j);
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed the empty cluster from the worst-fitted point.
        std::size_t worst = 0;
        double worst_d2 = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d2 = squared_distance(
              centroids.row(result.assignment[i]), x.row(i));
          if (d2 > worst_d2) {
            worst_d2 = d2;
            worst = i;
          }
        }
        std::copy(x.row(worst).begin(), x.row(worst).end(),
                  centroids.row(c).begin());
        continue;
      }
      for (std::size_t j = 0; j < d; ++j) {
        centroids(c, j) = sums(c, j) / static_cast<double>(counts[c]);
      }
    }

    if (prev_inertia - inertia <=
        config.tolerance * std::max(prev_inertia, 1e-12)) {
      break;
    }
    prev_inertia = inertia;
  }

  result.centroids = std::move(centroids);
  return result;
}

}  // namespace waldo::ml
