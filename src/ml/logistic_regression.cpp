#include "waldo/ml/logistic_regression.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <locale>
#include <ostream>
#include <stdexcept>

#include "waldo/codec/codec.hpp"
#include "waldo/ml/metrics.hpp"

namespace waldo::ml {

namespace {

[[nodiscard]] double sigmoid(double z) noexcept {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

/// In-place Gaussian elimination with partial pivoting for the (small)
/// Newton system.
bool solve(std::vector<double>& a, std::vector<double>& b, std::size_t n) {
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col])) pivot = r;
    }
    if (std::abs(a[pivot * n + col]) < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[col * n + c], a[pivot * n + c]);
      }
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / a[col * n + col];
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  for (std::size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= a[r * n + c] * b[c];
    b[r] = acc / a[r * n + r];
  }
  return true;
}

}  // namespace

void LogisticRegression::fit(const Matrix& x_raw, std::span<const int> y) {
  if (x_raw.rows() == 0 || x_raw.rows() != y.size()) {
    throw std::invalid_argument("logistic regression: bad training set");
  }
  bool has_safe = false, has_not = false;
  for (const int label : y) (label == kSafe ? has_safe : has_not) = true;
  if (!has_safe || !has_not) {
    single_class_ = true;
    only_class_ = has_safe ? kSafe : kNotSafe;
    weights_.clear();
    return;
  }
  single_class_ = false;

  scaler_.fit(x_raw);
  const Matrix x = scaler_.transform(x_raw);
  const std::size_t n = x.rows();
  const std::size_t d = x.cols() + 1;  // bias term
  weights_.assign(d, 0.0);

  std::vector<double> gradient(d), hessian(d * d);
  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    std::fill(gradient.begin(), gradient.end(), 0.0);
    std::fill(hessian.begin(), hessian.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double z = weights_[0];
      for (std::size_t c = 0; c < x.cols(); ++c) {
        z += weights_[c + 1] * x(i, c);
      }
      const double p = sigmoid(z);
      const double target = (y[i] == kSafe) ? 1.0 : 0.0;
      const double err = p - target;
      const double w = std::max(p * (1.0 - p), 1e-9);
      // Augmented feature vector phi = [1, x_i].
      for (std::size_t a = 0; a < d; ++a) {
        const double phi_a = a == 0 ? 1.0 : x(i, a - 1);
        gradient[a] += err * phi_a;
        for (std::size_t b = a; b < d; ++b) {
          const double phi_b = b == 0 ? 1.0 : x(i, b - 1);
          hessian[a * d + b] += w * phi_a * phi_b;
        }
      }
    }
    for (std::size_t a = 0; a < d; ++a) {
      gradient[a] += config_.l2 * weights_[a];
      hessian[a * d + a] += config_.l2;
      for (std::size_t b = 0; b < a; ++b) {
        hessian[a * d + b] = hessian[b * d + a];
      }
    }
    std::vector<double> step = gradient;
    std::vector<double> h = hessian;
    if (!solve(h, step, d)) break;
    double movement = 0.0;
    for (std::size_t a = 0; a < d; ++a) {
      weights_[a] -= step[a];
      movement += std::abs(step[a]);
    }
    if (movement < config_.tolerance) break;
  }
}

double LogisticRegression::linear(
    std::span<const double> standardized) const {
  double z = weights_[0];
  for (std::size_t c = 0; c < standardized.size(); ++c) {
    z += weights_[c + 1] * standardized[c];
  }
  return z;
}

double LogisticRegression::probability(std::span<const double> x) const {
  if (single_class_) return only_class_ == kSafe ? 1.0 : 0.0;
  if (weights_.empty()) {
    throw std::logic_error("logistic regression: not trained");
  }
  return sigmoid(linear(scaler_.transform(x)));
}

int LogisticRegression::predict(std::span<const double> x) const {
  if (single_class_) return only_class_;
  return probability(x) >= 0.5 ? kSafe : kNotSafe;
}

void LogisticRegression::save(std::ostream& out) const {
  out.imbue(std::locale::classic());
  out << std::setprecision(17);
  out << "logistic_regression " << weights_.size() << " "
      << (single_class_ ? 1 : 0) << " " << only_class_ << "\n";
  if (single_class_) return;
  scaler_.save(out);
  for (const double w : weights_) out << w << " ";
  out << "\n";
}

void LogisticRegression::load(std::istream& in) {
  in.imbue(std::locale::classic());
  std::string tag;
  std::size_t d = 0;
  int single = 0;
  in >> tag >> d >> single >> only_class_;
  if (tag != "logistic_regression") {
    throw std::runtime_error("bad logistic regression descriptor");
  }
  single_class_ = single != 0;
  weights_.assign(single_class_ ? 0 : d, 0.0);
  if (single_class_) return;
  scaler_.load(in);
  for (double& w : weights_) in >> w;
  if (!in) throw std::runtime_error("truncated logistic descriptor");
}

void LogisticRegression::save(codec::Writer& out) const {
  out.u8(static_cast<std::uint8_t>(WireFamily::kLogisticRegression));
  out.u8(single_class_ ? 1 : 0);
  out.i64(only_class_);
  if (single_class_) return;
  scaler_.save(out);
  out.f64_array(weights_);
}

void LogisticRegression::load(codec::Reader& in) {
  if (in.u8() !=
      static_cast<std::uint8_t>(WireFamily::kLogisticRegression)) {
    throw codec::Error("payload is not a logistic regression");
  }
  const std::uint8_t single = in.u8();
  if (single > 1) throw codec::Error("bad logistic single-class flag");
  single_class_ = single != 0;
  only_class_ = static_cast<int>(in.i64());
  if (single_class_) {
    weights_.clear();
    return;
  }
  scaler_.load(in);
  weights_ = in.f64_array();
}

}  // namespace waldo::ml
