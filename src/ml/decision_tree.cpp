#include "waldo/ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <locale>
#include <ostream>
#include <stdexcept>

#include "waldo/codec/codec.hpp"
#include "waldo/ml/metrics.hpp"

namespace waldo::ml {

namespace {

[[nodiscard]] double gini(std::size_t safe, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(safe) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

[[nodiscard]] int majority(std::span<const int> y,
                           std::span<const std::size_t> idx) {
  std::size_t safe = 0;
  for (const std::size_t i : idx) safe += (y[i] == kSafe) ? 1 : 0;
  // Ties break toward "not safe" — the conservative direction.
  return 2 * safe > idx.size() ? kSafe : kNotSafe;
}

}  // namespace

void DecisionTree::fit(const Matrix& x, std::span<const int> y) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    throw std::invalid_argument("decision tree: bad training set");
  }
  nodes_.clear();
  depth_ = 0;
  std::vector<std::size_t> idx(x.rows());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  build(x, y, idx, 0);
}

std::int32_t DecisionTree::build(const Matrix& x, std::span<const int> y,
                                 std::vector<std::size_t>& idx,
                                 std::size_t depth) {
  depth_ = std::max(depth_, depth);
  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();

  std::size_t safe = 0;
  for (const std::size_t i : idx) safe += (y[i] == kSafe) ? 1 : 0;
  const bool pure = (safe == 0 || safe == idx.size());

  if (pure || depth >= config_.max_depth ||
      idx.size() < config_.min_samples_split) {
    nodes_[static_cast<std::size_t>(node_id)].label = majority(y, idx);
    return node_id;
  }

  // Exhaustive best Gini split over all features and boundaries.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = std::numeric_limits<double>::infinity();
  std::vector<std::pair<double, int>> column(idx.size());

  for (std::size_t f = 0; f < x.cols(); ++f) {
    for (std::size_t k = 0; k < idx.size(); ++k) {
      column[k] = {x(idx[k], f), y[idx[k]]};
    }
    std::sort(column.begin(), column.end());
    std::size_t left_safe = 0;
    std::size_t left_n = 0;
    for (std::size_t k = 0; k + 1 < column.size(); ++k) {
      left_safe += (column[k].second == kSafe) ? 1 : 0;
      ++left_n;
      if (column[k].first == column[k + 1].first) continue;
      const std::size_t right_n = column.size() - left_n;
      if (left_n < config_.min_samples_leaf ||
          right_n < config_.min_samples_leaf) {
        continue;
      }
      const std::size_t right_safe = safe - left_safe;
      const double score =
          (static_cast<double>(left_n) * gini(left_safe, left_n) +
           static_cast<double>(right_n) * gini(right_safe, right_n)) /
          static_cast<double>(column.size());
      if (score < best_score) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = (column[k].first + column[k + 1].first) / 2.0;
      }
    }
  }

  if (best_feature < 0) {
    nodes_[static_cast<std::size_t>(node_id)].label = majority(y, idx);
    return node_id;
  }

  std::vector<std::size_t> left_idx, right_idx;
  for (const std::size_t i : idx) {
    (x(i, static_cast<std::size_t>(best_feature)) <= best_threshold
         ? left_idx
         : right_idx)
        .push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) {
    nodes_[static_cast<std::size_t>(node_id)].label = majority(y, idx);
    return node_id;
  }

  const std::int32_t left = build(x, y, left_idx, depth + 1);
  const std::int32_t right = build(x, y, right_idx, depth + 1);
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

int DecisionTree::predict(std::span<const double> x) const {
  if (nodes_.empty()) throw std::logic_error("decision tree: not trained");
  std::int32_t cur = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.feature < 0) return node.label;
    const auto f = static_cast<std::size_t>(node.feature);
    if (f >= x.size()) {
      throw std::invalid_argument("decision tree: dimension mismatch");
    }
    cur = (x[f] <= node.threshold) ? node.left : node.right;
  }
}

void DecisionTree::save(std::ostream& out) const {
  out.imbue(std::locale::classic());
  out << std::setprecision(17);
  out << "decision_tree " << nodes_.size() << " " << depth_ << "\n";
  for (const Node& n : nodes_) {
    out << n.feature << " " << n.threshold << " " << n.left << " " << n.right
        << " " << n.label << "\n";
  }
}

void DecisionTree::load(std::istream& in) {
  in.imbue(std::locale::classic());
  std::string tag;
  std::size_t count = 0;
  in >> tag >> count >> depth_;
  if (tag != "decision_tree") {
    throw std::runtime_error("bad decision tree descriptor");
  }
  nodes_.assign(count, Node{});
  for (Node& n : nodes_) {
    in >> n.feature >> n.threshold >> n.left >> n.right >> n.label;
  }
  if (!in) throw std::runtime_error("truncated decision tree descriptor");
}

void DecisionTree::save(codec::Writer& out) const {
  out.u8(static_cast<std::uint8_t>(WireFamily::kDecisionTree));
  out.u64(nodes_.size());
  out.u64(depth_);
  for (const Node& n : nodes_) {
    out.i64(n.feature);
    out.f64(n.threshold);
    out.i64(n.left);
    out.i64(n.right);
    out.i64(n.label);
  }
}

void DecisionTree::load(codec::Reader& in) {
  if (in.u8() != static_cast<std::uint8_t>(WireFamily::kDecisionTree)) {
    throw codec::Error("payload is not a decision tree");
  }
  // Every node is at least 12 payload bytes (4 varints + threshold).
  const std::size_t node_count = in.count(12);
  depth_ = static_cast<std::size_t>(in.u64());
  nodes_.assign(node_count, Node{});
  for (std::size_t i = 0; i < node_count; ++i) {
    Node& n = nodes_[i];
    n.feature = static_cast<int>(in.i64());
    n.threshold = in.f64();
    n.left = static_cast<std::int32_t>(in.i64());
    n.right = static_cast<std::int32_t>(in.i64());
    n.label = static_cast<int>(in.i64());
    // The builder always assigns children larger ids than their parent;
    // require that here so a crafted descriptor can neither index out of
    // bounds nor form a cycle that predict() would walk forever.
    if (n.feature >= 0) {
      const auto self = static_cast<std::int64_t>(i);
      const auto limit = static_cast<std::int64_t>(node_count);
      if (n.left <= self || n.left >= limit || n.right <= self ||
          n.right >= limit) {
        throw codec::Error("decision tree child index out of range");
      }
    }
  }
}

}  // namespace waldo::ml
