#include "waldo/ml/svm.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <locale>
#include <ostream>
#include <random>
#include <stdexcept>

#include "waldo/codec/codec.hpp"
#include "waldo/ml/metrics.hpp"

namespace waldo::ml {

double Svm::kernel(std::span<const double> a, std::span<const double> b) const {
  if (config_.kernel == SvmKernel::kLinear) return dot(a, b);
  return std::exp(-gamma_ * squared_distance(a, b));
}

void Svm::fit(const Matrix& x_raw, std::span<const int> y_raw) {
  if (x_raw.rows() == 0 || x_raw.rows() != y_raw.size()) {
    throw std::invalid_argument("svm: bad training set");
  }
  const std::size_t n = x_raw.rows();

  bool has_safe = false, has_not_safe = false;
  for (const int label : y_raw) {
    (label == kSafe ? has_safe : has_not_safe) = true;
  }
  if (!has_safe || !has_not_safe) {
    single_class_ = true;
    only_class_ = has_safe ? kSafe : kNotSafe;
    sv_ = Matrix();
    sv_coef_.clear();
    return;
  }
  single_class_ = false;

  if (config_.standardize) {
    scaler_.fit(x_raw);
  } else {
    scaler_.set_identity(x_raw.cols());
  }
  const Matrix x = scaler_.transform(x_raw);
  gamma_ = config_.gamma > 0.0
               ? config_.gamma
               : 1.0 / static_cast<double>(std::max<std::size_t>(1, x.cols()));

  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = (y_raw[i] == kSafe) ? 1.0 : -1.0;

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  // Error cache: E_i = f(x_i) - y_i. With all alphas zero, f = 0.
  std::vector<double> err(n);
  for (std::size_t i = 0; i < n; ++i) err[i] = -y[i];

  std::mt19937_64 rng(config_.seed);
  const double c_box = config_.c;
  const double tol = config_.tolerance;
  std::size_t updates = 0;
  std::size_t stall_passes = 0;

  const auto try_pair = [&](std::size_t i, std::size_t j) -> bool {
    if (i == j) return false;
    const double kii = kernel(x.row(i), x.row(i));
    const double kjj = kernel(x.row(j), x.row(j));
    const double kij = kernel(x.row(i), x.row(j));
    const double eta = kii + kjj - 2.0 * kij;
    if (eta <= 1e-12) return false;

    double lo, hi;
    if (y[i] != y[j]) {
      lo = std::max(0.0, alpha[j] - alpha[i]);
      hi = std::min(c_box, c_box + alpha[j] - alpha[i]);
    } else {
      lo = std::max(0.0, alpha[i] + alpha[j] - c_box);
      hi = std::min(c_box, alpha[i] + alpha[j]);
    }
    if (lo >= hi) return false;

    const double aj_old = alpha[j];
    const double ai_old = alpha[i];
    double aj = aj_old + y[j] * (err[i] - err[j]) / eta;
    aj = std::clamp(aj, lo, hi);
    if (std::abs(aj - aj_old) < 1e-7 * (aj + aj_old + 1e-7)) return false;
    const double ai = ai_old + y[i] * y[j] * (aj_old - aj);

    // Bias update (Platt).
    const double b1 = b - err[i] - y[i] * (ai - ai_old) * kii -
                      y[j] * (aj - aj_old) * kij;
    const double b2 = b - err[j] - y[i] * (ai - ai_old) * kij -
                      y[j] * (aj - aj_old) * kjj;
    double b_new;
    if (ai > 0.0 && ai < c_box) {
      b_new = b1;
    } else if (aj > 0.0 && aj < c_box) {
      b_new = b2;
    } else {
      b_new = (b1 + b2) / 2.0;
    }

    const double di = y[i] * (ai - ai_old);
    const double dj = y[j] * (aj - aj_old);
    const double db = b_new - b;
    for (std::size_t k = 0; k < n; ++k) {
      err[k] += di * kernel(x.row(i), x.row(k)) +
                dj * kernel(x.row(j), x.row(k)) + db;
    }
    alpha[i] = ai;
    alpha[j] = aj;
    b = b_new;
    ++updates;
    return true;
  };

  const auto second_choice = [&](std::size_t i) -> std::size_t {
    // Heuristic: maximise |E_i - E_j| over non-bound points; fall back to a
    // random index.
    std::size_t best = n;
    double best_gap = -1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (alpha[j] <= 0.0 || alpha[j] >= c_box) continue;
      const double gap = std::abs(err[i] - err[j]);
      if (gap > best_gap) {
        best_gap = gap;
        best = j;
      }
    }
    if (best != n && best_gap > 1e-12) return best;
    std::uniform_int_distribution<std::size_t> pick(0, n - 2);
    std::size_t j = pick(rng);
    if (j >= i) ++j;
    return j;
  };

  bool examine_all = true;
  while (stall_passes < config_.max_passes && updates < config_.max_updates) {
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!examine_all && (alpha[i] <= 0.0 || alpha[i] >= c_box)) continue;
      const double r = err[i] * y[i];
      const bool violates = (r < -tol && alpha[i] < c_box) ||
                            (r > tol && alpha[i] > 0.0);
      if (!violates) continue;
      if (try_pair(i, second_choice(i))) ++changed;
      if (updates >= config_.max_updates) break;
    }
    if (changed == 0) {
      if (examine_all) {
        ++stall_passes;
      } else {
        examine_all = true;
        continue;
      }
    } else {
      stall_passes = 0;
    }
    examine_all = !examine_all;
  }

  // Collect support vectors.
  std::vector<std::size_t> sv_idx;
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-9) sv_idx.push_back(i);
  }
  sv_ = x.take_rows(sv_idx);
  sv_coef_.resize(sv_idx.size());
  for (std::size_t s = 0; s < sv_idx.size(); ++s) {
    sv_coef_[s] = alpha[sv_idx[s]] * y[sv_idx[s]];
  }
  bias_ = b;
}

double Svm::decision_value(std::span<const double> x_raw) const {
  if (single_class_) return only_class_ == kSafe ? 1.0 : -1.0;
  if (sv_.rows() == 0) throw std::logic_error("svm: not trained");
  const std::vector<double> x = scaler_.transform(x_raw);
  double f = bias_;
  for (std::size_t s = 0; s < sv_.rows(); ++s) {
    f += sv_coef_[s] * kernel(sv_.row(s), x);
  }
  return f;
}

int Svm::predict(std::span<const double> x) const {
  if (single_class_) return only_class_;
  return decision_value(x) >= 0.0 ? kSafe : kNotSafe;
}

void Svm::save(std::ostream& out) const {
  out.imbue(std::locale::classic());
  out << std::setprecision(17);
  out << "svm " << (config_.kernel == SvmKernel::kRbf ? "rbf" : "linear")
      << " " << gamma_ << " " << bias_ << " " << (single_class_ ? 1 : 0)
      << " " << only_class_ << " " << sv_.rows() << " " << sv_.cols() << "\n";
  if (single_class_) return;
  scaler_.save(out);
  for (std::size_t s = 0; s < sv_.rows(); ++s) {
    out << sv_coef_[s];
    for (const double v : sv_.row(s)) out << " " << v;
    out << "\n";
  }
}

void Svm::load(std::istream& in) {
  in.imbue(std::locale::classic());
  std::string tag, kernel_name;
  int single = 0;
  std::size_t rows = 0, cols = 0;
  in >> tag >> kernel_name >> gamma_ >> bias_ >> single >> only_class_ >>
      rows >> cols;
  if (tag != "svm") throw std::runtime_error("bad svm descriptor");
  config_.kernel =
      kernel_name == "rbf" ? SvmKernel::kRbf : SvmKernel::kLinear;
  single_class_ = single != 0;
  sv_ = Matrix(single_class_ ? 0 : rows, cols);
  sv_coef_.assign(single_class_ ? 0 : rows, 0.0);
  if (single_class_) return;
  scaler_.load(in);
  for (std::size_t s = 0; s < rows; ++s) {
    in >> sv_coef_[s];
    for (std::size_t c = 0; c < cols; ++c) in >> sv_(s, c);
  }
  if (!in) throw std::runtime_error("truncated svm descriptor");
}

void Svm::save(codec::Writer& out) const {
  out.u8(static_cast<std::uint8_t>(WireFamily::kSvm));
  out.u8(config_.kernel == SvmKernel::kRbf ? 1 : 0);
  out.f64(gamma_);
  out.f64(bias_);
  out.u8(single_class_ ? 1 : 0);
  out.i64(only_class_);
  if (single_class_) return;
  scaler_.save(out);
  out.u64(sv_.rows());
  out.u64(sv_.cols());
  out.f64_array(sv_coef_);
  for (std::size_t s = 0; s < sv_.rows(); ++s) {
    for (const double v : sv_.row(s)) out.f64(v);
  }
}

void Svm::load(codec::Reader& in) {
  if (in.u8() != static_cast<std::uint8_t>(WireFamily::kSvm)) {
    throw codec::Error("payload is not an svm");
  }
  const std::uint8_t kernel_tag = in.u8();
  if (kernel_tag > 1) throw codec::Error("unknown svm kernel tag");
  config_.kernel = kernel_tag == 1 ? SvmKernel::kRbf : SvmKernel::kLinear;
  gamma_ = in.f64();
  bias_ = in.f64();
  const std::uint8_t single = in.u8();
  if (single > 1) throw codec::Error("bad svm single-class flag");
  single_class_ = single != 0;
  only_class_ = static_cast<int>(in.i64());
  if (single_class_) {
    sv_ = Matrix();
    sv_coef_.clear();
    return;
  }
  scaler_.load(in);
  const std::size_t rows = in.count(8);
  const auto cols = static_cast<std::size_t>(in.u64());
  sv_coef_ = in.f64_array();
  if (sv_coef_.size() != rows) {
    throw codec::Error("svm coefficient count mismatch");
  }
  if (rows != 0 && cols > in.remaining() / 8 / rows) {
    throw codec::Error("svm support-vector block exceeds payload");
  }
  sv_ = Matrix(rows, cols);
  for (std::size_t s = 0; s < rows; ++s) {
    for (std::size_t c = 0; c < cols; ++c) sv_(s, c) = in.f64();
  }
}

}  // namespace waldo::ml
