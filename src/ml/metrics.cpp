#include "waldo/ml/metrics.hpp"

#include <stdexcept>

namespace waldo::ml {

void ConfusionMatrix::add(int predicted, int actual) noexcept {
  if (actual == kSafe) {
    if (predicted == kSafe) {
      ++true_safe;
    } else {
      ++false_not_safe;
    }
  } else {
    if (predicted == kSafe) {
      ++false_safe;
    } else {
      ++true_not_safe;
    }
  }
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) noexcept {
  true_safe += other.true_safe;
  false_safe += other.false_safe;
  true_not_safe += other.true_not_safe;
  false_not_safe += other.false_not_safe;
}

double ConfusionMatrix::fp_rate() const noexcept {
  const std::size_t denom = actually_not_safe();
  return denom == 0 ? 0.0
                    : static_cast<double>(false_safe) /
                          static_cast<double>(denom);
}

double ConfusionMatrix::fn_rate() const noexcept {
  const std::size_t denom = actually_safe();
  return denom == 0 ? 0.0
                    : static_cast<double>(false_not_safe) /
                          static_cast<double>(denom);
}

double ConfusionMatrix::error_rate() const noexcept {
  const std::size_t n = total();
  return n == 0 ? 0.0
                : static_cast<double>(false_safe + false_not_safe) /
                      static_cast<double>(n);
}

ConfusionMatrix compare_labels(std::span<const int> predicted,
                               std::span<const int> actual) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("label sequences differ in length");
  }
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    cm.add(predicted[i], actual[i]);
  }
  return cm;
}

}  // namespace waldo::ml
