// Gaussian Naive Bayes — the compact probabilistic classifier the paper
// evaluates against SVM. Its descriptor is an order of magnitude smaller
// (per-class, per-feature mean and variance only), trading accuracy near
// the coverage border where weak-signal features resemble noise (the FN
// inflation the paper reports for NB).
#pragma once

#include <array>

#include "waldo/ml/classifier.hpp"

namespace waldo::ml {

class GaussianNaiveBayes final : public Classifier {
 public:
  void fit(const Matrix& x, std::span<const int> y) override;
  [[nodiscard]] int predict(std::span<const double> x) const override;
  [[nodiscard]] std::string kind() const override { return "naive_bayes"; }
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;
  void save(codec::Writer& out) const override;
  void load(codec::Reader& in) override;

  /// Log posterior ratio log P(safe|x) - log P(not_safe|x).
  [[nodiscard]] double decision_value(std::span<const double> x) const;

 private:
  struct ClassModel {
    double log_prior = 0.0;
    std::vector<double> mean;
    std::vector<double> var;
  };
  std::array<ClassModel, 2> classes_;  // [kNotSafe, kSafe]
  std::size_t dims_ = 0;
  bool single_class_ = false;
  int only_class_ = 0;
};

}  // namespace waldo::ml
