// CART-style binary decision tree (Gini impurity, axis-aligned splits).
// The paper tried decision trees, observed near-zero training error, and
// rejected them as overfit-prone on sparse road-following data; the tree is
// kept both as a classifier option and as the subject of that ablation.
#pragma once

#include <cstdint>

#include "waldo/ml/classifier.hpp"

namespace waldo::ml {

struct DecisionTreeConfig {
  std::size_t max_depth = 16;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeConfig config = {}) : config_(config) {}

  void fit(const Matrix& x, std::span<const int> y) override;
  [[nodiscard]] int predict(std::span<const double> x) const override;
  [[nodiscard]] std::string kind() const override { return "decision_tree"; }
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;
  void save(codec::Writer& out) const override;
  void load(codec::Reader& in) override;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

 private:
  struct Node {
    // Leaf iff feature < 0.
    int feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    int label = 0;
  };

  std::int32_t build(const Matrix& x, std::span<const int> y,
                     std::vector<std::size_t>& idx, std::size_t depth);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
  std::size_t depth_ = 0;
};

}  // namespace waldo::ml
