// Lloyd's k-means with k-means++ seeding — the localities-identification
// step of the Model Constructor (Section 3.2): co-located readings are
// clustered and one classifier is trained per cluster.
#pragma once

#include <cstdint>

#include "waldo/ml/matrix.hpp"

namespace waldo::ml {

struct KMeansConfig {
  std::size_t k = 3;
  std::size_t max_iterations = 100;
  double tolerance = 1e-6;  ///< relative inertia improvement to stop
  std::uint64_t seed = 11;
  /// Worker threads for the assignment step (0 = all hardware threads,
  /// 1 = serial). Assignments are exact nearest-centroid computations and
  /// the reductions (inertia, centroid sums) stay serial, so the result is
  /// bit-identical at every thread count.
  unsigned threads = 1;
};

struct KMeansResult {
  Matrix centroids;                     ///< k x d
  std::vector<std::size_t> assignment;  ///< row -> cluster id
  double inertia = 0.0;                 ///< sum of squared distances
  std::size_t iterations = 0;
};

/// Clusters the rows of `x`. k is clamped to the number of rows. Empty
/// clusters are re-seeded from the point farthest from its centroid.
[[nodiscard]] KMeansResult kmeans(const Matrix& x, const KMeansConfig& config);

/// Index of the centroid nearest to `x`.
[[nodiscard]] std::size_t nearest_centroid(const Matrix& centroids,
                                           std::span<const double> x);

}  // namespace waldo::ml
