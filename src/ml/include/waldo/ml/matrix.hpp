// Small dense row-major matrix used as the feature container of the ML
// library. Not a linear-algebra package: classifiers here need row access,
// dot products and column statistics, nothing more.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace waldo::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from row vectors; all rows must share one length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return std::span<double>(data_).subspan(r * cols_, cols_);
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return std::span<const double>(data_).subspan(r * cols_, cols_);
  }

  /// Copy of selected rows, in the given order.
  [[nodiscard]] Matrix take_rows(std::span<const std::size_t> idx) const;

  /// Copy of the first `k` columns of every row.
  [[nodiscard]] Matrix take_cols(std::size_t k) const;

  void push_row(std::span<const double> row);

  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance between equal-length vectors.
[[nodiscard]] double squared_distance(std::span<const double> a,
                                      std::span<const double> b);

}  // namespace waldo::ml
