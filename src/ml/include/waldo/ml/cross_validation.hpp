// k-fold cross validation — the paper's evaluation protocol (Section 4.1):
// 10 folds, train on 90 %, test on 10 %, repeat to cover all data.
#pragma once

#include <cstdint>

#include "waldo/ml/classifier.hpp"
#include "waldo/ml/metrics.hpp"

namespace waldo::ml {

struct CrossValidationConfig {
  std::size_t folds = 10;
  std::uint64_t seed = 17;
  /// Optional cap on the training rows per fold (uniform random subsample).
  /// Keeps kernel-SVM training tractable in wide parameter sweeps; 0 means
  /// use every training row. Capping is an evaluation-cost knob only — it
  /// never touches test rows.
  std::size_t max_train_samples = 0;
  /// Worker threads for the per-fold fan-out (0 = all hardware threads,
  /// 1 = serial). Folds are independent — the fold split and each fold's
  /// subsample seed (seed + f) are fixed up front — so results are
  /// identical at every thread count. The factory must be safe to invoke
  /// concurrently (it only constructs fresh classifiers).
  unsigned threads = 1;
};

struct CrossValidationResult {
  ConfusionMatrix overall;
  std::vector<ConfusionMatrix> per_fold;
};

/// Shuffled fold assignment: returns `folds` disjoint index sets covering
/// [0, n).
[[nodiscard]] std::vector<std::vector<std::size_t>> kfold_indices(
    std::size_t n, std::size_t folds, std::uint64_t seed);

/// Runs k-fold CV of `factory`-produced classifiers on (x, y).
[[nodiscard]] CrossValidationResult cross_validate(
    const Matrix& x, std::span<const int> y, const ClassifierFactory& factory,
    const CrossValidationConfig& config = {});

/// Trains on a random `train_fraction` of the data (after holding out a
/// random `test_fraction`), evaluates on the held-out set — the protocol of
/// the paper's incremental-training study (Fig. 14).
[[nodiscard]] ConfusionMatrix evaluate_training_fraction(
    const Matrix& x, std::span<const int> y, const ClassifierFactory& factory,
    double train_fraction, double test_fraction = 0.1,
    std::uint64_t seed = 17, std::size_t max_train_samples = 0);

}  // namespace waldo::ml
