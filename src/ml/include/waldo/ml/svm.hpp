// C-SVC trained with sequential minimal optimization (Platt's SMO with an
// error cache and max-|E_i - E_j| second-choice heuristic). RBF kernel by
// default — the decision regions Waldo needs (coverage disks, shadowing
// pockets) are not linearly separable in location coordinates. Features are
// standardised internally and the scaler ships in the descriptor, so a WSD
// can feed raw (location, RSS, CFT, AFT) vectors.
#pragma once

#include <cstdint>

#include "waldo/ml/classifier.hpp"
#include "waldo/ml/standardizer.hpp"

namespace waldo::ml {

enum class SvmKernel { kRbf, kLinear };

struct SvmConfig {
  SvmKernel kernel = SvmKernel::kRbf;
  double c = 10.0;          ///< box constraint
  /// RBF gamma; <= 0 selects the "scale" heuristic 1 / n_features (features
  /// are already unit-variance after internal standardisation).
  double gamma = -1.0;
  double tolerance = 1e-3;  ///< KKT violation tolerance
  /// Standardise features internally (recommended). Setting this false
  /// reproduces the paper's OpenCV pipeline, which fed raw feature units
  /// (degrees of latitude next to dB of pilot power) to the kernel.
  bool standardize = true;
  std::size_t max_passes = 5;      ///< stall passes before stopping
  std::size_t max_updates = 200'000;  ///< hard iteration guard
  std::uint64_t seed = 7;   ///< tie-breaking randomness
};

class Svm final : public Classifier {
 public:
  explicit Svm(SvmConfig config = {}) : config_(config) {}

  void fit(const Matrix& x, std::span<const int> y) override;
  [[nodiscard]] int predict(std::span<const double> x) const override;
  [[nodiscard]] std::string kind() const override { return "svm"; }
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;
  void save(codec::Writer& out) const override;
  void load(codec::Reader& in) override;

  /// Signed decision value f(x); >= 0 predicts safe.
  [[nodiscard]] double decision_value(std::span<const double> x) const;

  [[nodiscard]] std::size_t num_support_vectors() const noexcept {
    return sv_.rows();
  }
  [[nodiscard]] const SvmConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double kernel(std::span<const double> a,
                              std::span<const double> b) const;

  SvmConfig config_;
  Standardizer scaler_;
  Matrix sv_;                      ///< support vectors (standardised)
  std::vector<double> sv_coef_;    ///< alpha_i * y_i
  double bias_ = 0.0;
  double gamma_ = 1.0;             ///< resolved gamma
  bool single_class_ = false;
  int only_class_ = 0;
};

}  // namespace waldo::ml
