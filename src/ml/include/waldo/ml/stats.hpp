// Statistics toolbox: summary stats and quantiles (boxplots of Figs. 10/11,
// CDF series everywhere), Pearson correlation (Fig. 7), and the one-way
// ANOVA F-test with a real F-distribution p-value (feature selection,
// Section 3.2).
#pragma once

#include <span>
#include <vector>

namespace waldo::ml {

struct SummaryStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] SummaryStats summarize(std::span<const double> values);

/// Linear-interpolated quantile, q in [0, 1]. Sorts a copy.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Boxplot five-number summary plus the mean.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

[[nodiscard]] BoxStats box_stats(std::span<const double> values);

/// Empirical CDF evaluated at `points` equally spaced quantile levels;
/// returns {value, cumulative_probability} pairs for printing CDF series.
struct CdfPoint {
  double value = 0.0;
  double probability = 0.0;
};
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(
    std::span<const double> values, std::size_t points = 20);

/// Pearson product-moment correlation; 0 when either side is constant.
[[nodiscard]] double pearson_correlation(std::span<const double> x,
                                         std::span<const double> y);

/// One-way ANOVA between groups.
struct AnovaResult {
  double f_statistic = 0.0;
  double p_value = 1.0;
  double df_between = 0.0;
  double df_within = 0.0;
};
[[nodiscard]] AnovaResult anova_one_way(
    std::span<const std::vector<double>> groups);

/// Regularised incomplete beta function I_x(a, b) (continued fraction),
/// exposed because the F- and t-distribution tails reduce to it.
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// Upper-tail probability P(F >= f) for an F(d1, d2) distribution.
[[nodiscard]] double f_distribution_sf(double f, double d1, double d2);

}  // namespace waldo::ml
