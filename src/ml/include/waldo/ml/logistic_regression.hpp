// L2-regularised logistic regression, fitted by iteratively reweighted
// least squares (Newton's method) — the "regression analysis-based
// classifier" family the paper lists among Waldo-friendly models: its
// descriptor is a single weight vector, the smallest of any model here.
#pragma once

#include "waldo/ml/classifier.hpp"
#include "waldo/ml/standardizer.hpp"

namespace waldo::ml {

struct LogisticRegressionConfig {
  double l2 = 1e-3;            ///< ridge penalty (also stabilises IRLS)
  std::size_t max_iterations = 50;
  double tolerance = 1e-8;     ///< stop when weights move less than this
};

class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionConfig config = {})
      : config_(config) {}

  void fit(const Matrix& x, std::span<const int> y) override;
  [[nodiscard]] int predict(std::span<const double> x) const override;
  [[nodiscard]] std::string kind() const override {
    return "logistic_regression";
  }
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;
  void save(codec::Writer& out) const override;
  void load(codec::Reader& in) override;

  /// P(safe | x).
  [[nodiscard]] double probability(std::span<const double> x) const;
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

 private:
  [[nodiscard]] double linear(std::span<const double> standardized) const;

  LogisticRegressionConfig config_;
  Standardizer scaler_;
  std::vector<double> weights_;  ///< [bias, w_1 .. w_d]
  bool single_class_ = false;
  int only_class_ = 0;
};

}  // namespace waldo::ml
