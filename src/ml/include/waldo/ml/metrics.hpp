// Detection metrics with the paper's polarity. The positive class (label 1)
// is "safe — channel vacant, white space available"; label 0 is "not safe".
//   false positive: declared vacant while occupied  -> safety violation
//   false negative: declared occupied while vacant  -> lost opportunity
#pragma once

#include <cstddef>
#include <span>

namespace waldo::ml {

/// Class labels used across the library.
inline constexpr int kNotSafe = 0;
inline constexpr int kSafe = 1;

struct ConfusionMatrix {
  std::size_t true_safe = 0;       ///< predicted safe,   actually safe
  std::size_t false_safe = 0;      ///< predicted safe,   actually NOT safe
  std::size_t true_not_safe = 0;   ///< predicted not,    actually NOT safe
  std::size_t false_not_safe = 0;  ///< predicted not,    actually safe

  void add(int predicted, int actual) noexcept;
  void merge(const ConfusionMatrix& other) noexcept;

  [[nodiscard]] std::size_t total() const noexcept {
    return true_safe + false_safe + true_not_safe + false_not_safe;
  }
  [[nodiscard]] std::size_t actually_safe() const noexcept {
    return true_safe + false_not_safe;
  }
  [[nodiscard]] std::size_t actually_not_safe() const noexcept {
    return true_not_safe + false_safe;
  }

  /// FP rate: fraction of occupied cases declared vacant (safety; keep ~0).
  [[nodiscard]] double fp_rate() const noexcept;
  /// FN rate: fraction of vacant cases declared occupied (efficiency).
  [[nodiscard]] double fn_rate() const noexcept;
  /// Total misclassification fraction.
  [[nodiscard]] double error_rate() const noexcept;
};

/// Confusion matrix of two aligned label sequences.
[[nodiscard]] ConfusionMatrix compare_labels(std::span<const int> predicted,
                                             std::span<const int> actual);

}  // namespace waldo::ml
