// Per-column z-score standardisation. Feature columns mix units (meters of
// easting vs dB of pilot power), so kernel methods must normalise; the
// fitted parameters ship inside the model descriptor.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "waldo/ml/matrix.hpp"

namespace waldo::codec {
class Reader;
class Writer;
}  // namespace waldo::codec

namespace waldo::ml {

class Standardizer {
 public:
  /// Learns column means and standard deviations. Constant columns get a
  /// unit scale so they pass through unchanged (centred).
  void fit(const Matrix& x);

  /// Installs the identity transform for `dims` columns (mean 0, scale 1):
  /// raw feature values pass through untouched. Used by the paper-faithful
  /// SVM mode, which — like the paper's OpenCV pipeline — feeds raw
  /// feature units to the kernel.
  void set_identity(std::size_t dims);

  [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }
  [[nodiscard]] std::size_t dims() const noexcept { return mean_.size(); }

  [[nodiscard]] Matrix transform(const Matrix& x) const;
  [[nodiscard]] std::vector<double> transform(
      std::span<const double> row) const;

  /// Legacy text (v0) form; streams are imbued with the classic locale.
  void save(std::ostream& out) const;
  void load(std::istream& in);

  /// Binary (v1) payload over the waldo::codec wire format.
  void save(codec::Writer& out) const;
  void load(codec::Reader& in);

  [[nodiscard]] const std::vector<double>& mean() const noexcept {
    return mean_;
  }
  [[nodiscard]] const std::vector<double>& scale() const noexcept {
    return scale_;
  }

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;
};

}  // namespace waldo::ml
