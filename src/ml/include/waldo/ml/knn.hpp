// k-nearest-neighbours classifier. Used both as a Waldo-compatible model
// and as the measurement-augmented-database interpolation baseline family
// (KNN over location, paper Section 4.1). Deliberately NOT Waldo-friendly:
// its "descriptor" is the entire training set, which the model-size bench
// quantifies.
#pragma once

#include "waldo/ml/classifier.hpp"
#include "waldo/ml/standardizer.hpp"

namespace waldo::ml {

struct KnnConfig {
  std::size_t k = 5;
};

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(KnnConfig config = {}) : config_(config) {}

  void fit(const Matrix& x, std::span<const int> y) override;
  [[nodiscard]] int predict(std::span<const double> x) const override;
  [[nodiscard]] std::string kind() const override { return "knn"; }
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;
  void save(codec::Writer& out) const override;
  void load(codec::Reader& in) override;

 private:
  KnnConfig config_;
  Standardizer scaler_;
  Matrix train_;
  std::vector<int> labels_;
};

}  // namespace waldo::ml
