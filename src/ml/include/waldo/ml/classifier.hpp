// Binary-classifier interface shared by every model Waldo can ship to a
// white-space device. Models must be (de)serializable to a compact text
// descriptor — descriptor size is itself an evaluation metric of the paper
// (Section 5: ~4 kB Naive Bayes vs ~40 kB SVM).
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "waldo/ml/matrix.hpp"

namespace waldo::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on feature rows `x` with labels `y` (kSafe / kNotSafe).
  virtual void fit(const Matrix& x, std::span<const int> y) = 0;

  /// Predicted label for one feature vector. Requires a trained model.
  [[nodiscard]] virtual int predict(std::span<const double> x) const = 0;

  /// Predictions for every row of `x`.
  [[nodiscard]] std::vector<int> predict_all(const Matrix& x) const;

  /// Short model-family identifier ("svm", "naive_bayes", ...).
  [[nodiscard]] virtual std::string kind() const = 0;

  /// Writes / reads the full model descriptor. The descriptor is what a
  /// WSD downloads from the spectrum database.
  virtual void save(std::ostream& out) const = 0;
  virtual void load(std::istream& in) = 0;

  /// Descriptor size in bytes (serialises to a string internally).
  [[nodiscard]] std::size_t descriptor_size_bytes() const;
};

/// A callable producing fresh, untrained classifiers — what cross
/// validation and the per-cluster model constructor consume.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

}  // namespace waldo::ml
