// Binary-classifier interface shared by every model Waldo can ship to a
// white-space device. Models must be (de)serializable to a compact
// descriptor — descriptor size is itself an evaluation metric of the paper
// (Section 5: ~4 kB Naive Bayes vs ~40 kB SVM). Descriptors have two wire
// forms: the compact binary waldo::codec format (v1, the default) and the
// legacy text format (v0, kept for old devices and files).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "waldo/ml/matrix.hpp"

namespace waldo::codec {
class Reader;
class Writer;
}  // namespace waldo::codec

namespace waldo::ml {

/// One-byte family tag opening every binary classifier payload; a load
/// that sees the wrong tag rejects the descriptor immediately instead of
/// misinterpreting another family's doubles. Values are wire format —
/// append only, never renumber (docs/WIRE_FORMAT.md).
enum class WireFamily : std::uint8_t {
  kStandardizer = 0,
  kSvm = 1,
  kNaiveBayes = 2,
  kDecisionTree = 3,
  kKnn = 4,
  kLogisticRegression = 5,
};

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on feature rows `x` with labels `y` (kSafe / kNotSafe).
  virtual void fit(const Matrix& x, std::span<const int> y) = 0;

  /// Predicted label for one feature vector. Requires a trained model.
  [[nodiscard]] virtual int predict(std::span<const double> x) const = 0;

  /// Predictions for every row of `x`.
  [[nodiscard]] std::vector<int> predict_all(const Matrix& x) const;

  /// Short model-family identifier ("svm", "naive_bayes", ...).
  [[nodiscard]] virtual std::string kind() const = 0;

  /// Writes / reads the legacy text (v0) descriptor. Implementations
  /// imbue std::locale::classic() so a comma-decimal global locale cannot
  /// corrupt the doubles on round trip.
  virtual void save(std::ostream& out) const = 0;
  virtual void load(std::istream& in) = 0;

  /// Writes / reads the binary (v1) payload: a WireFamily tag byte
  /// followed by the family fields. Raw IEEE-754 doubles — round trips
  /// are bit-exact. The descriptor is what a WSD downloads from the
  /// spectrum database.
  virtual void save(codec::Writer& out) const = 0;
  virtual void load(codec::Reader& in) = 0;

  /// Binary (v1) descriptor size in bytes, container overhead included
  /// (serialises to a string internally).
  [[nodiscard]] std::size_t descriptor_size_bytes() const;
};

/// A callable producing fresh, untrained classifiers — what cross
/// validation and the per-cluster model constructor consume.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

}  // namespace waldo::ml
