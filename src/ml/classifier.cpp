#include "waldo/ml/classifier.hpp"

#include "waldo/codec/codec.hpp"

namespace waldo::ml {

std::vector<int> Classifier::predict_all(const Matrix& x) const {
  std::vector<int> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out.push_back(predict(x.row(r)));
  return out;
}

std::size_t Classifier::descriptor_size_bytes() const {
  codec::Writer w;
  save(w);
  return std::move(w).finish().size();
}

}  // namespace waldo::ml
