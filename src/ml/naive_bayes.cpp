#include "waldo/ml/naive_bayes.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <locale>
#include <numbers>
#include <ostream>
#include <stdexcept>

#include "waldo/codec/codec.hpp"
#include "waldo/ml/metrics.hpp"

namespace waldo::ml {

namespace {
constexpr double kVarFloor = 1e-9;  // keeps log-densities finite
}

void GaussianNaiveBayes::fit(const Matrix& x, std::span<const int> y) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    throw std::invalid_argument("naive bayes: bad training set");
  }
  dims_ = x.cols();
  std::array<std::size_t, 2> counts{0, 0};
  for (const int label : y) ++counts[label == kSafe ? 1 : 0];

  if (counts[0] == 0 || counts[1] == 0) {
    single_class_ = true;
    only_class_ = counts[1] > 0 ? kSafe : kNotSafe;
    return;
  }
  single_class_ = false;

  for (int cls = 0; cls < 2; ++cls) {
    auto& m = classes_[static_cast<std::size_t>(cls)];
    m.mean.assign(dims_, 0.0);
    m.var.assign(dims_, 0.0);
    m.log_prior = std::log(static_cast<double>(counts[static_cast<std::size_t>(cls)]) /
                           static_cast<double>(y.size()));
  }
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto& m = classes_[y[r] == kSafe ? 1 : 0];
    for (std::size_t c = 0; c < dims_; ++c) m.mean[c] += x(r, c);
  }
  for (int cls = 0; cls < 2; ++cls) {
    auto& m = classes_[static_cast<std::size_t>(cls)];
    for (double& v : m.mean) {
      v /= static_cast<double>(counts[static_cast<std::size_t>(cls)]);
    }
  }
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto& m = classes_[y[r] == kSafe ? 1 : 0];
    for (std::size_t c = 0; c < dims_; ++c) {
      const double d = x(r, c) - m.mean[c];
      m.var[c] += d * d;
    }
  }
  for (int cls = 0; cls < 2; ++cls) {
    auto& m = classes_[static_cast<std::size_t>(cls)];
    for (double& v : m.var) {
      v = std::max(v / static_cast<double>(counts[static_cast<std::size_t>(cls)]),
                   kVarFloor);
    }
  }
}

double GaussianNaiveBayes::decision_value(std::span<const double> x) const {
  if (x.size() != dims_) {
    throw std::invalid_argument("naive bayes: dimension mismatch");
  }
  double score[2];
  for (int cls = 0; cls < 2; ++cls) {
    const auto& m = classes_[static_cast<std::size_t>(cls)];
    double s = m.log_prior;
    for (std::size_t c = 0; c < dims_; ++c) {
      const double d = x[c] - m.mean[c];
      s += -0.5 * std::log(2.0 * std::numbers::pi * m.var[c]) -
           d * d / (2.0 * m.var[c]);
    }
    score[cls] = s;
  }
  return score[1] - score[0];
}

int GaussianNaiveBayes::predict(std::span<const double> x) const {
  if (single_class_) return only_class_;
  if (dims_ == 0) throw std::logic_error("naive bayes: not trained");
  return decision_value(x) >= 0.0 ? kSafe : kNotSafe;
}

void GaussianNaiveBayes::save(std::ostream& out) const {
  out.imbue(std::locale::classic());
  out << std::setprecision(17);
  out << "naive_bayes " << dims_ << " " << (single_class_ ? 1 : 0) << " "
      << only_class_ << "\n";
  if (single_class_) return;
  for (const auto& m : classes_) {
    out << m.log_prior << "\n";
    for (const double v : m.mean) out << v << " ";
    out << "\n";
    for (const double v : m.var) out << v << " ";
    out << "\n";
  }
}

void GaussianNaiveBayes::load(std::istream& in) {
  in.imbue(std::locale::classic());
  std::string tag;
  int single = 0;
  in >> tag >> dims_ >> single >> only_class_;
  if (tag != "naive_bayes") {
    throw std::runtime_error("bad naive bayes descriptor");
  }
  single_class_ = single != 0;
  if (single_class_) return;
  for (auto& m : classes_) {
    in >> m.log_prior;
    m.mean.assign(dims_, 0.0);
    m.var.assign(dims_, 0.0);
    for (double& v : m.mean) in >> v;
    for (double& v : m.var) in >> v;
  }
  if (!in) throw std::runtime_error("truncated naive bayes descriptor");
}

void GaussianNaiveBayes::save(codec::Writer& out) const {
  out.u8(static_cast<std::uint8_t>(WireFamily::kNaiveBayes));
  out.u64(dims_);
  out.u8(single_class_ ? 1 : 0);
  out.i64(only_class_);
  if (single_class_) return;
  for (const auto& m : classes_) {
    out.f64(m.log_prior);
    out.f64_array(m.mean);
    out.f64_array(m.var);
  }
}

void GaussianNaiveBayes::load(codec::Reader& in) {
  if (in.u8() != static_cast<std::uint8_t>(WireFamily::kNaiveBayes)) {
    throw codec::Error("payload is not a naive bayes");
  }
  dims_ = static_cast<std::size_t>(in.u64());
  const std::uint8_t single = in.u8();
  if (single > 1) throw codec::Error("bad naive bayes single-class flag");
  single_class_ = single != 0;
  only_class_ = static_cast<int>(in.i64());
  if (single_class_) return;
  for (auto& m : classes_) {
    m.log_prior = in.f64();
    m.mean = in.f64_array();
    m.var = in.f64_array();
    if (m.mean.size() != dims_ || m.var.size() != dims_) {
      throw codec::Error("naive bayes class-parameter length mismatch");
    }
  }
}

}  // namespace waldo::ml
