#include "waldo/ml/knn.hpp"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <locale>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "waldo/codec/codec.hpp"
#include "waldo/ml/metrics.hpp"

namespace waldo::ml {

void KnnClassifier::fit(const Matrix& x, std::span<const int> y) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    throw std::invalid_argument("knn: bad training set");
  }
  scaler_.fit(x);
  train_ = scaler_.transform(x);
  labels_.assign(y.begin(), y.end());
}

int KnnClassifier::predict(std::span<const double> x_raw) const {
  if (train_.rows() == 0) throw std::logic_error("knn: not trained");
  const std::vector<double> x = scaler_.transform(x_raw);
  const std::size_t k = std::min(config_.k, train_.rows());

  std::vector<std::pair<double, std::size_t>> d2(train_.rows());
  for (std::size_t i = 0; i < train_.rows(); ++i) {
    d2[i] = {squared_distance(train_.row(i), x), i};
  }
  std::partial_sort(d2.begin(), d2.begin() + static_cast<std::ptrdiff_t>(k),
                    d2.end());
  std::size_t safe = 0;
  for (std::size_t i = 0; i < k; ++i) {
    safe += (labels_[d2[i].second] == kSafe) ? 1 : 0;
  }
  // Ties are conservative: not safe.
  return 2 * safe > k ? kSafe : kNotSafe;
}

void KnnClassifier::save(std::ostream& out) const {
  out.imbue(std::locale::classic());
  out << std::setprecision(17);
  out << "knn " << config_.k << " " << train_.rows() << " " << train_.cols()
      << "\n";
  scaler_.save(out);
  for (std::size_t r = 0; r < train_.rows(); ++r) {
    out << labels_[r];
    for (const double v : train_.row(r)) out << " " << v;
    out << "\n";
  }
}

void KnnClassifier::load(std::istream& in) {
  in.imbue(std::locale::classic());
  std::string tag;
  std::size_t rows = 0, cols = 0;
  in >> tag >> config_.k >> rows >> cols;
  if (tag != "knn") throw std::runtime_error("bad knn descriptor");
  scaler_.load(in);
  train_ = Matrix(rows, cols);
  labels_.assign(rows, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    in >> labels_[r];
    for (std::size_t c = 0; c < cols; ++c) in >> train_(r, c);
  }
  if (!in) throw std::runtime_error("truncated knn descriptor");
}

void KnnClassifier::save(codec::Writer& out) const {
  out.u8(static_cast<std::uint8_t>(WireFamily::kKnn));
  out.u64(config_.k);
  scaler_.save(out);
  out.u64(train_.rows());
  out.u64(train_.cols());
  for (std::size_t r = 0; r < train_.rows(); ++r) {
    out.i64(labels_[r]);
    for (const double v : train_.row(r)) out.f64(v);
  }
}

void KnnClassifier::load(codec::Reader& in) {
  if (in.u8() != static_cast<std::uint8_t>(WireFamily::kKnn)) {
    throw codec::Error("payload is not a knn");
  }
  config_.k = static_cast<std::size_t>(in.u64());
  scaler_.load(in);
  // Every row carries at least its label varint; the cols guard below
  // bounds the double block before the matrix is allocated.
  const std::size_t rows = in.count(1);
  const auto cols = static_cast<std::size_t>(in.u64());
  if (rows != 0 && cols > in.remaining() / rows / 8) {
    throw codec::Error("knn training block exceeds payload");
  }
  train_ = Matrix(rows, cols);
  labels_.assign(rows, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    labels_[r] = static_cast<int>(in.i64());
    for (std::size_t c = 0; c < cols; ++c) train_(r, c) = in.f64();
  }
}

}  // namespace waldo::ml
