#include "waldo/ml/matrix.hpp"

namespace waldo::ml {

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  if (rows.empty()) return m;
  m.rows_ = rows.size();
  m.cols_ = rows.front().size();
  m.data_.reserve(m.rows_ * m.cols_);
  for (const auto& r : rows) {
    if (r.size() != m.cols_) {
      throw std::invalid_argument("ragged rows in Matrix::from_rows");
    }
    m.data_.insert(m.data_.end(), r.begin(), r.end());
  }
  return m;
}

Matrix Matrix::take_rows(std::span<const std::size_t> idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] >= rows_) throw std::out_of_range("take_rows index");
    const auto src = row(idx[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

Matrix Matrix::take_cols(std::size_t k) const {
  if (k > cols_) throw std::out_of_range("take_cols count");
  Matrix out(rows_, k);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto src = row(r);
    std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(k),
              out.row(r).begin());
  }
  return out;
}

void Matrix::push_row(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  if (row.size() != cols_) {
    throw std::invalid_argument("push_row width mismatch");
  }
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("distance length mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace waldo::ml
