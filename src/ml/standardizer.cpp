#include "waldo/ml/standardizer.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <locale>
#include <ostream>
#include <stdexcept>

#include "waldo/codec/codec.hpp"
#include "waldo/ml/classifier.hpp"

namespace waldo::ml {

void Standardizer::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("standardizer: empty fit");
  const std::size_t d = x.cols();
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < d; ++c) mean_[c] += x(r, c);
  }
  for (double& m : mean_) m /= static_cast<double>(x.rows());
  std::vector<double> ss(d, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      const double dvt = x(r, c) - mean_[c];
      ss[c] += dvt * dvt;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    const double var = ss[c] / static_cast<double>(x.rows());
    scale_[c] = var > 1e-24 ? std::sqrt(var) : 1.0;
  }
}

void Standardizer::set_identity(std::size_t dims) {
  mean_.assign(dims, 0.0);
  scale_.assign(dims, 1.0);
}

Matrix Standardizer::transform(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("standardizer not fitted");
  if (x.cols() != dims()) {
    throw std::invalid_argument("standardizer: dimension mismatch");
  }
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - mean_[c]) / scale_[c];
    }
  }
  return out;
}

std::vector<double> Standardizer::transform(
    std::span<const double> row) const {
  if (!fitted()) throw std::logic_error("standardizer not fitted");
  if (row.size() != dims()) {
    throw std::invalid_argument("standardizer: dimension mismatch");
  }
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - mean_[c]) / scale_[c];
  }
  return out;
}

void Standardizer::save(std::ostream& out) const {
  out.imbue(std::locale::classic());
  out << std::setprecision(17);
  out << "standardizer " << mean_.size() << "\n";
  for (const double m : mean_) out << m << " ";
  out << "\n";
  for (const double s : scale_) out << s << " ";
  out << "\n";
}

void Standardizer::load(std::istream& in) {
  in.imbue(std::locale::classic());
  std::string tag;
  std::size_t d = 0;
  in >> tag >> d;
  if (tag != "standardizer") {
    throw std::runtime_error("bad standardizer descriptor");
  }
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  for (double& m : mean_) in >> m;
  for (double& s : scale_) in >> s;
  if (!in) throw std::runtime_error("truncated standardizer descriptor");
}

void Standardizer::save(codec::Writer& out) const {
  out.u8(static_cast<std::uint8_t>(WireFamily::kStandardizer));
  out.f64_array(mean_);
  out.f64_array(scale_);
}

void Standardizer::load(codec::Reader& in) {
  if (in.u8() != static_cast<std::uint8_t>(WireFamily::kStandardizer)) {
    throw codec::Error("payload is not a standardizer");
  }
  mean_ = in.f64_array();
  scale_ = in.f64_array();
  if (scale_.size() != mean_.size()) {
    throw codec::Error("standardizer mean/scale length mismatch");
  }
}

}  // namespace waldo::ml
