#include "waldo/rf/shadowing.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>
#include <utility>

namespace waldo::rf {

ShadowingField::ShadowingField(const geo::BoundingBox& region, double cell_m,
                               double sigma_db, double decorrelation_m,
                               std::uint64_t seed)
    : region_(region),
      cell_m_(cell_m),
      sigma_db_(sigma_db),
      decorrelation_m_(decorrelation_m) {
  if (cell_m <= 0.0 || decorrelation_m <= 0.0) {
    throw std::invalid_argument("shadowing scales must be positive");
  }
  if (region.width_m() <= 0.0 || region.height_m() <= 0.0) {
    throw std::invalid_argument("shadowing region must have positive area");
  }
  nx_ = static_cast<std::size_t>(region.width_m() / cell_m) + 2;
  ny_ = static_cast<std::size_t>(region.height_m() / cell_m) + 2;
  grid_.assign(nx_ * ny_, 0.0);

  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);

  // Lag-1 correlation of the Gudmundson model sampled at cell pitch.
  const double rho = std::exp(-cell_m_ / decorrelation_m_);
  const double innov = std::sqrt(1.0 - rho * rho);

  // Pass 1: AR(1) along each row (independent rows).
  for (std::size_t iy = 0; iy < ny_; ++iy) {
    grid_[iy * nx_] = gauss(rng);
    for (std::size_t ix = 1; ix < nx_; ++ix) {
      grid_[iy * nx_ + ix] =
          rho * grid_[iy * nx_ + ix - 1] + innov * gauss(rng);
    }
  }
  // Pass 2: AR(1) along each column over the row-filtered field; the result
  // is a unit-variance field with separable exponential correlation.
  for (std::size_t ix = 0; ix < nx_; ++ix) {
    for (std::size_t iy = 1; iy < ny_; ++iy) {
      grid_[iy * nx_ + ix] =
          rho * grid_[(iy - 1) * nx_ + ix] + innov * grid_[iy * nx_ + ix];
    }
  }
  for (double& v : grid_) v *= sigma_db_;
}

double ShadowingField::sample_db(const geo::EnuPoint& p) const noexcept {
  const double fx = std::clamp((p.east_m - region_.min_east_m) / cell_m_, 0.0,
                               static_cast<double>(nx_ - 1) - 1e-9);
  const double fy = std::clamp((p.north_m - region_.min_north_m) / cell_m_,
                               0.0, static_cast<double>(ny_ - 1) - 1e-9);
  const auto ix = static_cast<std::size_t>(fx);
  const auto iy = static_cast<std::size_t>(fy);
  const double tx = fx - static_cast<double>(ix);
  const double ty = fy - static_cast<double>(iy);
  const double v00 = at(ix, iy);
  const double v10 = at(std::min(ix + 1, nx_ - 1), iy);
  const double v01 = at(ix, std::min(iy + 1, ny_ - 1));
  const double v11 = at(std::min(ix + 1, nx_ - 1), std::min(iy + 1, ny_ - 1));
  const double a = v00 + tx * (v10 - v00);
  const double b = v01 + tx * (v11 - v01);
  return a + ty * (b - a);
}

ObstacleField::ObstacleField(std::vector<Obstacle> obstacles)
    : obstacles_(std::move(obstacles)) {}

ObstacleField ObstacleField::random(const geo::BoundingBox& region,
                                    std::size_t count, double min_radius_m,
                                    double max_radius_m, double min_atten_db,
                                    double max_atten_db, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ue(region.min_east_m,
                                            region.max_east_m);
  std::uniform_real_distribution<double> un(region.min_north_m,
                                            region.max_north_m);
  std::uniform_real_distribution<double> ur(min_radius_m, max_radius_m);
  std::uniform_real_distribution<double> ua(min_atten_db, max_atten_db);
  std::vector<Obstacle> obs;
  obs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    obs.push_back(Obstacle{.center = geo::EnuPoint{ue(rng), un(rng)},
                           .radius_m = ur(rng),
                           .attenuation_db = ua(rng)});
  }
  return ObstacleField(std::move(obs));
}

double ObstacleField::attenuation_db(const geo::EnuPoint& p) const noexcept {
  double total = 0.0;
  for (const Obstacle& o : obstacles_) {
    const double d = geo::distance_m(p, o.center);
    if (d <= o.radius_m) {
      total += o.attenuation_db;
    } else if (d < o.radius_m + o.taper_m) {
      const double t = (d - o.radius_m) / o.taper_m;  // 0..1 across taper
      total += o.attenuation_db * 0.5 *
               (1.0 + std::cos(std::numbers::pi * t));
    }
  }
  return total;
}

}  // namespace waldo::rf
