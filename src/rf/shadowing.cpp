#include "waldo/rf/shadowing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <random>
#include <stdexcept>
#include <utility>

namespace waldo::rf {

ShadowingField::ShadowingField(const geo::BoundingBox& region, double cell_m,
                               double sigma_db, double decorrelation_m,
                               std::uint64_t seed)
    : region_(region),
      cell_m_(cell_m),
      sigma_db_(sigma_db),
      decorrelation_m_(decorrelation_m) {
  if (cell_m <= 0.0 || decorrelation_m <= 0.0) {
    throw std::invalid_argument("shadowing scales must be positive");
  }
  if (region.width_m() <= 0.0 || region.height_m() <= 0.0) {
    throw std::invalid_argument("shadowing region must have positive area");
  }
  nx_ = static_cast<std::size_t>(region.width_m() / cell_m) + 2;
  ny_ = static_cast<std::size_t>(region.height_m() / cell_m) + 2;
  grid_.assign(nx_ * ny_, 0.0);

  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);

  // Lag-1 correlation of the Gudmundson model sampled at cell pitch.
  const double rho = std::exp(-cell_m_ / decorrelation_m_);
  const double innov = std::sqrt(1.0 - rho * rho);

  // Pass 1: AR(1) along each row (independent rows).
  for (std::size_t iy = 0; iy < ny_; ++iy) {
    grid_[iy * nx_] = gauss(rng);
    for (std::size_t ix = 1; ix < nx_; ++ix) {
      grid_[iy * nx_ + ix] =
          rho * grid_[iy * nx_ + ix - 1] + innov * gauss(rng);
    }
  }
  // Pass 2: AR(1) along each column over the row-filtered field; the result
  // is a unit-variance field with separable exponential correlation.
  for (std::size_t ix = 0; ix < nx_; ++ix) {
    for (std::size_t iy = 1; iy < ny_; ++iy) {
      grid_[iy * nx_ + ix] =
          rho * grid_[(iy - 1) * nx_ + ix] + innov * grid_[iy * nx_ + ix];
    }
  }
  for (double& v : grid_) v *= sigma_db_;
}

double ShadowingField::sample_db(const geo::EnuPoint& p) const noexcept {
  const double fx = std::clamp((p.east_m - region_.min_east_m) / cell_m_, 0.0,
                               static_cast<double>(nx_ - 1) - 1e-9);
  const double fy = std::clamp((p.north_m - region_.min_north_m) / cell_m_,
                               0.0, static_cast<double>(ny_ - 1) - 1e-9);
  const auto ix = static_cast<std::size_t>(fx);
  const auto iy = static_cast<std::size_t>(fy);
  const double tx = fx - static_cast<double>(ix);
  const double ty = fy - static_cast<double>(iy);
  const double v00 = at(ix, iy);
  const double v10 = at(std::min(ix + 1, nx_ - 1), iy);
  const double v01 = at(ix, std::min(iy + 1, ny_ - 1));
  const double v11 = at(std::min(ix + 1, nx_ - 1), std::min(iy + 1, ny_ - 1));
  const double a = v00 + tx * (v10 - v00);
  const double b = v01 + tx * (v11 - v01);
  return a + ty * (b - a);
}

ObstacleField::ObstacleField(std::vector<Obstacle> obstacles)
    : obstacles_(std::move(obstacles)) {
  build_grid();
}

void ObstacleField::build_grid() {
  grid_cells_.clear();
  grid_nx_ = grid_ny_ = 0;
  if (obstacles_.empty()) return;

  // The grid covers the union of every influence bounding square; any point
  // outside it is untouched by every obstacle.
  double min_e = std::numeric_limits<double>::infinity();
  double min_n = std::numeric_limits<double>::infinity();
  double max_e = -std::numeric_limits<double>::infinity();
  double max_n = -std::numeric_limits<double>::infinity();
  double max_reach = 0.0;
  for (const Obstacle& o : obstacles_) {
    const double reach = o.radius_m + o.taper_m;
    min_e = std::min(min_e, o.center.east_m - reach);
    max_e = std::max(max_e, o.center.east_m + reach);
    min_n = std::min(min_n, o.center.north_m - reach);
    max_n = std::max(max_n, o.center.north_m + reach);
    max_reach = std::max(max_reach, reach);
  }
  grid_min_east_m_ = min_e;
  grid_min_north_m_ = min_n;
  // Cell pitch = the largest influence radius: each obstacle overlaps at
  // most ~9 cells, and a query examines exactly one cell's bucket.
  grid_cell_m_ = std::max(max_reach, 1.0);
  grid_nx_ = static_cast<std::size_t>((max_e - min_e) / grid_cell_m_) + 1;
  grid_ny_ = static_cast<std::size_t>((max_n - min_n) / grid_cell_m_) + 1;
  grid_cells_.assign(grid_nx_ * grid_ny_, {});

  // Ascending obstacle order per cell preserves the FP sum order of the
  // original full scan.
  for (std::size_t i = 0; i < obstacles_.size(); ++i) {
    const Obstacle& o = obstacles_[i];
    const double reach = o.radius_m + o.taper_m;
    const auto cell_of = [this](double offset, std::size_t n) {
      const double f = std::floor(offset / grid_cell_m_);
      return static_cast<std::size_t>(
          std::clamp(f, 0.0, static_cast<double>(n - 1)));
    };
    const std::size_t x0 =
        cell_of(o.center.east_m - reach - grid_min_east_m_, grid_nx_);
    const std::size_t y0 =
        cell_of(o.center.north_m - reach - grid_min_north_m_, grid_ny_);
    const std::size_t x1 =
        cell_of(o.center.east_m + reach - grid_min_east_m_, grid_nx_);
    const std::size_t y1 =
        cell_of(o.center.north_m + reach - grid_min_north_m_, grid_ny_);
    for (std::size_t y = y0; y <= y1; ++y) {
      for (std::size_t x = x0; x <= x1; ++x) {
        grid_cells_[y * grid_nx_ + x].push_back(
            static_cast<std::uint32_t>(i));
      }
    }
  }
}

ObstacleField ObstacleField::random(const geo::BoundingBox& region,
                                    std::size_t count, double min_radius_m,
                                    double max_radius_m, double min_atten_db,
                                    double max_atten_db, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ue(region.min_east_m,
                                            region.max_east_m);
  std::uniform_real_distribution<double> un(region.min_north_m,
                                            region.max_north_m);
  std::uniform_real_distribution<double> ur(min_radius_m, max_radius_m);
  std::uniform_real_distribution<double> ua(min_atten_db, max_atten_db);
  std::vector<Obstacle> obs;
  obs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    obs.push_back(Obstacle{.center = geo::EnuPoint{ue(rng), un(rng)},
                           .radius_m = ur(rng),
                           .attenuation_db = ua(rng)});
  }
  return ObstacleField(std::move(obs));
}

double ObstacleField::attenuation_db(const geo::EnuPoint& p) const noexcept {
  if (grid_cells_.empty()) return 0.0;
  const double fx = (p.east_m - grid_min_east_m_) / grid_cell_m_;
  const double fy = (p.north_m - grid_min_north_m_) / grid_cell_m_;
  if (fx < 0.0 || fy < 0.0 || fx >= static_cast<double>(grid_nx_) ||
      fy >= static_cast<double>(grid_ny_)) {
    return 0.0;  // outside every influence bounding square
  }
  const auto ix = static_cast<std::size_t>(fx);
  const auto iy = static_cast<std::size_t>(fy);
  double total = 0.0;
  // The bucket holds (in ascending obstacle order) every obstacle whose
  // influence can reach this cell, so the distance tests below admit the
  // same terms in the same order as a scan over every obstacle.
  for (const std::uint32_t idx : grid_cells_[iy * grid_nx_ + ix]) {
    const Obstacle& o = obstacles_[idx];
    const double d = geo::distance_m(p, o.center);
    if (d <= o.radius_m) {
      total += o.attenuation_db;
    } else if (d < o.radius_m + o.taper_m) {
      const double t = (d - o.radius_m) / o.taper_m;  // 0..1 across taper
      total += o.attenuation_db * 0.5 *
               (1.0 + std::cos(std::numbers::pi * t));
    }
  }
  return total;
}

}  // namespace waldo::rf
