// Spatially correlated log-normal shadow fading and discrete obstruction
// "pockets". Together these give the ground-truth coverage the terrain
// texture that generic propagation models miss (Figure 1 of the paper):
// holes inside nominal contours and spill-over beyond them.
#pragma once

#include <cstdint>
#include <vector>

#include "waldo/geo/latlon.hpp"

namespace waldo::rf {

/// Gaussian random field with (separable) exponential autocorrelation,
/// the Gudmundson model R(d) = sigma^2 * e^{-d/d_c}. Generated once on a
/// grid by two AR(1) filtering passes (rows then columns), then bilinearly
/// interpolated; the resulting correlation is exponential in the L1 metric,
/// an accepted approximation of the isotropic model at these scales.
class ShadowingField {
 public:
  ShadowingField(const geo::BoundingBox& region, double cell_m,
                 double sigma_db, double decorrelation_m, std::uint64_t seed);

  /// Shadowing value in dB (zero-mean, std `sigma_db`) at a point. Points
  /// outside the construction region clamp to the nearest edge cell.
  [[nodiscard]] double sample_db(const geo::EnuPoint& p) const noexcept;

  [[nodiscard]] double sigma_db() const noexcept { return sigma_db_; }
  [[nodiscard]] double decorrelation_m() const noexcept {
    return decorrelation_m_;
  }

 private:
  geo::BoundingBox region_;
  double cell_m_;
  double sigma_db_;
  double decorrelation_m_;
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<double> grid_;  // ny_ rows of nx_ values, in dB

  [[nodiscard]] double at(std::size_t ix, std::size_t iy) const noexcept {
    return grid_[iy * nx_ + ix];
  }
};

/// A circular obstruction (terrain mass, dense construction) that removes
/// `attenuation_db` from any path whose receiver lies inside it, with a
/// cosine taper over the outer `taper_m` so coverage edges stay smooth.
struct Obstacle {
  geo::EnuPoint center;
  double radius_m = 0.0;
  double attenuation_db = 0.0;
  double taper_m = 250.0;
};

class ObstacleField {
 public:
  ObstacleField() = default;
  explicit ObstacleField(std::vector<Obstacle> obstacles);

  /// Random field: `count` obstacles uniform over `region` with radii and
  /// attenuations uniform in the given ranges.
  static ObstacleField random(const geo::BoundingBox& region,
                              std::size_t count, double min_radius_m,
                              double max_radius_m, double min_atten_db,
                              double max_atten_db, std::uint64_t seed);

  /// Total extra attenuation in dB for a receiver at `p` (sums overlapping
  /// obstacles). Served from a coarse spatial grid built at construction:
  /// only obstacles whose influence circle (radius + taper) can reach the
  /// query cell are examined, in ascending obstacle order — the same terms
  /// in the same FP sum order as a scan over every obstacle.
  [[nodiscard]] double attenuation_db(const geo::EnuPoint& p) const noexcept;

  [[nodiscard]] const std::vector<Obstacle>& obstacles() const noexcept {
    return obstacles_;
  }

 private:
  /// Buckets each obstacle into every grid cell its influence bounding
  /// square overlaps. Cell pitch is the largest influence radius, so an
  /// obstacle lands in at most a handful of cells.
  void build_grid();

  std::vector<Obstacle> obstacles_;
  double grid_min_east_m_ = 0.0;
  double grid_min_north_m_ = 0.0;
  double grid_cell_m_ = 0.0;
  std::size_t grid_nx_ = 0;
  std::size_t grid_ny_ = 0;
  std::vector<std::vector<std::uint32_t>> grid_cells_;  // ascending indices
};

}  // namespace waldo::rf
