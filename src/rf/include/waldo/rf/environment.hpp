// The ground-truth RF environment: TV transmitters over a metro region with
// Hata median loss, correlated shadowing, and obstruction pockets. This is
// the substitute for the paper's physical Atlanta campaign area; everything
// downstream (sensors, campaign, labeling, classifiers, baselines) treats
// it as the world.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "waldo/geo/latlon.hpp"
#include "waldo/rf/channels.hpp"
#include "waldo/rf/path_loss.hpp"
#include "waldo/rf/shadowing.hpp"

namespace waldo::rf {

/// A licensed TV transmitter (the protected incumbent).
struct Transmitter {
  geo::EnuPoint location;
  int channel = 0;
  /// Effective radiated power, dBm (1 MW ERP = 90 dBm).
  double erp_dbm = 90.0;
  /// Antenna height above average terrain, meters.
  double height_m = 300.0;
};

struct EnvironmentConfig {
  /// Metro region; defaults match the paper's 700 km^2 Atlanta campaign
  /// (26.5 km square).
  geo::BoundingBox region{0.0, 0.0, 26'500.0, 26'500.0};
  /// Receiver antenna height during measurement collection (paper: 2 m van
  /// roof) and the regulatory reference height (10 m).
  double rx_height_m = 2.0;
  double reference_rx_height_m = 10.0;
  /// Shadowing: sigma and Gudmundson decorrelation distance. Sigma is kept
  /// moderate because Algorithm 1's 6 km dilation reacts to the *maximum*
  /// shadowing excursion over thousands of readings; deep deterministic
  /// pockets come from the obstacle field instead.
  double shadowing_sigma_db = 2.5;
  double shadowing_decorrelation_m = 300.0;
  double shadowing_cell_m = 125.0;
  /// Obstruction pockets.
  std::size_t obstacle_count = 28;
  double obstacle_min_radius_m = 600.0;
  double obstacle_max_radius_m = 2'800.0;
  double obstacle_min_atten_db = 12.0;
  double obstacle_max_atten_db = 28.0;
  std::uint64_t seed = 42;
};

/// Immutable world model. Thread-compatible: all queries are const.
class Environment {
 public:
  Environment(EnvironmentConfig config, std::vector<Transmitter> transmitters);

  /// Variant with an explicit obstruction field (used by seasonal_variant
  /// to keep buildings in place while the season changes around them).
  Environment(EnvironmentConfig config, std::vector<Transmitter> transmitters,
              ObstacleField obstacles);

  [[nodiscard]] const EnvironmentConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::vector<Transmitter>& transmitters() const noexcept {
    return transmitters_;
  }
  [[nodiscard]] const ObstacleField& obstacles() const noexcept {
    return obstacles_;
  }
  /// Transmitters broadcasting on `channel`, in transmitter-index order.
  /// Served from an index precomputed at construction — no per-call
  /// allocation; the reference stays valid for the environment's lifetime.
  [[nodiscard]] const std::vector<const Transmitter*>& transmitters_on(
      int channel) const;

  /// Ground-truth received TV signal power on `channel` at `p` for the
  /// campaign receiver height (config().rx_height_m), in dBm. Returns the
  /// incoherent power sum over co-channel transmitters; -infinity-like
  /// floor (-200 dBm) when the channel is silent.
  [[nodiscard]] double true_rss_dbm(int channel,
                                    const geo::EnuPoint& p) const;

  /// Same, but at an arbitrary receiver height (used for the antenna
  /// correction factor study: 2 m van vs 10 m regulatory reference).
  [[nodiscard]] double true_rss_dbm(int channel, const geo::EnuPoint& p,
                                    double rx_height_m) const;

  /// Hata mobile-antenna correction between the campaign height and the
  /// regulatory reference height; the paper's +7.5 dB constant.
  [[nodiscard]] double antenna_correction_db() const noexcept;

  /// True if the TV signal is decodable (RSS at reference height above the
  /// -84 dBm protection threshold) at `p` — the regulatory ground truth.
  [[nodiscard]] bool signal_decodable(int channel,
                                      const geo::EnuPoint& p) const;

  // The channel index and per-transmitter Hata models point into / depend
  // on transmitters_, so copies rebuild them against their own storage.
  Environment(const Environment& other);
  Environment(Environment&& other) noexcept;
  Environment& operator=(const Environment& other);
  Environment& operator=(Environment&& other) noexcept;
  ~Environment() = default;

 private:
  /// Builds by_channel_ and the per-transmitter Hata models. Called from
  /// every constructor/assignment once transmitters_ is in place.
  void build_propagation_index();

  EnvironmentConfig config_;
  std::vector<Transmitter> transmitters_;
  ObstacleField obstacles_;
  /// One shadowing field per transmitter (paths to distinct towers decor-
  /// relate), keyed by transmitter index.
  std::vector<ShadowingField> shadowing_;
  double floor_dbm_ = -200.0;

  /// Per-channel transmitter index, ascending transmitter order — the sum
  /// order of true_rss_dbm is unchanged from the original linear scan.
  struct ChannelTransmitters {
    std::vector<std::size_t> indices;
    std::vector<const Transmitter*> pointers;
  };
  std::map<int, ChannelTransmitters> by_channel_;
  /// Hoisted Hata state per transmitter at the two heights every query in
  /// the codebase uses: the campaign rx height and the regulatory reference
  /// height. Identical constructor arguments make these bit-identical to
  /// the models the old code built per call; arbitrary other heights fall
  /// back to on-the-fly construction.
  std::vector<HataUrbanModel> hata_rx_;
  std::vector<HataUrbanModel> hata_ref_;
};

/// The "months later" world of the paper's second collection set (Section
/// 2.1 collected two sets several months apart with unchanged calibration):
/// identical towers and buildings, fresh small-scale shadowing detail, and
/// a foliage term added to every obstruction.
struct SeasonalDrift {
  double foliage_extra_db = 2.0;
  std::uint64_t shadowing_reseed = 7'777;
};
[[nodiscard]] Environment seasonal_variant(const Environment& base,
                                           const SeasonalDrift& drift = {});

/// Builds the Atlanta-like evaluation world used throughout tests and
/// benches: one tower per paper channel clustered near midtown, ERPs chosen
/// so channels span the paper's spectrum of occupancy — channels 27 and 39
/// blanket the region (the two "completely occupied" channels), others
/// cover it partially, leaving detectable white-space pockets.
[[nodiscard]] Environment make_metro_environment(
    const EnvironmentConfig& config = {});

}  // namespace waldo::rf
