// US broadcast TV channel plan and the ATSC signal constants the detectors
// rely on.
#pragma once

#include <array>
#include <cstdint>

namespace waldo::rf {

/// Width of every US TV channel.
inline constexpr double kChannelBandwidthHz = 6e6;

/// The ATSC pilot sits 309.440559 kHz above the lower channel edge.
inline constexpr double kPilotOffsetHz = 309'440.559;

/// FCC rule: the pilot carries 11.3 dB less power than the full channel.
inline constexpr double kPilotBelowChannelDb = 11.3;

/// The paper adds 12 dB to pilot-band power to estimate channel power.
inline constexpr double kPilotToChannelCorrectionDb = 12.0;

/// Minimum field for a decodable TV signal per FCC (dBm); Algorithm 1's
/// protection threshold.
inline constexpr double kDecodableThresholdDbm = -84.0;

/// Sensing threshold the FCC requires of sensing-only devices (dBm).
inline constexpr double kSensingOnlyThresholdDbm = -114.0;

/// Required separation from a protected contour for portable WSDs (m).
inline constexpr double kSeparationDistanceM = 6'000.0;

/// Lower edge frequency (Hz) of a US TV channel (2..51). Returns 0 for
/// out-of-plan channel numbers.
[[nodiscard]] constexpr double channel_lower_edge_hz(int channel) noexcept {
  if (channel >= 2 && channel <= 4) return (54.0 + 6.0 * (channel - 2)) * 1e6;
  if (channel >= 5 && channel <= 6) return (76.0 + 6.0 * (channel - 5)) * 1e6;
  if (channel >= 7 && channel <= 13) {
    return (174.0 + 6.0 * (channel - 7)) * 1e6;
  }
  if (channel >= 14 && channel <= 51) {
    return (470.0 + 6.0 * (channel - 14)) * 1e6;
  }
  return 0.0;
}

[[nodiscard]] constexpr bool is_valid_channel(int channel) noexcept {
  return channel_lower_edge_hz(channel) != 0.0;
}

[[nodiscard]] constexpr double channel_center_hz(int channel) noexcept {
  return channel_lower_edge_hz(channel) + kChannelBandwidthHz / 2.0;
}

[[nodiscard]] constexpr double channel_pilot_hz(int channel) noexcept {
  return channel_lower_edge_hz(channel) + kPilotOffsetHz;
}

/// The nine UHF channels measured in the paper's Atlanta campaign.
inline constexpr std::array<int, 9> kPaperChannels{15, 17, 21, 22, 27,
                                                   30, 39, 46, 47};

/// The seven channels used for system evaluation (27 and 39 were fully
/// occupied everywhere and therefore uninteresting for detection).
inline constexpr std::array<int, 7> kEvaluationChannels{15, 17, 21, 22,
                                                        30, 46, 47};

/// Channels that remain evaluable after the +7.5 dB antenna correction
/// factor (21, 30 and 46 become entirely not-safe; paper Section 4.3).
inline constexpr std::array<int, 4> kCorrectedEvaluationChannels{15, 17, 22,
                                                                 47};

}  // namespace waldo::rf
