// Power-unit helpers. All RF powers in this library are carried in dBm and
// converted to linear milliwatts only when powers must be summed.
#pragma once

#include <cmath>
#include <span>

namespace waldo::rf {

[[nodiscard]] inline double dbm_to_mw(double dbm) noexcept {
  return std::pow(10.0, dbm / 10.0);
}

[[nodiscard]] inline double mw_to_dbm(double mw) noexcept {
  return 10.0 * std::log10(mw);
}

[[nodiscard]] inline double db_to_ratio(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

[[nodiscard]] inline double ratio_to_db(double ratio) noexcept {
  return 10.0 * std::log10(ratio);
}

/// Power sum of incoherent signals given in dBm.
[[nodiscard]] inline double combine_dbm(std::span<const double> dbm) noexcept {
  double mw = 0.0;
  for (const double p : dbm) mw += dbm_to_mw(p);
  return mw_to_dbm(mw);
}

/// Power sum of two incoherent signals in dBm.
[[nodiscard]] inline double add_dbm(double a, double b) noexcept {
  return mw_to_dbm(dbm_to_mw(a) + dbm_to_mw(b));
}

/// Thermal noise power in dBm for a bandwidth in Hz at 290 K:
/// -174 dBm/Hz + 10 log10(BW).
[[nodiscard]] inline double thermal_noise_dbm(double bandwidth_hz) noexcept {
  return -174.0 + 10.0 * std::log10(bandwidth_hz);
}

}  // namespace waldo::rf
