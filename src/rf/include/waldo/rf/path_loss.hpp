// Median path-loss models. The environment's ground truth uses Hata urban
// (plus shadowing and obstructions); the conventional-database baseline uses
// the smooth FCC-curve surrogate, mirroring the paper's contrast between
// generic propagation models and reality.
#pragma once

#include <memory>

namespace waldo::rf {

/// Median path loss between isotropic antennas, positive dB.
class PathLossModel {
 public:
  virtual ~PathLossModel() = default;
  /// Loss in dB at distance `distance_m` (clamped internally to the model's
  /// validity range; callers may pass any positive distance).
  [[nodiscard]] virtual double path_loss_db(double distance_m) const = 0;
};

/// Free-space path loss: 32.45 + 20 log10(d_km) + 20 log10(f_MHz).
class FreeSpaceModel final : public PathLossModel {
 public:
  explicit FreeSpaceModel(double frequency_hz) noexcept;
  [[nodiscard]] double path_loss_db(double distance_m) const override;

 private:
  double freq_mhz_;
};

/// Hata's empirical urban model (valid 150-1500 MHz; we clamp frequency at
/// the upper edge for high UHF channels, a standard engineering extension).
/// The distance-independent part of the loss (frequency, tower-height, and
/// antenna-correction terms) is hoisted into the constructor — evaluated
/// with the same expression order as the former per-call formula, so
/// path_loss_db is bit-identical — leaving one log10 per query.
class HataUrbanModel final : public PathLossModel {
 public:
  HataUrbanModel(double frequency_hz, double tx_height_m,
                 double rx_height_m) noexcept;
  [[nodiscard]] double path_loss_db(double distance_m) const override;

  /// Mobile-antenna correction term a(h_m) as used in the paper:
  /// 3.2 (log10(11.5 h_m))^2 - 4.97. For the paper's 8 m height deficit
  /// this yields the +7.5 dB antenna correction factor of Section 2.1.
  [[nodiscard]] static double antenna_correction_db(double rx_height_m);

 private:
  double freq_mhz_;
  double tx_height_m_;
  double rx_height_m_;
  double fixed_db_ = 0.0;  ///< 69.55 + 26.16 lf - 13.82 lhb - a(h_m)
  double slope_ = 0.0;     ///< 44.9 - 6.55 lhb (dB per decade of distance)
};

/// Egli's median model for irregular terrain (VHF/UHF).
class EgliModel final : public PathLossModel {
 public:
  EgliModel(double frequency_hz, double tx_height_m,
            double rx_height_m) noexcept;
  [[nodiscard]] double path_loss_db(double distance_m) const override;

 private:
  double freq_mhz_;
  double tx_height_m_;
  double rx_height_m_;
};

/// Log-distance model PL(d) = PL(d0) + 10 n log10(d / d0). This is the
/// parametric family V-Scope fits to local measurements.
class LogDistanceModel final : public PathLossModel {
 public:
  LogDistanceModel(double ref_loss_db, double ref_distance_m,
                   double exponent) noexcept;
  [[nodiscard]] double path_loss_db(double distance_m) const override;

  [[nodiscard]] double exponent() const noexcept { return exponent_; }
  [[nodiscard]] double ref_loss_db() const noexcept { return ref_loss_db_; }
  [[nodiscard]] double ref_distance_m() const noexcept {
    return ref_distance_m_;
  }

 private:
  double ref_loss_db_;
  double ref_distance_m_;
  double exponent_;
};

/// Surrogate for the FCC R-6602 propagation curves that certified spectrum
/// databases use. The curves were fit to open-terrain broadcast data, so in
/// cluttered metro terrain they under-predict loss by ~10 dB — the root of
/// the database family's overprotection (it draws contours well beyond
/// where the signal is actually decodable, and sees no shadowing pockets
/// at all). Modelled as Hata at the regulatory 10 m receiver height minus a
/// clutter under-prediction offset.
class FccCurvesModel final : public PathLossModel {
 public:
  explicit FccCurvesModel(double frequency_hz, double tx_height_m,
                          double clutter_underprediction_db = 0.0) noexcept;
  [[nodiscard]] double path_loss_db(double distance_m) const override;

 private:
  HataUrbanModel hata_;
  double clutter_underprediction_db_;
};

}  // namespace waldo::rf
