#include "waldo/rf/environment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "waldo/rf/units.hpp"

namespace waldo::rf {

Environment::Environment(EnvironmentConfig config,
                         std::vector<Transmitter> transmitters)
    : Environment(config, std::move(transmitters),
                  ObstacleField::random(
                      config.region, config.obstacle_count,
                      config.obstacle_min_radius_m,
                      config.obstacle_max_radius_m,
                      config.obstacle_min_atten_db,
                      config.obstacle_max_atten_db, config.seed + 1000)) {}

Environment::Environment(EnvironmentConfig config,
                         std::vector<Transmitter> transmitters,
                         ObstacleField obstacles)
    : config_(std::move(config)),
      transmitters_(std::move(transmitters)),
      obstacles_(std::move(obstacles)) {
  for (const Transmitter& tx : transmitters_) {
    if (!is_valid_channel(tx.channel)) {
      throw std::invalid_argument("transmitter on invalid TV channel");
    }
  }
  shadowing_.reserve(transmitters_.size());
  for (std::size_t i = 0; i < transmitters_.size(); ++i) {
    shadowing_.emplace_back(config_.region, config_.shadowing_cell_m,
                            config_.shadowing_sigma_db,
                            config_.shadowing_decorrelation_m,
                            config_.seed + 1 + i);
  }
  build_propagation_index();
}

void Environment::build_propagation_index() {
  by_channel_.clear();
  hata_rx_.clear();
  hata_ref_.clear();
  hata_rx_.reserve(transmitters_.size());
  hata_ref_.reserve(transmitters_.size());
  for (std::size_t i = 0; i < transmitters_.size(); ++i) {
    const Transmitter& tx = transmitters_[i];
    ChannelTransmitters& entry = by_channel_[tx.channel];
    entry.indices.push_back(i);
    entry.pointers.push_back(&tx);
    const double freq_hz = channel_center_hz(tx.channel);
    hata_rx_.emplace_back(freq_hz, tx.height_m, config_.rx_height_m);
    hata_ref_.emplace_back(freq_hz, tx.height_m,
                           config_.reference_rx_height_m);
  }
}

Environment::Environment(const Environment& other)
    : config_(other.config_),
      transmitters_(other.transmitters_),
      obstacles_(other.obstacles_),
      shadowing_(other.shadowing_),
      floor_dbm_(other.floor_dbm_) {
  build_propagation_index();
}

Environment::Environment(Environment&& other) noexcept
    : config_(std::move(other.config_)),
      transmitters_(std::move(other.transmitters_)),
      obstacles_(std::move(other.obstacles_)),
      shadowing_(std::move(other.shadowing_)),
      floor_dbm_(other.floor_dbm_) {
  // Moving the transmitter vector transfers its heap storage, but rebuild
  // anyway: it is cheap and keeps the invariant independent of vector
  // implementation details.
  build_propagation_index();
}

Environment& Environment::operator=(const Environment& other) {
  if (this != &other) {
    config_ = other.config_;
    transmitters_ = other.transmitters_;
    obstacles_ = other.obstacles_;
    shadowing_ = other.shadowing_;
    floor_dbm_ = other.floor_dbm_;
    build_propagation_index();
  }
  return *this;
}

Environment& Environment::operator=(Environment&& other) noexcept {
  if (this != &other) {
    config_ = std::move(other.config_);
    transmitters_ = std::move(other.transmitters_);
    obstacles_ = std::move(other.obstacles_);
    shadowing_ = std::move(other.shadowing_);
    floor_dbm_ = other.floor_dbm_;
    build_propagation_index();
  }
  return *this;
}

Environment seasonal_variant(const Environment& base,
                             const SeasonalDrift& drift) {
  EnvironmentConfig config = base.config();
  config.seed += drift.shadowing_reseed;  // fresh small-scale fading
  std::vector<Obstacle> obstacles = base.obstacles().obstacles();
  for (Obstacle& o : obstacles) o.attenuation_db += drift.foliage_extra_db;
  return Environment(config, base.transmitters(),
                     ObstacleField(std::move(obstacles)));
}

const std::vector<const Transmitter*>& Environment::transmitters_on(
    int channel) const {
  static const std::vector<const Transmitter*> kNone;
  const auto it = by_channel_.find(channel);
  return it == by_channel_.end() ? kNone : it->second.pointers;
}

double Environment::true_rss_dbm(int channel, const geo::EnuPoint& p) const {
  return true_rss_dbm(channel, p, config_.rx_height_m);
}

double Environment::true_rss_dbm(int channel, const geo::EnuPoint& p,
                                 double rx_height_m) const {
  const auto it = by_channel_.find(channel);
  if (it == by_channel_.end()) return floor_dbm_;
  // The two heights every caller in the codebase uses hit the hoisted
  // models; exact double equality is intentional — anything else is an
  // ad-hoc study height and constructs its model on the fly.
  const std::vector<HataUrbanModel>* hoisted = nullptr;
  if (rx_height_m == config_.rx_height_m) {
    hoisted = &hata_rx_;
  } else if (rx_height_m == config_.reference_rx_height_m) {
    hoisted = &hata_ref_;
  }
  double total_mw = 0.0;
  const double obstruction_db = obstacles_.attenuation_db(p);
  // Ascending transmitter order: the same FP sum order as the original
  // linear scan over all transmitters.
  for (const std::size_t i : it->second.indices) {
    const Transmitter& tx = transmitters_[i];
    const HataUrbanModel hata =
        hoisted ? (*hoisted)[i]
                : HataUrbanModel(channel_center_hz(channel), tx.height_m,
                                 rx_height_m);
    const double d = geo::distance_m(p, tx.location);
    const double rss = tx.erp_dbm - hata.path_loss_db(d) -
                       shadowing_[i].sample_db(p) - obstruction_db;
    total_mw += dbm_to_mw(rss);
  }
  if (total_mw <= 0.0) return floor_dbm_;
  return std::max(floor_dbm_, mw_to_dbm(total_mw));
}

double Environment::antenna_correction_db() const noexcept {
  // Paper Section 2.1: a(h_m) evaluated at the height deficit between the
  // regulatory reference (10 m) and the campaign antenna (2 m) -> ~7.5 dB.
  const double deficit =
      std::max(1.0, config_.reference_rx_height_m - config_.rx_height_m);
  return HataUrbanModel::antenna_correction_db(deficit);
}

bool Environment::signal_decodable(int channel, const geo::EnuPoint& p) const {
  return true_rss_dbm(channel, p, config_.reference_rx_height_m) >=
         kDecodableThresholdDbm;
}

Environment make_metro_environment(const EnvironmentConfig& config) {
  const double cx =
      (config.region.min_east_m + config.region.max_east_m) / 2.0;
  const double cy =
      (config.region.min_north_m + config.region.max_north_m) / 2.0;

  // Tower offsets from the region centre (km) and ERPs (dBm). The plan is
  // tuned against Algorithm 1's aggressive 6 km dilation: median contours
  // are kept small (2-5 km) and towers are pushed toward or beyond the
  // region edge, so every partially-occupied channel leaves a substantial
  // white-space area — the occupancy spectrum the paper's channels span.
  // Channels 27 and 39 blanket the region (the two "completely occupied"
  // channels excluded from system evaluation).
  struct TowerPlan {
    int channel;
    double dx_km;
    double dy_km;
    double erp_dbm;
  };
  // Positions are offsets from the region centre in km. Towers sit 20-28 km
  // outside the drive area with 10-16 km median contours, so the region
  // straddles each station's coverage edge — the regime where the paper's
  // signal features are informative (RSS near the label boundary is weak
  // but measurable) and the regime real metro campaigns live in.
  constexpr TowerPlan kPlan[] = {
      {15, -24.0, 0.0, 69.0},   // west, ~12 km contour
      {17, 19.75, 19.75, 68.0}, // beyond the NE corner, ~11.5 km contour
      {21, 0.0, -25.25, 70.0},  // south, ~13 km contour
      {22, 21.75, 0.0, 68.0},   // east, ~11.5 km contour
      {27, 0.0, 0.0, 88.0},     // downtown, fully occupied
      {30, -21.25, -21.25, 66.0},  // SW, ~10 km contour
      {39, 0.75, 0.75, 88.0},   // downtown, fully occupied
      {46, 0.0, 21.75, 70.0},   // north, ~13 km contour
      {47, 16.75, -18.25, 67.0},   // SE, ~10.7 km contour
  };

  std::vector<Transmitter> towers;
  towers.reserve(std::size(kPlan));
  for (const TowerPlan& t : kPlan) {
    towers.push_back(Transmitter{
        .location = geo::EnuPoint{cx + t.dx_km * 1000.0,
                                  cy + t.dy_km * 1000.0},
        .channel = t.channel,
        .erp_dbm = t.erp_dbm,
        // Effective height above the urban clutter: physical masts are
        // taller, but the propagation-relevant height in dense metro
        // terrain is tens of meters — this also gives Hata the steeper,
        // more realistic urban distance slope (~33 dB/decade).
        .height_m = 60.0});
  }
  return Environment(config, std::move(towers));
}

}  // namespace waldo::rf
