#include "waldo/rf/path_loss.hpp"

#include <algorithm>
#include <cmath>

namespace waldo::rf {

namespace {
constexpr double kMinDistanceM = 10.0;  // below this all models saturate
[[nodiscard]] double log10_clamped(double v) {
  return std::log10(std::max(v, 1e-12));
}
}  // namespace

FreeSpaceModel::FreeSpaceModel(double frequency_hz) noexcept
    : freq_mhz_(frequency_hz / 1e6) {}

double FreeSpaceModel::path_loss_db(double distance_m) const {
  const double d_km = std::max(distance_m, kMinDistanceM) / 1000.0;
  return 32.45 + 20.0 * log10_clamped(d_km) + 20.0 * log10_clamped(freq_mhz_);
}

HataUrbanModel::HataUrbanModel(double frequency_hz, double tx_height_m,
                               double rx_height_m) noexcept
    : freq_mhz_(std::clamp(frequency_hz / 1e6, 150.0, 1500.0)),
      tx_height_m_(std::clamp(tx_height_m, 30.0, 200.0)),
      rx_height_m_(std::clamp(rx_height_m, 1.0, 10.0)) {
  const double lf = log10_clamped(freq_mhz_);
  const double lhb = log10_clamped(tx_height_m_);
  fixed_db_ =
      69.55 + 26.16 * lf - 13.82 * lhb - antenna_correction_db(rx_height_m_);
  slope_ = 44.9 - 6.55 * lhb;
}

double HataUrbanModel::antenna_correction_db(double rx_height_m) {
  const double t = log10_clamped(11.5 * rx_height_m);
  return 3.2 * t * t - 4.97;
}

double HataUrbanModel::path_loss_db(double distance_m) const {
  const double d_km = std::max(distance_m, kMinDistanceM) / 1000.0;
  return fixed_db_ + slope_ * log10_clamped(d_km);
}

EgliModel::EgliModel(double frequency_hz, double tx_height_m,
                     double rx_height_m) noexcept
    : freq_mhz_(frequency_hz / 1e6),
      tx_height_m_(tx_height_m),
      rx_height_m_(rx_height_m) {}

double EgliModel::path_loss_db(double distance_m) const {
  const double d_km = std::max(distance_m, kMinDistanceM) / 1000.0;
  // Egli 1957 median loss with the h_m < 10 m mobile-height term.
  return 88.0 + 40.0 * log10_clamped(d_km) + 20.0 * log10_clamped(freq_mhz_ / 100.0) -
         20.0 * log10_clamped(tx_height_m_) - 10.0 * log10_clamped(rx_height_m_);
}

LogDistanceModel::LogDistanceModel(double ref_loss_db, double ref_distance_m,
                                   double exponent) noexcept
    : ref_loss_db_(ref_loss_db),
      ref_distance_m_(std::max(ref_distance_m, 1.0)),
      exponent_(exponent) {}

double LogDistanceModel::path_loss_db(double distance_m) const {
  const double d = std::max(distance_m, kMinDistanceM);
  return ref_loss_db_ + 10.0 * exponent_ * log10_clamped(d / ref_distance_m_);
}

FccCurvesModel::FccCurvesModel(double frequency_hz, double tx_height_m,
                               double clutter_underprediction_db) noexcept
    : hata_(frequency_hz, tx_height_m, /*rx_height_m=*/10.0),
      clutter_underprediction_db_(clutter_underprediction_db) {}

double FccCurvesModel::path_loss_db(double distance_m) const {
  return hata_.path_loss_db(distance_m) - clutter_underprediction_db_;
}

}  // namespace waldo::rf
