#include "waldo/baselines/sensing_only.hpp"

#include "waldo/ml/metrics.hpp"

namespace waldo::baselines {

int sensing_only_decision(double sensed_rss_dbm,
                          const SensingOnlyConfig& config) {
  return sensed_rss_dbm < config.threshold_dbm ? ml::kSafe : ml::kNotSafe;
}

bool sensor_capable_of_sensing_only(double sensor_channel_floor_dbm,
                                    const SensingOnlyConfig& config) {
  return sensor_channel_floor_dbm < config.threshold_dbm;
}

}  // namespace waldo::baselines
