#include "waldo/baselines/estimator.hpp"

#include "waldo/runtime/parallel.hpp"

namespace waldo::baselines {

std::vector<int> WhiteSpaceEstimator::classify_batch(
    std::span<const geo::EnuPoint> points, unsigned threads) const {
  std::vector<int> out(points.size());
  runtime::parallel_for(points.size(), threads,
                        [&](std::size_t i) { out[i] = classify(points[i]); });
  return out;
}

}  // namespace waldo::baselines
