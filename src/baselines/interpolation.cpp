#include "waldo/baselines/interpolation.hpp"

#include <cmath>
#include <stdexcept>

#include "waldo/ml/metrics.hpp"
#include "waldo/runtime/parallel.hpp"

namespace waldo::baselines {

void IdwDatabase::fit(const campaign::ChannelDataset& data) {
  if (data.readings.empty()) {
    throw std::invalid_argument("idw: empty training data");
  }
  index_ = std::make_unique<geo::GridIndex>(data.positions(), 1'000.0);
  rss_ = data.rss_values();
}

double IdwDatabase::predict_rss_dbm(const geo::EnuPoint& p) const {
  if (!index_) throw std::logic_error("idw: not fitted");
  const std::vector<std::size_t> near = index_->k_nearest(p, config_.k);
  double wsum = 0.0;
  double acc = 0.0;
  for (const std::size_t i : near) {
    const double d = std::max(1.0, geo::distance_m(p, index_->points()[i]));
    const double w = 1.0 / std::pow(d, config_.power);
    wsum += w;
    acc += w * rss_[i];
  }
  return wsum > 0.0 ? acc / wsum : -200.0;
}

std::vector<double> IdwDatabase::predict_rss_batch(
    std::span<const geo::EnuPoint> points, unsigned threads) const {
  if (!index_) throw std::logic_error("idw: not fitted");
  return runtime::parallel_map(
      points.size(), threads,
      [&](std::size_t i) { return predict_rss_dbm(points[i]); });
}

int IdwDatabase::classify(const geo::EnuPoint& p) const {
  if (!index_) throw std::logic_error("idw: not fitted");
  if (predict_rss_dbm(p) >= config_.threshold_dbm) return ml::kNotSafe;
  // Carry the Algorithm 1 separation rule over the stored readings.
  bool poisoned = false;
  index_->for_each_within(p, config_.separation_m, [&](std::size_t i) {
    if (rss_[i] >= config_.threshold_dbm) poisoned = true;
  });
  return poisoned ? ml::kNotSafe : ml::kSafe;
}

}  // namespace waldo::baselines
