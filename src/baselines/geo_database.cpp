#include "waldo/baselines/geo_database.hpp"

#include <stdexcept>

#include "waldo/ml/metrics.hpp"
#include "waldo/rf/path_loss.hpp"

namespace waldo::baselines {

namespace {

/// Largest distance at which `model` predicts at least `threshold_dbm`
/// from a transmitter with `erp_dbm`, found by bisection (path loss is
/// monotone in distance).
[[nodiscard]] double solve_contour_radius_m(const rf::PathLossModel& model,
                                            double erp_dbm,
                                            double threshold_dbm) {
  const auto rss_at = [&](double d) { return erp_dbm - model.path_loss_db(d); };
  double lo = 10.0;
  double hi = 500'000.0;
  if (rss_at(lo) < threshold_dbm) return 0.0;      // never above threshold
  if (rss_at(hi) >= threshold_dbm) return hi;      // blankets everything
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (rss_at(mid) >= threshold_dbm) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace

GeoDatabase::GeoDatabase(const rf::Environment& environment, int channel,
                         GeoDatabaseConfig config) {
  for (const rf::Transmitter& tx : environment.transmitters()) {
    if (tx.channel != channel) continue;
    const rf::FccCurvesModel curves(rf::channel_center_hz(channel),
                                    tx.height_m,
                                    config.curve_underprediction_db);
    // Protect where the pessimistic (margin-added) prediction still
    // reaches the decodability threshold.
    const double radius = solve_contour_radius_m(
        curves, tx.erp_dbm + config.fading_margin_db,
        config.protection_threshold_dbm);
    if (radius <= 0.0) continue;
    contours_.push_back(Contour{.center = tx.location,
                                .radius_m = radius + config.separation_m,
                                .raw_radius_m = radius});
  }
}

int GeoDatabase::classify(const geo::EnuPoint& p) const {
  for (const Contour& c : contours_) {
    if (geo::distance_m(p, c.center) <= c.radius_m) return ml::kNotSafe;
  }
  return ml::kSafe;
}

double GeoDatabase::contour_radius_m(std::size_t i) const {
  if (i >= contours_.size()) throw std::out_of_range("contour index");
  return contours_[i].raw_radius_m;
}

}  // namespace waldo::baselines
