// Reimplementation of V-Scope's core (Zhang et al., MobiCom'14), the
// measurement-augmented-database comparator of the paper's Section 4.4:
// cluster the collected measurements, fit an area-specific propagation
// model (log-distance, least squares) per cluster, and classify locations
// by the *predicted* signal level. Better than a generic database — the
// model is local — but still blind to per-point reality, which is where
// Waldo's signal features win.
#pragma once

#include <cstdint>
#include <vector>

#include "waldo/baselines/estimator.hpp"
#include "waldo/campaign/measurement.hpp"
#include "waldo/rf/channels.hpp"

namespace waldo::baselines {

struct VScopeConfig {
  std::size_t num_clusters = 3;
  double threshold_dbm = rf::kDecodableThresholdDbm;
  double separation_m = rf::kSeparationDistanceM;
  /// Protection margin subtracted from the threshold when classifying: the
  /// fitted median field smooths away shadowing/obstruction scatter, so a
  /// deployment must pad its predictions to stay safe. Trades FP for FN.
  double protection_margin_db = 4.0;
  std::uint64_t seed = 31;
};

class VScope final : public WhiteSpaceEstimator {
 public:
  explicit VScope(VScopeConfig config = {}) : config_(config) {}

  /// Fits per-cluster log-distance models to measured RSS vs distance to
  /// the (known, registered) transmitter locations on this channel.
  void fit(const campaign::ChannelDataset& data,
           std::span<const geo::EnuPoint> transmitters);

  /// Predicted RSS at a location from the fitted local model.
  [[nodiscard]] double predict_rss_dbm(const geo::EnuPoint& p) const;

  /// Not safe when the prediction (or any point within the separation
  /// distance, via the fitted monotone contour) exceeds the threshold.
  [[nodiscard]] int classify(const geo::EnuPoint& p) const override;

  struct ClusterFit {
    geo::EnuPoint centroid;
    double intercept_dbm = 0.0;  ///< predicted RSS at 1 km
    double exponent = 2.0;       ///< path-loss exponent n
    std::size_t samples = 0;
  };
  [[nodiscard]] const std::vector<ClusterFit>& fits() const noexcept {
    return fits_;
  }

 private:
  [[nodiscard]] std::size_t cluster_of(const geo::EnuPoint& p) const;
  [[nodiscard]] double nearest_tx_distance_m(const geo::EnuPoint& p) const;

  VScopeConfig config_;
  std::vector<ClusterFit> fits_;
  std::vector<geo::EnuPoint> transmitters_;
};

}  // namespace waldo::baselines
