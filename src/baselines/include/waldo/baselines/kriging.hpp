// Ordinary kriging — the statistical-interpolation database the paper's
// related work cites (Ying et al., "Revisiting TV coverage estimation with
// measurement-based statistical interpolation"). Predicts the RSS field as
// the best linear unbiased estimator under a fitted exponential variogram;
// local kriging (k nearest readings per query) keeps the dense linear
// solve tractable at campaign scale.
#pragma once

#include <cstddef>
#include <memory>

#include "waldo/baselines/estimator.hpp"
#include "waldo/campaign/measurement.hpp"
#include "waldo/geo/grid_index.hpp"
#include "waldo/rf/channels.hpp"

namespace waldo::baselines {

/// Exponential variogram gamma(h) = nugget + sill (1 - e^{-h/range}).
struct Variogram {
  double nugget = 0.0;
  double sill = 1.0;
  double range_m = 1000.0;

  [[nodiscard]] double operator()(double distance_m) const noexcept;
};

/// Fits an exponential variogram to the empirical semivariogram of the
/// readings (method-of-moments binning, least-squares over a small grid of
/// range candidates).
[[nodiscard]] Variogram fit_variogram(
    std::span<const geo::EnuPoint> positions, std::span<const double> values,
    std::size_t max_pairs = 60'000, double max_lag_m = 8'000.0,
    std::size_t bins = 16, std::uint64_t seed = 71);

struct KrigingConfig {
  std::size_t neighbours = 16;  ///< local kriging neighbourhood
  double threshold_dbm = rf::kDecodableThresholdDbm;
  double separation_m = rf::kSeparationDistanceM;
};

class KrigingDatabase final : public WhiteSpaceEstimator {
 public:
  explicit KrigingDatabase(KrigingConfig config = {}) : config_(config) {}

  void fit(const campaign::ChannelDataset& data);

  struct Prediction {
    double rss_dbm = 0.0;
    double variance = 0.0;  ///< kriging variance (estimation uncertainty)
  };
  [[nodiscard]] Prediction predict(const geo::EnuPoint& p) const;
  /// Per-query parallel batch prediction: each query solves its own local
  /// kriging system, so results match predict() point by point at any
  /// thread count (0 = all hardware threads).
  [[nodiscard]] std::vector<Prediction> predict_batch(
      std::span<const geo::EnuPoint> points, unsigned threads = 0) const;
  [[nodiscard]] double predict_rss_dbm(const geo::EnuPoint& p) const {
    return predict(p).rss_dbm;
  }
  [[nodiscard]] int classify(const geo::EnuPoint& p) const override;

  [[nodiscard]] const Variogram& variogram() const noexcept {
    return variogram_;
  }

 private:
  KrigingConfig config_;
  Variogram variogram_;
  std::unique_ptr<geo::GridIndex> index_;
  std::vector<double> rss_;
};

/// Solves A x = b in place by Gaussian elimination with partial pivoting
/// (A is n x n row-major, overwritten). Returns false when singular.
/// Exposed for tests.
[[nodiscard]] bool solve_linear_system(std::vector<double>& a,
                                       std::vector<double>& b,
                                       std::size_t n);

}  // namespace waldo::baselines
