// The conventional spectrum database (Google/SpectrumBridge family): takes
// the public transmitter registrations, draws each station's protected
// contour with a generic FCC-curve propagation model, adds the portable-WSD
// separation distance, and declares everything inside not safe. No local
// knowledge — which is exactly why it overprotects (Fig. 4).
#pragma once

#include <vector>

#include "waldo/baselines/estimator.hpp"
#include "waldo/rf/environment.hpp"

namespace waldo::baselines {

struct GeoDatabaseConfig {
  double protection_threshold_dbm = rf::kDecodableThresholdDbm;
  double separation_m = rf::kSeparationDistanceM;
  /// Extra margin the database model applies on top of the median curve to
  /// guarantee safety against fading (certified databases protect the
  /// F(50,90) quantile, not the median).
  double fading_margin_db = 3.0;
  /// How far the generic open-terrain curves under-predict loss in metro
  /// clutter (passed to rf::FccCurvesModel). Together with the margin and
  /// the 10 m regulatory receiver height this sets the database's
  /// overprotection factor.
  double curve_underprediction_db = 1.0;
};

class GeoDatabase final : public WhiteSpaceEstimator {
 public:
  /// Builds contours for every transmitter registered in the environment.
  /// Only public registration data (location, ERP, height, channel) is
  /// used — never the environment's shadowing or obstacles.
  GeoDatabase(const rf::Environment& environment, int channel,
              GeoDatabaseConfig config = {});

  [[nodiscard]] int classify(const geo::EnuPoint& p) const override;

  /// Protected-contour radius (before separation) of transmitter `i` on
  /// this database's channel.
  [[nodiscard]] double contour_radius_m(std::size_t i) const;
  [[nodiscard]] std::size_t num_contours() const noexcept {
    return contours_.size();
  }

 private:
  struct Contour {
    geo::EnuPoint center;
    double radius_m = 0.0;  ///< protected contour + separation
    double raw_radius_m = 0.0;
  };
  std::vector<Contour> contours_;
};

}  // namespace waldo::baselines
