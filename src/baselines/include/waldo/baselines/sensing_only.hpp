// Pure local spectrum sensing per FCC rules: a channel may be used only if
// the locally sensed power is below the sensing threshold (-114 dBm), 30 dB
// under the decodable-signal level to cover hidden-node scenarios. Safe but
// doubly inefficient: the threshold overprotects, and hardware that can
// even reach it costs $10-40k (paper Sections 1 and 4.4).
#pragma once

#include "waldo/rf/channels.hpp"

namespace waldo::baselines {

struct SensingOnlyConfig {
  double threshold_dbm = rf::kSensingOnlyThresholdDbm;  ///< -114 dBm
};

/// Per-reading decision: kSafe iff the sensed RSS is under the threshold.
[[nodiscard]] int sensing_only_decision(double sensed_rss_dbm,
                                        const SensingOnlyConfig& config = {});

/// Whether a sensor with the given effective channel-power floor can
/// implement sensing-only detection at all (its floor must sit below the
/// threshold, or every reading saturates above it).
[[nodiscard]] bool sensor_capable_of_sensing_only(
    double sensor_channel_floor_dbm, const SensingOnlyConfig& config = {});

}  // namespace waldo::baselines
