// Common interface for location-based white-space estimators: everything
// the paper compares Waldo against answers "is this location safe on this
// channel?" from location alone.
#pragma once

#include <span>
#include <vector>

#include "waldo/geo/latlon.hpp"

namespace waldo::baselines {

class WhiteSpaceEstimator {
 public:
  virtual ~WhiteSpaceEstimator() = default;
  /// ml::kSafe or ml::kNotSafe for a location.
  [[nodiscard]] virtual int classify(const geo::EnuPoint& p) const = 0;

  /// Classifies a batch of query points, fanning the per-query work out
  /// over `threads` workers (0 = all hardware threads). Queries are
  /// read-only and independent, so the result equals calling classify()
  /// point by point, in order, at any thread count.
  [[nodiscard]] std::vector<int> classify_batch(
      std::span<const geo::EnuPoint> points, unsigned threads = 0) const;
};

}  // namespace waldo::baselines
