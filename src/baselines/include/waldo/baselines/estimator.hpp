// Common interface for location-based white-space estimators: everything
// the paper compares Waldo against answers "is this location safe on this
// channel?" from location alone.
#pragma once

#include "waldo/geo/latlon.hpp"

namespace waldo::baselines {

class WhiteSpaceEstimator {
 public:
  virtual ~WhiteSpaceEstimator() = default;
  /// ml::kSafe or ml::kNotSafe for a location.
  [[nodiscard]] virtual int classify(const geo::EnuPoint& p) const = 0;
};

}  // namespace waldo::baselines
