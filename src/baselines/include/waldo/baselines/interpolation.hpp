// Statistical-interpolation databases (Ying et al. / Achtzehn et al.
// family): predict the RSS field at a query point from stored measurements
// by inverse-distance weighting over the k nearest readings, then threshold
// — location-only, like every database baseline.
#pragma once

#include <cstddef>
#include <memory>

#include "waldo/baselines/estimator.hpp"
#include "waldo/campaign/measurement.hpp"
#include "waldo/geo/grid_index.hpp"
#include "waldo/rf/channels.hpp"

namespace waldo::baselines {

struct IdwConfig {
  std::size_t k = 8;
  double power = 2.0;  ///< IDW exponent
  double threshold_dbm = rf::kDecodableThresholdDbm;
  /// Readings within this distance of the query whose value exceeds the
  /// threshold force "not safe" (the Algorithm 1 separation carried over).
  double separation_m = rf::kSeparationDistanceM;
};

class IdwDatabase final : public WhiteSpaceEstimator {
 public:
  explicit IdwDatabase(IdwConfig config = {}) : config_(config) {}

  void fit(const campaign::ChannelDataset& data);

  [[nodiscard]] double predict_rss_dbm(const geo::EnuPoint& p) const;
  /// Per-query parallel batch of predict_rss_dbm (0 = all hardware
  /// threads); identical to the per-point calls at any thread count.
  [[nodiscard]] std::vector<double> predict_rss_batch(
      std::span<const geo::EnuPoint> points, unsigned threads = 0) const;
  [[nodiscard]] int classify(const geo::EnuPoint& p) const override;

 private:
  IdwConfig config_;
  std::unique_ptr<geo::GridIndex> index_;
  std::vector<double> rss_;
};

}  // namespace waldo::baselines
