#include "waldo/baselines/kriging.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "waldo/ml/metrics.hpp"
#include "waldo/runtime/parallel.hpp"

namespace waldo::baselines {

double Variogram::operator()(double distance_m) const noexcept {
  if (distance_m <= 0.0) return 0.0;
  return nugget + sill * (1.0 - std::exp(-distance_m / range_m));
}

Variogram fit_variogram(std::span<const geo::EnuPoint> positions,
                        std::span<const double> values,
                        std::size_t max_pairs, double max_lag_m,
                        std::size_t bins, std::uint64_t seed) {
  if (positions.size() != values.size() || positions.size() < 8) {
    throw std::invalid_argument("variogram needs >= 8 matched samples");
  }
  // Empirical semivariogram from randomly sampled pairs.
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, positions.size() - 1);
  std::vector<double> gamma_sum(bins, 0.0);
  std::vector<std::size_t> gamma_n(bins, 0);
  const double bin_w = max_lag_m / static_cast<double>(bins);
  for (std::size_t k = 0; k < max_pairs; ++k) {
    const std::size_t i = pick(rng);
    const std::size_t j = pick(rng);
    if (i == j) continue;
    const double h = geo::distance_m(positions[i], positions[j]);
    if (h >= max_lag_m) continue;
    const auto bin = static_cast<std::size_t>(h / bin_w);
    const double d = values[i] - values[j];
    gamma_sum[bin] += 0.5 * d * d;
    ++gamma_n[bin];
  }
  std::vector<double> lag(bins), gamma(bins);
  std::size_t used = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    if (gamma_n[b] < 5) continue;
    lag[used] = (static_cast<double>(b) + 0.5) * bin_w;
    gamma[used] = gamma_sum[b] / static_cast<double>(gamma_n[b]);
    ++used;
  }
  if (used < 3) {
    throw std::invalid_argument("not enough variogram bins populated");
  }

  // Grid-search the range; closed-form-ish nugget/sill by least squares on
  // the basis {1, 1 - e^{-h/range}} for each candidate.
  Variogram best;
  double best_sse = std::numeric_limits<double>::infinity();
  for (double range = bin_w; range <= max_lag_m; range += bin_w / 2.0) {
    double s1 = 0.0, sb = 0.0, sbb = 0.0, sg = 0.0, sgb = 0.0;
    for (std::size_t k = 0; k < used; ++k) {
      const double b = 1.0 - std::exp(-lag[k] / range);
      s1 += 1.0;
      sb += b;
      sbb += b * b;
      sg += gamma[k];
      sgb += gamma[k] * b;
    }
    const double denom = s1 * sbb - sb * sb;
    if (std::abs(denom) < 1e-12) continue;
    double sill = (s1 * sgb - sb * sg) / denom;
    double nugget = (sg - sill * sb) / s1;
    nugget = std::max(0.0, nugget);
    sill = std::max(1e-6, sill);
    double sse = 0.0;
    for (std::size_t k = 0; k < used; ++k) {
      const double e =
          gamma[k] - (nugget + sill * (1.0 - std::exp(-lag[k] / range)));
      sse += e * e;
    }
    if (sse < best_sse) {
      best_sse = sse;
      best = Variogram{.nugget = nugget, .sill = sill, .range_m = range};
    }
  }
  return best;
}

bool solve_linear_system(std::vector<double>& a, std::vector<double>& b,
                         std::size_t n) {
  if (a.size() != n * n || b.size() != n) {
    throw std::invalid_argument("solve_linear_system: shape mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col])) pivot = r;
    }
    if (std::abs(a[pivot * n + col]) < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[col * n + c], a[pivot * n + c]);
      }
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] / a[col * n + col];
      for (std::size_t c = col; c < n; ++c) {
        a[r * n + c] -= factor * a[col * n + c];
      }
      b[r] -= factor * b[col];
    }
  }
  for (std::size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= a[r * n + c] * b[c];
    b[r] = acc / a[r * n + r];
  }
  return true;
}

void KrigingDatabase::fit(const campaign::ChannelDataset& data) {
  if (data.readings.size() < 8) {
    throw std::invalid_argument("kriging: too few readings");
  }
  const std::vector<geo::EnuPoint> positions = data.positions();
  rss_ = data.rss_values();
  variogram_ = fit_variogram(positions, rss_);
  index_ = std::make_unique<geo::GridIndex>(positions, 1000.0);
}

KrigingDatabase::Prediction KrigingDatabase::predict(
    const geo::EnuPoint& p) const {
  if (!index_) throw std::logic_error("kriging: not fitted");
  const std::vector<std::size_t> near =
      index_->k_nearest(p, config_.neighbours);
  const std::size_t k = near.size();
  // Ordinary kriging system: [Gamma 1; 1' 0] [w; mu] = [gamma(p); 1].
  const std::size_t n = k + 1;
  std::vector<double> a(n * n, 0.0);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      a[i * n + j] = variogram_(geo::distance_m(index_->points()[near[i]],
                                                index_->points()[near[j]]));
    }
    a[i * n + k] = 1.0;
    a[k * n + i] = 1.0;
    b[i] = variogram_(geo::distance_m(index_->points()[near[i]], p));
  }
  b[k] = 1.0;

  std::vector<double> rhs = b;
  if (!solve_linear_system(a, rhs, n)) {
    // Degenerate geometry (coincident points): fall back to the nearest
    // reading.
    return Prediction{.rss_dbm = rss_[near.front()],
                      .variance = variogram_.sill};
  }
  Prediction out;
  for (std::size_t i = 0; i < k; ++i) out.rss_dbm += rhs[i] * rss_[near[i]];
  // Kriging variance: sum w_i gamma(p, i) + mu.
  out.variance = rhs[k];
  for (std::size_t i = 0; i < k; ++i) out.variance += rhs[i] * b[i];
  out.variance = std::max(0.0, out.variance);
  return out;
}

std::vector<KrigingDatabase::Prediction> KrigingDatabase::predict_batch(
    std::span<const geo::EnuPoint> points, unsigned threads) const {
  if (!index_) throw std::logic_error("kriging: not fitted");
  return runtime::parallel_map(points.size(), threads,
                               [&](std::size_t i) { return predict(points[i]); });
}

int KrigingDatabase::classify(const geo::EnuPoint& p) const {
  if (!index_) throw std::logic_error("kriging: not fitted");
  if (predict(p).rss_dbm >= config_.threshold_dbm) return ml::kNotSafe;
  bool poisoned = false;
  index_->for_each_within(p, config_.separation_m, [&](std::size_t i) {
    if (rss_[i] >= config_.threshold_dbm) poisoned = true;
  });
  return poisoned ? ml::kNotSafe : ml::kSafe;
}

}  // namespace waldo::baselines
