#include "waldo/baselines/vscope.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "waldo/ml/kmeans.hpp"
#include "waldo/ml/metrics.hpp"

namespace waldo::baselines {

namespace {

struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  std::size_t n = 0;
};

/// OLS of y on x.
[[nodiscard]] LinearFit regress(std::span<const double> x,
                                std::span<const double> y) {
  LinearFit f;
  f.n = x.size();
  if (f.n < 2) return f;
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < f.n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const auto dn = static_cast<double>(f.n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    f.intercept = sy / dn;
    return f;
  }
  f.slope = (dn * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / dn;
  return f;
}

}  // namespace

double VScope::nearest_tx_distance_m(const geo::EnuPoint& p) const {
  double best = std::numeric_limits<double>::infinity();
  for (const geo::EnuPoint& tx : transmitters_) {
    best = std::min(best, geo::distance_m(p, tx));
  }
  return best;
}

void VScope::fit(const campaign::ChannelDataset& data,
                 std::span<const geo::EnuPoint> transmitters) {
  if (data.readings.empty()) {
    throw std::invalid_argument("vscope: empty training data");
  }
  if (transmitters.empty()) {
    throw std::invalid_argument(
        "vscope: needs registered transmitter locations");
  }
  transmitters_.assign(transmitters.begin(), transmitters.end());

  ml::Matrix locations(data.readings.size(), 2);
  for (std::size_t i = 0; i < data.readings.size(); ++i) {
    locations(i, 0) = data.readings[i].position.east_m;
    locations(i, 1) = data.readings[i].position.north_m;
  }
  ml::KMeansConfig kmc;
  kmc.k = std::max<std::size_t>(1, config_.num_clusters);
  kmc.seed = config_.seed;
  const ml::KMeansResult clusters = ml::kmeans(locations, kmc);

  // Global fallback fit over everything (used for tiny clusters).
  std::vector<double> all_x, all_y;
  all_x.reserve(data.readings.size());
  for (const campaign::Measurement& m : data.readings) {
    const double d_km =
        std::max(10.0, nearest_tx_distance_m(m.position)) / 1000.0;
    all_x.push_back(std::log10(d_km));
    all_y.push_back(m.rss_dbm);
  }
  const LinearFit global = regress(all_x, all_y);

  fits_.clear();
  for (std::size_t c = 0; c < clusters.centroids.rows(); ++c) {
    std::vector<double> x, y;
    for (std::size_t i = 0; i < data.readings.size(); ++i) {
      if (clusters.assignment[i] != c) continue;
      x.push_back(all_x[i]);
      y.push_back(all_y[i]);
    }
    LinearFit lf = x.size() >= 8 ? regress(x, y) : global;
    ClusterFit cf;
    cf.centroid = geo::EnuPoint{clusters.centroids(c, 0),
                                clusters.centroids(c, 1)};
    cf.intercept_dbm = lf.intercept;
    // rss = intercept + slope * log10(d_km); slope = -10 n.
    cf.exponent = -lf.slope / 10.0;
    cf.samples = x.size();
    fits_.push_back(cf);
  }
}

std::size_t VScope::cluster_of(const geo::EnuPoint& p) const {
  if (fits_.empty()) throw std::logic_error("vscope: not fitted");
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < fits_.size(); ++c) {
    const double d = geo::distance_m(p, fits_[c].centroid);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

double VScope::predict_rss_dbm(const geo::EnuPoint& p) const {
  const ClusterFit& cf = fits_[cluster_of(p)];
  const double d_km = std::max(10.0, nearest_tx_distance_m(p)) / 1000.0;
  return cf.intercept_dbm - 10.0 * cf.exponent * std::log10(d_km);
}

int VScope::classify(const geo::EnuPoint& p) const {
  const ClusterFit& cf = fits_[cluster_of(p)];
  const double d_m = std::max(10.0, nearest_tx_distance_m(p));
  const double rss = cf.intercept_dbm -
                     10.0 * cf.exponent * std::log10(d_m / 1000.0);
  const double guarded_threshold =
      config_.threshold_dbm - config_.protection_margin_db;
  if (rss >= guarded_threshold) return ml::kNotSafe;
  if (cf.exponent > 0.0) {
    // Monotone fitted field: apply the separation distance through the
    // fitted contour radius.
    const double contour_km = std::pow(
        10.0, (cf.intercept_dbm - guarded_threshold) /
                  (10.0 * cf.exponent));
    if (d_m < contour_km * 1000.0 + config_.separation_m) {
      return ml::kNotSafe;
    }
  }
  return ml::kSafe;
}

}  // namespace waldo::baselines
