// Two-collection-sets ablation (Section 2.1): the paper gathered its data
// in two sets several months apart and reused the same calibration factors
// across both. This bench reproduces that protocol: calibrate the sensors
// once, drive the metro in spring, drive the "months later" world (fresh
// small-scale fading, foliage on every obstruction, aged sensor gain) with
// the SAME calibration, and measure how stable labels and models are.
#include <cstdio>

#include "common.hpp"
#include "waldo/core/model_constructor.hpp"
#include "waldo/ml/stats.hpp"

using namespace waldo;

int main() {
  std::printf("Seasonal ablation — two collection sets, one calibration\n");

  const rf::Environment spring = rf::make_metro_environment();
  const rf::Environment autumn = rf::seasonal_variant(spring);
  const geo::DrivePath route = campaign::standard_route(spring, 4000, 99);

  // One physical RTL-SDR: calibrated once, aged before the second set.
  sensors::Sensor rtl(sensors::rtl_sdr_spec(), 3);
  rtl.calibrate();

  bench::print_title("label stability and calibration accuracy per channel");
  bench::print_row({"channel", "safe_spring", "safe_autumn", "agreement",
                    "readback_err_dB"},
                   16);
  double agreement_sum = 0.0;
  std::size_t evaluated = 0;
  for (const int ch : rf::kEvaluationChannels) {
    auto set_a = campaign::collect_channel(spring, rtl, ch, route.readings);
    rtl.set_gain_drift_db(0.4);  // months of temperature/ageing drift
    auto set_b = campaign::collect_channel(autumn, rtl, ch, route.readings);
    rtl.set_gain_drift_db(0.0);

    const auto labels_a =
        campaign::label_readings(set_a.positions(), set_a.rss_values());
    const auto labels_b =
        campaign::label_readings(set_b.positions(), set_b.rss_values());
    std::size_t agree = 0;
    double readback_err = 0.0;
    for (std::size_t i = 0; i < labels_a.size(); ++i) {
      agree += labels_a[i] == labels_b[i] ? 1 : 0;
      readback_err += std::abs(set_b.readings[i].rss_dbm -
                               set_b.readings[i].true_rss_dbm);
    }
    const double agreement =
        static_cast<double>(agree) / static_cast<double>(labels_a.size());
    agreement_sum += agreement;
    ++evaluated;
    // Readback error is meaningful only where the signal is above floor;
    // report it over decodable readings.
    std::size_t strong = 0;
    double strong_err = 0.0;
    for (const campaign::Measurement& m : set_b.readings) {
      if (m.true_rss_dbm >= -84.0) {
        strong_err += std::abs(m.rss_dbm - m.true_rss_dbm);
        ++strong;
      }
    }
    bench::print_row(
        {std::to_string(ch), bench::fmt(campaign::safe_fraction(labels_a)),
         bench::fmt(campaign::safe_fraction(labels_b)),
         bench::fmt(agreement),
         strong > 0 ? bench::fmt(strong_err / static_cast<double>(strong), 2)
                    : "-"},
        16);
  }
  std::printf("mean cross-season label agreement: %.3f\n",
              agreement_sum / static_cast<double>(evaluated));

  // Does a spring-trained model survive autumn? (The deployment question:
  // how often must the central database re-campaign?)
  bench::print_title("spring-trained model evaluated on autumn data (ch 46)");
  sensors::Sensor spring_unit(sensors::rtl_sdr_spec(), 5);
  spring_unit.calibrate();
  auto train = campaign::collect_channel(spring, spring_unit, 46,
                                         route.readings);
  core::ModelConstructorConfig mc;
  mc.classifier = "svm";
  mc.num_features = 3;
  mc.num_localities = 3;
  mc.max_train_samples = 800;
  const core::WhiteSpaceModel model =
      core::ModelConstructor(mc).build_with_labeling(train);

  sensors::Sensor autumn_unit(sensors::rtl_sdr_spec(), 6);
  autumn_unit.calibrate();
  autumn_unit.set_gain_drift_db(0.4);
  auto test = campaign::collect_channel(autumn, autumn_unit, 46,
                                        route.readings);
  const auto test_labels =
      campaign::label_readings(test.positions(), test.rss_values());
  ml::ConfusionMatrix cm;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const campaign::Measurement& m = test.readings[i];
    const auto row =
        core::feature_row(m.position, m.rss_dbm, m.cft_db, m.aft_db, 3);
    cm.add(model.predict(row), test_labels[i]);
  }
  std::printf("error %.3f, FP %.3f, FN %.3f\n", cm.error_rate(),
              cm.fp_rate(), cm.fn_rate());
  std::printf(
      "\nExpected shape: calibration reuse across seasons is sound (the"
      " paper's\nrobustness claim) — readback stays accurate, labels agree"
      " away from contours,\nand a spring model degrades gracefully rather"
      " than catastrophically, with the\nerror concentrated at coverage"
      " boundaries that foliage shifted.\n");
  return 0;
}
