// Figure 6 + Section 2.2 rates: per-reading detection decisions and RSS of
// RTL-SDR / USRP / spectrum analyzer on channel 47, and the aggregate
// misdetection (FN) and false-alarm (FP) rates of the low-cost sensors
// against the analyzer across all nine channels (paper: RTL 39.8%/0.8%,
// USRP 20.9%/5.2%).
#include <cstdio>

#include "common.hpp"
#include "waldo/ml/metrics.hpp"

using namespace waldo;

int main() {
  std::printf("Figure 6 — low-cost sensors vs spectrum analyzer\n");
  bench::Campaign campaign;

  // (a)/(b): a slice of the channel-47 trace.
  constexpr int kChannel = 47;
  const auto& sa = campaign.dataset(bench::SensorKind::kSpectrumAnalyzer,
                                    kChannel);
  const auto& rtl = campaign.dataset(bench::SensorKind::kRtlSdr, kChannel);
  const auto& usrp = campaign.dataset(bench::SensorKind::kUsrpB200, kChannel);
  const auto& lab_sa =
      campaign.labels(bench::SensorKind::kSpectrumAnalyzer, kChannel);
  const auto& lab_rtl = campaign.labels(bench::SensorKind::kRtlSdr, kChannel);
  const auto& lab_usrp =
      campaign.labels(bench::SensorKind::kUsrpB200, kChannel);

  bench::print_title("(a/b) channel 47 trace sample (every 250th reading)");
  bench::print_row({"seq", "SA_rss", "RTL_rss", "USRP_rss", "SA", "RTL",
                    "USRP"},
                   10);
  const auto lab = [](int l) { return l == ml::kSafe ? "safe" : "NOT"; };
  for (std::size_t i = 0; i < sa.size(); i += 250) {
    bench::print_row({std::to_string(i), bench::fmt(sa.readings[i].rss_dbm, 1),
                      bench::fmt(rtl.readings[i].rss_dbm, 1),
                      bench::fmt(usrp.readings[i].rss_dbm, 1), lab(lab_sa[i]),
                      lab(lab_rtl[i]), lab(lab_usrp[i])},
                     10);
  }

  // Aggregate rates over all nine channels.
  bench::print_title("Section 2.2 rates vs analyzer labels (all channels)");
  bench::print_row({"channel", "RTL_FN", "RTL_FP", "USRP_FN", "USRP_FP"});
  ml::ConfusionMatrix rtl_total, usrp_total;
  for (const int ch : rf::kPaperChannels) {
    const auto& truth_lab =
        campaign.labels(bench::SensorKind::kSpectrumAnalyzer, ch);
    const auto& r = campaign.labels(bench::SensorKind::kRtlSdr, ch);
    const auto& u = campaign.labels(bench::SensorKind::kUsrpB200, ch);
    const ml::ConfusionMatrix cm_r = ml::compare_labels(r, truth_lab);
    const ml::ConfusionMatrix cm_u = ml::compare_labels(u, truth_lab);
    rtl_total.merge(cm_r);
    usrp_total.merge(cm_u);
    bench::print_row({std::to_string(ch), bench::fmt(cm_r.fn_rate()),
                      bench::fmt(cm_r.fp_rate()), bench::fmt(cm_u.fn_rate()),
                      bench::fmt(cm_u.fp_rate())});
  }
  bench::print_row({"TOTAL", bench::fmt(rtl_total.fn_rate()),
                    bench::fmt(rtl_total.fp_rate()),
                    bench::fmt(usrp_total.fn_rate()),
                    bench::fmt(usrp_total.fp_rate())});
  std::printf(
      "\nPaper shape: RTL misdetects more white space than USRP (39.8%% vs"
      " 20.9%% in the paper)\nwhile both keep false alarms near zero — high"
      " safety, reduced efficiency.\n");
  return 0;
}
