// Figure 4: false-negative rate of a conventional (Google-style) spectrum
// database versus white spaces actually detected by spectrum-analyzer
// measurements, per channel — (a) without and (b) with the antenna
// correction factor. Databases are safe but overprotective: FN is large on
// partially occupied channels and zero on the blanket channels 27/39.
#include <cstdio>

#include "common.hpp"
#include "waldo/baselines/geo_database.hpp"
#include "waldo/ml/metrics.hpp"

using namespace waldo;

namespace {

void run_variant(bench::Campaign& campaign, double correction_db,
                 const char* title) {
  bench::print_title(title);
  bench::print_row({"channel", "safe_frac", "DB_FN", "DB_FP", "DB_error"});
  double fn_sum = 0.0;
  std::size_t evaluated = 0;
  for (const int ch : rf::kPaperChannels) {
    const campaign::ChannelDataset& ds =
        campaign.dataset(bench::SensorKind::kSpectrumAnalyzer, ch);
    const std::vector<int>& labels =
        campaign.labels(bench::SensorKind::kSpectrumAnalyzer, ch,
                        correction_db);
    const baselines::GeoDatabase db(campaign.environment(), ch);
    ml::ConfusionMatrix cm;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      cm.add(db.classify(ds.readings[i].position), labels[i]);
    }
    bench::print_row({std::to_string(ch),
                      bench::fmt(campaign::safe_fraction(labels)),
                      bench::fmt(cm.fn_rate()), bench::fmt(cm.fp_rate()),
                      bench::fmt(cm.error_rate())});
    if (cm.actually_safe() > 0) {
      fn_sum += cm.fn_rate();
      ++evaluated;
    }
  }
  if (evaluated > 0) {
    std::printf("mean FN over channels with white space: %.3f\n",
                fn_sum / static_cast<double>(evaluated));
  }
}

}  // namespace

int main() {
  bench::Campaign campaign;
  std::printf("Figure 4 — spectrum-database false negatives vs "
              "spectrum-analyzer ground truth\n");
  run_variant(campaign, 0.0, "(a) no antenna correction factor");
  run_variant(campaign, campaign.environment().antenna_correction_db(),
              "(b) +7.5 dB antenna correction factor");
  std::printf(
      "\nPaper shape: FN 0.1-0.6 on partially occupied channels, 0 on fully"
      " occupied ones;\ncorrection reduces detected white space but database"
      " error remains high.\n");
  return 0;
}
