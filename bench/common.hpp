// Shared scaffolding for the paper-reproduction benches: the standard
// metro environment, the standard campaign (route + calibrated sensors +
// per-channel datasets, built lazily and cached), and fixed-width table
// printing so every bench emits paper-style rows.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "waldo/campaign/labeling.hpp"
#include "waldo/campaign/measurement.hpp"
#include "waldo/campaign/truth.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/features.hpp"
#include "waldo/core/model_constructor.hpp"
#include "waldo/ml/cross_validation.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/sensors/sensor.hpp"

namespace waldo::bench {

enum class SensorKind { kRtlSdr, kUsrpB200, kSpectrumAnalyzer };

[[nodiscard]] const char* sensor_name(SensorKind kind);

/// The standard evaluation world: the metro environment, the 5282-reading
/// war-drive route, calibrated sensor instances, and per-(sensor, channel)
/// datasets with Algorithm 1 labels. Everything is cached after first use
/// so benches can ask for what they need without re-simulating.
class Campaign {
 public:
  /// `num_readings` trades fidelity for runtime; the paper's value is 5282.
  explicit Campaign(std::size_t num_readings = 5282,
                    std::uint64_t seed = 99);

  [[nodiscard]] const rf::Environment& environment() const noexcept {
    return *env_;
  }
  [[nodiscard]] const geo::DrivePath& route() const noexcept {
    return *route_;
  }

  /// Dataset of one sensor on one channel (collected on first request).
  [[nodiscard]] const campaign::ChannelDataset& dataset(SensorKind sensor,
                                                        int channel);

  /// Algorithm 1 labels of that dataset (cached). `correction_db` selects
  /// the antenna-correction variant.
  [[nodiscard]] const std::vector<int>& labels(SensorKind sensor, int channel,
                                               double correction_db = 0.0);

  /// Analytic regulatory ground truth for a channel (cached).
  [[nodiscard]] const campaign::GroundTruthLabeler& truth(int channel);

  /// A fresh calibrated sensor instance of a kind (distinct physical unit).
  [[nodiscard]] sensors::Sensor make_sensor(SensorKind kind,
                                            std::uint64_t seed);

 private:
  std::unique_ptr<rf::Environment> env_;
  std::unique_ptr<geo::DrivePath> route_;
  std::map<std::pair<int, int>, campaign::ChannelDataset> datasets_;
  std::map<std::tuple<int, int, int>, std::vector<int>> labels_;
  std::map<int, std::unique_ptr<campaign::GroundTruthLabeler>> truths_;
};

/// Paper-protocol evaluation of a plain classifier on one channel: k-fold
/// CV over the dataset's feature matrix and Algorithm 1 labels.
struct EvalConfig {
  std::string classifier = "svm";  ///< "svm" | "naive_bayes" | ...
  int num_features = 3;            ///< paper axis: 1 = location only
  std::size_t folds = 10;
  std::size_t max_train = 800;  ///< per-fold training cap (runtime knob)
  std::uint64_t seed = 17;
  double correction_db = 0.0;  ///< labeling antenna correction
  /// Reproduce the paper's OpenCV pipeline exactly: location expressed in
  /// degrees, raw dB feature units, SVM with C = 1, gamma = 1 and no
  /// standardisation. With those settings a location-only RBF kernel is
  /// nearly uniform (degrees are numerically tiny), which is where the
  /// paper's large location-only errors — and therefore the dramatic gains
  /// from signal features — come from. The library default (standardised
  /// kernel) is the engineering-correct mode; this flag is the
  /// artifact-faithful mode. See EXPERIMENTS.md.
  bool paper_faithful = false;
};

/// Feature matrix in the paper's raw units: (lat_deg, lon_deg[, rss, cft,
/// aft]) with degrees derived from the ENU frame at Atlanta's latitude.
[[nodiscard]] ml::Matrix build_paper_features(
    const campaign::ChannelDataset& data, int num_features);

[[nodiscard]] ml::ConfusionMatrix evaluate_classifier(Campaign& campaign,
                                                      SensorKind sensor,
                                                      int channel,
                                                      const EvalConfig& cfg);

/// Same protocol through the full ModelConstructor (localities k-means +
/// per-cluster classifiers) — what Fig. 13's clustering study needs.
[[nodiscard]] ml::ConfusionMatrix evaluate_waldo_model(
    Campaign& campaign, SensorKind sensor, int channel, std::size_t localities,
    const EvalConfig& cfg);

/// Prints a table header / row with fixed-width columns.
void print_title(const std::string& title);
void print_row(const std::vector<std::string>& cells, int width = 12);
[[nodiscard]] std::string fmt(double value, int decimals = 3);

/// Machine-readable bench output. Benches accept `--json <path>` and, when
/// present, append their results to a JSON document so CI can archive and
/// diff runs (see BENCH_micro_pipeline.json for the committed baseline).
struct BenchRecord {
  std::string name;
  double value = 0.0;
  std::string unit;                ///< e.g. "ns/item", "s", "percent"
  double items_per_second = 0.0;   ///< derived; 0 when not a rate
};

class JsonReport {
 public:
  /// A per-item timing: records ns/item and the derived items/second.
  void add_rate(const std::string& name, double ns_per_item);
  /// A free-form scalar metric.
  void add_value(const std::string& name, double value,
                 const std::string& unit);
  /// Writes `{bench, peak_rss_bytes, results: [...]}` to `path`. Returns
  /// false (and prints to stderr) on I/O failure.
  bool write(const std::string& path, const std::string& bench_name) const;

 private:
  std::vector<BenchRecord> records_;
};

/// Extracts `--json <path>` from argv (removing both tokens so downstream
/// parsers never see them). Returns an empty string when the flag is absent.
[[nodiscard]] std::string json_path_from_args(int& argc, char** argv);

/// Peak resident set size of this process in bytes (0 if unavailable).
[[nodiscard]] long peak_rss_bytes();

}  // namespace waldo::bench
