// Figure 14: effect of incrementally growing the training dataset. (a)/(b)
// error vs training fraction on channels 15 and 30 (location + two signal
// features, k = 5 localities, both sensors, both models); (c) the error CDF
// over all channels and classification configurations for 25/50/75/100 %
// of the training pool.
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "waldo/ml/stats.hpp"
#include "waldo/runtime/thread_pool.hpp"

using namespace waldo;

namespace {

/// Trains a k=5 Waldo model on `fraction` of the pool, tests on a fixed
/// 10 % holdout (paper protocol). `threads` feeds the ModelConstructor
/// fan-out (0 = all hardware threads); the confusion matrix is identical
/// at every thread count.
ml::ConfusionMatrix eval_fraction(bench::Campaign& campaign,
                                  bench::SensorKind sensor, int channel,
                                  const char* model, int num_features,
                                  double fraction, std::uint64_t seed,
                                  unsigned threads = 0) {
  const campaign::ChannelDataset& ds = campaign.dataset(sensor, channel);
  const std::vector<int>& labels = campaign.labels(sensor, channel);

  std::vector<std::size_t> perm(ds.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::mt19937_64 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);

  const std::size_t test_n = ds.size() / 10;
  core::ModelConstructorConfig mc;
  mc.classifier = model;
  mc.num_features = num_features;
  mc.num_localities = 5;
  mc.max_train_samples = 600;
  mc.threads = threads;

  campaign::ChannelDataset train;
  train.channel = ds.channel;
  std::vector<int> train_labels;
  const auto pool_n = static_cast<std::size_t>(
      fraction * static_cast<double>(ds.size() - test_n));
  for (std::size_t i = test_n; i < test_n + pool_n; ++i) {
    train.readings.push_back(ds.readings[perm[i]]);
    train_labels.push_back(labels[perm[i]]);
  }
  const core::WhiteSpaceModel model_built =
      core::ModelConstructor(mc).build(train, train_labels);

  ml::ConfusionMatrix cm;
  for (std::size_t i = 0; i < test_n; ++i) {
    const campaign::Measurement& m = ds.readings[perm[i]];
    const auto row = core::feature_row(m.position, m.rss_dbm, m.cft_db,
                                       m.aft_db, num_features);
    cm.add(model_built.predict(row), labels[perm[i]]);
  }
  return cm;
}

}  // namespace

int main() {
  std::printf("Figure 14 — incremental growth of the training dataset\n");
  bench::Campaign campaign;

  for (const int ch : {15, 30}) {
    bench::print_title("(" + std::string(ch == 15 ? "a" : "b") +
                       ") channel " + std::to_string(ch) +
                       " error vs training fraction (k=5, loc + RSS + CFT)");
    bench::print_row({"fraction", "RTL NB", "RTL SVM", "USRP NB",
                      "USRP SVM"},
                     12);
    for (int step = 1; step <= 9; ++step) {
      const double fraction = static_cast<double>(step) / 9.0;
      std::vector<std::string> row{bench::fmt(fraction, 2)};
      for (const bench::SensorKind sensor :
           {bench::SensorKind::kRtlSdr, bench::SensorKind::kUsrpB200}) {
        for (const char* model : {"naive_bayes", "svm"}) {
          row.push_back(bench::fmt(
              eval_fraction(campaign, sensor, ch, model, 3, fraction, 7)
                  .error_rate()));
        }
      }
      bench::print_row(row, 12);
    }
  }

  bench::print_title("(c) error CDF over all channels x sensors x features");
  std::map<int, std::vector<double>> errors;  // percent -> error samples
  for (const int percent : {25, 50, 75, 100}) {
    for (const int ch : rf::kEvaluationChannels) {
      for (const bench::SensorKind sensor :
           {bench::SensorKind::kRtlSdr, bench::SensorKind::kUsrpB200}) {
        for (int nf = 1; nf <= 4; ++nf) {
          errors[percent].push_back(
              eval_fraction(campaign, sensor, ch, "naive_bayes", nf,
                            percent / 100.0, 11)
                  .error_rate());
        }
      }
    }
  }
  bench::print_row({"probability", "25%", "50%", "75%", "100%"}, 12);
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    std::vector<std::string> row{bench::fmt(q, 2)};
    for (const int percent : {25, 50, 75, 100}) {
      row.push_back(bench::fmt(ml::quantile(errors[percent], q)));
    }
    bench::print_row(row, 12);
  }
  // Runtime check: the largest training size, serial vs parallel. The
  // per-locality SVM fan-out (waldo::runtime) must keep the confusion
  // matrix bit-identical while cutting wall-clock.
  bench::print_title("runtime — full training set, serial vs parallel");
  constexpr int kReps = 10;
  const auto timed = [&campaign](unsigned threads, ml::ConfusionMatrix& cm) {
    const auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      cm = eval_fraction(campaign, bench::SensorKind::kUsrpB200, 30, "svm", 3,
                         1.0, 7, threads);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  ml::ConfusionMatrix serial_cm, parallel_cm;
  const double serial_s = timed(1, serial_cm);
  const double parallel_s = timed(0, parallel_cm);
  const bool identical = serial_cm.true_safe == parallel_cm.true_safe &&
                         serial_cm.false_safe == parallel_cm.false_safe &&
                         serial_cm.true_not_safe == parallel_cm.true_not_safe &&
                         serial_cm.false_not_safe == parallel_cm.false_not_safe;
  bench::print_row({"threads", "seconds", "error", "identical"}, 12);
  bench::print_row({"1", bench::fmt(serial_s, 2),
                    bench::fmt(serial_cm.error_rate()), "-"},
                   12);
  bench::print_row({std::to_string(runtime::hardware_threads()),
                    bench::fmt(parallel_s, 2),
                    bench::fmt(parallel_cm.error_rate()),
                    identical ? "yes" : "NO"},
                   12);
  std::printf("speedup: %.2fx over %d reps\n", serial_s / parallel_s, kReps);
  if (runtime::hardware_threads() == 1) {
    std::printf("(host exposes one hardware thread: the parallel path "
                "degrades to the serial loop,\nso the speedup above is "
                "measurement noise — only the 'identical' column is "
                "meaningful)\n");
  }

  std::printf(
      "\nPaper shape: more training data consistently improves accuracy;"
      " the error CDF\nshifts left as the training share grows — continuous"
      " crowdsourced updates pay off.\n");
  return 0;
}
