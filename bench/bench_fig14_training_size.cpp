// Figure 14: effect of incrementally growing the training dataset. (a)/(b)
// error vs training fraction on channels 15 and 30 (location + two signal
// features, k = 5 localities, both sensors, both models); (c) the error CDF
// over all channels and classification configurations for 25/50/75/100 %
// of the training pool.
#include <cstdio>

#include "common.hpp"
#include "waldo/ml/stats.hpp"

using namespace waldo;

namespace {

/// Trains a k=5 Waldo model on `fraction` of the pool, tests on a fixed
/// 10 % holdout (paper protocol).
ml::ConfusionMatrix eval_fraction(bench::Campaign& campaign,
                                  bench::SensorKind sensor, int channel,
                                  const char* model, int num_features,
                                  double fraction, std::uint64_t seed) {
  const campaign::ChannelDataset& ds = campaign.dataset(sensor, channel);
  const std::vector<int>& labels = campaign.labels(sensor, channel);

  std::vector<std::size_t> perm(ds.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::mt19937_64 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);

  const std::size_t test_n = ds.size() / 10;
  core::ModelConstructorConfig mc;
  mc.classifier = model;
  mc.num_features = num_features;
  mc.num_localities = 5;
  mc.max_train_samples = 600;

  campaign::ChannelDataset train;
  train.channel = ds.channel;
  std::vector<int> train_labels;
  const auto pool_n = static_cast<std::size_t>(
      fraction * static_cast<double>(ds.size() - test_n));
  for (std::size_t i = test_n; i < test_n + pool_n; ++i) {
    train.readings.push_back(ds.readings[perm[i]]);
    train_labels.push_back(labels[perm[i]]);
  }
  const core::WhiteSpaceModel model_built =
      core::ModelConstructor(mc).build(train, train_labels);

  ml::ConfusionMatrix cm;
  for (std::size_t i = 0; i < test_n; ++i) {
    const campaign::Measurement& m = ds.readings[perm[i]];
    const auto row = core::feature_row(m.position, m.rss_dbm, m.cft_db,
                                       m.aft_db, num_features);
    cm.add(model_built.predict(row), labels[perm[i]]);
  }
  return cm;
}

}  // namespace

int main() {
  std::printf("Figure 14 — incremental growth of the training dataset\n");
  bench::Campaign campaign;

  for (const int ch : {15, 30}) {
    bench::print_title("(" + std::string(ch == 15 ? "a" : "b") +
                       ") channel " + std::to_string(ch) +
                       " error vs training fraction (k=5, loc + RSS + CFT)");
    bench::print_row({"fraction", "RTL NB", "RTL SVM", "USRP NB",
                      "USRP SVM"},
                     12);
    for (int step = 1; step <= 9; ++step) {
      const double fraction = static_cast<double>(step) / 9.0;
      std::vector<std::string> row{bench::fmt(fraction, 2)};
      for (const bench::SensorKind sensor :
           {bench::SensorKind::kRtlSdr, bench::SensorKind::kUsrpB200}) {
        for (const char* model : {"naive_bayes", "svm"}) {
          row.push_back(bench::fmt(
              eval_fraction(campaign, sensor, ch, model, 3, fraction, 7)
                  .error_rate()));
        }
      }
      bench::print_row(row, 12);
    }
  }

  bench::print_title("(c) error CDF over all channels x sensors x features");
  std::map<int, std::vector<double>> errors;  // percent -> error samples
  for (const int percent : {25, 50, 75, 100}) {
    for (const int ch : rf::kEvaluationChannels) {
      for (const bench::SensorKind sensor :
           {bench::SensorKind::kRtlSdr, bench::SensorKind::kUsrpB200}) {
        for (int nf = 1; nf <= 4; ++nf) {
          errors[percent].push_back(
              eval_fraction(campaign, sensor, ch, "naive_bayes", nf,
                            percent / 100.0, 11)
                  .error_rate());
        }
      }
    }
  }
  bench::print_row({"probability", "25%", "50%", "75%", "100%"}, 12);
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    std::vector<std::string> row{bench::fmt(q, 2)};
    for (const int percent : {25, 50, 75, 100}) {
      row.push_back(bench::fmt(ml::quantile(errors[percent], q)));
    }
    bench::print_row(row, 12);
  }
  std::printf(
      "\nPaper shape: more training data consistently improves accuracy;"
      " the error CDF\nshifts left as the training share grows — continuous"
      " crowdsourced updates pay off.\n");
  return 0;
}
