// Figure 18 + Section 5 CPU overhead: CDF of the detection app's CPU share
// during active scanning (peak periods), and the average utilisation
// normalised over the 60 s scan period (paper: ~2.35 %). The processing
// pipeline (FFT, feature extraction, convergence filter, model inference)
// is actually executed and timed; acquisition latency is modelled.
#include <cstdio>
#include <random>

#include "common.hpp"
#include "waldo/core/database.hpp"
#include "waldo/device/phone.hpp"
#include "waldo/ml/stats.hpp"

using namespace waldo;

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  std::printf("Figure 18 — CPU overhead of the Waldo app\n");
  bench::Campaign campaign(1200);

  core::ModelConstructorConfig mc;
  mc.classifier = "svm";
  mc.num_features = 3;
  mc.max_train_samples = 600;
  core::SpectrumDatabase db(mc);
  for (const int ch : rf::kPaperChannels) {
    db.ingest_campaign(campaign.dataset(bench::SensorKind::kUsrpB200, ch));
  }

  device::PhoneConfig cfg;
  cfg.cache_constant_channels = false;  // paper protocol: scan everything
  // Emulate the paper's 2015 Android stack (Java + JNI OpenCV) on top of
  // the measured native pipeline time; 1.0 would report raw C++ speed,
  // which is ~200x faster than the phone the paper profiled.
  cfg.processing_time_scale = 200.0;
  sensors::Sensor sensor(device::phone_rtl_sdr_spec(), 71);
  sensor.calibrate();
  device::PhoneRuntime phone(cfg, std::move(sensor));
  const std::vector<int> channels(rf::kPaperChannels.begin(),
                                  rf::kPaperChannels.end());
  phone.ensure_models(db, channels);

  // Emulate the paper's 30-channel scan by sweeping the 9 modelled
  // channels repeatedly (30 channel-scans per cycle).
  std::vector<int> scan_list;
  while (scan_list.size() < 30) {
    for (const int ch : channels) {
      if (scan_list.size() < 30) scan_list.push_back(ch);
    }
  }

  std::mt19937_64 rng(72);
  std::uniform_real_distribution<double> coord(1000.0, 25'000.0);
  std::vector<double> active_cpu, duty_cpu, busy_times;
  constexpr int kCycles = 30;
  for (int c = 0; c < kCycles; ++c) {
    const geo::EnuPoint p{coord(rng), coord(rng)};
    const device::ScanReport report =
        phone.scan_cycle(campaign.environment(), scan_list, p);
    active_cpu.push_back(report.cpu_active_fraction() * 100.0);
    duty_cpu.push_back(report.cpu_duty_fraction(cfg.scan_period_s) * 100.0);
    busy_times.push_back(report.busy_time_s);
  }

  bench::print_title("CDF of CPU share during active scanning (percent)");
  bench::print_row({"probability", "cpu_pct"});
  for (const auto& pt : ml::empirical_cdf(active_cpu, 10)) {
    bench::print_row({bench::fmt(pt.probability, 2), bench::fmt(pt.value, 2)});
  }
  std::printf(
      "busy time per 30-channel cycle: mean %.2f s (paper: 5.89 s)\n"
      "CPU normalised over the 60 s period: mean %.2f%% (paper: 2.35%%)\n",
      ml::summarize(busy_times).mean, ml::summarize(duty_cpu).mean);
  std::printf(
      "\nPaper shape: scanning is bursty — noticeable CPU during the scan,"
      " negligible\nwhen normalised over the FCC-mandated 60 s re-check"
      " period.\n");
  if (!json_path.empty()) {
    bench::JsonReport report;
    report.add_value("busy_time_per_cycle_mean", ml::summarize(busy_times).mean,
                     "s");
    report.add_value("cpu_active_mean", ml::summarize(active_cpu).mean,
                     "percent");
    report.add_value("cpu_duty_mean", ml::summarize(duty_cpu).mean, "percent");
    if (!report.write(json_path, "bench_fig18_cpu")) return 1;
  }
  return 0;
}
