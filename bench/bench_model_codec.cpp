// Descriptor codec benchmark: per-family wire sizes (legacy v0 text vs the
// waldo::codec binary v1) and encode/decode timings, plus the serving-path
// payoff — download throughput with the cached serialized descriptor
// against re-serializing on every request. The size table is the paper's
// low-bandwidth story (Section 5: descriptors small enough to ship to
// devices); the committed BENCH_model_codec.json baseline comes from the
// reference container.
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "common.hpp"
#include "waldo/core/model.hpp"
#include "waldo/service/service.hpp"

using namespace waldo;

namespace {

constexpr const char* kFamilies[] = {"svm", "naive_bayes", "decision_tree",
                                     "knn", "logistic_regression"};

/// Deterministic diagonal field (same generator as `waldo model-size` and
/// tools/make_goldens): the class boundary cuts across the localities so
/// every family serializes a real trained payload, not constants.
campaign::ChannelDataset diagonal_dataset(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 10'000.0);
  std::normal_distribution<double> jitter(0.0, 1.0);
  campaign::ChannelDataset ds;
  ds.channel = 30;
  ds.sensor_name = "synthetic";
  for (std::size_t i = 0; i < n; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{coord(rng), coord(rng)};
    const bool occupied = m.position.east_m + m.position.north_m < 10'000.0;
    m.rss_dbm = (occupied ? -75.0 : -95.0) + jitter(rng);
    m.cft_db = (occupied ? -85.0 : -105.0) + jitter(rng);
    m.aft_db = (occupied ? -95.0 : -108.0) + jitter(rng);
    ds.readings.push_back(m);
  }
  return ds;
}

core::WhiteSpaceModel build_model(const campaign::ChannelDataset& ds,
                                  const std::string& family) {
  core::ModelConstructorConfig cfg;
  cfg.classifier = family;
  cfg.num_features = 3;
  cfg.num_localities = 3;
  return core::ModelConstructor(cfg).build_with_labeling(ds, {});
}

/// Mean ns/call of `fn` over enough iterations to be stable.
template <typename Fn>
double time_ns(Fn&& fn, std::size_t iterations) {
  // One warm-up call keeps first-touch allocation out of the measurement.
  fn();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) fn();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(iterations);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::JsonReport report;
  const campaign::ChannelDataset ds = diagonal_dataset(700, 17);

  bench::print_title("Descriptor wire formats: v0 text vs v1 binary");
  bench::print_row({"family", "text B", "bin B", "ratio", "enc ns", "dec ns"},
                   14);
  constexpr std::size_t kIters = 2'000;
  for (const char* family : kFamilies) {
    const core::WhiteSpaceModel model = build_model(ds, family);
    const std::string text = model.serialize_text();
    const std::string binary = model.serialize();
    const double encode_ns =
        time_ns([&] { (void)model.serialize(); }, kIters);
    const double decode_ns = time_ns(
        [&] { (void)core::WhiteSpaceModel::deserialize(binary); }, kIters);
    const double ratio =
        static_cast<double>(binary.size()) / static_cast<double>(text.size());
    bench::print_row(
        {family, std::to_string(text.size()), std::to_string(binary.size()),
         bench::fmt(100.0 * ratio, 0) + "%", bench::fmt(encode_ns, 0),
         bench::fmt(decode_ns, 0)},
        14);
    const std::string prefix = std::string(family) + "_";
    report.add_value(prefix + "text_bytes",
                     static_cast<double>(text.size()), "bytes");
    report.add_value(prefix + "binary_bytes",
                     static_cast<double>(binary.size()), "bytes");
    report.add_value(prefix + "binary_over_text",
                     100.0 * ratio, "percent");
    report.add_rate(prefix + "serialize_binary", encode_ns);
    report.add_rate(prefix + "deserialize_binary", decode_ns);
  }

  // The serving-path payoff: a warmed SpectrumService answering repeated
  // downloads from the cached descriptor vs paying a serialization each
  // time (what every download cost before the cache).
  bench::print_title("Download path: cached descriptor vs re-serialize");
  service::SpectrumService service([] {
    core::ModelConstructorConfig cfg;
    cfg.classifier = "naive_bayes";
    cfg.num_features = 2;
    cfg.num_localities = 3;
    return cfg;
  }());
  service.ingest_campaign(diagonal_dataset(900, 23));
  const int channel = 30;
  (void)service.download_model(channel);  // warm model + descriptor cache

  constexpr std::size_t kDownloads = 20'000;
  const double cached_ns = time_ns(
      [&] { (void)service.download_model(channel); }, kDownloads);
  const auto model = service.model(channel);
  const double reserialize_ns =
      time_ns([&] { (void)model->serialize(); }, kDownloads);

  bench::print_row({"path", "ns/req", "req/s"}, 18);
  bench::print_row({"cached", bench::fmt(cached_ns, 0),
                    bench::fmt(1e9 / cached_ns, 0)},
                   18);
  bench::print_row({"re-serialize", bench::fmt(reserialize_ns, 0),
                    bench::fmt(1e9 / reserialize_ns, 0)},
                   18);
  std::printf("cache payoff: %.1fx\n", reserialize_ns / cached_ns);
  report.add_rate("download_cached", cached_ns);
  report.add_rate("download_reserialize", reserialize_ns);
  report.add_value("cache_payoff", reserialize_ns / cached_ns, "x");

  const service::ServiceCounters counters = service.counters();
  report.add_value("descriptor_cache_hits",
                   static_cast<double>(counters.descriptor_cache_hits),
                   "count");
  report.add_value("descriptor_cache_misses",
                   static_cast<double>(counters.descriptor_cache_misses),
                   "count");

  if (!json_path.empty() && !report.write(json_path, "model_codec")) return 1;
  std::printf("\npeak rss: %.1f MiB\n",
              static_cast<double>(bench::peak_rss_bytes()) / (1024 * 1024));
  return 0;
}
