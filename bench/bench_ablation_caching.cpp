// Caching ablation (Section 5): the paper notes Waldo's 30-channel scan
// exceeds IEEE 802.22's 2 s sensing budget, but channels whose model is an
// area-wide constant need not be scanned at all. This bench measures the
// 30-channel cycle with and without constant-channel caching, on the
// realistic market mix where most TV channels are either blanket-occupied
// downtown or completely dark.
#include <cstdio>
#include <random>

#include "common.hpp"
#include "waldo/core/database.hpp"
#include "waldo/device/phone.hpp"
#include "waldo/ml/stats.hpp"

using namespace waldo;

namespace {

double mean_cycle_s(device::PhoneRuntime& phone,
                    const rf::Environment& environment,
                    std::span<const int> scan_list) {
  std::mt19937_64 rng(81);
  std::uniform_real_distribution<double> coord(2000.0, 24'000.0);
  std::vector<double> times;
  for (int i = 0; i < 15; ++i) {
    const geo::EnuPoint p{coord(rng), coord(rng)};
    times.push_back(phone.scan_cycle(environment, scan_list, p).busy_time_s);
  }
  return ml::summarize(times).mean;
}

}  // namespace

int main() {
  std::printf("Caching ablation — 30-channel scan cycle vs the IEEE "
              "802.22 2 s budget\n");
  bench::Campaign campaign(2000);

  core::ModelConstructorConfig mc;
  mc.classifier = "naive_bayes";
  mc.num_features = 2;
  mc.num_localities = 3;
  core::SpectrumDatabase db(mc);
  // The real 30-channel market: the 9 modelled stations plus 21 channels
  // that are simply dark in this metro (no transmitter -> every campaign
  // reading at the device floor -> an area-wide constant-safe model).
  std::vector<int> scan_list;
  sensors::Sensor campaign_sensor(sensors::usrp_b200_spec(), 85);
  campaign_sensor.calibrate();
  for (int ch = 14; ch <= 43; ++ch) {
    scan_list.push_back(ch);
    bool modelled = false;
    for (const int known : rf::kPaperChannels) modelled |= known == ch;
    if (modelled) {
      db.ingest_campaign(campaign.dataset(bench::SensorKind::kUsrpB200, ch));
    } else {
      db.ingest_campaign(campaign::collect_channel(
          campaign.environment(), campaign_sensor, ch,
          campaign.route().readings));
    }
  }

  bench::print_title("mean 30-channel cycle time");
  bench::print_row({"config", "cycle_s", "meets 2 s budget"}, 24);
  std::size_t constant_channels = 0;
  for (const int ch : scan_list) {
    constant_channels += db.model(ch).constant_label().has_value() ? 1 : 0;
  }
  for (const bool caching : {false, true}) {
    device::PhoneConfig cfg;
    cfg.cache_constant_channels = caching;
    sensors::Sensor sensor(device::phone_rtl_sdr_spec(),
                           90 + (caching ? 1 : 0));
    sensor.calibrate();
    device::PhoneRuntime phone(cfg, std::move(sensor));
    phone.ensure_models(db, scan_list);
    const double cycle = mean_cycle_s(phone, campaign.environment(),
                                      scan_list);
    bench::print_row({caching ? "constant-channel cache" : "scan everything",
                      bench::fmt(cycle, 2), cycle <= 2.0 ? "yes" : "no"},
                     24);
  }
  std::printf("\n%zu of 30 market channels have area-wide constant models"
              " and are cacheable;\nthe paper's 5.89 s / 2 s violation"
              " disappears once they are skipped.\n",
              constant_channels);
  return 0;
}
