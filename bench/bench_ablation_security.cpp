// Security ablation (Section 3.4): what malicious crowdsourced uploads do
// to the model with and without the correlation + corroboration +
// reputation defence. The dangerous attack in Waldo's pipeline is *false
// occupancy* (denial of white space): Algorithm 1 treats any hot reading
// as poisoning its 6 km neighbourhood, so a single accepted forgery flips
// a large area. False *vacancy* attacks are structurally harmless — low
// readings can never un-poison a neighbourhood.
#include <cstdio>

#include "common.hpp"
#include "waldo/core/database.hpp"
#include "waldo/core/security.hpp"

using namespace waldo;

namespace {

/// Fraction of a target area's grid the model declares not-safe.
double denied_fraction(core::SpectrumDatabase& db, int channel,
                       const geo::BoundingBox& area) {
  const core::WhiteSpaceModel& model = db.model(channel);
  std::size_t denied = 0, total = 0;
  for (double e = area.min_east_m; e <= area.max_east_m; e += 250.0) {
    for (double n = area.min_north_m; n <= area.max_north_m; n += 250.0) {
      // Location-only probe with floor-level signal features: what a
      // device in a genuinely silent spot would feed the model.
      const auto row = core::feature_row(geo::EnuPoint{e, n}, -86.0, -97.0,
                                         -99.0, 2);
      denied += model.predict(row) == ml::kNotSafe ? 1 : 0;
      ++total;
    }
  }
  return total ? static_cast<double>(denied) / static_cast<double>(total)
               : 0.0;
}

core::SpectrumDatabase make_database(bench::Campaign& campaign,
                                     const core::UploadPolicy& policy) {
  core::ModelConstructorConfig mc;
  mc.classifier = "naive_bayes";
  mc.num_features = 2;
  mc.num_localities = 3;
  core::SpectrumDatabase db(mc, campaign::LabelingConfig{}, policy);
  db.ingest_campaign(campaign.dataset(bench::SensorKind::kUsrpB200, 46));
  return db;
}

}  // namespace

int main() {
  std::printf("Security ablation — denial-of-white-space attack on the "
              "Global Model Updater\n");
  bench::Campaign campaign;  // full-density campaign

  // A genuinely safe area of the map (channel 46's white space is in the
  // south of the region).
  const geo::BoundingBox target{4000.0, 2000.0, 10'000.0, 6000.0};
  core::AttackConfig attack;
  attack.type = core::AttackType::kFalseOccupancy;
  attack.target_area = target;
  attack.forged_rss_dbm = -70.0;  // "a strong incumbent lives here"
  attack.num_reports = 120;
  const std::vector<campaign::Measurement> forged =
      core::forge_uploads(attack);

  bench::print_title("denied fraction of the target area (channel 46)");
  bench::print_row(
      {"scenario", "denied_frac", "accepted", "rejected", "pending"}, 26);

  {
    core::SpectrumDatabase db = make_database(campaign, {});
    bench::print_row({"baseline (no attack)",
                      bench::fmt(denied_fraction(db, 46, target)), "-", "-",
                      "-"},
                     26);
  }
  {
    // Defenceless database: checks disabled via a permissive policy.
    core::UploadPolicy open_door;
    open_door.max_deviation_db = 1e9;
    open_door.min_corroborators = 1;
    core::SpectrumDatabase db = make_database(campaign, open_door);
    const auto r = db.upload_measurements(46, forged, "mallory");
    bench::print_row({"attack, no defence",
                      bench::fmt(denied_fraction(db, 46, target)),
                      std::to_string(r.accepted), std::to_string(r.rejected),
                      std::to_string(r.pending)},
                     26);
  }
  {
    core::SpectrumDatabase db = make_database(campaign, {});
    const auto r = db.upload_measurements(46, forged, "mallory");
    bench::print_row({"attack, full defence",
                      bench::fmt(denied_fraction(db, 46, target)),
                      std::to_string(r.accepted), std::to_string(r.rejected),
                      std::to_string(r.pending)},
                     26);
  }

  // Repeated attack waves from one identity: correlation rejections drive
  // the reputation down until the identity is quarantined.
  {
    core::SpectrumDatabase db = make_database(campaign, {});
    core::SecureUpdater updater;
    std::size_t accepted = 0;
    int quarantined_after = -1;
    for (int round = 0; round < 5; ++round) {
      core::AttackConfig wave = attack;
      wave.seed = attack.seed + static_cast<std::uint64_t>(round);
      const auto r =
          updater.submit(db, 46, "mallory", core::forge_uploads(wave));
      accepted += r.accepted;
      if (updater.is_quarantined("mallory") && quarantined_after < 0) {
        quarantined_after = round;
      }
    }
    std::printf("\nreputation: mallory quarantined after wave %d; %zu "
                "forged readings ever trusted; model denial %.3f\n",
                quarantined_after, accepted,
                denied_fraction(db, 46, target));

    // An honest contributor on the same updater stays in good standing.
    const auto& ds = campaign.dataset(bench::SensorKind::kUsrpB200, 46);
    std::vector<campaign::Measurement> honest(ds.readings.begin(),
                                              ds.readings.begin() + 100);
    for (auto& m : honest) m.position.east_m += 40.0;
    const auto ok = updater.submit(db, 46, "alice", honest);
    std::printf("honest contributor: %zu/%zu accepted, reputation %.2f\n",
                ok.accepted, honest.size(),
                updater.record("alice").reputation);
  }

  // Known residual weakness: colluding Sybil identities can corroborate
  // each other's forgeries in genuinely unexplored territory.
  {
    core::SpectrumDatabase db = make_database(campaign, {});
    core::AttackConfig frontier = attack;
    frontier.target_area =
        geo::BoundingBox{-40'000.0, -40'000.0, -38'000.0, -38'000.0};
    frontier.num_reports = 10;
    const auto first =
        db.upload_measurements(46, core::forge_uploads(frontier), "sybil-1");
    frontier.seed += 1;
    const auto second =
        db.upload_measurements(46, core::forge_uploads(frontier), "sybil-2");
    std::printf("\nSybil collusion outside the mapped area: wave 1 pending="
                "%zu, wave 2 accepted=%zu\n(documented limitation — the"
                " full Fatemieh et al. defence adds propagation-model\n"
                "consistency checks; inside the mapped area the correlation"
                " test already blocks this.)\n",
                first.pending, second.accepted);
  }
  return 0;
}
