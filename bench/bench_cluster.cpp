// Cluster-tier throughput and failover latency: the multi-node spectrum
// database (waldo::cluster) under routed WSNP traffic. Measures a mixed
// download/upload workload against 1, 2 and 4 in-process nodes (R =
// min(2, N)), then a kill/recover scenario on a lossy transport and
// reports the router's failover-latency percentiles — the price of a
// request that had to retry or fail over. Committed BENCH_cluster.json
// was produced on the 1-core reference container: node "parallelism" is
// time-sliced there, so read the scaling column as overhead accounting,
// not speedup.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "waldo/cluster/cluster.hpp"
#include "waldo/cluster/router.hpp"
#include "waldo/runtime/seed.hpp"
#include "waldo/runtime/thread_pool.hpp"

using namespace waldo;

namespace {

constexpr int kChannels[] = {15, 46};
constexpr int kClientThreads = 3;
constexpr int kOpsPerThread = 120;
constexpr double kTileSize = 200'000.0;
constexpr double kAreaOffset = 400'000.0;

core::ModelConstructorConfig fast_config() {
  core::ModelConstructorConfig mc;
  mc.classifier = "naive_bayes";
  mc.num_features = 2;
  mc.num_localities = 3;
  return mc;
}

core::UploadPolicy serving_policy() {
  core::UploadPolicy policy;
  policy.rebuild_threshold = 25;
  return policy;
}

campaign::ChannelDataset translate(const campaign::ChannelDataset& ds,
                                   double east) {
  campaign::ChannelDataset out = ds;
  for (campaign::Measurement& m : out.readings) m.position.east_m += east;
  return out;
}

struct Area {
  cluster::TileKey tile;
  std::vector<const campaign::ChannelDataset*> sweeps;  // one per channel
};

/// Bootstraps two metro areas (tiles), two channels each.
std::vector<Area> bootstrap(bench::Campaign& campaign,
                            cluster::Cluster& clu,
                            std::vector<campaign::ChannelDataset>& storage) {
  storage.clear();
  storage.reserve(4);
  for (const int channel : kChannels) {
    storage.push_back(campaign.dataset(bench::SensorKind::kUsrpB200, channel));
  }
  for (const int channel : kChannels) {
    storage.push_back(translate(
        campaign.dataset(bench::SensorKind::kUsrpB200, channel), kAreaOffset));
  }
  std::vector<Area> areas(2);
  areas[0].tile = clu.ingest_campaign(storage[0]);
  clu.ingest_campaign(storage[1]);
  areas[0].sweeps = {&storage[0], &storage[1]};
  areas[1].tile = clu.ingest_campaign(storage[2]);
  clu.ingest_campaign(storage[3]);
  areas[1].sweeps = {&storage[2], &storage[3]};
  return areas;
}

/// Mixed 85/15 download/upload client traffic; returns wall ns/request.
double drive(cluster::Cluster& clu, cluster::ClusterRouter& router,
             const std::vector<Area>& areas, std::uint64_t seed) {
  const cluster::Tiling tiling = clu.topology().tiling;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937_64 rng(runtime::split_seed(seed, t));
      std::uniform_real_distribution<double> jitter(-40.0, 40.0);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Area& area = areas[rng() % areas.size()];
        const std::size_t slot = rng() % 2;
        const int channel = kChannels[slot];
        const geo::EnuPoint where = tiling.center(area.tile);
        if (rng() % 100 < 85) {
          (void)router.download_descriptor(channel, where);
        } else {
          const campaign::ChannelDataset& sweep = *area.sweeps[slot];
          std::uniform_int_distribution<std::size_t> pick(0,
                                                          sweep.size() - 1);
          std::vector<campaign::Measurement> batch;
          for (int r = 0; r < 3; ++r) {
            campaign::Measurement m = sweep.readings[pick(rng)];
            m.position.east_m += jitter(rng);
            m.position.north_m += jitter(rng);
            m.iq.clear();
            batch.push_back(std::move(m));
          }
          (void)router.upload(channel, where, "bench" + std::to_string(t),
                              batch);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(kClientThreads * kOpsPerThread);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const unsigned hw = runtime::hardware_threads();
  std::printf("Cluster-tier throughput — %u hardware thread(s)\n", hw);
  bench::Campaign campaign(900);
  bench::JsonReport report;
  report.add_value("hardware_threads", hw, "threads");

  // -- scaling: same workload against 1, 2 and 4 nodes ---------------------
  bench::print_row({"nodes", "repl", "ns/req", "req/s", "retries"}, 14);
  for (const cluster::NodeId nodes : {1u, 2u, 4u}) {
    const std::size_t replication = nodes < 2 ? 1 : 2;
    cluster::ClusterConfig cfg;
    cfg.num_nodes = nodes;
    cfg.replication = replication;
    cfg.tile_size_m = kTileSize;
    cfg.constructor_config = fast_config();
    cfg.upload_policy = serving_policy();
    cluster::Cluster clu(std::move(cfg));
    std::vector<campaign::ChannelDataset> storage;
    const std::vector<Area> areas = bootstrap(campaign, clu, storage);
    cluster::ClusterRouter router(clu.topology(), clu.transport(),
                                  clu.membership());
    const double ns = drive(clu, router, areas, 21);
    const cluster::RouterStats stats = router.stats();
    bench::print_row({std::to_string(nodes), std::to_string(replication),
                      bench::fmt(ns, 0), bench::fmt(1e9 / ns, 0),
                      std::to_string(stats.retries)},
                     14);
    const std::string tag = "nodes" + std::to_string(nodes);
    report.add_rate(tag + "_mixed", ns);
    report.add_value(tag + "_retries", static_cast<double>(stats.retries),
                     "count");
  }

  // -- failover: kill and recover a primary on a lossy fabric --------------
  {
    cluster::ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.replication = 2;
    cfg.tile_size_m = kTileSize;
    cfg.constructor_config = fast_config();
    cfg.upload_policy = serving_policy();
    cfg.faults = cluster::FaultPlan{.drop_request = 0.05,
                                    .drop_response = 0.03,
                                    .duplicate_request = 0.02,
                                    .delay = 0.2,
                                    .max_delay_us = 100,
                                    .seed = 13};
    cluster::Cluster clu(std::move(cfg));
    std::vector<campaign::ChannelDataset> storage;
    const std::vector<Area> areas = bootstrap(campaign, clu, storage);

    cluster::RouterConfig router_config;
    router_config.deadline = std::chrono::milliseconds(60'000);
    router_config.backoff.base = std::chrono::nanoseconds{100'000};
    router_config.backoff.cap = std::chrono::nanoseconds{2'000'000};
    cluster::ClusterRouter router(clu.topology(), clu.transport(),
                                  clu.membership(), router_config);

    const cluster::NodeId victim = clu.replicas_of(areas[0].tile)[0];
    std::thread chaos([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      clu.kill(victim);
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      clu.recover(victim);
    });
    const double ns = drive(clu, router, areas, 23);
    chaos.join();

    const cluster::RouterStats stats = router.stats();
    std::printf("\nfailover under faults (N=4 R=2, kill+recover node %u)\n",
                victim);
    bench::print_row({"metric", "value"}, 26);
    bench::print_row({"ns/req", bench::fmt(ns, 0)}, 26);
    bench::print_row({"requests", std::to_string(stats.requests)}, 26);
    bench::print_row({"retries", std::to_string(stats.retries)}, 26);
    bench::print_row({"failovers", std::to_string(stats.failovers)}, 26);
    bench::print_row({"failures", std::to_string(stats.failures)}, 26);
    bench::print_row(
        {"failover p50 (us)", bench::fmt(stats.failover_latency.p50_ns / 1e3, 1)},
        26);
    bench::print_row(
        {"failover p99 (us)", bench::fmt(stats.failover_latency.p99_ns / 1e3, 1)},
        26);
    report.add_rate("failover_mixed", ns);
    report.add_value("failover_requests", static_cast<double>(stats.requests),
                     "count");
    report.add_value("failover_retries", static_cast<double>(stats.retries),
                     "count");
    report.add_value("failover_failovers",
                     static_cast<double>(stats.failovers), "count");
    report.add_value("failover_failures", static_cast<double>(stats.failures),
                     "count");
    report.add_value("failover_p50_us", stats.failover_latency.p50_ns / 1e3,
                     "us");
    report.add_value("failover_p99_us", stats.failover_latency.p99_ns / 1e3,
                     "us");
    if (stats.failures != 0) {
      std::printf("ERROR: %llu requests failed permanently\n",
                  static_cast<unsigned long long>(stats.failures));
      return 1;
    }
  }

  if (!json_path.empty() && !report.write(json_path, "cluster")) return 1;
  std::printf("\npeak rss: %.1f MiB\n",
              static_cast<double>(bench::peak_rss_bytes()) / (1024 * 1024));
  return 0;
}
