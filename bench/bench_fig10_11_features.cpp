// Figures 10 & 11 + Section 3.2 feature selection: boxplot statistics of
// the three signal features (RSS, CFT, AFT) for the Safe / Not-safe
// classes on channels 47 and 30, for both sensors, plus the one-way ANOVA
// feature scores over all evaluation channels (RSS/CFT/AFT score p ~ 0; a
// weak time-domain feature fails on some channels, which is why the paper
// dropped that family).
#include <cstdio>

#include "common.hpp"
#include "waldo/ml/stats.hpp"

using namespace waldo;

namespace {

struct FeatureColumn {
  const char* name;
  std::vector<double> safe;
  std::vector<double> not_safe;
};

std::vector<FeatureColumn> split_features(
    const campaign::ChannelDataset& ds, const std::vector<int>& labels) {
  std::vector<FeatureColumn> cols{{"RSS", {}, {}}, {"CFT", {}, {}},
                                  {"AFT", {}, {}}};
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const campaign::Measurement& m = ds.readings[i];
    auto& bucket_rss = labels[i] == ml::kSafe ? cols[0].safe : cols[0].not_safe;
    auto& bucket_cft = labels[i] == ml::kSafe ? cols[1].safe : cols[1].not_safe;
    auto& bucket_aft = labels[i] == ml::kSafe ? cols[2].safe : cols[2].not_safe;
    bucket_rss.push_back(m.rss_dbm);
    bucket_cft.push_back(m.cft_db);
    bucket_aft.push_back(m.aft_db);
  }
  return cols;
}

void print_box(const char* cls, const std::vector<double>& v) {
  if (v.empty()) {
    bench::print_row({cls, "-", "-", "-", "-", "-"});
    return;
  }
  const ml::BoxStats b = ml::box_stats(v);
  bench::print_row({cls, bench::fmt(b.q1, 1), bench::fmt(b.median, 1),
                    bench::fmt(b.q3, 1), bench::fmt(b.min, 1),
                    bench::fmt(b.max, 1)});
}

void boxplots_for(bench::Campaign& campaign, bench::SensorKind kind,
                  int channel) {
  const auto& ds = campaign.dataset(kind, channel);
  const auto& labels = campaign.labels(kind, channel);
  const auto cols = split_features(ds, labels);
  std::printf("\n-- %s, channel %d --\n", bench::sensor_name(kind), channel);
  for (const FeatureColumn& c : cols) {
    std::printf("%s:\n", c.name);
    bench::print_row({"class", "q1", "median", "q3", "min", "max"}, 10);
    print_box("not_safe", c.not_safe);
    print_box("safe", c.safe);
  }
}

}  // namespace

int main() {
  std::printf("Figures 10/11 — feature distributions by occupancy class\n");
  bench::Campaign campaign;

  for (const int ch : {47, 30}) {
    boxplots_for(campaign, bench::SensorKind::kUsrpB200, ch);
    boxplots_for(campaign, bench::SensorKind::kRtlSdr, ch);
  }

  bench::print_title(
      "Section 3.2 — ANOVA feature scores (USRP, all evaluation channels)");
  bench::print_row({"channel", "p(RSS)", "p(CFT)", "p(AFT)", "p(IQ-mean)"},
                   14);
  for (const int ch : rf::kEvaluationChannels) {
    const auto& ds = campaign.dataset(bench::SensorKind::kUsrpB200, ch);
    const auto& labels = campaign.labels(bench::SensorKind::kUsrpB200, ch);
    if (campaign::safe_fraction(labels) == 0.0 ||
        campaign::safe_fraction(labels) == 1.0) {
      bench::print_row({std::to_string(ch), "single-class", "-", "-", "-"},
                       14);
      continue;
    }
    const auto cols = split_features(ds, labels);
    std::vector<std::string> row{std::to_string(ch)};
    for (const FeatureColumn& c : cols) {
      const std::vector<std::vector<double>> groups{c.not_safe, c.safe};
      row.push_back(bench::fmt(ml::anova_one_way(groups).p_value, 6));
    }
    // Weak candidate feature the paper family rejects: the raw reading's
    // fractional part (proxy for an uninformative time-domain statistic).
    std::vector<double> weak_safe, weak_not;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const double w =
          ds.readings[i].raw - std::floor(ds.readings[i].raw);
      (labels[i] == ml::kSafe ? weak_safe : weak_not).push_back(w);
    }
    const std::vector<std::vector<double>> weak_groups{weak_not, weak_safe};
    row.push_back(bench::fmt(ml::anova_one_way(weak_groups).p_value, 6));
    bench::print_row(row, 14);
  }
  std::printf(
      "\nPaper shape: RSS/CFT/AFT discriminate the classes (p ~ 0 on every"
      " channel);\nfeatures that score p > 0.1 on any channel are dropped.\n");
  return 0;
}
