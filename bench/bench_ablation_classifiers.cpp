// Classifier-family ablation (Section 3.2): the paper tried decision trees,
// saw near-zero training error on the sparse road-following data, and
// rejected them as overfit-prone in favour of SVM and Naive Bayes. This
// bench quantifies that choice: training error vs 10-fold CV error and
// descriptor size for every family in the library, on the same channel.
#include <cstdio>

#include "common.hpp"
#include "waldo/ml/cross_validation.hpp"

using namespace waldo;

int main() {
  std::printf("Classifier ablation — overfitting gap and descriptor cost\n");
  bench::Campaign campaign;

  constexpr int kChannel = 46;
  const campaign::ChannelDataset& ds =
      campaign.dataset(bench::SensorKind::kUsrpB200, kChannel);
  const std::vector<int>& labels =
      campaign.labels(bench::SensorKind::kUsrpB200, kChannel);
  const ml::Matrix x = core::build_features(ds, 3);

  bench::print_title("channel 46, location + RSS + CFT, 10-fold CV");
  bench::print_row({"classifier", "train_err", "cv_err", "overfit_gap",
                    "descriptor_B"},
                   14);
  for (const char* kind :
       {"svm", "naive_bayes", "logistic_regression", "decision_tree",
        "knn"}) {
    // Training error on the full set.
    auto full = core::make_classifier(kind);
    full->fit(x, labels);
    ml::ConfusionMatrix train_cm;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      train_cm.add(full->predict(x.row(i)), labels[i]);
    }
    // Generalisation error.
    ml::CrossValidationConfig cv;
    cv.max_train_samples = 1000;
    const auto result = ml::cross_validate(
        x, labels, [kind] { return core::make_classifier(kind); }, cv);
    const double gap =
        result.overall.error_rate() - train_cm.error_rate();
    bench::print_row({kind, bench::fmt(train_cm.error_rate(), 4),
                      bench::fmt(result.overall.error_rate(), 4),
                      bench::fmt(gap, 4),
                      std::to_string(full->descriptor_size_bytes())},
                     14);
  }
  std::printf(
      "\nPaper shape: the decision tree memorises (near-zero training"
      " error, larger CV\ngap) — the 'maximum error of 1%% ... can be a"
      " result of overfitting' observation\nthat led the paper to SVM and"
      " NB. kNN's descriptor is the whole training set,\ndisqualifying it"
      " for model download.\n");
  return 0;
}
