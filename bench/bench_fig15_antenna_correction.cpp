// Figure 15: FP/FN versus the number of features after adding the +7.5 dB
// antenna correction factor to every reading before labeling. Channels
// whose readings all cross the threshold drop out of the evaluation (the
// paper loses 21, 30, 46); the feature trends survive on the rest.
#include <cstdio>

#include "common.hpp"

using namespace waldo;

int main() {
  std::printf("Figure 15 — classification with the antenna correction "
              "factor (10-fold CV)\n");
  bench::Campaign campaign;
  const double correction =
      campaign.environment().antenna_correction_db();
  std::printf("correction factor: %.2f dB\n", correction);

  // Which channels survive (retain both classes) under correction?
  std::vector<int> survivors;
  bench::print_title("channel availability after correction");
  bench::print_row({"channel", "safe_frac", "evaluable"});
  for (const int ch : rf::kEvaluationChannels) {
    const auto& labels =
        campaign.labels(bench::SensorKind::kUsrpB200, ch, correction);
    const double frac = campaign::safe_fraction(labels);
    const bool ok = frac > 0.0 && frac < 1.0;
    if (ok) survivors.push_back(ch);
    bench::print_row({std::to_string(ch), bench::fmt(frac),
                      ok ? "yes" : "no (single class)"});
  }

  bench::print_title("mean FP and FN vs number of features (corrected)");
  bench::print_row({"config", "n_feat", "FP", "FN", "error"}, 18);
  for (const bench::SensorKind sensor :
       {bench::SensorKind::kRtlSdr, bench::SensorKind::kUsrpB200}) {
    for (const char* model : {"naive_bayes", "svm"}) {
      for (int nf = 1; nf <= 4; ++nf) {
        ml::ConfusionMatrix total;
        for (const int ch : survivors) {
          bench::EvalConfig cfg;
          cfg.classifier = model;
          cfg.num_features = nf;
          cfg.correction_db = correction;
          total.merge(bench::evaluate_classifier(campaign, sensor, ch, cfg));
        }
        const std::string name =
            std::string(bench::sensor_name(sensor)) + " " + model;
        bench::print_row({name, std::to_string(nf),
                          bench::fmt(total.fp_rate()),
                          bench::fmt(total.fn_rate()),
                          bench::fmt(total.error_rate())},
                         18);
      }
    }
  }
  std::printf(
      "\nPaper shape: the correction factor is a uniform constant, so the"
      " trends of\nFigure 12 persist on the surviving channels.\n");
  return 0;
}
