// Serving-layer throughput: the concurrent spectrum-database service
// (waldo::service) under wire-protocol traffic. Measures download
// throughput at 1 worker and at all hardware workers (the per-channel
// shared_mutex sharding should scale reads near-linearly on multi-core
// hosts), plus a mixed download/upload workload and the upload path alone.
// Emits `--json` records including the host's hardware thread count — the
// committed BENCH_service.json baseline was produced on the 1-core
// reference container, so regenerate it on real hardware to see scaling.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <random>
#include <string>
#include <vector>

#include "common.hpp"
#include "waldo/core/protocol.hpp"
#include "waldo/runtime/seed.hpp"
#include "waldo/runtime/thread_pool.hpp"
#include "waldo/service/frontend.hpp"
#include "waldo/service/service.hpp"

using namespace waldo;

namespace {

constexpr int kChannels[] = {15, 46};
constexpr std::size_t kRequests = 6'000;

core::ModelConstructorConfig fast_config() {
  core::ModelConstructorConfig mc;
  mc.classifier = "naive_bayes";
  mc.num_features = 2;
  mc.num_localities = 3;
  return mc;
}

core::UploadPolicy serving_policy() {
  core::UploadPolicy policy;
  policy.rebuild_threshold = 25;
  return policy;
}

/// Builds `n` upload-request wires drawn from the campaign sweeps.
std::vector<std::string> upload_wires(bench::Campaign& campaign,
                                      std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> jitter(-40.0, 40.0);
  std::vector<std::string> wires;
  wires.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int channel = kChannels[rng() % 2];
    const campaign::ChannelDataset& sweep =
        campaign.dataset(bench::SensorKind::kUsrpB200, channel);
    std::uniform_int_distribution<std::size_t> pick(0, sweep.size() - 1);
    core::UploadRequest up;
    up.channel = channel;
    up.contributor = "bench" + std::to_string(i % 7);
    for (int r = 0; r < 3; ++r) {
      campaign::Measurement m = sweep.readings[pick(rng)];
      m.position.east_m += jitter(rng);
      m.position.north_m += jitter(rng);
      m.iq.clear();
      up.readings.push_back(std::move(m));
    }
    wires.push_back(core::encode(up));
  }
  return wires;
}

std::vector<std::string> download_wires(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::string> wires;
  wires.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    wires.push_back(
        core::encode(core::ModelRequest{.channel = kChannels[rng() % 2]}));
  }
  return wires;
}

/// Fresh bootstrapped service; models pre-warmed so the measured section
/// serves from cache (the steady serving state).
void bootstrap(bench::Campaign& campaign, service::SpectrumService& service) {
  for (const int channel : kChannels) {
    service.ingest_campaign(
        campaign.dataset(bench::SensorKind::kUsrpB200, channel));
  }
  for (const int channel : kChannels) (void)service.model(channel);
}

/// Drives every wire through a frontend; returns wall-clock ns per request.
double drive(service::ServiceFrontend& frontend,
             const std::vector<std::string>& wires) {
  std::vector<std::future<std::string>> replies;
  replies.reserve(wires.size());
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& wire : wires) {
    replies.push_back(frontend.submit(wire));
  }
  for (auto& reply : replies) (void)reply.get();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(wires.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const unsigned hw = runtime::hardware_threads();
  std::printf("Serving-layer throughput — %u hardware thread(s)\n", hw);
  bench::Campaign campaign(900);
  bench::JsonReport report;
  report.add_value("hardware_threads", hw, "threads");

  const std::vector<std::string> downloads = download_wires(kRequests, 3);
  double serial_download_ns = 0.0;

  bench::print_row({"workload", "workers", "ns/req", "req/s", "cache hit%"},
                   20);
  const auto run = [&](const std::string& name,
                       const std::vector<std::string>& wires,
                       unsigned workers) {
    service::SpectrumService service(fast_config(), {}, serving_policy());
    bootstrap(campaign, service);
    service::ServiceFrontend frontend(service, workers);
    const double ns = drive(frontend, wires);
    // Descriptor-cache effectiveness over the run: downloads served from
    // the cached serialized bytes vs downloads that paid a serialization.
    const service::ServiceStats stats = frontend.stats();
    const std::uint64_t lookups =
        stats.descriptor_cache_hits + stats.descriptor_cache_misses;
    const double hit_rate =
        lookups == 0 ? 0.0
                     : 100.0 * static_cast<double>(stats.descriptor_cache_hits) /
                           static_cast<double>(lookups);
    bench::print_row({name, std::to_string(frontend.workers()),
                      bench::fmt(ns, 0), bench::fmt(1e9 / ns, 0),
                      bench::fmt(hit_rate, 1)},
                     20);
    report.add_rate(name, ns);
    report.add_value(name + "_descriptor_cache_hits",
                     static_cast<double>(stats.descriptor_cache_hits),
                     "count");
    report.add_value(name + "_descriptor_cache_misses",
                     static_cast<double>(stats.descriptor_cache_misses),
                     "count");
    report.add_value(name + "_bytes_from_cache",
                     static_cast<double>(stats.bytes_from_cache), "bytes");
    return ns;
  };

  serial_download_ns = run("download_serial", downloads, 1);
  const double parallel_download_ns =
      run("download_" + std::to_string(hw) + "workers", downloads, 0);
  report.add_value("download_speedup",
                   serial_download_ns / parallel_download_ns, "x");

  // Mixed traffic: mostly downloads with a steady trickle of uploads and
  // the occasional hostile frame — the serving layer's real steady state.
  {
    std::vector<std::string> mixed = download_wires(kRequests * 85 / 100, 5);
    const std::vector<std::string> ups =
        upload_wires(campaign, kRequests * 10 / 100, 7);
    mixed.insert(mixed.end(), ups.begin(), ups.end());
    for (std::size_t i = 0; i < kRequests * 5 / 100; ++i) {
      mixed.push_back("WSNP/1 model_request 12\n15 0 0 junk\n");
    }
    std::mt19937_64 rng(runtime::split_seed(11, 0));
    std::shuffle(mixed.begin(), mixed.end(), rng);
    (void)run("mixed_85_10_5", mixed, 0);
  }

  (void)run("upload", upload_wires(campaign, kRequests / 4, 9), 0);

  if (!json_path.empty() && !report.write(json_path, "service")) return 1;
  std::printf("\npeak rss: %.1f MiB\n",
              static_cast<double>(bench::peak_rss_bytes()) / (1024 * 1024));
  return 0;
}
