// Table 1 and Figure 16: quantitative comparison between Waldo and the
// measurement-augmented-database comparator V-Scope (and the conventional
// spectrum database). Protocol per Section 4.4: SVM with two signal
// features (location + RSS + CFT), no clustering, 10-fold CV; V-Scope is
// trained on the same folds (measurement clustering + propagation-model
// fitting) and classifies the held-out readings from location alone.
#include <cstdio>

#include "common.hpp"
#include "waldo/baselines/geo_database.hpp"
#include "waldo/baselines/vscope.hpp"

using namespace waldo;

namespace {

struct ChannelResult {
  ml::ConfusionMatrix waldo;
  ml::ConfusionMatrix vscope;
  ml::ConfusionMatrix database;
};

ChannelResult run_channel(bench::Campaign& campaign, bench::SensorKind sensor,
                          int channel) {
  const campaign::ChannelDataset& ds = campaign.dataset(sensor, channel);
  const std::vector<int>& labels = campaign.labels(sensor, channel);
  const auto folds = ml::kfold_indices(ds.size(), 10, 17);

  std::vector<geo::EnuPoint> txs;
  for (const rf::Transmitter* tx :
       campaign.environment().transmitters_on(channel)) {
    txs.push_back(tx->location);
  }
  const baselines::GeoDatabase geo_db(campaign.environment(), channel);

  core::ModelConstructorConfig mc;
  mc.classifier = "svm";
  mc.num_features = 3;  // location + RSS + CFT
  mc.num_localities = 1;
  mc.max_train_samples = 800;

  ChannelResult result;
  for (std::size_t f = 0; f < folds.size(); ++f) {
    campaign::ChannelDataset train;
    train.channel = ds.channel;
    std::vector<int> train_labels;
    for (std::size_t g = 0; g < folds.size(); ++g) {
      if (g == f) continue;
      for (const std::size_t i : folds[g]) {
        train.readings.push_back(ds.readings[i]);
        train_labels.push_back(labels[i]);
      }
    }
    const core::WhiteSpaceModel waldo_model =
        core::ModelConstructor(mc).build(train, train_labels);
    baselines::VScope vscope;
    vscope.fit(train, txs);

    for (const std::size_t i : folds[f]) {
      const campaign::Measurement& m = ds.readings[i];
      const auto row =
          core::feature_row(m.position, m.rss_dbm, m.cft_db, m.aft_db, 3);
      result.waldo.add(waldo_model.predict(row), labels[i]);
      result.vscope.add(vscope.classify(m.position), labels[i]);
      result.database.add(geo_db.classify(m.position), labels[i]);
    }
  }
  return result;
}

}  // namespace

int main() {
  std::printf("Table 1 / Figure 16 — Waldo vs V-Scope vs spectrum "
              "database\n");
  bench::Campaign campaign;

  ml::ConfusionMatrix vscope_total, waldo_usrp_total, waldo_rtl_total,
      db_total;
  std::map<int, ChannelResult> usrp_results, rtl_results;
  for (const int ch : rf::kEvaluationChannels) {
    usrp_results[ch] = run_channel(campaign, bench::SensorKind::kUsrpB200, ch);
    rtl_results[ch] = run_channel(campaign, bench::SensorKind::kRtlSdr, ch);
    waldo_usrp_total.merge(usrp_results[ch].waldo);
    waldo_rtl_total.merge(rtl_results[ch].waldo);
    vscope_total.merge(usrp_results[ch].vscope);
    db_total.merge(usrp_results[ch].database);
  }

  bench::print_title("Table 1 — FP/FN averaged over all channels");
  bench::print_row({"system", "FP", "FN"}, 16);
  bench::print_row({"V-Scope", bench::fmt(vscope_total.fp_rate(), 4),
                    bench::fmt(vscope_total.fn_rate(), 4)},
                   16);
  bench::print_row({"Waldo USRP", bench::fmt(waldo_usrp_total.fp_rate(), 4),
                    bench::fmt(waldo_usrp_total.fn_rate(), 4)},
                   16);
  bench::print_row({"Waldo RTL-SDR", bench::fmt(waldo_rtl_total.fp_rate(), 4),
                    bench::fmt(waldo_rtl_total.fn_rate(), 4)},
                   16);
  std::printf("(paper: V-Scope 0.3632/0.2029, Waldo USRP 0.0441/0.1068, "
              "Waldo RTL 0.0685/0.0640)\n");
  std::printf("spectrum database for reference: FP %.4f, FN %.4f\n",
              db_total.fp_rate(), db_total.fn_rate());

  bench::print_title("Figure 16 — per-channel error rate");
  bench::print_row({"channel", "V-Scope", "Waldo USRP", "Waldo RTL",
                    "SpectrumDB", "VScope/Waldo"},
                   14);
  double best_ratio = 0.0;
  for (const int ch : rf::kEvaluationChannels) {
    const double vs = usrp_results[ch].vscope.error_rate();
    const double wu = usrp_results[ch].waldo.error_rate();
    const double wr = rtl_results[ch].waldo.error_rate();
    const double db = usrp_results[ch].database.error_rate();
    const double ratio = wu > 0.0 ? vs / wu : (vs > 0.0 ? 99.0 : 1.0);
    best_ratio = std::max(best_ratio, ratio);
    bench::print_row({std::to_string(ch), bench::fmt(vs), bench::fmt(wu),
                      bench::fmt(wr), bench::fmt(db), bench::fmt(ratio, 1)},
                     14);
  }
  std::printf("\nbest V-Scope/Waldo error ratio: %.1fx (paper: up to 10x)\n",
              best_ratio);
  return 0;
}
