// Regulation ablation (Section 6): the FCC reduced the portable-WSD
// separation distance from 6 km (2010) to 4 km (2012) to 1.7 km (2015).
// Algorithm 1's separation radius is a parameter here, so the bench sweeps
// the three regimes and reports how much white space each rule releases
// and how Waldo's detection quality responds.
#include <cstdio>

#include "common.hpp"

using namespace waldo;

int main() {
  std::printf("Separation-distance ablation — FCC rule evolution 6 km -> "
              "4 km -> 1.7 km\n");
  bench::Campaign campaign;

  struct Rule {
    const char* name;
    double separation_m;
  };
  const Rule rules[] = {{"2010 rule (6 km)", 6000.0},
                        {"2012 rule (4 km)", 4000.0},
                        {"2015 rule (1.7 km)", 1700.0}};

  for (const Rule& rule : rules) {
    bench::print_title(rule.name);
    bench::print_row({"channel", "safe_frac", "NB_error", "SVM_error"}, 14);
    double frac_sum = 0.0;
    std::size_t evaluated = 0;
    for (const int ch : rf::kEvaluationChannels) {
      const campaign::ChannelDataset& ds =
          campaign.dataset(bench::SensorKind::kUsrpB200, ch);
      campaign::LabelingConfig lab;
      lab.separation_m = rule.separation_m;
      const std::vector<int> labels = campaign::label_readings(
          ds.positions(), ds.rss_values(), lab);
      const double frac = campaign::safe_fraction(labels);
      frac_sum += frac;
      ++evaluated;

      ml::CrossValidationConfig cv;
      cv.folds = 5;
      cv.max_train_samples = 800;
      const ml::Matrix x = core::build_features(ds, 3);
      const double nb_err =
          ml::cross_validate(x, labels,
                             [] { return core::make_classifier("naive_bayes"); },
                             cv)
              .overall.error_rate();
      const double svm_err =
          ml::cross_validate(x, labels,
                             [] { return core::make_classifier("svm"); }, cv)
              .overall.error_rate();
      bench::print_row({std::to_string(ch), bench::fmt(frac),
                        bench::fmt(nb_err), bench::fmt(svm_err)},
                       14);
    }
    std::printf("mean white-space availability: %.3f\n",
                frac_sum / static_cast<double>(evaluated));
  }
  std::printf(
      "\nExpected shape: every relaxation of the separation rule releases"
      " more white\nspace (safe fraction grows monotonically) while Waldo's"
      " model keeps tracking the\nshifted boundary with comparable error.\n");
  return 0;
}
