// Microbenchmarks (google-benchmark) of the on-device pipeline stages and
// the offline model-construction stages, plus the pilot-vs-energy detector
// ablation called out in DESIGN.md.
//
// Accepts `--json <path>` (in addition to the standard --benchmark_* flags)
// to also write the measured ns/item rates as machine-readable JSON — the
// format archived in BENCH_micro_pipeline.json and uploaded by CI.
#include <benchmark/benchmark.h>

#include <random>

#include "common.hpp"
#include "waldo/campaign/labeling.hpp"
#include "waldo/core/detector.hpp"
#include "waldo/core/features.hpp"
#include "waldo/dsp/detectors.hpp"
#include "waldo/dsp/fft.hpp"
#include "waldo/dsp/iq.hpp"
#include "waldo/ml/kmeans.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/ml/naive_bayes.hpp"
#include "waldo/ml/svm.hpp"
#include "waldo/sensors/sensor.hpp"

namespace {

using namespace waldo;

std::vector<dsp::cplx> test_capture() {
  std::mt19937_64 rng(1);
  return dsp::synthesize_capture(dsp::CaptureConfig{}, -70.0, -95.0, rng);
}

void BM_Fft256(benchmark::State& state) {
  std::vector<dsp::cplx> capture = test_capture();
  for (auto _ : state) {
    std::vector<dsp::cplx> copy = capture;
    dsp::fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Fft256);

void BM_SynthesizeCapture(benchmark::State& state) {
  std::mt19937_64 rng(2);
  const dsp::CaptureConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dsp::synthesize_capture(cfg, -70.0, -95.0, rng).data());
  }
}
BENCHMARK(BM_SynthesizeCapture);

void BM_EnergyDetector(benchmark::State& state) {
  const std::vector<dsp::cplx> capture = test_capture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::energy_detector_dbm(capture));
  }
}
BENCHMARK(BM_EnergyDetector);

void BM_PilotDetector(benchmark::State& state) {
  const std::vector<dsp::cplx> capture = test_capture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::pilot_detector_dbm(capture));
  }
}
BENCHMARK(BM_PilotDetector);

void BM_FeatureExtraction(benchmark::State& state) {
  const std::vector<dsp::cplx> capture = test_capture();
  for (auto _ : state) {
    const core::SpectralFeatures f = core::extract_spectral_features(capture);
    benchmark::DoNotOptimize(f.cft_db + f.aft_db);
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_SensorSenseChannel(benchmark::State& state) {
  sensors::Sensor rtl(sensors::rtl_sdr_spec(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtl.sense_channel(-75.0).iq.data());
  }
}
BENCHMARK(BM_SensorSenseChannel);

// The full per-reading hot path (capture synthesis -> CFT/AFT features) in
// its three forms. Legacy allocates per reading and transforms the capture
// once per feature; Workspace reuses lane-owned scratch and computes one
// shared power spectrum; FastSpectral additionally skips the ifft -> fft
// round trip. The committed baseline in BENCH_micro_pipeline.json records
// the pre-plan-cache numbers these are compared against.
void BM_CaptureToFeature_Legacy(benchmark::State& state) {
  sensors::Sensor rtl(sensors::rtl_sdr_spec(), 3);
  std::uint64_t stream = 0;
  for (auto _ : state) {
    const sensors::SensorReading r = rtl.sense_channel(-75.0, stream++);
    const core::SpectralFeatures f = core::extract_spectral_features(r.iq);
    benchmark::DoNotOptimize(r.raw + f.cft_db + f.aft_db);
  }
}
BENCHMARK(BM_CaptureToFeature_Legacy);

void BM_CaptureToFeature_Workspace(benchmark::State& state) {
  sensors::Sensor rtl(sensors::rtl_sdr_spec(), 3);
  dsp::CaptureWorkspace ws;
  std::uint64_t stream = 0;
  for (auto _ : state) {
    const double raw = rtl.sense_channel_into(-75.0, stream++, ws);
    const core::SpectralFeatures f =
        core::extract_spectral_features(ws.time, ws);
    benchmark::DoNotOptimize(raw + f.cft_db + f.aft_db);
  }
}
BENCHMARK(BM_CaptureToFeature_Workspace);

void BM_CaptureToFeature_FastSpectral(benchmark::State& state) {
  sensors::Sensor rtl(sensors::rtl_sdr_spec(), 3);
  dsp::CaptureWorkspace ws;
  std::uint64_t stream = 0;
  for (auto _ : state) {
    const double raw =
        rtl.sense_channel_into(-75.0, stream++, ws, /*spectrum_only=*/true);
    const core::SpectralFeatures f =
        core::spectral_features_from_spectrum(ws.shifted);
    benchmark::DoNotOptimize(raw + f.cft_db + f.aft_db);
  }
}
BENCHMARK(BM_CaptureToFeature_FastSpectral);

void make_training(std::size_t n, ml::Matrix& x, std::vector<int>& y) {
  std::mt19937_64 rng(4);
  std::normal_distribution<double> g(0.0, 1.0);
  x = ml::Matrix(n, 4);
  y.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const bool safe = i % 2 == 0;
    for (std::size_t c = 0; c < 4; ++c) {
      x(i, c) = g(rng) + (safe ? 1.0 : -1.0);
    }
    y[i] = safe ? ml::kSafe : ml::kNotSafe;
  }
}

void BM_SvmTrain(benchmark::State& state) {
  ml::Matrix x;
  std::vector<int> y;
  make_training(static_cast<std::size_t>(state.range(0)), x, y);
  for (auto _ : state) {
    ml::Svm svm;
    svm.fit(x, y);
    benchmark::DoNotOptimize(svm.num_support_vectors());
  }
}
BENCHMARK(BM_SvmTrain)->Arg(200)->Arg(600);

void BM_SvmPredict(benchmark::State& state) {
  ml::Matrix x;
  std::vector<int> y;
  make_training(600, x, y);
  ml::Svm svm;
  svm.fit(x, y);
  const std::vector<double> probe{0.1, -0.2, 0.3, 0.4};
  for (auto _ : state) benchmark::DoNotOptimize(svm.predict(probe));
}
BENCHMARK(BM_SvmPredict);

void BM_NaiveBayesTrain(benchmark::State& state) {
  ml::Matrix x;
  std::vector<int> y;
  make_training(2000, x, y);
  for (auto _ : state) {
    ml::GaussianNaiveBayes nb;
    nb.fit(x, y);
    benchmark::DoNotOptimize(&nb);
  }
}
BENCHMARK(BM_NaiveBayesTrain);

void BM_NaiveBayesPredict(benchmark::State& state) {
  ml::Matrix x;
  std::vector<int> y;
  make_training(2000, x, y);
  ml::GaussianNaiveBayes nb;
  nb.fit(x, y);
  const std::vector<double> probe{0.1, -0.2, 0.3, 0.4};
  for (auto _ : state) benchmark::DoNotOptimize(nb.predict(probe));
}
BENCHMARK(BM_NaiveBayesPredict);

void BM_Algorithm1Labeling(benchmark::State& state) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> coord(0.0, 26'500.0);
  std::uniform_real_distribution<double> power(-110.0, -70.0);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<geo::EnuPoint> pos(n);
  std::vector<double> rss(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = geo::EnuPoint{coord(rng), coord(rng)};
    rss[i] = power(rng);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign::label_readings(pos, rss).data());
  }
}
BENCHMARK(BM_Algorithm1Labeling)->Arg(1000)->Arg(5282);

void BM_KMeansLocalities(benchmark::State& state) {
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<double> coord(0.0, 26'500.0);
  ml::Matrix x(5282, 2);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = coord(rng);
    x(i, 1) = coord(rng);
  }
  ml::KMeansConfig cfg;
  cfg.k = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::kmeans(x, cfg).inertia);
  }
}
BENCHMARK(BM_KMeansLocalities);

void BM_ConvergenceFilter(benchmark::State& state) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> noise(-85.0, 0.5);
  for (auto _ : state) {
    core::ConvergenceFilter filter;
    while (!filter.ingest(noise(rng))) {
    }
    benchmark::DoNotOptimize(filter.estimate_dbm());
  }
}
BENCHMARK(BM_ConvergenceFilter);

/// Console output as usual, plus every finished run captured for --json.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(bench::JsonReport* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (!run.error_occurred) {
        out_->add_rate(run.benchmark_name(), run.GetAdjustedRealTime());
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::JsonReport* out_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::JsonReport report;
  CapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty() &&
      !report.write(json_path, "bench_micro_pipeline")) {
    return 1;
  }
  return 0;
}
