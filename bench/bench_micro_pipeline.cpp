// Microbenchmarks (google-benchmark) of the on-device pipeline stages and
// the offline model-construction stages, plus the pilot-vs-energy detector
// ablation called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include <random>

#include "waldo/campaign/labeling.hpp"
#include "waldo/core/detector.hpp"
#include "waldo/core/features.hpp"
#include "waldo/dsp/detectors.hpp"
#include "waldo/dsp/fft.hpp"
#include "waldo/dsp/iq.hpp"
#include "waldo/ml/kmeans.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/ml/naive_bayes.hpp"
#include "waldo/ml/svm.hpp"
#include "waldo/sensors/sensor.hpp"

namespace {

using namespace waldo;

std::vector<dsp::cplx> test_capture() {
  std::mt19937_64 rng(1);
  return dsp::synthesize_capture(dsp::CaptureConfig{}, -70.0, -95.0, rng);
}

void BM_Fft256(benchmark::State& state) {
  std::vector<dsp::cplx> capture = test_capture();
  for (auto _ : state) {
    std::vector<dsp::cplx> copy = capture;
    dsp::fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Fft256);

void BM_SynthesizeCapture(benchmark::State& state) {
  std::mt19937_64 rng(2);
  const dsp::CaptureConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dsp::synthesize_capture(cfg, -70.0, -95.0, rng).data());
  }
}
BENCHMARK(BM_SynthesizeCapture);

void BM_EnergyDetector(benchmark::State& state) {
  const std::vector<dsp::cplx> capture = test_capture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::energy_detector_dbm(capture));
  }
}
BENCHMARK(BM_EnergyDetector);

void BM_PilotDetector(benchmark::State& state) {
  const std::vector<dsp::cplx> capture = test_capture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::pilot_detector_dbm(capture));
  }
}
BENCHMARK(BM_PilotDetector);

void BM_FeatureExtraction(benchmark::State& state) {
  const std::vector<dsp::cplx> capture = test_capture();
  for (auto _ : state) {
    const core::SpectralFeatures f = core::extract_spectral_features(capture);
    benchmark::DoNotOptimize(f.cft_db + f.aft_db);
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_SensorSenseChannel(benchmark::State& state) {
  sensors::Sensor rtl(sensors::rtl_sdr_spec(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtl.sense_channel(-75.0).iq.data());
  }
}
BENCHMARK(BM_SensorSenseChannel);

void make_training(std::size_t n, ml::Matrix& x, std::vector<int>& y) {
  std::mt19937_64 rng(4);
  std::normal_distribution<double> g(0.0, 1.0);
  x = ml::Matrix(n, 4);
  y.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const bool safe = i % 2 == 0;
    for (std::size_t c = 0; c < 4; ++c) {
      x(i, c) = g(rng) + (safe ? 1.0 : -1.0);
    }
    y[i] = safe ? ml::kSafe : ml::kNotSafe;
  }
}

void BM_SvmTrain(benchmark::State& state) {
  ml::Matrix x;
  std::vector<int> y;
  make_training(static_cast<std::size_t>(state.range(0)), x, y);
  for (auto _ : state) {
    ml::Svm svm;
    svm.fit(x, y);
    benchmark::DoNotOptimize(svm.num_support_vectors());
  }
}
BENCHMARK(BM_SvmTrain)->Arg(200)->Arg(600);

void BM_SvmPredict(benchmark::State& state) {
  ml::Matrix x;
  std::vector<int> y;
  make_training(600, x, y);
  ml::Svm svm;
  svm.fit(x, y);
  const std::vector<double> probe{0.1, -0.2, 0.3, 0.4};
  for (auto _ : state) benchmark::DoNotOptimize(svm.predict(probe));
}
BENCHMARK(BM_SvmPredict);

void BM_NaiveBayesTrain(benchmark::State& state) {
  ml::Matrix x;
  std::vector<int> y;
  make_training(2000, x, y);
  for (auto _ : state) {
    ml::GaussianNaiveBayes nb;
    nb.fit(x, y);
    benchmark::DoNotOptimize(&nb);
  }
}
BENCHMARK(BM_NaiveBayesTrain);

void BM_NaiveBayesPredict(benchmark::State& state) {
  ml::Matrix x;
  std::vector<int> y;
  make_training(2000, x, y);
  ml::GaussianNaiveBayes nb;
  nb.fit(x, y);
  const std::vector<double> probe{0.1, -0.2, 0.3, 0.4};
  for (auto _ : state) benchmark::DoNotOptimize(nb.predict(probe));
}
BENCHMARK(BM_NaiveBayesPredict);

void BM_Algorithm1Labeling(benchmark::State& state) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> coord(0.0, 26'500.0);
  std::uniform_real_distribution<double> power(-110.0, -70.0);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<geo::EnuPoint> pos(n);
  std::vector<double> rss(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = geo::EnuPoint{coord(rng), coord(rng)};
    rss[i] = power(rng);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign::label_readings(pos, rss).data());
  }
}
BENCHMARK(BM_Algorithm1Labeling)->Arg(1000)->Arg(5282);

void BM_KMeansLocalities(benchmark::State& state) {
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<double> coord(0.0, 26'500.0);
  ml::Matrix x(5282, 2);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = coord(rng);
    x(i, 1) = coord(rng);
  }
  ml::KMeansConfig cfg;
  cfg.k = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::kmeans(x, cfg).inertia);
  }
}
BENCHMARK(BM_KMeansLocalities);

void BM_ConvergenceFilter(benchmark::State& state) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> noise(-85.0, 0.5);
  for (auto _ : state) {
    core::ConvergenceFilter filter;
    while (!filter.ingest(noise(rng))) {
    }
    benchmark::DoNotOptimize(filter.estimate_dbm());
  }
}
BENCHMARK(BM_ConvergenceFilter);

}  // namespace

BENCHMARK_MAIN();
