// Table 2 + Section 5 overheads, quantified: the four detection approaches
// (spectrum sensing, spectrum database, measurement-augmented database,
// Waldo) scored on safety (FP), efficiency (FN) and operational overhead
// (bytes exchanged, sensing hardware floor required), plus the model
// descriptor sizes behind the paper's "4 kB NB vs 40 kB SVM" tradeoff.
#include <cstdio>

#include "common.hpp"
#include "waldo/baselines/geo_database.hpp"
#include "waldo/baselines/sensing_only.hpp"
#include "waldo/baselines/vscope.hpp"
#include "waldo/core/database.hpp"

using namespace waldo;

int main() {
  std::printf("Table 2 — approaches compared on the same campaign\n");
  bench::Campaign campaign;

  ml::ConfusionMatrix cm_sensing, cm_db, cm_vscope, cm_waldo;
  for (const int ch : rf::kEvaluationChannels) {
    const auto& ds = campaign.dataset(bench::SensorKind::kSpectrumAnalyzer, ch);
    const auto& labels =
        campaign.labels(bench::SensorKind::kSpectrumAnalyzer, ch);

    const baselines::GeoDatabase geo_db(campaign.environment(), ch);
    baselines::VScope vscope;
    std::vector<geo::EnuPoint> txs;
    for (const rf::Transmitter* tx :
         campaign.environment().transmitters_on(ch)) {
      txs.push_back(tx->location);
    }
    // V-Scope consumes the same low-cost (USRP) campaign Waldo does.
    vscope.fit(campaign.dataset(bench::SensorKind::kUsrpB200, ch), txs);

    // Waldo uses the USRP campaign (its own low-cost data path).
    bench::EvalConfig waldo_cfg;
    waldo_cfg.classifier = "svm";
    waldo_cfg.num_features = 3;
    cm_waldo.merge(bench::evaluate_classifier(
        campaign, bench::SensorKind::kUsrpB200, ch, waldo_cfg));

    for (std::size_t i = 0; i < ds.size(); ++i) {
      cm_sensing.add(
          baselines::sensing_only_decision(ds.readings[i].rss_dbm),
          labels[i]);
      cm_db.add(geo_db.classify(ds.readings[i].position), labels[i]);
      cm_vscope.add(vscope.classify(ds.readings[i].position), labels[i]);
    }
  }

  // Operational overhead: bytes exchanged per decision. A database query
  // costs ~2 kB per location; Waldo ships one model per area.
  core::ModelConstructorConfig nb_cfg;
  nb_cfg.classifier = "naive_bayes";
  nb_cfg.num_features = 3;
  core::ModelConstructorConfig svm_cfg;
  svm_cfg.classifier = "svm";
  svm_cfg.num_features = 3;
  svm_cfg.max_train_samples = 800;
  core::SpectrumDatabase db_nb(nb_cfg), db_svm(svm_cfg);
  db_nb.ingest_campaign(campaign.dataset(bench::SensorKind::kUsrpB200, 46));
  db_svm.ingest_campaign(campaign.dataset(bench::SensorKind::kUsrpB200, 46));
  const std::size_t nb_bytes = db_nb.download_model(46).size();
  const std::size_t svm_bytes = db_svm.download_model(46).size();
  constexpr double kQueryBytes = 2048.0;
  constexpr double kDecisionsPerModel = 1000.0;  // one area, many checks

  bench::print_title("quantitative Table 2");
  bench::print_row({"approach", "FP", "FN", "bytes/decision",
                    "sensor floor"},
                   22);
  bench::print_row({"spectrum sensing", bench::fmt(cm_sensing.fp_rate()),
                    bench::fmt(cm_sensing.fn_rate()), "0",
                    "-114 dBm ($10-40k)"},
                   22);
  bench::print_row({"spectrum database", bench::fmt(cm_db.fp_rate()),
                    bench::fmt(cm_db.fn_rate()), bench::fmt(kQueryBytes, 0),
                    "none"},
                   22);
  bench::print_row({"meas.-augmented DB", bench::fmt(cm_vscope.fp_rate()),
                    bench::fmt(cm_vscope.fn_rate()),
                    bench::fmt(kQueryBytes, 0), "analyzer campaign"},
                   22);
  bench::print_row(
      {"Waldo (USRP, SVM)", bench::fmt(cm_waldo.fp_rate()),
       bench::fmt(cm_waldo.fn_rate()),
       bench::fmt(static_cast<double>(svm_bytes) / kDecisionsPerModel, 1),
       "-84 dBm ($15)"},
      22);

  bench::print_title("Section 5 — model descriptor sizes (channel 46)");
  bench::print_row({"model", "descriptor_bytes"}, 20);
  bench::print_row({"Naive Bayes", std::to_string(nb_bytes)}, 20);
  bench::print_row({"SVM", std::to_string(svm_bytes)}, 20);
  std::printf("(paper: ~4 kB NB, ~40 kB SVM; one descriptor covers tens of "
              "km^2 vs a few-kB\nquery per location for conventional "
              "databases)\n");
  std::printf(
      "\nPaper shape (qualitative Table 2): sensing and databases are very"
      " safe but\ninefficient or costly; Waldo keeps safety high, efficiency"
      " highest, and\noperational overhead lowest.\n");
  return 0;
}
