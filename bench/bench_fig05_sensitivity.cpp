// Figure 5: CDFs of raw USRP and RTL-SDR readings for calibrated
// signal-generator input levels. The RTL-SDR CDF collapses onto the
// no-signal CDF below ~-98 dBm; the USRP distinguishes levels down to
// ~-103 dBm but with a visibly wider CDF.
#include <cstdio>

#include "common.hpp"
#include "waldo/ml/stats.hpp"

using namespace waldo;

namespace {

constexpr int kReadingsPerLevel = 1000;

std::vector<double> sweep(sensors::Sensor& sensor, double level_dbm) {
  std::vector<double> readings(kReadingsPerLevel);
  for (double& r : readings) r = sensor.measure_wired_raw(level_dbm);
  return readings;
}

void print_cdf_table(const char* title, sensors::Sensor& sensor,
                     const std::vector<double>& levels) {
  bench::print_title(title);
  std::vector<std::string> header{"percentile"};
  for (const double l : levels) {
    header.push_back(l < -150.0 ? "no signal" : bench::fmt(l, 0) + " dBm");
  }
  bench::print_row(header);
  std::vector<std::vector<double>> sweeps;
  sweeps.reserve(levels.size());
  for (const double l : levels) sweeps.push_back(sweep(sensor, l));
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    std::vector<std::string> row{bench::fmt(q, 2)};
    for (const auto& s : sweeps) row.push_back(bench::fmt(ml::quantile(s, q), 2));
    bench::print_row(row);
  }
}

/// Median shift of the detector statistic over its no-signal baseline, in
/// dB. A signal is detectable once it at least doubles the statistic
/// (+3 dB, the classic SNR >= 0 dB criterion) — which puts the knee at the
/// device's equivalent noise floor.
void print_detectability(const char* name, sensors::Sensor& sensor,
                         const std::vector<double>& levels) {
  const std::vector<double> silence = sweep(sensor, -200.0);
  const double base = ml::quantile(silence, 0.5);
  bench::print_title(std::string(name) + " detectability vs silence");
  bench::print_row({"level_dBm", "gap_dB", "detectable(>=3dB)"}, 20);
  for (const double l : levels) {
    const double gap = (ml::quantile(sweep(sensor, l), 0.5) - base) /
                       sensor.spec().raw_slope;
    bench::print_row({bench::fmt(l, 0), bench::fmt(gap, 2),
                      gap >= 3.0 ? "yes" : "no"},
                     20);
  }
}

}  // namespace

int main() {
  std::printf("Figure 5 — sensor reading CDFs for calibrated generator "
              "inputs (raw device units)\n");
  bench::Campaign campaign(600);  // only needs sensors, keep it light

  sensors::Sensor usrp = campaign.make_sensor(bench::SensorKind::kUsrpB200, 7);
  print_cdf_table("(a/b) USRP B200 raw-reading CDF quantiles", usrp,
                  {-50.0, -80.0, -94.0, -103.0, -200.0});
  print_detectability("USRP B200", usrp,
                      {-94.0, -100.0, -103.0, -106.0, -110.0});

  sensors::Sensor rtl = campaign.make_sensor(bench::SensorKind::kRtlSdr, 8);
  print_cdf_table("(c/d) RTL-SDR raw-reading CDF quantiles", rtl,
                  {-70.0, -80.0, -90.0, -94.0, -96.0, -98.0, -200.0});
  print_detectability("RTL-SDR", rtl, {-90.0, -94.0, -96.0, -98.0, -103.0});

  std::printf(
      "\nPaper shape: RTL-SDR detects down to ~-98 dBm with a tight CDF;\n"
      "USRP detects down to ~-103 dBm with higher reading variability.\n");
  return 0;
}
