#include "common.hpp"

#include <sys/resource.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "waldo/ml/svm.hpp"

namespace waldo::bench {

const char* sensor_name(SensorKind kind) {
  switch (kind) {
    case SensorKind::kRtlSdr:
      return "RTL-SDR";
    case SensorKind::kUsrpB200:
      return "USRP B200";
    case SensorKind::kSpectrumAnalyzer:
      return "FieldFox";
  }
  return "?";
}

Campaign::Campaign(std::size_t num_readings, std::uint64_t seed) {
  env_ = std::make_unique<rf::Environment>(rf::make_metro_environment());
  route_ = std::make_unique<geo::DrivePath>(
      campaign::standard_route(*env_, num_readings, seed));
}

sensors::Sensor Campaign::make_sensor(SensorKind kind, std::uint64_t seed) {
  sensors::SensorSpec spec;
  switch (kind) {
    case SensorKind::kRtlSdr:
      spec = sensors::rtl_sdr_spec();
      break;
    case SensorKind::kUsrpB200:
      spec = sensors::usrp_b200_spec();
      break;
    case SensorKind::kSpectrumAnalyzer:
      spec = sensors::spectrum_analyzer_spec();
      break;
  }
  sensors::Sensor sensor(spec, seed);
  if (!sensor.calibration().has_value()) sensor.calibrate();
  return sensor;
}

const campaign::ChannelDataset& Campaign::dataset(SensorKind kind,
                                                  int channel) {
  const auto key = std::make_pair(static_cast<int>(kind), channel);
  auto it = datasets_.find(key);
  if (it != datasets_.end()) return it->second;
  // Distinct unit seed per (sensor, channel) so captures decorrelate.
  sensors::Sensor sensor =
      make_sensor(kind, 1000 + 10 * static_cast<std::uint64_t>(channel) +
                            static_cast<std::uint64_t>(kind));
  return datasets_
      .emplace(key, campaign::collect_channel(*env_, sensor, channel,
                                              route_->readings))
      .first->second;
}

const std::vector<int>& Campaign::labels(SensorKind kind, int channel,
                                         double correction_db) {
  const auto key = std::make_tuple(static_cast<int>(kind), channel,
                                   static_cast<int>(correction_db * 10));
  auto it = labels_.find(key);
  if (it != labels_.end()) return it->second;
  const campaign::ChannelDataset& ds = dataset(kind, channel);
  campaign::LabelingConfig cfg;
  cfg.correction_db = correction_db;
  return labels_
      .emplace(key, campaign::label_readings(ds.positions(), ds.rss_values(),
                                             cfg))
      .first->second;
}

const campaign::GroundTruthLabeler& Campaign::truth(int channel) {
  auto it = truths_.find(channel);
  if (it != truths_.end()) return *it->second;
  return *truths_
              .emplace(channel, std::make_unique<campaign::GroundTruthLabeler>(
                                    *env_, channel))
              .first->second;
}

ml::Matrix build_paper_features(const campaign::ChannelDataset& data,
                                int num_features) {
  // Degrees per meter in the local ENU frame at Atlanta's latitude.
  constexpr double kLat0Deg = 33.749;
  const double lat_per_m = 1.0 / 111'320.0;
  const double lon_per_m =
      1.0 / (111'320.0 * std::cos(geo::deg_to_rad(kLat0Deg)));
  ml::Matrix x;
  for (const campaign::Measurement& m : data.readings) {
    std::vector<double> row;
    row.push_back(kLat0Deg + m.position.north_m * lat_per_m);
    row.push_back(-84.388 + m.position.east_m * lon_per_m);
    if (num_features >= 2) row.push_back(m.rss_dbm);
    if (num_features >= 3) row.push_back(m.cft_db);
    if (num_features >= 4) row.push_back(m.aft_db);
    x.push_row(row);
  }
  return x;
}

ml::ConfusionMatrix evaluate_classifier(Campaign& campaign, SensorKind sensor,
                                        int channel, const EvalConfig& cfg) {
  const campaign::ChannelDataset& ds = campaign.dataset(sensor, channel);
  const std::vector<int>& labels =
      campaign.labels(sensor, channel, cfg.correction_db);
  const ml::Matrix x = cfg.paper_faithful
                           ? build_paper_features(ds, cfg.num_features)
                           : core::build_features(ds, cfg.num_features);
  ml::CrossValidationConfig cv;
  cv.folds = cfg.folds;
  cv.seed = cfg.seed;
  cv.max_train_samples = cfg.max_train;
  const auto factory = [&cfg]() -> std::unique_ptr<ml::Classifier> {
    if (cfg.paper_faithful && cfg.classifier == "svm") {
      ml::SvmConfig svm;  // OpenCV CvSVM defaults
      svm.c = 1.0;
      svm.gamma = 1.0;
      svm.standardize = false;
      return std::make_unique<ml::Svm>(svm);
    }
    return core::make_classifier(cfg.classifier);
  };
  return ml::cross_validate(x, labels, factory, cv).overall;
}

ml::ConfusionMatrix evaluate_waldo_model(Campaign& campaign,
                                         SensorKind sensor, int channel,
                                         std::size_t localities,
                                         const EvalConfig& cfg) {
  const campaign::ChannelDataset& ds = campaign.dataset(sensor, channel);
  const std::vector<int>& labels =
      campaign.labels(sensor, channel, cfg.correction_db);
  const auto folds = ml::kfold_indices(ds.size(), cfg.folds, cfg.seed);

  core::ModelConstructorConfig mc;
  mc.classifier = cfg.classifier;
  mc.num_features = cfg.num_features;
  mc.num_localities = localities;
  mc.max_train_samples = cfg.max_train;
  const core::ModelConstructor constructor(mc);

  ml::ConfusionMatrix total;
  for (std::size_t f = 0; f < folds.size(); ++f) {
    campaign::ChannelDataset train;
    train.channel = ds.channel;
    train.sensor_name = ds.sensor_name;
    std::vector<int> train_labels;
    for (std::size_t g = 0; g < folds.size(); ++g) {
      if (g == f) continue;
      for (const std::size_t i : folds[g]) {
        train.readings.push_back(ds.readings[i]);
        train_labels.push_back(labels[i]);
      }
    }
    const core::WhiteSpaceModel model = constructor.build(train, train_labels);
    for (const std::size_t i : folds[f]) {
      const campaign::Measurement& m = ds.readings[i];
      const auto row = core::feature_row(m.position, m.rss_dbm, m.cft_db,
                                         m.aft_db, cfg.num_features);
      total.add(model.predict(row), labels[i]);
    }
  }
  return total;
}

void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_row(const std::vector<std::string>& cells, int width) {
  for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

void JsonReport::add_rate(const std::string& name, double ns_per_item) {
  records_.push_back(BenchRecord{
      .name = name,
      .value = ns_per_item,
      .unit = "ns/item",
      .items_per_second = ns_per_item > 0.0 ? 1e9 / ns_per_item : 0.0});
}

void JsonReport::add_value(const std::string& name, double value,
                           const std::string& unit) {
  records_.push_back(BenchRecord{.name = name, .value = value, .unit = unit});
}

namespace {

/// Minimal JSON string escape (names here are benchmark identifiers, but
/// stay correct for arbitrary input).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

bool JsonReport::write(const std::string& path,
                       const std::string& bench_name) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"bench\": \"" << json_escape(bench_name) << "\",\n"
      << "  \"peak_rss_bytes\": " << peak_rss_bytes() << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    char buf[256];
    if (r.items_per_second > 0.0) {
      std::snprintf(buf, sizeof(buf),
                    "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": "
                    "\"%s\", \"items_per_second\": %.6g}%s\n",
                    json_escape(r.name).c_str(), r.value,
                    json_escape(r.unit).c_str(), r.items_per_second,
                    i + 1 < records_.size() ? "," : "");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": "
                    "\"%s\"}%s\n",
                    json_escape(r.name).c_str(), r.value,
                    json_escape(r.unit).c_str(),
                    i + 1 < records_.size() ? "," : "");
    }
    out << buf;
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

std::string json_path_from_args(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      const std::string path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return path;
    }
  }
  return {};
}

long peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss * 1024;  // Linux reports kilobytes
}

}  // namespace waldo::bench
