// Figure 7: CDF of Pearson's correlation coefficient between RTL-SDR and
// USRP detection labels. The two low-cost sensors agree strongly (median
// above 0.9 in the paper) despite their sensitivity gap.
#include <cstdio>

#include "common.hpp"
#include "waldo/ml/stats.hpp"

using namespace waldo;

int main() {
  std::printf("Figure 7 — correlation between RTL-SDR and USRP labels\n");
  bench::Campaign campaign;

  std::vector<double> correlations;
  bench::print_title("per-channel Pearson r between label sequences");
  bench::print_row({"channel", "pearson_r", "agreement"});
  for (const int ch : rf::kPaperChannels) {
    const auto& r = campaign.labels(bench::SensorKind::kRtlSdr, ch);
    const auto& u = campaign.labels(bench::SensorKind::kUsrpB200, ch);
    std::vector<double> rd(r.begin(), r.end());
    std::vector<double> ud(u.begin(), u.end());
    const double rho = ml::pearson_correlation(rd, ud);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < r.size(); ++i) agree += r[i] == u[i] ? 1 : 0;
    const double frac = static_cast<double>(agree) /
                        static_cast<double>(r.size());
    // Fully occupied channels have constant labels on both sensors:
    // correlation is undefined (0 by convention) but agreement is total.
    correlations.push_back(frac == 1.0 ? 1.0 : rho);
    bench::print_row({std::to_string(ch), bench::fmt(rho),
                      bench::fmt(frac)});
  }

  bench::print_title("CDF of per-channel correlation");
  bench::print_row({"probability", "pearson_r"});
  for (const auto& p : ml::empirical_cdf(correlations, 9)) {
    bench::print_row({bench::fmt(p.probability, 2), bench::fmt(p.value)});
  }
  std::printf("median r = %.3f (paper: median above 0.9)\n",
              ml::quantile(correlations, 0.5));
  return 0;
}
