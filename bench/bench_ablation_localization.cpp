// Localization ablation (Section 6 monitoring application): transmitter
// position error of the RSS-only locator versus (a) the sensing hardware's
// dynamic range and (b) the campaign size. Low-cost sensors saturate at
// their floor, which removes the far-field gradient the fit needs — one
// more place where the analyzer's depth matters.
#include <cstdio>

#include "common.hpp"
#include "waldo/core/transmitter_locator.hpp"

using namespace waldo;

int main() {
  std::printf("Localization ablation — finding the incumbents from drive-by"
              " RSS\n");
  bench::Campaign campaign(4000);

  bench::print_title("(a) error by sensor, channel sweep");
  bench::print_row({"channel", "FieldFox_km", "USRP_km", "RTL_km"}, 14);
  for (const int ch : {21, 27, 39, 46}) {
    const rf::Transmitter* truth =
        campaign.environment().transmitters_on(ch).front();
    std::vector<std::string> row{std::to_string(ch)};
    for (const bench::SensorKind kind :
         {bench::SensorKind::kSpectrumAnalyzer, bench::SensorKind::kUsrpB200,
          bench::SensorKind::kRtlSdr}) {
      core::LocatorConfig cfg;
      // Each device trusts readings down to its own compression knee.
      cfg.min_rss_dbm = kind == bench::SensorKind::kSpectrumAnalyzer
                            ? -105.0
                            : (kind == bench::SensorKind::kUsrpB200 ? -86.0
                                                                    : -83.0);
      const auto estimate =
          core::locate_transmitter(campaign.dataset(kind, ch), cfg);
      row.push_back(estimate
                        ? bench::fmt(geo::distance_m(estimate->position,
                                                     truth->location) /
                                         1000.0,
                                     1)
                        : "no fix");
    }
    bench::print_row(row, 14);
  }

  bench::print_title("(b) analyzer error vs campaign size (channel 39)");
  bench::print_row({"readings", "error_km", "exponent", "rmse_dB"}, 12);
  const rf::Transmitter* truth =
      campaign.environment().transmitters_on(39).front();
  for (const std::size_t n : {250u, 1000u, 4000u}) {
    bench::Campaign sub(n, 7);
    core::LocatorConfig cfg;
    cfg.min_rss_dbm = -105.0;
    const auto estimate = core::locate_transmitter(
        sub.dataset(bench::SensorKind::kSpectrumAnalyzer, 39), cfg);
    if (!estimate) {
      bench::print_row({std::to_string(n), "no fix", "-", "-"}, 12);
      continue;
    }
    bench::print_row(
        {std::to_string(n),
         bench::fmt(geo::distance_m(estimate->position, truth->location) /
                        1000.0,
                    1),
         bench::fmt(estimate->path_loss_exponent, 2),
         bench::fmt(estimate->rmse_db, 1)},
        12);
  }
  std::printf(
      "\nExpected shape: on strong (blanket) channels every sensor"
      " localises well; on\nweak coverage-edge channels the analyzer's"
      " dynamic range wins because low-cost\nfloors truncate the range"
      " gradient. More readings tighten and stabilise the fit.\n");
  return 0;
}
