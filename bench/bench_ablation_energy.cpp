// Energy ablation (Section 5, citing the "will DSA drain my battery?"
// study): daily battery cost of three access strategies on the same
// device. Waldo pays for the SDR during scans and one model download per
// area; the conventional database pays a cellular round trip per re-check;
// the paper's cited study found the two "sometimes comparable" — this
// bench shows where the crossover sits.
#include <cstdio>

#include "common.hpp"
#include "waldo/core/database.hpp"
#include "waldo/device/energy.hpp"
#include "waldo/device/phone.hpp"

using namespace waldo;

int main() {
  std::printf("Energy ablation — daily battery cost of channel checking\n");
  bench::Campaign campaign(2000);

  core::ModelConstructorConfig mc;
  mc.classifier = "naive_bayes";
  mc.num_features = 2;
  mc.num_localities = 3;
  core::SpectrumDatabase db(mc);
  const std::vector<int> channels{15, 21, 46, 47};
  std::size_t model_bytes = 0;
  for (const int ch : channels) {
    db.ingest_campaign(campaign.dataset(bench::SensorKind::kUsrpB200, ch));
    model_bytes += db.download_model(ch).size();
  }

  device::PhoneConfig cfg;
  sensors::Sensor sensor(device::phone_rtl_sdr_spec(), 95);
  sensor.calibrate();
  device::PhoneRuntime phone(cfg, std::move(sensor));
  phone.ensure_models(db, channels);
  const device::ScanReport cycle = phone.scan_cycle(
      campaign.environment(), channels, geo::EnuPoint{8000.0, 8000.0});

  const device::EnergyModel energy;
  constexpr std::size_t kChecksPerDay = 24 * 60;  // FCC: re-check per minute
  constexpr std::size_t kQueryBytes = 2048;

  const double waldo_j = device::waldo_daily_energy_j(
      model_bytes, cycle, kChecksPerDay, energy);
  const double db_j =
      device::database_daily_energy_j(kQueryBytes, kChecksPerDay, energy);

  bench::print_title("daily energy (4 channels, one check per minute)");
  bench::print_row({"strategy", "J/day", "mAh @3.85V", "notes"}, 22);
  const auto mah = [](double joules) {
    return joules / 3.85 / 3.6;  // J -> mAh at a phone's 3.85 V
  };
  bench::print_row({"Waldo (local)", bench::fmt(waldo_j, 0),
                    bench::fmt(mah(waldo_j), 0),
                    "1 download + SDR scans"},
                   22);
  bench::print_row({"database queries", bench::fmt(db_j, 0),
                    bench::fmt(mah(db_j), 0), "LTE round trip each"},
                   22);

  // Crossover: how often must the device move (forcing fresh queries) for
  // the database strategy to cost more than Waldo?
  const double scan_j = device::scan_energy_j(cycle, energy);
  const double query_j = device::transfer_energy_j(kQueryBytes, energy);
  std::printf("\nper-event cost: one 4-channel scan %.2f J vs one query "
              "round trip %.2f J\n",
              scan_j, query_j);
  std::printf("(cellular wakeups dominate: local sensing wins whenever the"
              " radio would\notherwise wake for the check — consistent with"
              " the cited study's 'sometimes\ncomparable' verdict, which"
              " assumed the radio was already awake.)\n");
  return 0;
}
