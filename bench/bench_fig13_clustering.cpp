// Figure 13: the effect of the number of localities (k-means clusters, one
// model per cluster) on FP and FN rates, for k in {1 (no clustering), 3, 5}
// and each feature count. Uses the full Model Constructor path, so
// single-class localities collapse to constant "binary" models.
#include <cstdio>

#include "common.hpp"

using namespace waldo;

int main() {
  std::printf("Figure 13 — local models (k-means localities), 5-fold CV\n");
  bench::Campaign campaign;

  const int kChannels[] = {15, 21, 46, 47};
  const bench::SensorKind kSensors[] = {bench::SensorKind::kRtlSdr,
                                        bench::SensorKind::kUsrpB200};

  bench::print_row({"sensor", "k", "n_feat", "FP", "FN", "error"}, 12);
  for (const bench::SensorKind sensor : kSensors) {
    for (const std::size_t k : {1u, 3u, 5u}) {
      for (int nf = 1; nf <= 4; ++nf) {
        ml::ConfusionMatrix total;
        for (const int ch : kChannels) {
          bench::EvalConfig cfg;
          cfg.classifier = "naive_bayes";
          cfg.num_features = nf;
          cfg.folds = 5;
          total.merge(
              bench::evaluate_waldo_model(campaign, sensor, ch, k, cfg));
        }
        bench::print_row({bench::sensor_name(sensor), std::to_string(k),
                          std::to_string(nf), bench::fmt(total.fp_rate()),
                          bench::fmt(total.fn_rate()),
                          bench::fmt(total.error_rate())},
                         12);
      }
    }
  }
  std::printf(
      "\nPaper shape: going from one global model to k=3 local models"
      " improves FP\nsubstantially (local models stop underfitting) at a"
      " small FN cost; the feature\neffect persists at every k. Averaged"
      " over channels 15/21/46/47 with Naive Bayes\n(the model family where"
      " locality underfitting is visible).\n");
  return 0;
}
