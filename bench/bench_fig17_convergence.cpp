// Figure 17 + Section 5 responsiveness: CDF of the time the on-device
// detector needs to build a 90 % confidence interval with a 0.5 dB span
// (stationary), the insensitivity of that time to alpha between 0.5 and
// 5 dB, the 30-channel scan total vs IEEE 802.22's 2 s budget, and the
// mobile case where convergence often fails.
#include <cstdio>
#include <random>

#include "common.hpp"
#include "waldo/core/database.hpp"
#include "waldo/device/phone.hpp"
#include "waldo/ml/stats.hpp"

using namespace waldo;

int main() {
  std::printf("Figure 17 — detector convergence time\n");
  bench::Campaign campaign(1200);

  core::ModelConstructorConfig mc;
  mc.classifier = "naive_bayes";
  mc.num_features = 2;
  core::SpectrumDatabase db(mc);
  db.ingest_campaign(campaign.dataset(bench::SensorKind::kUsrpB200, 46));

  std::mt19937_64 rng(61);
  std::uniform_real_distribution<double> coord(1000.0, 25'000.0);

  // Stationary convergence, alpha sweep.
  bench::print_title("stationary convergence vs alpha (100 scans each)");
  bench::print_row({"alpha_dB", "mean_s", "p50_s", "p95_s", "converged"});
  std::vector<double> times_alpha05;
  for (const double alpha : {0.5, 1.0, 2.0, 5.0}) {
    device::PhoneConfig cfg;
    cfg.cache_constant_channels = false;  // paper protocol: scan everything
    cfg.detector.alpha_db = alpha;
    sensors::Sensor sensor(device::phone_rtl_sdr_spec(), 62);
    sensor.calibrate();
    device::PhoneRuntime phone(cfg, std::move(sensor));
    phone.ensure_models(db, std::vector<int>{46});
    std::vector<double> times;
    int converged = 0;
    for (int i = 0; i < 100; ++i) {
      const geo::EnuPoint p{coord(rng), coord(rng)};
      const device::ChannelScan scan =
          phone.scan_channel(campaign.environment(), 46, p);
      times.push_back(scan.convergence_time_s());
      converged += scan.converged ? 1 : 0;
    }
    if (alpha == 0.5) times_alpha05 = times;
    bench::print_row({bench::fmt(alpha, 1),
                      bench::fmt(ml::summarize(times).mean),
                      bench::fmt(ml::quantile(times, 0.5)),
                      bench::fmt(ml::quantile(times, 0.95)),
                      std::to_string(converged) + "/100"});
  }

  bench::print_title("CDF of stationary convergence time (alpha = 0.5 dB)");
  bench::print_row({"probability", "seconds"});
  for (const auto& p : ml::empirical_cdf(times_alpha05, 10)) {
    bench::print_row({bench::fmt(p.probability, 2), bench::fmt(p.value)});
  }
  const double mean_time = ml::summarize(times_alpha05).mean;
  std::printf("mean %.3f s (paper: 0.19 s); 30 channels => %.2f s vs IEEE "
              "802.22's 2 s budget\n",
              mean_time, 30.0 * mean_time);

  // Mobile scans.
  bench::print_title("mobile scans (25 m/s, tight alpha)");
  device::PhoneConfig mobile_cfg;
  mobile_cfg.cache_constant_channels = false;
  mobile_cfg.detector.alpha_db = 0.2;
  mobile_cfg.detector.max_samples = 60;
  sensors::Sensor mobile_sensor(device::phone_rtl_sdr_spec(), 63);
  mobile_sensor.calibrate();
  device::PhoneRuntime mobile(mobile_cfg, std::move(mobile_sensor));
  mobile.ensure_models(db, std::vector<int>{46});
  std::vector<double> mobile_times;
  int failures = 0;
  for (int i = 0; i < 60; ++i) {
    const device::ChannelScan scan = mobile.scan_channel_mobile(
        campaign.environment(), 46, geo::EnuPoint{coord(rng), coord(rng)},
        25.0, 0.0);
    if (scan.converged) {
      mobile_times.push_back(scan.convergence_time_s());
    } else {
      ++failures;
    }
  }
  std::printf("non-convergence: %d/60 scans", failures);
  if (!mobile_times.empty()) {
    std::printf("; min converged time %.3f s",
                ml::summarize(mobile_times).min);
  }
  std::printf("\nPaper shape: stationary convergence is fast (~0.2 s) and "
              "insensitive to alpha;\nmobility inflates delay and often "
              "prevents convergence (conservative fallback).\n");
  return 0;
}
