// Figure 12: the effect of adding signal features. (a) per-channel error
// rate for Naive Bayes and SVM with location only vs location + signal
// features (USRP data); (b) mean FP rate and (c) mean FN rate as features
// are added in the paper's order (location, +RSS, +CFT, +AFT) for both
// sensors and both models. 10-fold cross validation throughout.
//
// Two SVM configurations are reported: the library default (standardised
// RBF kernel — the engineering-correct model) and the artifact-faithful
// mode (raw feature units, OpenCV-default C and gamma — how the paper's
// 700-LoC OpenCV pipeline behaves). EXPERIMENTS.md discusses how the
// difference explains the paper's location-only error levels.
#include <cstdio>

#include "common.hpp"

using namespace waldo;

int main() {
  std::printf("Figure 12 — classification with location vs location + "
              "signal features (10-fold CV)\n");
  bench::Campaign campaign;

  // (a) per-channel error, USRP, default (tuned) mode.
  bench::print_title("(a) per-channel error rate (USRP, tuned models)");
  bench::print_row({"channel", "NB loc", "NB loc+feat", "SVM loc",
                    "SVM loc+feat"},
                   14);
  for (const int ch : rf::kEvaluationChannels) {
    std::vector<std::string> row{std::to_string(ch)};
    for (const char* model : {"naive_bayes", "svm"}) {
      for (const int nf : {1, 3}) {
        bench::EvalConfig cfg;
        cfg.classifier = model;
        cfg.num_features = nf;
        row.push_back(bench::fmt(
            bench::evaluate_classifier(campaign, bench::SensorKind::kUsrpB200,
                                       ch, cfg)
                .error_rate()));
      }
    }
    bench::print_row(row, 14);
  }

  // (b)/(c): mean FP and FN vs number of features, both modes.
  struct Config {
    bench::SensorKind sensor;
    const char* model;
    bool paper_faithful;
  };
  const Config configs[] = {
      {bench::SensorKind::kRtlSdr, "naive_bayes", false},
      {bench::SensorKind::kRtlSdr, "svm", false},
      {bench::SensorKind::kUsrpB200, "naive_bayes", false},
      {bench::SensorKind::kUsrpB200, "svm", false},
      {bench::SensorKind::kRtlSdr, "svm", true},
      {bench::SensorKind::kUsrpB200, "svm", true},
  };
  bench::print_title("(b)/(c) mean FP and FN rate vs number of features");
  bench::print_row({"config", "n_feat", "FP", "FN", "error"}, 22);
  for (const Config& c : configs) {
    for (int nf = 1; nf <= 4; ++nf) {
      ml::ConfusionMatrix total;
      for (const int ch : rf::kEvaluationChannels) {
        bench::EvalConfig cfg;
        cfg.classifier = c.model;
        cfg.num_features = nf;
        cfg.paper_faithful = c.paper_faithful;
        total.merge(bench::evaluate_classifier(campaign, c.sensor, ch, cfg));
      }
      const std::string name = std::string(bench::sensor_name(c.sensor)) +
                               " " + c.model +
                               (c.paper_faithful ? " (artifact)" : "");
      bench::print_row({name, std::to_string(nf), bench::fmt(total.fp_rate()),
                        bench::fmt(total.fn_rate()),
                        bench::fmt(total.error_rate())},
                       22);
    }
  }
  std::printf(
      "\nPaper shape reproduced: NB improves with features on hard channels"
      " (FN drops\nsharply, e.g. channel 15), SVM beats NB, USRP beats RTL"
      " on FP.\nDivergence (see EXPERIMENTS.md): with a properly"
      " standardised kernel and a dense\ncampaign, location-only SVM is"
      " already near the label-noise floor, so features\ncannot add much —"
      " the paper's large location-only errors (and the resulting"
      " 5x\nfeature gains) require its raw-unit kernel configuration, shown"
      " as '(artifact)'.\n");
  return 0;
}
