// waldo — command-line front end to the library.
//
//   waldo simulate --out DIR [--readings N] [--channels 15,46] [--seed S]
//       [--fast-spectral 1]
//       Run the synthetic three-sensor measurement campaign and write one
//       CSV sweep per (channel, sensor). --fast-spectral 1 computes the
//       CFT/AFT features straight from the synthesized spectrum (skips the
//       ifft/fft round trip; agrees with the exact path to ~1e-10 dB).
//
// Global flags (any command):
//   --threads N   worker threads for the parallel stages (0 = all hardware
//                 threads, 1 = serial; results are identical either way —
//                 see docs/CONCURRENCY.md)
//   --timings 1   print the per-stage wall-clock report before exiting
//   waldo label --in sweep.csv [--threshold -84] [--separation 6000]
//       [--correction 0]
//       Apply Algorithm 1 to a sweep and print the occupancy summary.
//   waldo train --in sweep.csv --model out.wsm [--classifier svm]
//       [--features 3] [--localities 3] [--max-train 800] [--text 1]
//       Build a White Space Detection Model from a sweep. Models are
//       written in the binary v1 descriptor format (--text 1 writes the
//       legacy v0 text form); every model-reading command sniffs the
//       format, so both load transparently.
//   waldo predict --model m.wsm --east E --north N [--rss R] [--cft C]
//       [--aft A]
//       Classify one location (meters in the campaign's ENU frame).
//   waldo map --model m.wsm --in sweep.csv [--cols 64] [--rows 32]
//       ASCII map of the model's decisions over the sweep's bounding box.
//   waldo info --model m.wsm
//       Print a model descriptor's vital statistics.
//   waldo model-size [--in sweep.csv] [--readings 700] [--seed 17]
//       [--features 3] [--localities 3] [--max-train 800] [--json 1]
//       Train every classifier family on one dataset and report the
//       descriptor size in both wire forms (legacy v0 text vs binary v1)
//       — the paper's Section 5 ~4 kB Naive Bayes vs ~40 kB SVM
//       comparison, plus the binary/text ratio. --json 1 emits the table
//       as JSON on stdout.
//   waldo serve-bench [--readings 900] [--channels 15,46] [--requests 4000]
//       [--workers 0] [--upload-pct 15] [--rebuild-threshold 25] [--seed 33]
//       Stand up the concurrent serving layer (waldo::service) over a
//       synthetic campaign and drive a mixed download/upload workload
//       through the wire protocol; prints throughput and the frontend's
//       ServiceStats (p50/p99 handle latency, rebuilds, bytes served).
//   waldo cluster-bench [--nodes 4] [--replication 2] [--readings 500]
//       [--requests 240] [--clients 3] [--upload-pct 15] [--kill 1]
//       [--drop-pct 5] [--seed 33]
//       Stand up the multi-node cluster tier (waldo::cluster): N
//       in-process nodes behind a ClusterRouter, two bootstrapped metro
//       tiles, a lossy fault-injected transport, and (with --kill 1) a
//       mid-run kill + recovery of a tile primary. Prints throughput,
//       retry/failover counts and the router's failover-latency
//       percentiles. See docs/CLUSTER.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "waldo/campaign/dataset_io.hpp"
#include "waldo/campaign/labeling.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/cluster/cluster.hpp"
#include "waldo/cluster/router.hpp"
#include "waldo/geo/grid_index.hpp"
#include "waldo/core/features.hpp"
#include "waldo/core/model.hpp"
#include "waldo/core/model_constructor.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/core/protocol.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/runtime/seed.hpp"
#include "waldo/runtime/stage_timer.hpp"
#include "waldo/runtime/thread_pool.hpp"
#include "waldo/sensors/sensor.hpp"
#include "waldo/service/frontend.hpp"
#include "waldo/service/service.hpp"

namespace {

using namespace waldo;

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --flag, got: " + key);
      }
      key = key.substr(2);
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value for --" + key);
      }
      values_[key] = argv[++i];
    }
  }

  [[nodiscard]] std::string get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw std::invalid_argument("missing required flag --" + key);
    }
    return it->second;
  }
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : parse_num(key, it->second);
  }
  [[nodiscard]] std::optional<double> maybe_num(
      const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return parse_num(key, it->second);
  }

 private:
  static double parse_num(const std::string& key, const std::string& value) {
    try {
      std::size_t consumed = 0;
      const double parsed = std::stod(value, &consumed);
      if (consumed != value.size()) throw std::invalid_argument(value);
      return parsed;
    } catch (const std::exception&) {
      throw std::invalid_argument("invalid number for --" + key + ": '" +
                                  value + "'");
    }
  }

  std::map<std::string, std::string> values_;
};

std::vector<int> parse_channels(const std::string& list) {
  std::vector<int> out;
  std::istringstream ss(list);
  std::string token;
  while (std::getline(ss, token, ',')) out.push_back(std::stoi(token));
  return out;
}

/// The --threads knob shared by every command (0 = all hardware threads).
unsigned threads_from(const Args& args) {
  const double requested = args.num("threads", 0);
  if (requested < 0) {
    throw std::invalid_argument("--threads must be >= 0");
  }
  return static_cast<unsigned>(requested);
}

int cmd_simulate(const Args& args) {
  const std::string out_dir = args.get("out");
  const auto readings =
      static_cast<std::size_t>(args.num("readings", 5282));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 99));
  std::vector<int> channels(rf::kPaperChannels.begin(),
                            rf::kPaperChannels.end());
  if (const std::string list = args.get_or("channels", ""); !list.empty()) {
    channels = parse_channels(list);
  }

  const rf::Environment world = rf::make_metro_environment();
  const geo::DrivePath route = campaign::standard_route(world, readings,
                                                        seed);
  std::printf("route: %zu readings, %.0f km\n", route.readings.size(),
              route.total_length_m / 1000.0);
  std::filesystem::create_directories(out_dir);

  struct Unit {
    const char* tag;
    sensors::Sensor sensor;
  };
  Unit units[] = {{"fieldfox",
                   sensors::Sensor(sensors::spectrum_analyzer_spec(), seed)},
                  {"rtlsdr", sensors::Sensor(sensors::rtl_sdr_spec(),
                                             seed + 1)},
                  {"usrp", sensors::Sensor(sensors::usrp_b200_spec(),
                                           seed + 2)}};
  for (Unit& u : units) {
    if (!u.sensor.calibration().has_value()) u.sensor.calibrate();
  }
  campaign::CollectOptions collect;
  collect.threads = threads_from(args);
  collect.fast_spectral = args.num("fast-spectral", 0) != 0;
  for (const int ch : channels) {
    for (Unit& u : units) {
      const auto sweep = campaign::collect_channel(world, u.sensor, ch,
                                                   route.readings, collect);
      const std::string path = out_dir + "/ch" + std::to_string(ch) + "_" +
                               u.tag + ".csv";
      campaign::write_csv_file(path, sweep);
      std::printf("wrote %s (%zu readings)\n", path.c_str(), sweep.size());
    }
  }
  return 0;
}

campaign::LabelingConfig labeling_from(const Args& args) {
  campaign::LabelingConfig cfg;
  cfg.threshold_dbm = args.num("threshold", cfg.threshold_dbm);
  cfg.separation_m = args.num("separation", cfg.separation_m);
  cfg.correction_db = args.num("correction", cfg.correction_db);
  return cfg;
}

int cmd_label(const Args& args) {
  const campaign::ChannelDataset ds =
      campaign::read_csv_file(args.get("in"));
  const auto labels = campaign::label_readings(
      ds.positions(), ds.rss_values(), labeling_from(args));
  std::size_t safe = 0;
  for (const int l : labels) safe += l == ml::kSafe ? 1 : 0;
  std::printf("channel %d (%s): %zu readings, %zu safe (%.1f%%), %zu not "
              "safe\n",
              ds.channel, ds.sensor_name.c_str(), labels.size(), safe,
              100.0 * campaign::safe_fraction(labels),
              labels.size() - safe);
  return 0;
}

int cmd_train(const Args& args) {
  const campaign::ChannelDataset ds =
      campaign::read_csv_file(args.get("in"));
  core::ModelConstructorConfig cfg;
  cfg.classifier = args.get_or("classifier", "svm");
  cfg.num_features = static_cast<int>(args.num("features", 3));
  cfg.num_localities =
      static_cast<std::size_t>(args.num("localities", 3));
  cfg.max_train_samples =
      static_cast<std::size_t>(args.num("max-train", 800));
  cfg.threads = threads_from(args);
  const core::WhiteSpaceModel model =
      core::ModelConstructor(cfg).build_with_labeling(ds,
                                                      labeling_from(args));
  const std::string path = args.get("model");
  const bool as_text = args.num("text", 0) != 0;
  const std::string bytes =
      as_text ? model.serialize_text() : model.serialize();
  std::ofstream out(path, std::ios::binary);
  if (!out.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()))) {
    throw std::runtime_error("cannot write " + path);
  }
  std::printf("trained %s model for channel %d: %zu localities (%zu "
              "constant), %zu bytes (%s) -> %s\n",
              model.classifier_kind().c_str(), model.channel(),
              model.num_localities(), model.num_constant_localities(),
              bytes.size(), as_text ? "text v0" : "binary v1", path.c_str());
  return 0;
}

core::WhiteSpaceModel load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // deserialize() sniffs the magic: binary v1 and legacy text v0 files
  // both load.
  return core::WhiteSpaceModel::deserialize(buffer.str());
}

int cmd_predict(const Args& args) {
  const core::WhiteSpaceModel model = load_model(args.get("model"));
  const geo::EnuPoint p{args.num("east", 0.0), args.num("north", 0.0)};
  if (model.num_features() >= 2 && !args.maybe_num("rss").has_value()) {
    throw std::invalid_argument(
        "this model uses signal features; pass at least --rss");
  }
  const double rss = args.num("rss", -90.0);
  const auto row = core::feature_row(p, rss, args.num("cft", rss - 11.3),
                                     args.num("aft", rss - 20.0),
                                     model.num_features());
  const int decision = model.predict(row);
  std::printf("channel %d at (%.0f, %.0f): %s\n", model.channel(), p.east_m,
              p.north_m,
              decision == ml::kSafe ? "SAFE (white space available)"
                                    : "NOT SAFE (protected)");
  return decision == ml::kSafe ? 0 : 2;
}

int cmd_map(const Args& args) {
  const core::WhiteSpaceModel model = load_model(args.get("model"));
  const campaign::ChannelDataset ds =
      campaign::read_csv_file(args.get("in"));
  const geo::BoundingBox box = geo::BoundingBox::of(ds.positions());
  const int cols = static_cast<int>(args.num("cols", 64));
  const int rows = static_cast<int>(args.num("rows", 32));

  // Nearest-reading features drive the prediction at each cell.
  const geo::GridIndex index(ds.positions(), 1000.0);
  for (int r = rows - 1; r >= 0; --r) {
    std::string line;
    for (int c = 0; c < cols; ++c) {
      const geo::EnuPoint p{
          box.min_east_m + (c + 0.5) / cols * box.width_m(),
          box.min_north_m + (r + 0.5) / rows * box.height_m()};
      const campaign::Measurement& near =
          ds.readings[index.nearest(p)];
      const auto row = core::feature_row(p, near.rss_dbm, near.cft_db,
                                         near.aft_db, model.num_features());
      line += model.predict(row) == ml::kSafe ? '.' : '+';
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("channel %d: '+' not safe, '.' white space (%dx%d cells over "
              "%.0f km^2)\n",
              model.channel(), cols, rows, box.area_km2());
  return 0;
}

int cmd_info(const Args& args) {
  const core::WhiteSpaceModel model = load_model(args.get("model"));
  std::printf("channel:        %d\n", model.channel());
  std::printf("classifier:     %s\n", model.classifier_kind().c_str());
  std::printf("features:       %d (", model.num_features());
  for (int f = 1; f <= model.num_features(); ++f) {
    std::printf("%s%s", f > 1 ? ", " : "", core::feature_name(f));
  }
  std::printf(")\n");
  std::printf("localities:     %zu (%zu constant)\n", model.num_localities(),
              model.num_constant_localities());
  if (const auto constant = model.constant_label()) {
    std::printf("area-wide:      %s (cacheable without sensing)\n",
                *constant == ml::kSafe ? "SAFE" : "NOT SAFE");
  }
  std::printf("descriptor:     %zu bytes\n", model.descriptor_size_bytes());
  return 0;
}

int cmd_model_size(const Args& args) {
  // One dataset, every classifier family: the paper's Section 5 model-size
  // comparison, in both wire forms. Defaults to a deterministic synthetic
  // split field so the command works without a campaign on disk.
  campaign::ChannelDataset ds;
  if (const std::string in = args.get_or("in", ""); !in.empty()) {
    ds = campaign::read_csv_file(in);
  } else {
    const auto n = static_cast<std::size_t>(args.num("readings", 700));
    std::mt19937_64 rng(static_cast<std::uint64_t>(args.num("seed", 17)));
    std::uniform_real_distribution<double> coord(0.0, 10'000.0);
    std::normal_distribution<double> jitter(0.0, 1.0);
    ds.channel = 30;
    ds.sensor_name = "synthetic";
    // Diagonal boundary: it cuts across the k-means localities, so each
    // locality trains a real classifier instead of collapsing constant.
    for (std::size_t i = 0; i < n; ++i) {
      campaign::Measurement m;
      m.position = geo::EnuPoint{coord(rng), coord(rng)};
      const bool occupied =
          m.position.east_m + m.position.north_m < 10'000.0;
      m.rss_dbm = (occupied ? -75.0 : -95.0) + jitter(rng);
      m.cft_db = (occupied ? -85.0 : -105.0) + jitter(rng);
      m.aft_db = (occupied ? -95.0 : -108.0) + jitter(rng);
      ds.readings.push_back(m);
    }
  }

  core::ModelConstructorConfig cfg;
  cfg.num_features = static_cast<int>(args.num("features", 3));
  cfg.num_localities = static_cast<std::size_t>(args.num("localities", 3));
  cfg.max_train_samples =
      static_cast<std::size_t>(args.num("max-train", 800));
  cfg.threads = threads_from(args);

  const bool as_json = args.num("json", 0) != 0;
  static constexpr const char* kFamilies[] = {
      "svm", "naive_bayes", "decision_tree", "knn", "logistic_regression"};
  if (as_json) {
    std::printf("{\n  \"suite\": \"model_size\",\n  \"records\": [\n");
  } else {
    std::printf("%-22s %12s %12s %8s\n", "family", "text B", "binary B",
                "ratio");
  }
  bool first = true;
  for (const char* family : kFamilies) {
    cfg.classifier = family;
    const core::WhiteSpaceModel model =
        core::ModelConstructor(cfg).build_with_labeling(ds,
                                                        labeling_from(args));
    const std::size_t text_bytes = model.serialize_text().size();
    const std::size_t binary_bytes = model.serialize().size();
    const double ratio = static_cast<double>(binary_bytes) /
                         static_cast<double>(text_bytes);
    if (as_json) {
      std::printf("%s    {\"family\": \"%s\", \"text_bytes\": %zu, "
                  "\"binary_bytes\": %zu, \"ratio\": %.3f}",
                  first ? "" : ",\n", family, text_bytes, binary_bytes,
                  ratio);
      first = false;
    } else {
      std::printf("%-22s %12zu %12zu %7.0f%%\n", family, text_bytes,
                  binary_bytes, 100.0 * ratio);
    }
  }
  if (as_json) std::printf("\n  ]\n}\n");
  return 0;
}

int cmd_serve_bench(const Args& args) {
  const auto readings = static_cast<std::size_t>(args.num("readings", 900));
  const auto requests = static_cast<std::size_t>(args.num("requests", 4000));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 33));
  const double upload_pct = args.num("upload-pct", 15.0);
  if (upload_pct < 0.0 || upload_pct > 100.0) {
    throw std::invalid_argument("--upload-pct must be in [0, 100]");
  }
  const unsigned workers =
      static_cast<unsigned>(args.num("workers", 0));
  std::vector<int> channels{15, 46};
  if (const std::string list = args.get_or("channels", ""); !list.empty()) {
    channels = parse_channels(list);
  }

  // Bootstrap: one synthetic sweep per channel into the serving layer.
  const rf::Environment world = rf::make_metro_environment();
  const geo::DrivePath route = campaign::standard_route(world, readings,
                                                        seed);
  sensors::Sensor usrp(sensors::usrp_b200_spec(), seed + 1);
  usrp.calibrate();
  core::ModelConstructorConfig mc;
  mc.classifier = "naive_bayes";
  mc.num_features = 2;
  core::UploadPolicy policy;
  policy.rebuild_threshold =
      static_cast<std::size_t>(args.num("rebuild-threshold", 25));
  service::SpectrumService service(mc, campaign::LabelingConfig{}, policy);
  std::map<int, campaign::ChannelDataset> sweeps;
  for (const int channel : channels) {
    campaign::ChannelDataset sweep =
        campaign::collect_channel(world, usrp, channel, route.readings);
    sweeps.emplace(channel, sweep);
    service.ingest_campaign(std::move(sweep));
  }
  service::ServiceFrontend frontend(service, workers);
  // Warm every model so the steady-state numbers aren't one-off builds.
  for (const int channel : channels) (void)service.model(channel);
  std::printf("serving %zu channels x %zu readings on %u workers\n",
              channels.size(), readings, frontend.workers());

  // Pre-encode the workload so the measured section is serving only.
  std::mt19937_64 rng(runtime::split_seed(seed, 2));
  std::uniform_real_distribution<double> roll(0.0, 100.0);
  std::vector<std::string> wires;
  wires.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const int channel = channels[rng() % channels.size()];
    if (roll(rng) < upload_pct) {
      const campaign::ChannelDataset& sweep = sweeps.at(channel);
      std::uniform_int_distribution<std::size_t> pick(0, sweep.size() - 1);
      std::uniform_real_distribution<double> jitter(-40.0, 40.0);
      core::UploadRequest up;
      up.channel = channel;
      up.contributor = "bench" + std::to_string(i % 7);
      for (int r = 0; r < 3; ++r) {
        campaign::Measurement m = sweep.readings[pick(rng)];
        m.position.east_m += jitter(rng);
        m.position.north_m += jitter(rng);
        m.iq.clear();
        up.readings.push_back(std::move(m));
      }
      wires.push_back(core::encode(up));
    } else {
      wires.push_back(core::encode(core::ModelRequest{.channel = channel}));
    }
  }

  std::vector<std::future<std::string>> replies;
  replies.reserve(wires.size());
  const auto start = std::chrono::steady_clock::now();
  for (std::string& wire : wires) replies.push_back(
      frontend.submit(std::move(wire)));
  for (auto& reply : replies) (void)reply.get();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const service::ServiceStats stats = frontend.stats();
  std::printf("\n%zu requests in %.3f s  (%.0f req/s)\n", requests, seconds,
              static_cast<double>(requests) / seconds);
  std::printf("requests served:  %llu (%llu errors)\n",
              static_cast<unsigned long long>(stats.requests_served),
              static_cast<unsigned long long>(stats.error_responses));
  std::printf("model downloads:  %llu (%.1f MiB served)\n",
              static_cast<unsigned long long>(stats.model_downloads),
              static_cast<double>(stats.bytes_served) / (1024.0 * 1024.0));
  std::printf("uploads:          %llu accepted, %llu rejected, %llu pending\n",
              static_cast<unsigned long long>(stats.uploads_accepted),
              static_cast<unsigned long long>(stats.uploads_rejected),
              static_cast<unsigned long long>(stats.uploads_pending));
  std::printf("model rebuilds:   %llu\n",
              static_cast<unsigned long long>(stats.rebuilds));
  std::printf("descriptor cache: %llu hits, %llu misses (%.1f MiB from "
              "cache)\n",
              static_cast<unsigned long long>(stats.descriptor_cache_hits),
              static_cast<unsigned long long>(stats.descriptor_cache_misses),
              static_cast<double>(stats.bytes_from_cache) /
                  (1024.0 * 1024.0));
  std::printf("handle latency:   p50 %.1f us, p99 %.1f us, max %llu us\n",
              stats.p50_handle_us, stats.p99_handle_us,
              static_cast<unsigned long long>(stats.max_handle_us));
  return 0;
}

int cmd_cluster_bench(const Args& args) {
  const auto nodes =
      static_cast<cluster::NodeId>(args.num("nodes", 4));
  const auto replication =
      static_cast<std::size_t>(args.num("replication", 2));
  const auto readings = static_cast<std::size_t>(args.num("readings", 500));
  const auto requests = static_cast<std::size_t>(args.num("requests", 240));
  const auto clients = static_cast<int>(args.num("clients", 3));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 33));
  const double upload_pct = args.num("upload-pct", 15.0);
  const double drop_pct = args.num("drop-pct", 5.0);
  const bool kill = args.num("kill", 1) != 0;
  if (upload_pct < 0.0 || upload_pct > 100.0) {
    throw std::invalid_argument("--upload-pct must be in [0, 100]");
  }
  if (drop_pct < 0.0 || drop_pct > 50.0) {
    throw std::invalid_argument("--drop-pct must be in [0, 50]");
  }
  if (clients < 1) throw std::invalid_argument("--clients must be >= 1");

  // Two synthetic metro areas, two channels each — area 2 is the same
  // sweep conducted 400 km east, which lands it in a different tile.
  constexpr int kChannels[] = {15, 46};
  constexpr double kAreaOffset = 400'000.0;
  const rf::Environment world = rf::make_metro_environment();
  const geo::DrivePath route =
      campaign::standard_route(world, readings, seed);
  sensors::Sensor usrp(sensors::usrp_b200_spec(), seed + 1);
  usrp.calibrate();

  cluster::ClusterConfig config;
  config.num_nodes = nodes;
  config.replication = replication;
  config.tile_size_m = 200'000.0;
  config.constructor_config.classifier = "naive_bayes";
  config.constructor_config.num_features = 2;
  config.upload_policy.rebuild_threshold =
      static_cast<std::size_t>(args.num("rebuild-threshold", 25));
  config.faults.drop_request = drop_pct / 100.0;
  config.faults.drop_response = drop_pct / 200.0;
  config.faults.duplicate_request = drop_pct / 200.0;
  config.faults.delay = 0.2;
  config.faults.max_delay_us = 100;
  config.faults.seed = seed;
  cluster::Cluster clu(std::move(config));

  std::vector<campaign::ChannelDataset> sweeps;
  for (const int channel : kChannels) {
    sweeps.push_back(
        campaign::collect_channel(world, usrp, channel, route.readings));
  }
  for (const int channel : kChannels) {
    campaign::ChannelDataset far =
        sweeps[channel == kChannels[0] ? 0 : 1];
    for (campaign::Measurement& m : far.readings) {
      m.position.east_m += kAreaOffset;
    }
    sweeps.push_back(std::move(far));
  }
  std::vector<cluster::TileKey> tiles;
  tiles.push_back(clu.ingest_campaign(sweeps[0]));
  clu.ingest_campaign(sweeps[1]);
  tiles.push_back(clu.ingest_campaign(sweeps[2]));
  clu.ingest_campaign(sweeps[3]);
  std::printf("cluster: %u node(s), replication %zu, %zu tiles, "
              "drop %.1f%%\n",
              nodes, replication, tiles.size(), drop_pct);
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    std::printf("  tile (%d,%d) replicas:", tiles[i].tx, tiles[i].ty);
    for (const cluster::NodeId n : clu.replicas_of(tiles[i])) {
      std::printf(" %u", n);
    }
    std::printf("\n");
  }

  cluster::RouterConfig router_config;
  router_config.deadline = std::chrono::milliseconds(60'000);
  router_config.backoff.base = std::chrono::nanoseconds{100'000};
  router_config.backoff.cap = std::chrono::nanoseconds{2'000'000};
  cluster::ClusterRouter router(clu.topology(), clu.transport(),
                                clu.membership(), router_config);

  const std::size_t per_client =
      std::max<std::size_t>(1, requests / static_cast<std::size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> traffic;
  for (int t = 0; t < clients; ++t) {
    traffic.emplace_back([&, t] {
      std::mt19937_64 rng(runtime::split_seed(seed, 100 + t));
      std::uniform_real_distribution<double> roll(0.0, 100.0);
      std::uniform_real_distribution<double> jitter(-40.0, 40.0);
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::size_t area = rng() % 2;
        const std::size_t slot = rng() % 2;
        const int channel = kChannels[slot];
        const campaign::ChannelDataset& sweep = sweeps[area * 2 + slot];
        const geo::EnuPoint where =
            clu.topology().tiling.center(tiles[area]);
        if (roll(rng) < upload_pct) {
          std::uniform_int_distribution<std::size_t> pick(0,
                                                          sweep.size() - 1);
          std::vector<campaign::Measurement> batch;
          for (int r = 0; r < 3; ++r) {
            campaign::Measurement m = sweep.readings[pick(rng)];
            m.position.east_m += jitter(rng);
            m.position.north_m += jitter(rng);
            m.iq.clear();
            batch.push_back(std::move(m));
          }
          (void)router.upload(channel, where, "cli" + std::to_string(t),
                              batch);
        } else {
          (void)router.download_descriptor(channel, where);
        }
      }
    });
  }

  const cluster::NodeId victim = clu.replicas_of(tiles[0])[0];
  if (kill && nodes > 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    std::printf("\nkilling node %u (primary of tile (%d,%d))...\n", victim,
                tiles[0].tx, tiles[0].ty);
    clu.kill(victim);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    clu.recover(victim);
    std::printf("node %u recovered and resynced\n", victim);
  }
  for (std::thread& t : traffic) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const cluster::RouterStats stats = router.stats();
  const std::size_t total = per_client * static_cast<std::size_t>(clients);
  std::printf("\n%zu requests in %.3f s  (%.0f req/s over %d clients)\n",
              total, seconds, static_cast<double>(total) / seconds, clients);
  std::printf("uploads/downloads: %llu / %llu\n",
              static_cast<unsigned long long>(stats.uploads),
              static_cast<unsigned long long>(stats.downloads));
  std::printf("retries: %llu, failovers: %llu, permanent failures: %llu\n",
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.failures));
  std::printf("request latency:  p50 %.1f us, p99 %.1f us\n",
              stats.request_latency.p50_ns / 1e3,
              stats.request_latency.p99_ns / 1e3);
  std::printf("failover latency: p50 %.1f us, p99 %.1f us (%llu requests)\n",
              stats.failover_latency.p50_ns / 1e3,
              stats.failover_latency.p99_ns / 1e3,
              static_cast<unsigned long long>(stats.failover_latency.count));
  for (cluster::NodeId n = 0; n < nodes; ++n) {
    const cluster::NodeStats ns = clu.node(n).stats();
    std::printf("node %u: %llu uploads, %llu repl applied, %llu downloads, "
                "%llu dedup hits%s\n",
                n, static_cast<unsigned long long>(ns.uploads_applied),
                static_cast<unsigned long long>(ns.repl_applied),
                static_cast<unsigned long long>(ns.downloads_served),
                static_cast<unsigned long long>(ns.dedup_hits),
                kill && n == victim ? "  (killed + recovered)" : "");
  }
  return stats.failures == 0 ? 0 : 1;
}

void usage() {
  std::printf(
      "waldo — local and low-cost white space detection\n"
      "usage: waldo <simulate|label|train|predict|map|info|model-size|"
      "serve-bench|cluster-bench> [--flags]\n"
      "see the header of tools/waldo_cli.cpp for per-command flags\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    const Args args(argc, argv);
    int rc = 1;
    if (command == "simulate") {
      rc = cmd_simulate(args);
    } else if (command == "label") {
      rc = cmd_label(args);
    } else if (command == "train") {
      rc = cmd_train(args);
    } else if (command == "predict") {
      rc = cmd_predict(args);
    } else if (command == "map") {
      rc = cmd_map(args);
    } else if (command == "info") {
      rc = cmd_info(args);
    } else if (command == "model-size") {
      rc = cmd_model_size(args);
    } else if (command == "serve-bench") {
      rc = cmd_serve_bench(args);
    } else if (command == "cluster-bench") {
      rc = cmd_cluster_bench(args);
    } else {
      usage();
      return 1;
    }
    if (args.num("timings", 0) != 0) {
      const std::string report = runtime::StageTimer::global().report();
      std::printf("\nstage timings (%u hardware threads):\n%s",
                  runtime::hardware_threads(),
                  report.empty() ? "(no stages recorded)\n" : report.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "waldo %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}
