// make_goldens — regenerates the committed golden descriptor files under
// tests/golden/: for every classifier family, one model trained on a fixed
// deterministic dataset, written in both wire forms (<family>_v0.wsm text,
// <family>_v1.wsm binary). The goldens pin the wire formats: the
// compatibility test decodes the committed files and compares predictions,
// so an accidental format change fails CI even though the files are never
// rebuilt there (model *training* draws std::normal_distribution values,
// which are implementation-defined across standard libraries — the files
// must come from one machine, this tool, and be committed).
//
//   make_goldens [output-dir]   (default tests/golden)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>

#include "waldo/campaign/measurement.hpp"
#include "waldo/core/model.hpp"
#include "waldo/core/model_constructor.hpp"

using namespace waldo;

namespace {

/// Same deterministic diagonal field `waldo model-size` uses: a strong
/// transmitter to the south-west, white space to the north-east. The
/// diagonal boundary cuts across the k-means localities, so every
/// locality sees both classes and trains a real classifier (goldens with
/// all-constant localities would not pin the per-family payloads).
campaign::ChannelDataset split_dataset(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 10'000.0);
  std::normal_distribution<double> jitter(0.0, 1.0);
  campaign::ChannelDataset ds;
  ds.channel = 30;
  ds.sensor_name = "synthetic";
  for (std::size_t i = 0; i < n; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{coord(rng), coord(rng)};
    const bool occupied = m.position.east_m + m.position.north_m < 10'000.0;
    m.rss_dbm = (occupied ? -75.0 : -95.0) + jitter(rng);
    m.cft_db = (occupied ? -85.0 : -105.0) + jitter(rng);
    m.aft_db = (occupied ? -95.0 : -108.0) + jitter(rng);
    ds.readings.push_back(m);
  }
  return ds;
}

void write_file(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    throw std::runtime_error("cannot write " + path.string());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "tests/golden";
  std::filesystem::create_directories(dir);
  const campaign::ChannelDataset ds = split_dataset(500, 1234);

  static constexpr const char* kFamilies[] = {
      "svm", "naive_bayes", "decision_tree", "knn", "logistic_regression"};
  for (const char* family : kFamilies) {
    core::ModelConstructorConfig cfg;
    cfg.classifier = family;
    cfg.num_features = 3;
    cfg.num_localities = 3;
    const core::WhiteSpaceModel model =
        core::ModelConstructor(cfg).build_with_labeling(ds, {});
    const std::string text = model.serialize_text();
    const std::string binary = model.serialize();
    write_file(dir / (std::string(family) + "_v0.wsm"), text);
    write_file(dir / (std::string(family) + "_v1.wsm"), binary);
    std::printf("%-22s v0 %6zu B   v1 %6zu B  (%.0f%%)\n", family,
                text.size(), binary.size(),
                100.0 * static_cast<double>(binary.size()) /
                    static_cast<double>(text.size()));
  }
  std::printf("goldens written to %s\n", dir.string().c_str());
  return 0;
}
