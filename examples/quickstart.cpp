// Quickstart: the whole Waldo loop in one file.
//
//   1. Simulate a metro RF environment (stand-in for the real world).
//   2. War-drive it with a calibrated low-cost sensor.
//   3. Let the central spectrum database label the data (Algorithm 1) and
//      construct a per-locality detection model.
//   4. Download the model to a device and decide, locally, whether a TV
//      channel is safe to use at a few places.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/database.hpp"
#include "waldo/core/features.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/sensors/sensor.hpp"

int main() {
  using namespace waldo;

  // 1. The world: TV transmitters + shadowing + obstruction pockets over a
  //    700 km^2 metro region.
  const rf::Environment world = rf::make_metro_environment();
  constexpr int kChannel = 46;
  std::printf("world: %zu transmitters, channel %d under test\n",
              world.transmitters().size(), kChannel);

  // 2. A $15-class sensor, calibrated against a signal generator, driven
  //    along ~800 km of city streets.
  sensors::Sensor dongle(sensors::rtl_sdr_spec(), /*seed=*/1);
  const sensors::LinearCalibration cal = dongle.calibrate();
  std::printf("calibration: dBm = %.3f * raw + %.2f\n", cal.slope,
              cal.intercept);
  const geo::DrivePath route = campaign::standard_route(world, 3000);
  campaign::ChannelDataset sweep =
      campaign::collect_channel(world, dongle, kChannel, route.readings);
  std::printf("campaign: %zu readings over %.0f km of driving\n",
              sweep.size(), route.total_length_m / 1000.0);

  // 3. The central database ingests the sweep, labels it per the FCC
  //    protection rule and builds a compact 3-locality SVM model.
  core::ModelConstructorConfig constructor;
  constructor.classifier = "svm";
  constructor.num_features = 3;  // location + RSS + CFT
  constructor.num_localities = 3;
  constructor.max_train_samples = 800;
  core::SpectrumDatabase database(constructor);
  database.ingest_campaign(std::move(sweep));
  const std::string descriptor = database.download_model(kChannel);
  std::printf("model descriptor: %zu bytes for the whole area\n",
              descriptor.size());

  // 4. A device deserializes the model and decides locally.
  const core::WhiteSpaceModel model =
      core::WhiteSpaceModel::deserialize(descriptor);
  sensors::Sensor device_dongle(sensors::rtl_sdr_spec(), /*seed=*/2);
  device_dongle.calibrate();

  std::printf("\n%-28s %-10s %-12s %s\n", "location", "RSS dBm", "decision",
              "(ground truth)");
  for (const geo::EnuPoint p :
       {geo::EnuPoint{4000.0, 4000.0}, geo::EnuPoint{13'000.0, 13'000.0},
        geo::EnuPoint{13'000.0, 24'000.0}, geo::EnuPoint{23'000.0, 3000.0}}) {
    const sensors::SensorReading reading =
        device_dongle.sense_channel(world.true_rss_dbm(kChannel, p));
    const double rss = device_dongle.calibrated_rss_dbm(reading.raw);
    const core::SpectralFeatures spectral =
        core::extract_spectral_features(reading.iq);
    const auto row = core::feature_row(p, rss, spectral.cft_db,
                                       spectral.aft_db, 3);
    const int decision = model.predict(row);
    std::printf("(%6.0f m, %6.0f m) east/north %-10.1f %-12s (decodable "
                "here: %s)\n",
                p.east_m, p.north_m, rss,
                decision == ml::kSafe ? "SAFE" : "NOT SAFE",
                world.signal_decodable(kChannel, p) ? "yes" : "no");
  }
  return 0;
}
