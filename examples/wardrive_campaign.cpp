// Measurement-campaign example: runs the full three-sensor war drive the
// paper's Section 2 describes (RTL-SDR + USRP B200 + spectrum analyzer on
// one van), writes each sweep to CSV, and prints the per-channel occupancy
// and sensor-agreement summary.
//
// Usage:  wardrive_campaign [output_dir] [readings_per_channel]
#include <cstdio>
#include <filesystem>
#include <string>

#include "waldo/campaign/dataset_io.hpp"
#include "waldo/campaign/labeling.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/sensors/sensor.hpp"

int main(int argc, char** argv) {
  using namespace waldo;
  const std::string out_dir = argc > 1 ? argv[1] : "campaign_out";
  const std::size_t readings =
      argc > 2 ? std::stoul(argv[2]) : std::size_t{5282};

  const rf::Environment world = rf::make_metro_environment();
  const geo::DrivePath route = campaign::standard_route(world, readings);
  std::printf("route: %zu readings, %.0f km driven, %zu road blocks\n",
              route.readings.size(), route.total_length_m / 1000.0,
              route.blocks_visited);

  sensors::Sensor rtl(sensors::rtl_sdr_spec(), 11);
  sensors::Sensor usrp(sensors::usrp_b200_spec(), 12);
  sensors::Sensor analyzer(sensors::spectrum_analyzer_spec(), 13);
  rtl.calibrate();
  usrp.calibrate();

  std::filesystem::create_directories(out_dir);
  std::printf("\n%-8s %-10s %-10s %-10s %-12s %-12s\n", "channel",
              "safe(SA)", "safe(RTL)", "safe(USRP)", "RTL_miss", "USRP_miss");

  for (const int ch : rf::kPaperChannels) {
    struct Sweep {
      const char* tag;
      sensors::Sensor* sensor;
      campaign::ChannelDataset data;
      std::vector<int> labels;
    };
    Sweep sweeps[] = {{"fieldfox", &analyzer, {}, {}},
                      {"rtlsdr", &rtl, {}, {}},
                      {"usrp", &usrp, {}, {}}};
    for (Sweep& s : sweeps) {
      s.data = campaign::collect_channel(world, *s.sensor, ch,
                                         route.readings);
      s.labels = campaign::label_readings(s.data.positions(),
                                          s.data.rss_values());
      campaign::write_csv_file(out_dir + "/ch" + std::to_string(ch) + "_" +
                                   s.tag + ".csv",
                               s.data);
    }
    const auto rtl_cm = ml::compare_labels(sweeps[1].labels,
                                           sweeps[0].labels);
    const auto usrp_cm = ml::compare_labels(sweeps[2].labels,
                                            sweeps[0].labels);
    std::printf("%-8d %-10.3f %-10.3f %-10.3f %-12.3f %-12.3f\n", ch,
                campaign::safe_fraction(sweeps[0].labels),
                campaign::safe_fraction(sweeps[1].labels),
                campaign::safe_fraction(sweeps[2].labels), rtl_cm.fn_rate(),
                usrp_cm.fn_rate());
  }
  std::printf("\nCSV sweeps written to %s/ (27 files: 9 channels x 3 "
              "sensors)\n",
              out_dir.c_str());
  return 0;
}
