// Coverage-map example: renders ASCII maps of one channel over the metro
// region — the regulatory ground truth (decodable core, protected halo,
// white space) side by side with the decisions of a trained Waldo model —
// making the paper's Figure 1 "pockets" story visible in a terminal.
//
// Usage:  coverage_map [channel]
#include <cstdio>
#include <string>

#include "waldo/campaign/truth.hpp"
#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/features.hpp"
#include "waldo/core/model_constructor.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/sensors/sensor.hpp"

int main(int argc, char** argv) {
  using namespace waldo;
  const int channel = argc > 1 ? std::stoi(argv[1]) : 46;

  const rf::Environment world = rf::make_metro_environment();
  if (world.transmitters_on(channel).empty()) {
    std::printf("channel %d has no transmitter in this world; try one of "
                "15 17 21 22 27 30 39 46 47\n",
                channel);
    return 1;
  }

  // Train a Waldo model from a campaign.
  const geo::DrivePath route = campaign::standard_route(world, 4000);
  sensors::Sensor sensor(sensors::usrp_b200_spec(), 31);
  sensor.calibrate();
  const campaign::ChannelDataset data =
      campaign::collect_channel(world, sensor, channel, route.readings);
  core::ModelConstructorConfig cfg;
  cfg.classifier = "svm";
  cfg.num_features = 3;
  cfg.num_localities = 3;
  cfg.max_train_samples = 800;
  const core::WhiteSpaceModel model =
      core::ModelConstructor(cfg).build_with_labeling(data);

  const campaign::GroundTruthLabeler truth(world, channel);
  const geo::BoundingBox& region = world.config().region;
  constexpr int kCols = 64;
  constexpr int kRows = 32;

  // A roaming probe sensor supplies live readings for the model map.
  sensors::Sensor probe(sensors::usrp_b200_spec(), 32);
  probe.calibrate();

  std::string truth_map, waldo_map;
  ml::ConfusionMatrix cm;
  for (int r = kRows - 1; r >= 0; --r) {
    for (int c = 0; c < kCols; ++c) {
      const geo::EnuPoint p{
          region.min_east_m + (c + 0.5) / kCols * region.width_m(),
          region.min_north_m + (r + 0.5) / kRows * region.height_m()};
      const bool decodable = world.signal_decodable(channel, p);
      const int truth_label = truth.label(p);
      truth_map += decodable ? '#'
                   : (truth_label == ml::kNotSafe ? '+' : '.');

      const auto reading =
          probe.sense_channel(world.true_rss_dbm(channel, p));
      const double rss = probe.calibrated_rss_dbm(reading.raw);
      const auto spectral = core::extract_spectral_features(reading.iq);
      const auto row =
          core::feature_row(p, rss, spectral.cft_db, spectral.aft_db, 3);
      const int predicted = model.predict(row);
      waldo_map += predicted == ml::kNotSafe ? '+' : '.';
      cm.add(predicted, truth_label);
    }
    truth_map += '\n';
    waldo_map += '\n';
  }

  std::printf("channel %d — regulatory ground truth\n", channel);
  std::printf("  '#' TV signal decodable, '+' protected halo (within 6 km),"
              " '.' white space\n%s\n",
              truth_map.c_str());
  std::printf("channel %d — Waldo decisions from live low-cost readings\n",
              channel);
  std::printf("  '+' not safe, '.' safe to transmit\n%s\n",
              waldo_map.c_str());
  std::printf("agreement with ground truth: error %.3f, FP %.3f, FN %.3f "
              "over %d map cells\n",
              cm.error_rate(), cm.fp_rate(), cm.fn_rate(), kRows * kCols);
  return 0;
}
