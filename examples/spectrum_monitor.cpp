// Spectrum-monitoring example (the paper's Section 6 application): use the
// campaign infrastructure to locate each channel's incumbent transmitter
// from RSS data alone and compare against the registered positions —
// the "determining protected areas / monitoring interference" use case.
//
// Usage:  spectrum_monitor [readings]
#include <cstdio>
#include <string>

#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/transmitter_locator.hpp"
#include "waldo/rf/environment.hpp"
#include "waldo/sensors/sensor.hpp"

int main(int argc, char** argv) {
  using namespace waldo;
  const std::size_t readings =
      argc > 1 ? std::stoul(argv[1]) : std::size_t{4000};

  const rf::Environment world = rf::make_metro_environment();
  const geo::DrivePath route = campaign::standard_route(world, readings);
  sensors::Sensor analyzer(sensors::spectrum_analyzer_spec(), 41);

  core::LocatorConfig cfg;
  cfg.min_rss_dbm = -105.0;

  std::printf("%-8s %-22s %-22s %-10s %-8s %-8s\n", "channel", "estimated",
              "registered", "error_km", "n_fit", "rmse_dB");
  for (const int ch : rf::kPaperChannels) {
    const auto sweep =
        campaign::collect_channel(world, analyzer, ch, route.readings);
    const auto estimate = core::locate_transmitter(sweep, cfg);
    const rf::Transmitter* truth = world.transmitters_on(ch).front();
    if (!estimate) {
      std::printf("%-8d %-22s (%8.0f, %8.0f)\n", ch,
                  "too little signal", truth->location.east_m,
                  truth->location.north_m);
      continue;
    }
    std::printf("%-8d (%8.0f, %8.0f)   (%8.0f, %8.0f)   %-10.1f %-8.1f "
                "%-8.1f\n",
                ch, estimate->position.east_m, estimate->position.north_m,
                truth->location.east_m, truth->location.north_m,
                geo::distance_m(estimate->position, truth->location) /
                    1000.0,
                estimate->path_loss_exponent, estimate->rmse_db);
  }
  std::printf("\nNotes: estimates come from drive-by RSS alone — no "
              "registration data. Far\ntowers with one-sided geometry and "
              "deep obstruction pockets localise worst;\nblanket channels "
              "(27/39) have the richest gradients and localise best.\n");
  return 0;
}
