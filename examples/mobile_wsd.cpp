// Mobile white-space-device example (the paper's Section 5 scenario): a
// phone with an RTL-SDR dongle bootstraps its models from the central
// database once, then drives through town re-scanning every "minute",
// printing the channel decisions, convergence times and data budget as it
// goes. A final stop uploads its measurements back to the database.
#include <cstdio>

#include "waldo/campaign/wardrive.hpp"
#include "waldo/core/database.hpp"
#include "waldo/device/phone.hpp"
#include "waldo/ml/metrics.hpp"
#include "waldo/rf/environment.hpp"

int main() {
  using namespace waldo;
  const rf::Environment world = rf::make_metro_environment();

  // Bootstrap the central database from a trusted campaign.
  std::printf("bootstrapping the central spectrum database...\n");
  const geo::DrivePath route = campaign::standard_route(world, 3000);
  core::ModelConstructorConfig constructor;
  constructor.classifier = "svm";
  constructor.num_features = 3;
  constructor.num_localities = 3;
  constructor.max_train_samples = 600;
  core::SpectrumDatabase database(constructor);
  sensors::Sensor campaign_sensor(sensors::usrp_b200_spec(), 21);
  campaign_sensor.calibrate();
  const std::vector<int> channels{15, 21, 22, 46};
  for (const int ch : channels) {
    database.ingest_campaign(
        campaign::collect_channel(world, campaign_sensor, ch,
                                  route.readings));
  }

  // The phone joins the network: one model download per channel.
  sensors::Sensor dongle(device::phone_rtl_sdr_spec(), 22);
  dongle.calibrate();
  device::PhoneRuntime phone(device::PhoneConfig{}, std::move(dongle));
  const std::size_t bytes = phone.ensure_models(database, channels);
  std::printf("downloaded %zu bytes of models for %zu channels "
              "(vs ~2 kB per single-location query to a classic database)\n",
              bytes, channels.size());

  // Drive across town, scanning at each stop.
  const geo::EnuPoint stops[] = {{3000.0, 3000.0},
                                 {8000.0, 13'000.0},
                                 {13'000.0, 13'000.0},
                                 {20'000.0, 18'000.0},
                                 {24'000.0, 24'000.0}};
  for (const geo::EnuPoint& stop : stops) {
    std::printf("\n@ (%5.0f, %5.0f) m:\n", stop.east_m, stop.north_m);
    const device::ScanReport report =
        phone.scan_cycle(world, channels, stop);
    for (const device::ChannelScan& scan : report.channels) {
      std::printf("  ch %2d: %-9s (%2zu readings, %.0f ms%s)\n",
                  scan.channel,
                  scan.decision == ml::kSafe ? "SAFE" : "NOT SAFE",
                  scan.readings_used, scan.convergence_time_s() * 1000.0,
                  scan.converged ? "" : ", no convergence -> conservative");
    }
    std::printf("  cycle: %.2f s busy, %.2f%% CPU over the 60 s period\n",
                report.busy_time_s,
                report.cpu_duty_fraction(60.0) * 100.0);
  }

  // Give back: upload the readings used at the last stop.
  std::vector<campaign::Measurement> uploads;
  sensors::Sensor upload_sensor(device::phone_rtl_sdr_spec(), 23);
  upload_sensor.calibrate();
  for (int i = 0; i < 20; ++i) {
    campaign::Measurement m;
    m.position = geo::EnuPoint{24'000.0 + 30.0 * i, 24'000.0};
    const auto reading =
        upload_sensor.sense_channel(world.true_rss_dbm(46, m.position));
    m.raw = reading.raw;
    m.rss_dbm = upload_sensor.calibrated_rss_dbm(reading.raw);
    uploads.push_back(m);
  }
  const auto result = database.upload_measurements(46, uploads);
  std::printf("\nglobal model updater: %zu readings accepted, %zu rejected "
              "by the correlation check\n",
              result.accepted, result.rejected);
  return 0;
}
